#include "ea/placement.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

const ExpAge kLow = ExpAge::from_millis(1000);
const ExpAge kHigh = ExpAge::from_millis(9000);
const ExpAge kInf = ExpAge::infinite();

TEST(AdHocPlacementTest, AlwaysCachesAndPromotes) {
  AdHocPlacement adhoc;
  EXPECT_TRUE(adhoc.requester_should_cache(kLow, kHigh));
  EXPECT_TRUE(adhoc.requester_should_cache(kHigh, kLow));
  EXPECT_TRUE(adhoc.responder_should_promote(kLow, kHigh));
  EXPECT_TRUE(adhoc.parent_should_cache(kLow, kHigh));
  EXPECT_TRUE(adhoc.requester_should_cache_after_origin_fetch());
  EXPECT_EQ(adhoc.kind(), PlacementKind::kAdHoc);
}

TEST(EaPlacementTest, RequesterCachesOnlyWhenItsCopyWouldSurviveLonger) {
  EaPlacement ea;
  // Higher expiration age = lower contention = longer expected survival.
  EXPECT_TRUE(ea.requester_should_cache(kHigh, kLow));
  EXPECT_FALSE(ea.requester_should_cache(kLow, kHigh));
}

TEST(EaPlacementTest, RequesterCachesOnTie) {
  // Paper section 3.4: "greater than or equal". Ensures a copy is made when
  // survival chances are equal, preserving the never-worse-than-ad-hoc
  // guarantee.
  EaPlacement ea;
  EXPECT_TRUE(ea.requester_should_cache(kLow, kLow));
  EXPECT_TRUE(ea.requester_should_cache(kInf, kInf));  // cold group
}

TEST(EaPlacementTest, ResponderPromotesOnlyOnStrictWin) {
  EaPlacement ea;
  EXPECT_TRUE(ea.responder_should_promote(kHigh, kLow));
  EXPECT_FALSE(ea.responder_should_promote(kLow, kHigh));
  // On tie the requester made a copy, so the responder must NOT give its
  // copy a fresh lease of life — otherwise both copies persist.
  EXPECT_FALSE(ea.responder_should_promote(kLow, kLow));
  EXPECT_FALSE(ea.responder_should_promote(kInf, kInf));
}

TEST(EaPlacementTest, ExactlyOneSideKeepsTheLease) {
  // For ANY pair of ages, requester-caches XOR responder-promotes... is not
  // quite the invariant; rather: at least one of them preserves a
  // long-lived copy, and on ties only the requester does.
  EaPlacement ea;
  for (const ExpAge requester : {kLow, kHigh, kInf}) {
    for (const ExpAge responder : {kLow, kHigh, kInf}) {
      const bool requester_caches = ea.requester_should_cache(requester, responder);
      const bool responder_promotes = ea.responder_should_promote(responder, requester);
      EXPECT_TRUE(requester_caches || responder_promotes)
          << "nobody preserved the document";
      EXPECT_FALSE(requester_caches && responder_promotes)
          << "both sides preserved it: uncontrolled replication";
    }
  }
}

TEST(EaPlacementTest, ParentCachesOnlyOnStrictWin) {
  EaPlacement ea;
  EXPECT_TRUE(ea.parent_should_cache(kHigh, kLow));
  EXPECT_FALSE(ea.parent_should_cache(kLow, kHigh));
  EXPECT_FALSE(ea.parent_should_cache(kLow, kLow));
}

TEST(EaPlacementTest, HierarchicalMissAlwaysLeavesACopySomewhere) {
  // parent_should_cache OR requester_should_cache must hold for any ages,
  // else a freshly origin-fetched document would be dropped by everyone.
  EaPlacement ea;
  for (const ExpAge parent : {kLow, kHigh, kInf}) {
    for (const ExpAge requester : {kLow, kHigh, kInf}) {
      EXPECT_TRUE(ea.parent_should_cache(parent, requester) ||
                  ea.requester_should_cache(requester, parent));
    }
  }
}

TEST(EaPlacementTest, OriginFetchAlwaysCached) {
  EXPECT_TRUE(EaPlacement{}.requester_should_cache_after_origin_fetch());
}

TEST(PlacementFactoryTest, RoundTrip) {
  EXPECT_EQ(placement_kind_from_string("ea"), PlacementKind::kEa);
  EXPECT_EQ(placement_kind_from_string("ad-hoc"), PlacementKind::kAdHoc);
  EXPECT_EQ(placement_kind_from_string("adhoc"), PlacementKind::kAdHoc);
  EXPECT_THROW((void)placement_kind_from_string("magic"), std::invalid_argument);
  EXPECT_EQ(make_placement(PlacementKind::kEa)->name(), "ea");
  EXPECT_EQ(make_placement(PlacementKind::kAdHoc)->name(), "ad-hoc");
  EXPECT_EQ(to_string(PlacementKind::kEa), "ea");
}

}  // namespace
}  // namespace eacache
