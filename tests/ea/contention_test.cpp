#include "ea/contention.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

EvictionRecord victim(std::int64_t last_hit_s, std::int64_t evict_s,
                      EvictionCause cause = EvictionCause::kCapacity) {
  EvictionRecord r;
  r.id = 1;
  r.size = 100;
  r.entry_time = kSimEpoch;
  r.last_hit_time = kSimEpoch + sec(last_hit_s);
  r.hit_count = 1;
  r.evict_time = kSimEpoch + sec(evict_s);
  r.cause = cause;
  return r;
}

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

TEST(ContentionTest, ColdCacheIsInfinite) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::cumulative());
  EXPECT_TRUE(est.cache_expiration_age(at(100)).is_infinite());
  EXPECT_TRUE(est.lifetime_average().is_infinite());
  EXPECT_EQ(est.victims_observed(), 0u);
}

TEST(ContentionTest, CumulativeIsPlainMean) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::cumulative());
  est.on_eviction(victim(0, 10));   // age 10s
  est.on_eviction(victim(0, 30));   // age 30s
  est.on_eviction(victim(10, 30));  // age 20s
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(100)).seconds(), 20.0);
  EXPECT_DOUBLE_EQ(est.lifetime_average().seconds(), 20.0);
  EXPECT_EQ(est.victims_observed(), 3u);
}

TEST(ContentionTest, ExplicitRemovalsIgnored) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::cumulative());
  est.on_eviction(victim(0, 10));
  est.on_eviction(victim(0, 1000, EvictionCause::kExplicit));
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(2000)).seconds(), 10.0);
  EXPECT_EQ(est.victims_observed(), 1u);
}

TEST(ContentionTest, VictimWindowSlides) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::victims(2));
  est.on_eviction(victim(0, 100));  // 100s -- will slide out
  est.on_eviction(victim(0, 10));   // 10s
  est.on_eviction(victim(0, 20));   // 20s
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(999)).seconds(), 15.0);
  // Lifetime average still sees everything.
  EXPECT_NEAR(est.lifetime_average().seconds(), (100.0 + 10.0 + 20.0) / 3.0, 1e-9);
}

TEST(ContentionTest, VictimWindowPartiallyFilled) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::victims(10));
  est.on_eviction(victim(0, 30));
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(999)).seconds(), 30.0);
}

TEST(ContentionTest, TimeWindowForgetsOldVictims) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::time(sec(100)));
  est.on_eviction(victim(0, 50));    // age 50s, evicted at t=50
  est.on_eviction(victim(100, 120)); // age 20s, evicted at t=120
  // At t=130, both are within 100s.
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(130)).seconds(), 35.0);
  // At t=200, the t=50 eviction is outside the window.
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(200)).seconds(), 20.0);
  // Far in the future, the window is empty -> infinite again.
  EXPECT_TRUE(est.cache_expiration_age(at(100000)).is_infinite());
}

TEST(ContentionTest, TimeWindowIsIdempotentOnRead) {
  ContentionEstimator est(AgeForm::kLru, WindowConfig::time(sec(100)));
  est.on_eviction(victim(0, 50));
  const ExpAge first = est.cache_expiration_age(at(60));
  const ExpAge second = est.cache_expiration_age(at(60));
  EXPECT_EQ(first, second);
}

TEST(ContentionTest, LfuFormUsesLfuFormula) {
  ContentionEstimator est(AgeForm::kLfu, WindowConfig::cumulative());
  EvictionRecord r = victim(0, 100);
  r.hit_count = 4;  // LFU age = 100s / 4 = 25s
  est.on_eviction(r);
  EXPECT_DOUBLE_EQ(est.cache_expiration_age(at(200)).seconds(), 25.0);
}

TEST(ContentionTest, HighContentionMeansLowAge) {
  // Two caches, same age form: the one whose victims die sooner after
  // their last hit reports a LOWER expiration age.
  ContentionEstimator contended(AgeForm::kLru, WindowConfig::cumulative());
  ContentionEstimator relaxed(AgeForm::kLru, WindowConfig::cumulative());
  for (int i = 0; i < 10; ++i) {
    contended.on_eviction(victim(0, 5));    // victims die 5s after last hit
    relaxed.on_eviction(victim(0, 500));    // victims live 500s
  }
  EXPECT_LT(contended.cache_expiration_age(at(1000)),
            relaxed.cache_expiration_age(at(1000)));
}

TEST(ContentionTest, BadWindowConfigsThrow) {
  EXPECT_THROW(ContentionEstimator(AgeForm::kLru, WindowConfig::victims(0)),
               std::invalid_argument);
  EXPECT_THROW(ContentionEstimator(AgeForm::kLru, WindowConfig::time(Duration::zero())),
               std::invalid_argument);
}

}  // namespace
}  // namespace eacache
