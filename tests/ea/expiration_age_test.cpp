#include "ea/expiration_age.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

EvictionRecord record(std::int64_t entry_s, std::int64_t last_hit_s, std::uint64_t hits,
                      std::int64_t evict_s) {
  EvictionRecord r;
  r.id = 1;
  r.size = 100;
  r.entry_time = kSimEpoch + sec(entry_s);
  r.last_hit_time = kSimEpoch + sec(last_hit_s);
  r.hit_count = hits;
  r.evict_time = kSimEpoch + sec(evict_s);
  return r;
}

TEST(ExpAgeTest, OrderingAndInfinity) {
  const ExpAge small = ExpAge::from_millis(100);
  const ExpAge big = ExpAge::from_millis(5000);
  const ExpAge inf = ExpAge::infinite();
  EXPECT_LT(small, big);
  EXPECT_LT(big, inf);
  EXPECT_EQ(inf, ExpAge::infinite());
  EXPECT_TRUE(inf.is_infinite());
  EXPECT_FALSE(big.is_infinite());
  EXPECT_GE(inf, inf);   // the cold-start tie the placement rule relies on
  EXPECT_FALSE(inf > inf);
}

TEST(ExpAgeTest, Conversions) {
  EXPECT_DOUBLE_EQ(ExpAge::from_millis(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(ExpAge::from_duration(sec(2)).millis(), 2000.0);
  EXPECT_EQ(ExpAge::from_millis(2500).to_string(), "2.5s");
  EXPECT_EQ(ExpAge::infinite().to_string(), "inf");
}

TEST(DocExpAgeLruTest, PaperEquation2) {
  // DocExpAge_LRU = T1 - T0: eviction time minus last hit time.
  const ExpAge age = doc_exp_age_lru(record(0, 40, 3, 100));
  EXPECT_DOUBLE_EQ(age.seconds(), 60.0);
}

TEST(DocExpAgeLruTest, NeverHitUsesEntryTime) {
  // A document never hit after admission has last_hit_time == entry_time.
  const ExpAge age = doc_exp_age_lru(record(10, 10, 1, 25));
  EXPECT_DOUBLE_EQ(age.seconds(), 15.0);
}

TEST(DocExpAgeLruTest, RejectsTimeTravel) {
  EXPECT_THROW((void)doc_exp_age_lru(record(0, 50, 1, 40)), std::invalid_argument);
}

TEST(DocExpAgeLfuTest, PaperSection322Formula) {
  // DocExpAge_LFU = (TR - T0) / HIT_COUNTER.
  const ExpAge age = doc_exp_age_lfu(record(0, 80, 4, 100));
  EXPECT_DOUBLE_EQ(age.seconds(), 25.0);
}

TEST(DocExpAgeLfuTest, SingleHitIsFullLifetime) {
  const ExpAge age = doc_exp_age_lfu(record(20, 20, 1, 50));
  EXPECT_DOUBLE_EQ(age.seconds(), 30.0);
}

TEST(DocExpAgeLfuTest, RejectsBadRecords) {
  EXPECT_THROW((void)doc_exp_age_lfu(record(100, 100, 1, 50)), std::invalid_argument);
  EXPECT_THROW((void)doc_exp_age_lfu(record(0, 0, 0, 50)), std::invalid_argument);
}

TEST(DocExpAgeTest, DispatchMatchesForms) {
  const EvictionRecord r = record(0, 60, 2, 100);
  EXPECT_EQ(doc_exp_age(AgeForm::kLru, r), doc_exp_age_lru(r));
  EXPECT_EQ(doc_exp_age(AgeForm::kLfu, r), doc_exp_age_lfu(r));
  EXPECT_DOUBLE_EQ(doc_exp_age(AgeForm::kLru, r).seconds(), 40.0);
  EXPECT_DOUBLE_EQ(doc_exp_age(AgeForm::kLfu, r).seconds(), 50.0);
}

TEST(AgeFormTest, PolicyMapping) {
  EXPECT_EQ(age_form_for_policy("lru"), AgeForm::kLru);
  EXPECT_EQ(age_form_for_policy("lfu"), AgeForm::kLfu);
  EXPECT_EQ(age_form_for_policy("lfu-aging"), AgeForm::kLfu);
  EXPECT_EQ(age_form_for_policy("size"), AgeForm::kLru);
  EXPECT_EQ(age_form_for_policy("gds"), AgeForm::kLru);
}

}  // namespace
}  // namespace eacache
