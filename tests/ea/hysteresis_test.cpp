#include <gtest/gtest.h>

#include <stdexcept>

#include "ea/placement.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

const ExpAge kLow = ExpAge::from_millis(1000);
const ExpAge kMid = ExpAge::from_millis(1500);
const ExpAge kHigh = ExpAge::from_millis(4000);
const ExpAge kInf = ExpAge::infinite();

TEST(EaHysteresisTest, FactorBelowOneRejected) {
  EXPECT_THROW(EaHysteresisPlacement{0.5}, std::invalid_argument);
  EXPECT_THROW(EaHysteresisPlacement{0.0}, std::invalid_argument);
}

TEST(EaHysteresisTest, FactorOneMatchesPlainEaOnFiniteAges) {
  const EaHysteresisPlacement hysteresis(1.0);
  const EaPlacement plain;
  for (const ExpAge requester : {kLow, kMid, kHigh, kInf}) {
    for (const ExpAge responder : {kLow, kMid, kHigh, kInf}) {
      EXPECT_EQ(hysteresis.requester_should_cache(requester, responder),
                plain.requester_should_cache(requester, responder))
          << requester.to_string() << " vs " << responder.to_string();
      EXPECT_EQ(hysteresis.responder_should_promote(responder, requester),
                plain.responder_should_promote(responder, requester));
    }
  }
}

TEST(EaHysteresisTest, MarginalWinsNoLongerReplicate) {
  const EaHysteresisPlacement hysteresis(2.0);
  // 1500 >= 1000 would replicate under plain EA, but 1500 < 2 * 1000.
  EXPECT_TRUE(EaPlacement{}.requester_should_cache(kMid, kLow));
  EXPECT_FALSE(hysteresis.requester_should_cache(kMid, kLow));
  // A 4x advantage still replicates.
  EXPECT_TRUE(hysteresis.requester_should_cache(kHigh, kLow));
}

TEST(EaHysteresisTest, ExactlyOneSideKeepsTheLease) {
  const EaHysteresisPlacement hysteresis(3.0);
  for (const ExpAge requester : {kLow, kMid, kHigh, kInf}) {
    for (const ExpAge responder : {kLow, kMid, kHigh, kInf}) {
      const bool cache = hysteresis.requester_should_cache(requester, responder);
      const bool promote = hysteresis.responder_should_promote(responder, requester);
      EXPECT_NE(cache, promote) << "exactly one side must preserve the copy";
      EXPECT_TRUE(hysteresis.parent_should_cache(responder, requester) ||
                  hysteresis.requester_should_cache(requester, responder));
    }
  }
}

TEST(EaHysteresisTest, ColdGroupBehavesLikeAdHoc) {
  const EaHysteresisPlacement hysteresis(5.0);
  EXPECT_TRUE(hysteresis.requester_should_cache(kInf, kInf));
  EXPECT_FALSE(hysteresis.responder_should_promote(kInf, kInf));
}

TEST(EaHysteresisTest, FactoryAndNames) {
  const auto placement = make_placement(PlacementKind::kEaHysteresis, 4.0);
  EXPECT_EQ(placement->name(), "ea-hysteresis");
  EXPECT_EQ(placement->kind(), PlacementKind::kEaHysteresis);
  EXPECT_EQ(placement_kind_from_string("ea-hysteresis"), PlacementKind::kEaHysteresis);
  EXPECT_EQ(to_string(PlacementKind::kEaHysteresis), "ea-hysteresis");
}

TEST(EaHysteresisTest, HigherFactorMeansFewerReplicas) {
  SyntheticTraceConfig workload;
  workload.num_requests = 25000;
  workload.num_documents = 2500;
  workload.num_users = 64;
  workload.span = hours(6);
  const Trace trace = generate_synthetic_trace(workload);

  const auto replication_for = [&](PlacementKind kind, double factor) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = 512 * kKiB;
    config.placement = kind;
    config.ea_hysteresis = factor;
    return run_simulation(trace, config).replication_factor;
  };
  const double adhoc = replication_for(PlacementKind::kAdHoc, 1.0);
  const double plain_ea = replication_for(PlacementKind::kEa, 1.0);
  const double strong = replication_for(PlacementKind::kEaHysteresis, 8.0);
  EXPECT_LE(plain_ea, adhoc + 1e-9);
  EXPECT_LE(strong, plain_ea + 0.05);
}

}  // namespace
}  // namespace eacache
