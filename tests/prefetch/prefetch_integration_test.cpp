// Eager-mode (prefetching) placement integrated with the cache group.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

GroupConfig prefetch_group() {
  GroupConfig config;
  config.num_proxies = 2;
  config.aggregate_capacity = 64 * kKiB;
  config.placement = PlacementKind::kAdHoc;
  config.prefetch.enabled = true;
  config.prefetch.min_confidence = 0.5;
  config.prefetch.min_observations = 2;
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

UserId user_on(const CacheGroup& group, ProxyId proxy) {
  for (UserId u = 0; u < 10000; ++u) {
    if (group.home_proxy(u) == proxy) return u;
  }
  throw std::runtime_error("no user maps to proxy");
}

TEST(PrefetchIntegrationTest, ConfigValidation) {
  GroupConfig config = prefetch_group();
  config.prefetch.min_confidence = 1.5;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
  config = prefetch_group();
  config.routing = RoutingMode::kHashPartition;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(PrefetchIntegrationTest, LearnsPatternAndPrefetches) {
  CacheGroup group(prefetch_group());
  const UserId u = user_on(group, 0);
  // Teach the chain A(1) -> B(2) twice, then visit A again: the proxy
  // should speculatively fetch B.
  std::int64_t t = 0;
  for (int round = 0; round < 2; ++round) {
    group.serve(req(++t, u, 1));
    group.serve(req(++t, u, 2));
    group.serve(req(++t, u, 99));  // break the chain so 2->1 noise stays low
  }
  // Evict nothing so far; drop B so the prefetch is observable.
  group.flush_proxy(0, at(++t));
  group.serve(req(++t, u, 1));  // A again: prediction 1->2 fires
  EXPECT_EQ(group.prefetch_stats().issued, 1u);
  EXPECT_TRUE(group.proxy(0).store().contains(2));
  // The demand for B is now a LOCAL HIT thanks to the prefetch.
  EXPECT_EQ(group.serve(req(++t, u, 2)), RequestOutcome::kLocalHit);
  EXPECT_EQ(group.prefetch_stats().useful, 1u);
}

TEST(PrefetchIntegrationTest, NoPrefetchBelowEvidenceThresholds) {
  CacheGroup group(prefetch_group());  // needs 2 observations
  const UserId u = user_on(group, 0);
  group.serve(req(1, u, 1));
  group.serve(req(2, u, 2));  // one observation of 1->2 only
  group.flush_proxy(0, at(3));
  group.serve(req(4, u, 1));
  EXPECT_EQ(group.prefetch_stats().issued, 0u);
}

TEST(PrefetchIntegrationTest, NeverPrefetchesUnknownSizes) {
  CacheGroup group(prefetch_group());
  const UserId u = user_on(group, 0);
  // Chain into a document the group has never served: impossible, since
  // observations only exist for served documents — assert the invariant
  // indirectly: everything issued had a known size (bytes > 0).
  std::int64_t t = 0;
  for (int round = 0; round < 3; ++round) {
    group.serve(req(++t, u, 1));
    group.serve(req(++t, u, 2));
  }
  if (group.prefetch_stats().issued > 0) {
    EXPECT_GT(group.prefetch_stats().bytes_prefetched, 0u);
  }
}

TEST(PrefetchIntegrationTest, AccountingIdentityHolds) {
  SyntheticTraceConfig workload;
  workload.num_requests = 30000;
  workload.num_documents = 1000;
  workload.num_users = 16;
  workload.span = hours(8);
  workload.repeat_probability = 0.4;  // locality gives the predictor signal
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config = prefetch_group();
  config.num_proxies = 4;
  config.aggregate_capacity = 512 * kKiB;
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_GT(result.prefetch.issued, 0u);
  EXPECT_LE(result.prefetch.useful + result.prefetch.still_pending, result.prefetch.issued);
  EXPECT_EQ(result.prefetch.wasted(),
            result.prefetch.issued - result.prefetch.useful - result.prefetch.still_pending);
}

TEST(PrefetchIntegrationTest, PrefetchTrafficIsAccounted) {
  SyntheticTraceConfig workload;
  workload.num_requests = 10000;
  workload.num_documents = 500;
  workload.num_users = 8;
  workload.span = hours(2);
  workload.repeat_probability = 0.4;
  const Trace trace = generate_synthetic_trace(workload);

  // Generous capacity: under heavy contention speculative copies evict
  // useful ones (cache pollution — the ABL-PREFETCH bench shows that
  // regime); with room to spare, prefetching must help.
  GroupConfig with = prefetch_group();
  with.num_proxies = 4;
  with.aggregate_capacity = 2 * kMiB;
  GroupConfig without = with;
  without.prefetch.enabled = false;

  const SimulationResult eager = run_simulation(trace, with);
  const SimulationResult lazy = run_simulation(trace, without);
  // Speculation costs extra origin fetches: every issued prefetch is one.
  EXPECT_EQ(eager.transport.origin_fetches,
            eager.metrics.count(RequestOutcome::kMiss) + eager.prefetch.issued);
  // Some speculation pays off...
  EXPECT_GT(eager.prefetch.useful, 0u);
  // ...and the hit rate stays within noise of the lazy baseline (on
  // Zipf+recency workloads first-order Markov prefetching is nearly
  // neutral — the ABL-PREFETCH bench quantifies the trade; what this test
  // pins is that speculation never does material damage).
  EXPECT_GT(eager.metrics.hit_rate(), lazy.metrics.hit_rate() - 0.01);
}

TEST(PrefetchIntegrationTest, WorksUnderEaPlacement) {
  SyntheticTraceConfig workload;
  workload.num_requests = 15000;
  workload.num_documents = 800;
  workload.num_users = 16;
  workload.span = hours(4);
  workload.repeat_probability = 0.4;
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config = prefetch_group();
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = PlacementKind::kEa;
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_GT(result.prefetch.issued, 0u);
}

}  // namespace
}  // namespace eacache
