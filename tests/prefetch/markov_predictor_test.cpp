#include "prefetch/markov_predictor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

TEST(MarkovPredictorTest, RejectsBadGeometry) {
  EXPECT_THROW(MarkovPredictor(0, 10), std::invalid_argument);
  EXPECT_THROW(MarkovPredictor(4, 0), std::invalid_argument);
}

TEST(MarkovPredictorTest, UnknownAntecedentPredictsNothing) {
  MarkovPredictor predictor;
  EXPECT_FALSE(predictor.predict(1).has_value());
}

TEST(MarkovPredictorTest, LearnsSimpleChain) {
  MarkovPredictor predictor;
  for (int i = 0; i < 5; ++i) predictor.observe(1, 2);
  const auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->document, 2u);
  EXPECT_DOUBLE_EQ(prediction->confidence, 1.0);
  EXPECT_EQ(prediction->observations, 5u);
}

TEST(MarkovPredictorTest, ConfidenceReflectsMixture) {
  MarkovPredictor predictor;
  for (int i = 0; i < 3; ++i) predictor.observe(1, 2);
  predictor.observe(1, 3);
  const auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->document, 2u);
  EXPECT_DOUBLE_EQ(prediction->confidence, 0.75);
}

TEST(MarkovPredictorTest, SelfLoopsIgnored) {
  MarkovPredictor predictor;
  predictor.observe(1, 1);
  EXPECT_FALSE(predictor.predict(1).has_value());
  EXPECT_EQ(predictor.antecedents(), 0u);
}

TEST(MarkovPredictorTest, StrongSuccessorSurvivesNoise) {
  // Misra-Gries displacement: a heavy successor must survive a stream of
  // distinct one-off successors that overflow the slot budget.
  MarkovPredictor predictor(4);
  for (int i = 0; i < 100; ++i) predictor.observe(1, 777);
  for (DocumentId noise = 1000; noise < 1100; ++noise) predictor.observe(1, noise);
  const auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->document, 777u);
}

TEST(MarkovPredictorTest, RepeatOffenderEventuallyDisplaces) {
  MarkovPredictor predictor(2);
  predictor.observe(1, 10);  // count 1
  predictor.observe(1, 11);  // count 1, table full
  for (int i = 0; i < 20; ++i) predictor.observe(1, 12);  // decays then claims a slot
  const auto prediction = predictor.predict(1);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(prediction->document, 12u);
}

TEST(MarkovPredictorTest, AntecedentTableIsBounded) {
  MarkovPredictor predictor(4, 16);
  for (DocumentId a = 0; a < 100; ++a) predictor.observe(a, a + 1000);
  EXPECT_LE(predictor.antecedents(), 16u);
  // Early antecedents kept their statistics.
  EXPECT_TRUE(predictor.predict(0).has_value());
}

TEST(MarkovPredictorTest, IndependentAntecedents) {
  MarkovPredictor predictor;
  predictor.observe(1, 2);
  predictor.observe(3, 4);
  EXPECT_EQ(predictor.predict(1)->document, 2u);
  EXPECT_EQ(predictor.predict(3)->document, 4u);
  EXPECT_FALSE(predictor.predict(2).has_value());
}

}  // namespace
}  // namespace eacache
