// GroupConfig::validate(): every rejected combination produces a stable
// diagnostic, ALL violations are aggregated into one report (not
// first-error-wins), and both enforcement points — the CacheGroup
// constructor and run_simulation — throw the aggregated message.
#include "group/cache_group.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace eacache {
namespace {

/// True when some diagnostic in `errors` contains `needle`.
bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  for (const std::string& error : errors) {
    if (error.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_TRUE(GroupConfig{}.validate().empty());
  EXPECT_NO_THROW(GroupConfig{}.validate_or_throw());
}

TEST(ConfigValidateTest, RejectsZeroProxies) {
  GroupConfig config;
  config.num_proxies = 0;
  EXPECT_TRUE(mentions(config.validate(), "num_proxies"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(ConfigValidateTest, RejectsCustomParentsOnDistributedTopology) {
  GroupConfig config;
  config.custom_parents = {std::nullopt, ProxyId{0}, ProxyId{0}};
  config.topology = TopologyKind::kDistributed;
  EXPECT_TRUE(mentions(config.validate(), "custom_parents"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(ConfigValidateTest, RejectsWeightCountMismatch) {
  GroupConfig config;
  config.num_proxies = 4;
  config.capacity_weights = {1.0, 1.0};  // 4 caches, 2 weights
  EXPECT_TRUE(mentions(config.validate(), "capacity_weights"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(ConfigValidateTest, HierarchicalWeightCountIncludesTheRoot) {
  GroupConfig config;
  config.num_proxies = 4;
  config.topology = TopologyKind::kHierarchical;
  config.capacity_weights = {1.0, 1.0, 1.0, 1.0};  // missing the root's entry
  EXPECT_TRUE(mentions(config.validate(), "capacity_weights"));
  config.capacity_weights.push_back(1.0);
  EXPECT_TRUE(config.validate().empty());
  EXPECT_EQ(config.total_cache_count(), 5u);
}

TEST(ConfigValidateTest, RejectsNonPositiveWeights) {
  GroupConfig config;
  config.num_proxies = 2;
  config.capacity_weights = {1.0, 0.0};
  EXPECT_TRUE(mentions(config.validate(), "positive"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(ConfigValidateTest, RejectsBudgetThatRoundsToZero) {
  GroupConfig config;
  config.num_proxies = 8;
  config.aggregate_capacity = 4;  // 4 bytes over 8 caches: zero each
  EXPECT_TRUE(mentions(config.validate(), "aggregate_capacity"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(ConfigValidateTest, RejectsBadCoherenceParameters) {
  GroupConfig config;
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = Duration::zero();
  EXPECT_TRUE(mentions(config.validate(), "fresh_ttl"));

  GroupConfig lm;
  lm.coherence.enabled = true;
  lm.coherence.rule = FreshnessRule::kLmFactor;
  lm.coherence.min_ttl = minutes(10);
  lm.coherence.max_ttl = minutes(1);  // max < min
  EXPECT_TRUE(mentions(lm.validate(), "LM-factor"));
  EXPECT_THROW(CacheGroup{lm}, std::invalid_argument);
}

TEST(ConfigValidateTest, RejectsHashPartitionCombinations) {
  GroupConfig config;
  config.routing = RoutingMode::kHashPartition;
  config.topology = TopologyKind::kHierarchical;
  config.placement = PlacementKind::kEa;
  config.prefetch.enabled = true;
  const std::vector<std::string> errors = config.validate();
  // All three independent violations are reported at once.
  EXPECT_TRUE(mentions(errors, "flat"));
  EXPECT_TRUE(mentions(errors, "kAdHoc"));
  EXPECT_TRUE(mentions(errors, "prefetch"));
  EXPECT_GE(errors.size(), 3u);
}

TEST(ConfigValidateTest, RejectsOutOfRangeProbabilities) {
  GroupConfig config;
  config.prefetch.enabled = true;
  config.prefetch.min_confidence = 1.5;
  config.icp_loss_probability = -0.1;
  const std::vector<std::string> errors = config.validate();
  EXPECT_TRUE(mentions(errors, "min_confidence"));
  EXPECT_TRUE(mentions(errors, "icp_loss_probability"));
}

TEST(ConfigValidateTest, RejectsBadPipelineKnobs) {
  GroupConfig config;
  config.pipeline.event_driven = true;
  config.pipeline.icp_timeout = msec(10);  // <= icp_rtt (40 ms)
  EXPECT_TRUE(mentions(config.validate(), "icp_timeout"));
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);

  GroupConfig backoff;
  backoff.pipeline.event_driven = true;
  backoff.pipeline.retry_backoff = 0.5;
  EXPECT_TRUE(mentions(backoff.validate(), "retry_backoff"));
}

TEST(ConfigValidateTest, PipelineKnobsRequireTheEventDrivenDriver) {
  GroupConfig retries;
  retries.pipeline.icp_retries = 2;  // event_driven left off
  EXPECT_TRUE(mentions(retries.validate(), "event_driven"));

  GroupConfig coalesce;
  coalesce.pipeline.coalesce = true;
  EXPECT_TRUE(mentions(coalesce.validate(), "event_driven"));
  EXPECT_THROW(CacheGroup{coalesce}, std::invalid_argument);
}

TEST(ConfigValidateTest, AggregatesAllViolationsIntoOneThrow) {
  GroupConfig config;
  config.num_proxies = 0;
  config.icp_loss_probability = 2.0;
  config.pipeline.coalesce = true;
  ASSERT_GE(config.validate().size(), 3u);
  try {
    config.validate_or_throw();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("invalid GroupConfig"), std::string::npos);
    EXPECT_NE(message.find("num_proxies"), std::string::npos);
    EXPECT_NE(message.find("icp_loss_probability"), std::string::npos);
    EXPECT_NE(message.find("event_driven"), std::string::npos);
    EXPECT_NE(message.find("; "), std::string::npos);  // "; "-joined list
  }
}

TEST(ConfigValidateTest, RunSimulationEnforcesValidation) {
  GroupConfig config;
  config.icp_loss_probability = 7.0;
  EXPECT_THROW((void)run_simulation(Trace{}, config), std::invalid_argument);
}

// --- validate_for_daemon: the live-daemon subset of the config space ------
//
// The daemon (src/daemon/) serves the flat distributed ICP group only; every
// simulator-only feature must be called out, aggregated with the base
// validate() findings rather than replacing them.

TEST(ConfigValidateTest, DaemonValidationAcceptsTheDefaultGroup) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  EXPECT_TRUE(config.validate().empty());
  EXPECT_TRUE(config.validate_for_daemon().empty());
}

TEST(ConfigValidateTest, DaemonValidationIsASupersetOfBaseValidation) {
  GroupConfig config;
  config.num_proxies = 0;           // base violation
  config.coherence.enabled = true;  // daemon-only violation
  const std::vector<std::string> base = config.validate();
  const std::vector<std::string> daemon = config.validate_for_daemon();
  EXPECT_GT(daemon.size(), base.size());
  EXPECT_TRUE(mentions(daemon, "num_proxies"));
  EXPECT_TRUE(mentions(daemon, "coherence"));
}

TEST(ConfigValidateTest, DaemonValidationRejectsSimulatorOnlyFeatures) {
  // Each feature individually: valid for the simulator, rejected for the
  // daemon with a message naming the offending knob.
  const auto daemon_only_error = [](auto&& mutate, const std::string& needle) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = 1 * kMiB;
    mutate(config);
    EXPECT_TRUE(config.validate().empty()) << needle;
    EXPECT_TRUE(mentions(config.validate_for_daemon(), needle)) << needle;
  };
  daemon_only_error([](GroupConfig& c) { c.topology = TopologyKind::kHierarchical; },
                    "kDistributed");
  daemon_only_error(
      [](GroupConfig& c) {
        c.routing = RoutingMode::kHashPartition;
        c.placement = PlacementKind::kAdHoc;  // hash routing owns placement
      },
      "kCooperative");
  daemon_only_error([](GroupConfig& c) { c.discovery = DiscoveryMode::kDigest; },
                    "kIcp discovery");
  daemon_only_error([](GroupConfig& c) { c.coherence.enabled = true; }, "coherence");
  daemon_only_error([](GroupConfig& c) { c.prefetch.enabled = true; }, "prefetch");
  daemon_only_error([](GroupConfig& c) { c.icp_loss_probability = 0.25; },
                    "icp_loss_probability");
  daemon_only_error([](GroupConfig& c) { c.pipeline.event_driven = true; },
                    "event_driven");
  daemon_only_error([](GroupConfig& c) { c.obs.trace_capacity = 64; }, "span");
}

}  // namespace
}  // namespace eacache
