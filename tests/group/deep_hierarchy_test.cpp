// Three-level hierarchies: exercises the recursive parent-chain resolution
// (fetch_via_parent), including cache hits ABOVE the ICP horizon — a leaf
// only ICP-queries its siblings and direct parent, so a copy at the
// grandparent is found via the HTTP chain, not ICP.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

// Layout: leaves 0,1 -> mid 4; leaves 2,3 -> mid 5; mids 4,5 -> root 6.
GroupConfig three_level(PlacementKind placement) {
  GroupConfig config;
  config.topology = TopologyKind::kHierarchical;
  config.custom_parents = {ProxyId{4}, ProxyId{4}, ProxyId{5}, ProxyId{5},
                           ProxyId{6}, ProxyId{6}, std::nullopt};
  config.aggregate_capacity = 7 * 8 * kKiB;  // 8KiB per cache
  config.placement = placement;
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

UserId user_on(const CacheGroup& group, ProxyId proxy) {
  for (UserId u = 0; u < 100000; ++u) {
    if (group.home_proxy(u) == proxy) return u;
  }
  throw std::runtime_error("no user maps to proxy");
}

TEST(DeepHierarchyTest, ShapeIsCorrect) {
  CacheGroup group(three_level(PlacementKind::kAdHoc));
  EXPECT_EQ(group.num_proxies(), 7u);
  EXPECT_EQ(group.topology().client_facing(), (std::vector<ProxyId>{0, 1, 2, 3}));
  EXPECT_EQ(group.topology().parent_of(0), ProxyId{4});
  EXPECT_EQ(group.topology().parent_of(4), ProxyId{6});
  EXPECT_FALSE(group.topology().parent_of(6).has_value());
  // Each cache gets an equal share of the aggregate budget.
  for (ProxyId p = 0; p < 7; ++p) {
    EXPECT_EQ(group.proxy(p).store().capacity(), 8 * kKiB);
  }
}

TEST(DeepHierarchyTest, CustomParentsRequireHierarchicalKind) {
  GroupConfig config = three_level(PlacementKind::kEa);
  config.topology = TopologyKind::kDistributed;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(DeepHierarchyTest, MissClimbsTheWholeChainUnderAdHoc) {
  CacheGroup group(three_level(PlacementKind::kAdHoc));
  const UserId u = user_on(group, 0);
  EXPECT_EQ(group.serve(req(1, u, 99)), RequestOutcome::kMiss);
  // Ad-hoc: every cache on the path keeps a copy (leaf, mid, root).
  EXPECT_TRUE(group.proxy(0).store().contains(99));
  EXPECT_TRUE(group.proxy(4).store().contains(99));
  EXPECT_TRUE(group.proxy(6).store().contains(99));
  // The off-path subtree holds nothing.
  EXPECT_FALSE(group.proxy(2).store().contains(99));
  EXPECT_FALSE(group.proxy(5).store().contains(99));
  EXPECT_EQ(group.transport_stats().origin_fetches, 1u);
  // The HTTP chain had two hops (leaf->mid, mid->root).
  EXPECT_EQ(group.transport_stats().http_requests, 2u);
}

TEST(DeepHierarchyTest, GrandparentCopyFoundAboveTheIcpHorizon) {
  CacheGroup group(three_level(PlacementKind::kAdHoc));
  const UserId left = user_on(group, 0);
  const UserId right = user_on(group, 2);
  // Left subtree populates leaf 0, mid 4 and root 6.
  group.serve(req(1, left, 99));
  // A right-subtree leaf misses locally, its sibling (leaf 3) and parent
  // (mid 5) miss too — ICP sees nothing — but the chain finds the copy at
  // the ROOT: a remote hit served from the group, not the origin.
  const auto before = group.transport_stats().origin_fetches;
  EXPECT_EQ(group.serve(req(2, right, 99)), RequestOutcome::kRemoteHit);
  EXPECT_EQ(group.transport_stats().origin_fetches, before);
}

TEST(DeepHierarchyTest, EaChainTieGoesDownstreamAtEveryHop) {
  CacheGroup group(three_level(PlacementKind::kEa));
  const UserId u = user_on(group, 0);
  group.serve(req(1, u, 99));
  // Cold group, EA rules applied pairwise per hop: the ROOT (strict parent
  // rule) declines; the mid, acting as the REQUESTER towards the root,
  // stores on the tie; the leaf likewise stores towards the mid. Compare
  // ad-hoc, where the root stores too.
  EXPECT_TRUE(group.proxy(0).store().contains(99));
  EXPECT_TRUE(group.proxy(4).store().contains(99));
  EXPECT_FALSE(group.proxy(6).store().contains(99));
}

TEST(DeepHierarchyTest, EndToEndBothSchemes) {
  SyntheticTraceConfig workload;
  workload.num_requests = 15000;
  workload.num_documents = 1200;
  workload.num_users = 48;
  workload.span = hours(4);
  const Trace trace = generate_synthetic_trace(workload);
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    GroupConfig config = three_level(placement);
    config.aggregate_capacity = 2 * kMiB;
    const SimulationResult result = run_simulation(trace, config);
    EXPECT_EQ(result.metrics.total_requests(), trace.size());
    EXPECT_GT(result.metrics.hit_rate(), 0.0);
    EXPECT_EQ(result.proxy_stats.size(), 7u);
    // Only leaves face clients.
    EXPECT_EQ(result.proxy_stats[4].client_requests, 0u);
    EXPECT_EQ(result.proxy_stats[5].client_requests, 0u);
    EXPECT_EQ(result.proxy_stats[6].client_requests, 0u);
  }
}

TEST(DeepHierarchyTest, OutcomeOracleHoldsInDeepTrees) {
  // The fresh-copy-anywhere oracle: any request for a document resident
  // SOMEWHERE must not be a miss... with one documented exception: deep
  // trees only search the requester's ancestor path, so copies in OTHER
  // subtrees below the common ancestor are invisible unless ICP sees them.
  // We therefore assert the weaker, correct property: a copy on the
  // requester's OWN path or in its sibling set is always found.
  CacheGroup group(three_level(PlacementKind::kEa));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(1, u0, 7));  // leaf 0 stores (cold-EA tie rule)
  ASSERT_TRUE(group.proxy(0).store().contains(7));
  // Leaf 1 is a sibling of leaf 0: ICP finds it.
  EXPECT_EQ(group.serve(req(2, u1, 7)), RequestOutcome::kRemoteHit);
}

}  // namespace
}  // namespace eacache
