#include "group/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace eacache {
namespace {

TEST(TopologyTest, DistributedEveryoneIsClientFacingSibling) {
  const Topology topo = Topology::distributed(4);
  EXPECT_EQ(topo.kind(), TopologyKind::kDistributed);
  EXPECT_EQ(topo.num_proxies(), 4u);
  EXPECT_EQ(topo.client_facing().size(), 4u);
  for (ProxyId p = 0; p < 4; ++p) {
    EXPECT_FALSE(topo.parent_of(p).has_value());
    const auto siblings = topo.siblings_of(p);
    EXPECT_EQ(siblings.size(), 3u);
    EXPECT_EQ(std::count(siblings.begin(), siblings.end(), p), 0);
  }
}

TEST(TopologyTest, SingleCacheDistributed) {
  const Topology topo = Topology::distributed(1);
  EXPECT_TRUE(topo.siblings_of(0).empty());
  EXPECT_EQ(topo.client_facing().size(), 1u);
}

TEST(TopologyTest, TwoLevelShape) {
  const Topology topo = Topology::two_level(4);
  EXPECT_EQ(topo.kind(), TopologyKind::kHierarchical);
  EXPECT_EQ(topo.num_proxies(), 5u);
  const ProxyId root = 4;
  EXPECT_FALSE(topo.parent_of(root).has_value());
  for (ProxyId leaf = 0; leaf < 4; ++leaf) {
    EXPECT_EQ(topo.parent_of(leaf), root);
  }
  // Leaves are client-facing; the root is not.
  const auto& facing = topo.client_facing();
  EXPECT_EQ(facing.size(), 4u);
  EXPECT_EQ(std::count(facing.begin(), facing.end(), root), 0);
}

TEST(TopologyTest, TwoLevelSiblings) {
  const Topology topo = Topology::two_level(3);
  const auto siblings = topo.siblings_of(0);
  EXPECT_EQ(siblings, (std::vector<ProxyId>{1, 2}));
  // The root's siblings are the other parentless caches — none here.
  EXPECT_TRUE(topo.siblings_of(3).empty());
}

TEST(TopologyTest, FromParentsThreeLevels) {
  // 0,1 -> 2 -> 3 (chain of parents).
  const Topology topo = Topology::from_parents(
      TopologyKind::kHierarchical,
      {ProxyId{2}, ProxyId{2}, ProxyId{3}, std::nullopt});
  EXPECT_EQ(topo.client_facing(), (std::vector<ProxyId>{0, 1}));
  EXPECT_EQ(topo.parent_of(2), ProxyId{3});
  EXPECT_EQ(topo.siblings_of(0), (std::vector<ProxyId>{1}));
}

TEST(TopologyTest, RejectsBadInputs) {
  EXPECT_THROW(Topology::distributed(0), std::invalid_argument);
  EXPECT_THROW(Topology::two_level(0), std::invalid_argument);
  // Self-parent.
  EXPECT_THROW(Topology::from_parents(TopologyKind::kHierarchical, {ProxyId{0}}),
               std::invalid_argument);
  // Out of range parent.
  EXPECT_THROW(Topology::from_parents(TopologyKind::kHierarchical, {ProxyId{5}}),
               std::invalid_argument);
  // Cycle: 0 -> 1 -> 0.
  EXPECT_THROW(
      Topology::from_parents(TopologyKind::kHierarchical, {ProxyId{1}, ProxyId{0}}),
      std::invalid_argument);
  // Bad proxy id in queries.
  const Topology topo = Topology::distributed(2);
  EXPECT_THROW((void)topo.siblings_of(9), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
