#include "group/cache_group.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

GroupConfig small_group(PlacementKind placement, std::size_t proxies = 2,
                        Bytes aggregate = 8 * kKiB) {
  GroupConfig config;
  config.num_proxies = proxies;
  config.aggregate_capacity = aggregate;
  config.placement = placement;
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

// A user pinned to a given proxy, found by probing the stable hash.
UserId user_on(const CacheGroup& group, ProxyId proxy) {
  for (UserId u = 0; u < 10000; ++u) {
    if (group.home_proxy(u) == proxy) return u;
  }
  throw std::runtime_error("no user maps to proxy");
}

TEST(CacheGroupTest, CapacitySplitEquallyAmongCaches) {
  CacheGroup group(small_group(PlacementKind::kEa, 4, 8 * kKiB));
  for (ProxyId p = 0; p < 4; ++p) {
    EXPECT_EQ(group.proxy(p).store().capacity(), 2 * kKiB);
  }
}

TEST(CacheGroupTest, HierarchicalRootGetsEqualShare) {
  GroupConfig config = small_group(PlacementKind::kEa, 4, 10 * kKiB);
  config.topology = TopologyKind::kHierarchical;
  CacheGroup group(config);
  EXPECT_EQ(group.num_proxies(), 5u);
  for (ProxyId p = 0; p < 5; ++p) {
    EXPECT_EQ(group.proxy(p).store().capacity(), 2 * kKiB);
  }
}

TEST(CacheGroupTest, TooSmallCapacityThrows) {
  GroupConfig config = small_group(PlacementKind::kEa, 4, 2);
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(CacheGroupTest, HomeProxyIsStable) {
  CacheGroup group(small_group(PlacementKind::kEa, 4));
  for (UserId u = 0; u < 100; ++u) {
    EXPECT_EQ(group.home_proxy(u), group.home_proxy(u));
    EXPECT_LT(group.home_proxy(u), 4u);
  }
}

TEST(CacheGroupTest, FirstRequestIsMissThenLocalHit) {
  CacheGroup group(small_group(PlacementKind::kAdHoc));
  const UserId u = user_on(group, 0);
  EXPECT_EQ(group.serve(req(0, u, 1)), RequestOutcome::kMiss);
  EXPECT_EQ(group.serve(req(1, u, 1)), RequestOutcome::kLocalHit);
  EXPECT_EQ(group.metrics().total_requests(), 2u);
  EXPECT_EQ(group.metrics().count(RequestOutcome::kMiss), 1u);
  EXPECT_EQ(group.metrics().count(RequestOutcome::kLocalHit), 1u);
}

TEST(CacheGroupTest, CrossProxyRequestIsRemoteHit) {
  CacheGroup group(small_group(PlacementKind::kAdHoc));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  EXPECT_EQ(group.serve(req(0, u0, 1)), RequestOutcome::kMiss);
  EXPECT_EQ(group.serve(req(1, u1, 1)), RequestOutcome::kRemoteHit);
}

TEST(CacheGroupTest, AdHocReplicatesOnRemoteHit) {
  CacheGroup group(small_group(PlacementKind::kAdHoc));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(0, u0, 1));
  group.serve(req(1, u1, 1));
  // Ad-hoc: both proxies now hold document 1.
  EXPECT_TRUE(group.proxy(0).store().contains(1));
  EXPECT_TRUE(group.proxy(1).store().contains(1));
  EXPECT_EQ(group.total_resident_copies(), 2u);
  EXPECT_EQ(group.unique_resident_documents(), 1u);
  EXPECT_DOUBLE_EQ(group.replication_factor(), 2.0);
}

TEST(CacheGroupTest, ColdEaGroupAlsoReplicates) {
  // Both caches cold -> infinite ages -> tie -> requester stores, exactly
  // like ad-hoc (the cold-start guarantee).
  CacheGroup group(small_group(PlacementKind::kEa));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(0, u0, 1));
  EXPECT_EQ(group.serve(req(1, u1, 1)), RequestOutcome::kRemoteHit);
  EXPECT_TRUE(group.proxy(1).store().contains(1));
}

TEST(CacheGroupTest, EaDeclinesReplicationUnderContention) {
  // Heat up proxy 1's contention (low expiration age) while proxy 0 stays
  // cold, then have a proxy-1 user fetch a document resident at proxy 0:
  // the requester (low EA) must NOT store a copy.
  CacheGroup group(small_group(PlacementKind::kEa, 2, 4 * kKiB));  // 2KiB each
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);

  // Proxy 0 caches document 1 at t=0.
  group.serve(req(0, u0, 1, 512));

  // Proxy 1 churns through one-shot documents, forcing evictions with tiny
  // lifetimes (high contention -> low, finite expiration age).
  for (int i = 0; i < 40; ++i) {
    group.serve(req(1 + i, u1, 1000 + static_cast<DocumentId>(i), 512));
  }
  ASSERT_FALSE(group.proxy(1).expiration_age(at(60)).is_infinite());

  // Proxy 0 has evicted nothing: its age is still infinite.
  ASSERT_TRUE(group.proxy(0).expiration_age(at(60)).is_infinite());
  ASSERT_TRUE(group.proxy(0).store().contains(1));

  const auto outcome = group.serve(req(60, u1, 1, 512));
  EXPECT_EQ(outcome, RequestOutcome::kRemoteHit);
  EXPECT_FALSE(group.proxy(1).store().contains(1))
      << "EA requester with lower expiration age must not replicate";
  EXPECT_GE(group.proxy(1).stats().copies_declined, 1u);
}

TEST(CacheGroupTest, MessageCountsIdenticalAcrossSchemes) {
  // The paper's no-overhead claim: same trace => same number of ICP and
  // HTTP messages under both schemes (only piggyback bytes differ).
  const auto run = [](PlacementKind kind) {
    CacheGroup group(small_group(kind, 4, 16 * kKiB));
    UserId users[4];
    for (ProxyId p = 0; p < 4; ++p) users[p] = user_on(group, p);
    std::int64_t t = 0;
    for (int round = 0; round < 30; ++round) {
      for (ProxyId p = 0; p < 4; ++p) {
        group.serve(req(++t, users[p], static_cast<DocumentId>(round % 7), 512));
      }
    }
    return group.transport_stats();
  };
  const TransportStats adhoc = run(PlacementKind::kAdHoc);
  const TransportStats ea = run(PlacementKind::kEa);
  EXPECT_EQ(adhoc.icp_queries, ea.icp_queries);
  EXPECT_EQ(adhoc.icp_replies, ea.icp_replies);
  EXPECT_EQ(adhoc.http_requests, ea.http_requests);
  EXPECT_EQ(adhoc.http_responses, ea.http_responses);
  EXPECT_EQ(adhoc.piggyback_bytes, 0u);
  EXPECT_GT(ea.piggyback_bytes, 0u);
}

TEST(CacheGroupTest, IcpFanOutCountsSiblings) {
  CacheGroup group(small_group(PlacementKind::kEa, 4, 16 * kKiB));
  const UserId u = user_on(group, 0);
  group.serve(req(0, u, 1));  // local miss -> 3 ICP queries + 3 replies
  EXPECT_EQ(group.transport_stats().icp_queries, 3u);
  EXPECT_EQ(group.transport_stats().icp_replies, 3u);
  group.serve(req(1, u, 1));  // local hit -> no new ICP traffic
  EXPECT_EQ(group.transport_stats().icp_queries, 3u);
}

TEST(CacheGroupTest, HierarchicalMissGoesThroughParent) {
  GroupConfig config = small_group(PlacementKind::kEa, 2, 12 * kKiB);
  config.topology = TopologyKind::kHierarchical;
  CacheGroup group(config);
  const UserId u = user_on(group, 0);

  EXPECT_EQ(group.serve(req(0, u, 1, 512)), RequestOutcome::kMiss);
  // Parent (root, id 2) was cold -> infinite age; requester cold too ->
  // strict parent rule fails, requester tie rule stores: leaf has it,
  // root does not.
  EXPECT_TRUE(group.proxy(0).store().contains(1));
  EXPECT_FALSE(group.proxy(2).store().contains(1));
  EXPECT_EQ(group.transport_stats().origin_fetches, 1u);
  // ICP went to sibling leaf and parent.
  EXPECT_EQ(group.transport_stats().icp_queries, 2u);
}

TEST(CacheGroupTest, HierarchicalParentHitIsRemoteHit) {
  GroupConfig config = small_group(PlacementKind::kAdHoc, 2, 12 * kKiB);
  config.topology = TopologyKind::kHierarchical;
  CacheGroup group(config);
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);

  group.serve(req(0, u0, 1, 512));  // ad-hoc: parent also stores on the way
  EXPECT_TRUE(group.proxy(2).store().contains(1));
  EXPECT_EQ(group.serve(req(1, u1, 1, 512)), RequestOutcome::kRemoteHit);
}

TEST(CacheGroupTest, MetricsLatencyUsesConfiguredModel) {
  GroupConfig config = small_group(PlacementKind::kAdHoc);
  config.latency.miss = msec(1000);
  config.latency.local_hit = msec(10);
  CacheGroup group(config);
  const UserId u = user_on(group, 0);
  group.serve(req(0, u, 1));
  group.serve(req(1, u, 1));
  EXPECT_EQ(group.metrics().measured_average_latency(), msec(505));
}

TEST(CacheGroupTest, AverageExpirationAgeInfiniteWhenNoEvictions) {
  CacheGroup group(small_group(PlacementKind::kEa));
  EXPECT_TRUE(group.average_cache_expiration_age().is_infinite());
}

TEST(CacheGroupTest, ReplicationFactorZeroWhenEmpty) {
  CacheGroup group(small_group(PlacementKind::kEa));
  EXPECT_DOUBLE_EQ(group.replication_factor(), 0.0);
}

}  // namespace
}  // namespace eacache
