#include "group/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

namespace eacache {
namespace {

TEST(HashRingTest, RejectsZeroVirtualNodes) {
  EXPECT_THROW(HashRing(0), std::invalid_argument);
}

TEST(HashRingTest, EmptyRingThrows) {
  HashRing ring;
  EXPECT_THROW((void)ring.home_of(1), std::logic_error);
}

TEST(HashRingTest, SingleProxyOwnsEverything) {
  HashRing ring;
  ring.add_proxy(3);
  for (DocumentId d = 0; d < 100; ++d) EXPECT_EQ(ring.home_of(d), 3u);
}

TEST(HashRingTest, DuplicateAddThrows) {
  HashRing ring;
  ring.add_proxy(1);
  EXPECT_THROW(ring.add_proxy(1), std::logic_error);
}

TEST(HashRingTest, RemoveAbsentReturnsFalse) {
  HashRing ring;
  EXPECT_FALSE(ring.remove_proxy(7));
  ring.add_proxy(7);
  EXPECT_TRUE(ring.remove_proxy(7));
  EXPECT_FALSE(ring.contains(7));
  EXPECT_EQ(ring.num_proxies(), 0u);
}

TEST(HashRingTest, HomesAreDeterministic) {
  HashRing a, b;
  for (ProxyId p = 0; p < 8; ++p) {
    a.add_proxy(p);
    b.add_proxy(p);
  }
  for (DocumentId d = 0; d < 1000; ++d) EXPECT_EQ(a.home_of(d), b.home_of(d));
}

TEST(HashRingTest, LoadIsRoughlyBalanced) {
  HashRing ring(128);
  constexpr std::size_t kProxies = 4;
  for (ProxyId p = 0; p < kProxies; ++p) ring.add_proxy(p);
  std::map<ProxyId, int> counts;
  constexpr int kDocs = 40000;
  for (DocumentId d = 0; d < kDocs; ++d) ++counts[ring.home_of(d)];
  for (const auto& [proxy, count] : counts) {
    // Each proxy expects 10000; 128 virtual nodes keep imbalance modest.
    EXPECT_GT(count, kDocs / kProxies / 2) << "proxy " << proxy;
    EXPECT_LT(count, kDocs / kProxies * 2) << "proxy " << proxy;
  }
}

TEST(HashRingTest, RemovalOnlyRemapsTheRemovedProxysDocuments) {
  // THE consistent-hashing property: documents homed elsewhere keep their
  // home when a proxy leaves.
  HashRing ring;
  for (ProxyId p = 0; p < 5; ++p) ring.add_proxy(p);
  std::map<DocumentId, ProxyId> before;
  for (DocumentId d = 0; d < 5000; ++d) before[d] = ring.home_of(d);
  ring.remove_proxy(2);
  for (DocumentId d = 0; d < 5000; ++d) {
    if (before[d] != 2) {
      EXPECT_EQ(ring.home_of(d), before[d]) << "doc " << d << " moved needlessly";
    } else {
      EXPECT_NE(ring.home_of(d), 2u);
    }
  }
}

TEST(HashRingTest, AdditionOnlyStealsFromOthers) {
  HashRing ring;
  for (ProxyId p = 0; p < 4; ++p) ring.add_proxy(p);
  std::map<DocumentId, ProxyId> before;
  for (DocumentId d = 0; d < 5000; ++d) before[d] = ring.home_of(d);
  ring.add_proxy(9);
  int moved = 0;
  for (DocumentId d = 0; d < 5000; ++d) {
    const ProxyId now_home = ring.home_of(d);
    if (now_home != before[d]) {
      EXPECT_EQ(now_home, 9u) << "doc " << d << " moved between old proxies";
      ++moved;
    }
  }
  // The newcomer takes roughly 1/5 of the space.
  EXPECT_GT(moved, 500);
  EXPECT_LT(moved, 2000);
}

TEST(HashRingTest, SuccessorsAreDistinctAndStartAtHome) {
  HashRing ring;
  for (ProxyId p = 0; p < 6; ++p) ring.add_proxy(p);
  for (DocumentId d = 0; d < 200; ++d) {
    const auto successors = ring.successors_of(d, 3);
    ASSERT_EQ(successors.size(), 3u);
    EXPECT_EQ(successors[0], ring.home_of(d));
    const std::set<ProxyId> unique(successors.begin(), successors.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(HashRingTest, SuccessorsCappedByRingSize) {
  HashRing ring;
  ring.add_proxy(0);
  ring.add_proxy(1);
  EXPECT_EQ(ring.successors_of(5, 10).size(), 2u);
  EXPECT_TRUE(ring.successors_of(5, 0).empty());
}

}  // namespace
}  // namespace eacache
