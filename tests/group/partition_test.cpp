// Topology partitioner contract (group/partition.h): deterministic,
// balanced, connectivity-preserving cuts. The sharded engine's
// shards=1-vs-N byte-identity proof leans on every property pinned here.
#include "group/partition.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

namespace eacache {
namespace {

/// Every proxy appears in exactly one members[] list, lists are ascending,
/// and shard_of agrees with members — the partition is a partition.
void expect_well_formed(const Topology& topology, const TopologyPartition& partition) {
  ASSERT_EQ(partition.members.size(), partition.shards);
  ASSERT_EQ(partition.shard_of.size(), topology.num_proxies());
  std::set<ProxyId> seen;
  for (std::size_t s = 0; s < partition.members.size(); ++s) {
    ASSERT_FALSE(partition.members[s].empty()) << "shard " << s << " empty";
    for (std::size_t i = 0; i < partition.members[s].size(); ++i) {
      const ProxyId p = partition.members[s][i];
      EXPECT_EQ(partition.shard_of[p], s);
      EXPECT_TRUE(seen.insert(p).second) << "proxy " << p << " assigned twice";
      if (i > 0) {
        EXPECT_LT(partition.members[s][i - 1], p) << "members not ascending";
      }
    }
  }
  EXPECT_EQ(seen.size(), topology.num_proxies());
}

TEST(PartitionTest, DistributedBlocksAreContiguousAndBalanced) {
  const Topology topology = Topology::distributed(8);
  const TopologyPartition partition = partition_topology(topology, 3);
  expect_well_formed(topology, partition);
  ASSERT_EQ(partition.shards, 3u);
  // 8 client-facing proxies over 3 shards: sizes within one of each other.
  std::size_t smallest = topology.num_proxies(), largest = 0;
  for (const auto& members : partition.members) {
    smallest = std::min(smallest, members.size());
    largest = std::max(largest, members.size());
  }
  EXPECT_LE(largest - smallest, 1u);
  // Contiguous id blocks: each shard's ids form a run with no gaps.
  for (const auto& members : partition.members) {
    EXPECT_EQ(members.back() - members.front() + 1, members.size());
  }
}

TEST(PartitionTest, SingleShardTakesEverything) {
  const Topology topology = Topology::two_level(6);
  const TopologyPartition partition = partition_topology(topology, 1);
  expect_well_formed(topology, partition);
  EXPECT_EQ(partition.shards, 1u);
  EXPECT_EQ(partition.members[0].size(), topology.num_proxies());
}

TEST(PartitionTest, ShardCountClampsToClientFacingProxies) {
  const Topology topology = Topology::distributed(4);
  const TopologyPartition partition = partition_topology(topology, 16);
  expect_well_formed(topology, partition);
  EXPECT_EQ(partition.shards, 4u);  // a shard with no leaf never admits
}

TEST(PartitionTest, InternalCachesFollowTheirLowestLeaf) {
  // Three-level tree: leaves 0..7 under mid caches 8,9 (four each) under
  // root 10. Internal caches must share a shard with their lowest-id
  // client-facing descendant so every parent hop has one local child.
  std::vector<std::optional<ProxyId>> parents(11);
  for (ProxyId leaf = 0; leaf < 8; ++leaf) parents[leaf] = leaf < 4 ? ProxyId{8} : ProxyId{9};
  parents[8] = 10;
  parents[9] = 10;
  parents[10] = std::nullopt;
  const Topology topology = Topology::from_parents(TopologyKind::kHierarchical, parents);
  const TopologyPartition partition = partition_topology(topology, 2);
  expect_well_formed(topology, partition);
  EXPECT_EQ(partition.shard_of[8], partition.shard_of[0]);   // mid over leaves 0..3
  EXPECT_EQ(partition.shard_of[9], partition.shard_of[4]);   // mid over leaves 4..7
  EXPECT_EQ(partition.shard_of[10], partition.shard_of[0]);  // root follows leaf 0
}

TEST(PartitionTest, DeterministicAcrossRepeatedCalls) {
  const Topology topology = Topology::two_level(13);
  const TopologyPartition first = partition_topology(topology, 5);
  for (int i = 0; i < 3; ++i) {
    const TopologyPartition again = partition_topology(topology, 5);
    EXPECT_EQ(again.shards, first.shards);
    EXPECT_EQ(again.shard_of, first.shard_of);
    EXPECT_EQ(again.members, first.members);
  }
}

TEST(PartitionTest, ZeroShardsThrows) {
  EXPECT_THROW((void)partition_topology(Topology::distributed(4), 0), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
