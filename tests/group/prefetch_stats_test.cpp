#include <gtest/gtest.h>

#include "group/cache_group.h"

namespace eacache {
namespace {

TEST(PrefetchStatsTest, WastedIsTheUnaccountedRemainder) {
  PrefetchStats stats;
  stats.issued = 10;
  stats.useful = 6;
  stats.still_pending = 3;
  EXPECT_EQ(stats.wasted(), 1u);

  stats.still_pending = 4;  // issued == useful + still_pending: nothing wasted
  EXPECT_EQ(stats.wasted(), 0u);
}

TEST(PrefetchStatsTest, ZeroedStatsWasteNothing) {
  const PrefetchStats stats;
  EXPECT_EQ(stats.wasted(), 0u);
}

// issued >= useful + still_pending is a counter invariant: every issued
// prefetch resolves to exactly one of useful/wasted/pending. A violation
// asserts in debug builds; release builds clamp to zero instead of letting
// the unsigned subtraction wrap to ~2^64 "wasted" prefetches.
TEST(PrefetchStatsTest, InvariantViolationIsGuarded) {
  PrefetchStats corrupt;
  corrupt.issued = 1;
  corrupt.useful = 3;
  EXPECT_DEBUG_DEATH((void)corrupt.wasted(), "issued >= useful");
#ifdef NDEBUG
  EXPECT_EQ(corrupt.wasted(), 0u);
#endif
}

}  // namespace
}  // namespace eacache
