// Group behaviour under the consistent-hashing (CARP-style) routing
// baseline.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

GroupConfig hash_group(std::size_t proxies = 4, Bytes aggregate = 64 * kKiB) {
  GroupConfig config;
  config.num_proxies = proxies;
  config.aggregate_capacity = aggregate;
  config.placement = PlacementKind::kAdHoc;
  config.routing = RoutingMode::kHashPartition;
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

TEST(HashRoutingTest, RejectsIncompatibleConfigs) {
  GroupConfig config = hash_group();
  config.placement = PlacementKind::kEa;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
  config = hash_group();
  config.topology = TopologyKind::kHierarchical;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(HashRoutingTest, NeverReplicates) {
  CacheGroup group(hash_group());
  for (int i = 0; i < 500; ++i) {
    group.serve(req(i + 1, static_cast<UserId>(i % 16), static_cast<DocumentId>(i % 40)));
    ASSERT_LE(group.replication_factor(), 1.0 + 1e-12);
  }
  EXPECT_EQ(group.total_resident_copies(), group.unique_resident_documents());
}

TEST(HashRoutingTest, DocumentLivesAtItsRingHome) {
  CacheGroup group(hash_group());
  HashRing reference(64);
  for (ProxyId p = 0; p < 4; ++p) reference.add_proxy(p);
  for (int i = 0; i < 200; ++i) {
    const auto doc = static_cast<DocumentId>(i);
    group.serve(req(i + 1, static_cast<UserId>(i % 8), doc));
    const ProxyId home = reference.home_of(doc);
    for (ProxyId p = 0; p < 4; ++p) {
      if (group.proxy(p).store().contains(doc)) {
        EXPECT_EQ(p, home);
      }
    }
  }
}

TEST(HashRoutingTest, SecondRequestIsAHitSomewhere) {
  CacheGroup group(hash_group());
  EXPECT_EQ(group.serve(req(1, 0, 42)), RequestOutcome::kMiss);
  const RequestOutcome second = group.serve(req(2, 1, 42));
  EXPECT_NE(second, RequestOutcome::kMiss);
}

TEST(HashRoutingTest, NoIcpTraffic) {
  CacheGroup group(hash_group());
  for (int i = 0; i < 100; ++i) {
    group.serve(req(i + 1, static_cast<UserId>(i % 8), static_cast<DocumentId>(i % 20)));
  }
  EXPECT_EQ(group.transport_stats().icp_queries, 0u);
  EXPECT_EQ(group.transport_stats().digest_publications, 0u);
  EXPECT_GT(group.transport_stats().http_requests, 0u);
}

TEST(HashRoutingTest, OutcomeAccountingHolds) {
  SyntheticTraceConfig workload;
  workload.num_requests = 10000;
  workload.num_documents = 800;
  workload.num_users = 32;
  workload.span = hours(2);
  const Trace trace = generate_synthetic_trace(workload);
  const SimulationResult result = run_simulation(trace, hash_group(4, 512 * kKiB));
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_EQ(result.metrics.count(RequestOutcome::kLocalHit) +
                result.metrics.count(RequestOutcome::kRemoteHit) +
                result.metrics.count(RequestOutcome::kMiss),
            trace.size());
  EXPECT_EQ(result.transport.origin_fetches, result.metrics.count(RequestOutcome::kMiss));
}

TEST(HashRoutingTest, MostHitsAreRemoteInALargeGroup) {
  // With N caches a random requester is the home for ~1/N of documents, so
  // hash routing turns most hits into remote hits — its classic latency
  // weakness versus replicating schemes.
  SyntheticTraceConfig workload;
  workload.num_requests = 20000;
  workload.num_documents = 1500;
  workload.num_users = 64;
  workload.span = hours(4);
  const Trace trace = generate_synthetic_trace(workload);
  const SimulationResult result = run_simulation(trace, hash_group(8, 4 * kMiB));
  EXPECT_GT(result.metrics.remote_hit_rate(), 3.0 * result.metrics.local_hit_rate());
}

TEST(HashRoutingTest, BeatsAdHocOnHitRateUnderContention) {
  // Zero replication = maximal unique documents: under heavy contention the
  // partitioned group should hold MORE unique documents (and usually hit
  // more) than replicating ad-hoc.
  SyntheticTraceConfig workload;
  workload.num_requests = 30000;
  workload.num_documents = 3000;
  workload.num_users = 64;
  workload.span = hours(6);
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig cooperative;
  cooperative.num_proxies = 4;
  cooperative.aggregate_capacity = 512 * kKiB;
  cooperative.placement = PlacementKind::kAdHoc;
  const SimulationResult adhoc = run_simulation(trace, cooperative);
  const SimulationResult hashed =
      run_simulation(trace, hash_group(4, 512 * kKiB));
  EXPECT_GE(hashed.unique_resident_documents, adhoc.unique_resident_documents);
  EXPECT_GT(hashed.metrics.hit_rate(), adhoc.metrics.hit_rate() - 0.01);
}

}  // namespace
}  // namespace eacache
