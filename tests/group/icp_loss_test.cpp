// Best-effort UDP: lost ICP exchanges look like peer misses and trigger
// duplicate origin fetches.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace loss_trace() {
  SyntheticTraceConfig config;
  config.num_requests = 20000;
  config.num_documents = 1500;
  config.num_users = 48;
  config.span = hours(6);
  return generate_synthetic_trace(config);
}

GroupConfig loss_group(double loss) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  config.icp_loss_probability = loss;
  return config;
}

TEST(IcpLossTest, ValidatesProbability) {
  EXPECT_THROW(CacheGroup{loss_group(-0.1)}, std::invalid_argument);
  EXPECT_THROW(CacheGroup{loss_group(1.1)}, std::invalid_argument);
}

TEST(IcpLossTest, ZeroLossIsExactlyTheBaseline) {
  const Trace trace = loss_trace();
  const SimulationResult baseline = run_simulation(trace, loss_group(0.0));
  EXPECT_EQ(baseline.transport.icp_losses, 0u);
  EXPECT_EQ(baseline.transport.icp_queries, baseline.transport.icp_replies);
}

TEST(IcpLossTest, TotalLossKillsRemoteHits) {
  const Trace trace = loss_trace();
  const SimulationResult result = run_simulation(trace, loss_group(1.0));
  EXPECT_EQ(result.metrics.count(RequestOutcome::kRemoteHit), 0u);
  EXPECT_EQ(result.transport.icp_replies, 0u);
  EXPECT_EQ(result.transport.icp_losses, result.transport.icp_queries);
  // The group still serves everything (locally or from the origin).
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
}

TEST(IcpLossTest, QueriesSplitIntoRepliesAndLosses) {
  const Trace trace = loss_trace();
  const SimulationResult result = run_simulation(trace, loss_group(0.3));
  EXPECT_GT(result.transport.icp_losses, 0u);
  EXPECT_EQ(result.transport.icp_queries,
            result.transport.icp_replies + result.transport.icp_losses);
}

TEST(IcpLossTest, LossRateIsRoughlyHonoured) {
  const Trace trace = loss_trace();
  const SimulationResult result = run_simulation(trace, loss_group(0.25));
  const double observed = static_cast<double>(result.transport.icp_losses) /
                          static_cast<double>(result.transport.icp_queries);
  EXPECT_NEAR(observed, 0.25, 0.02);
}

TEST(IcpLossTest, LossDegradesHitRateMonotonically) {
  const Trace trace = loss_trace();
  const double none = run_simulation(trace, loss_group(0.0)).metrics.hit_rate();
  const double some = run_simulation(trace, loss_group(0.3)).metrics.hit_rate();
  const double all = run_simulation(trace, loss_group(1.0)).metrics.hit_rate();
  EXPECT_GT(none, some);
  EXPECT_GT(some, all);
}

TEST(IcpLossTest, DeterministicGivenNetworkSeed) {
  const Trace trace = loss_trace();
  const SimulationResult a = run_simulation(trace, loss_group(0.3));
  const SimulationResult b = run_simulation(trace, loss_group(0.3));
  EXPECT_EQ(a.transport.icp_losses, b.transport.icp_losses);
  EXPECT_DOUBLE_EQ(a.metrics.hit_rate(), b.metrics.hit_rate());

  GroupConfig reseeded = loss_group(0.3);
  reseeded.network_seed = 12345;
  const SimulationResult c = run_simulation(trace, reseeded);
  EXPECT_NE(a.transport.icp_losses, c.transport.icp_losses);
}

TEST(IcpLossTest, DigestModeIsUnaffected) {
  const Trace trace = loss_trace();
  GroupConfig config = loss_group(0.9);
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 1024;
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.transport.icp_losses, 0u);  // no ICP traffic to lose
}

}  // namespace
}  // namespace eacache
