#include "metrics/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace eacache {
namespace {

std::string render(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  EXPECT_TRUE(json.complete());
  return out.str();
}

TEST(JsonWriterTest, EmptyContainers) {
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_object().end_object(); }), "{}");
  EXPECT_EQ(render([](JsonWriter& j) { j.begin_array().end_array(); }), "[]");
}

TEST(JsonWriterTest, ScalarsAndCommas) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value(std::uint64_t{1});
    j.value(2.5);
    j.value("three");
    j.value(true);
    j.null();
    j.end_array();
  });
  EXPECT_EQ(text, "[1,2.5,\"three\",true,null]");
}

TEST(JsonWriterTest, NestedObjects) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.field("a", std::uint64_t{1});
    j.key("b").begin_object().field("c", "d").end_object();
    j.key("list").begin_array().value(std::int64_t{-1}).end_array();
    j.end_object();
  });
  EXPECT_EQ(text, R"({"a":1,"b":{"c":"d"},"list":[-1]})");
}

TEST(JsonWriterTest, StringEscaping) {
  const std::string text = render([](JsonWriter& j) {
    j.value(std::string_view("quote\" slash\\ newline\n tab\t ctrl\x01"));
  });
  EXPECT_EQ(text, "\"quote\\\" slash\\\\ newline\\n tab\\t ctrl\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(render([](JsonWriter& j) { j.value(std::nan("")); }), "null");
  EXPECT_EQ(render([](JsonWriter& j) { j.value(INFINITY); }), "null");
}

TEST(JsonWriterTest, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    EXPECT_THROW(j.end_object(), std::logic_error);
  }
  {
    JsonWriter j(out);
    j.begin_object();
    EXPECT_THROW(j.value("no key"), std::logic_error);
    EXPECT_THROW(j.end_array(), std::logic_error);
    j.key("k");
    EXPECT_THROW(j.key("second key"), std::logic_error);
    EXPECT_THROW(j.end_object(), std::logic_error);  // dangling key
  }
  {
    JsonWriter j(out);
    EXPECT_THROW(j.key("k"), std::logic_error);  // key at root
  }
  {
    JsonWriter j(out);
    j.value("root");
    EXPECT_THROW(j.value("second root"), std::logic_error);
  }
}

TEST(JsonWriterTest, CompleteTracking) {
  std::ostringstream out;
  JsonWriter j(out);
  EXPECT_FALSE(j.complete());
  j.begin_object();
  EXPECT_FALSE(j.complete());
  j.end_object();
  EXPECT_TRUE(j.complete());
}

}  // namespace
}  // namespace eacache
