#include "metrics/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace eacache {
namespace {

TEST(TextTableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTableTest, PrintsAlignedColumns) {
  TextTable table({"size", "hit rate"});
  table.add_row({"100KiB", "31.2%"});
  table.add_row({"1GiB", "74%"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| size   | hit rate |"), std::string::npos);
  EXPECT_NE(text.find("| 100KiB | 31.2%    |"), std::string::npos);
  EXPECT_NE(text.find("+--------+----------+"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  table.add_row({"with,comma", "with\"quote"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TextTableTest, Counts) {
  TextTable table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.num_columns(), 1u);
  table.add_row({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(FormattersTest, Percent) {
  EXPECT_EQ(fmt_percent(0.3123), "31.23%");
  EXPECT_EQ(fmt_percent(0.5, 0), "50%");
  EXPECT_EQ(fmt_percent(1.0, 1), "100.0%");
}

TEST(FormattersTest, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

}  // namespace
}  // namespace eacache
