#include "metrics/ascii_chart.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

TEST(AsciiChartTest, ValidatesGeometry) {
  EXPECT_THROW(AsciiChart(1, 10), std::invalid_argument);
  EXPECT_THROW(AsciiChart(10, 1), std::invalid_argument);
}

TEST(AsciiChartTest, EmptyChartThrows) {
  AsciiChart chart(20, 5);
  EXPECT_THROW((void)chart.render(), std::logic_error);
}

TEST(AsciiChartTest, EmptySeriesRejected) {
  AsciiChart chart(20, 5);
  EXPECT_THROW(chart.add_series("x", {}, '*'), std::invalid_argument);
}

TEST(AsciiChartTest, MismatchedLengthsThrow) {
  AsciiChart chart(20, 5);
  chart.add_series("a", {1, 2, 3}, 'a');
  chart.add_series("b", {1, 2}, 'b');
  EXPECT_THROW((void)chart.render(), std::logic_error);
}

TEST(AsciiChartTest, RendersMarkersAndLegend) {
  AsciiChart chart(21, 5);
  chart.add_series("rising", {0.0, 0.5, 1.0}, '*');
  const std::string text = chart.render();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("legend: *=rising"), std::string::npos);
  EXPECT_NE(text.find("1.00 |"), std::string::npos);
  EXPECT_NE(text.find("0.00 |"), std::string::npos);
}

TEST(AsciiChartTest, RisingSeriesClimbsRows) {
  AsciiChart chart(21, 5);
  chart.add_series("r", {0.0, 1.0}, '*');
  const std::string text = chart.render();
  // Top row holds the right-hand point, bottom plot row the left one.
  const std::size_t first_line_end = text.find('\n');
  const std::string top = text.substr(0, first_line_end);
  EXPECT_NE(top.find('*'), std::string::npos);
  EXPECT_GT(top.find('*'), 20u);  // right side of the 21-wide area (offset by labels)
}

TEST(AsciiChartTest, FixedRangeClampsOutliers) {
  AsciiChart chart(10, 4);
  chart.set_y_range(0.0, 1.0);
  chart.add_series("s", {-5.0, 0.5, 99.0}, 'o');
  const std::string text = chart.render();  // must not throw or misindex
  EXPECT_NE(text.find('o'), std::string::npos);
  EXPECT_THROW(chart.set_y_range(1.0, 1.0), std::invalid_argument);
}

TEST(AsciiChartTest, FlatSeriesGetsHeadroom) {
  AsciiChart chart(10, 4);
  chart.add_series("flat", {2.0, 2.0, 2.0}, '-');
  EXPECT_NO_THROW((void)chart.render());
}

TEST(AsciiChartTest, XLabelsPrinted) {
  AsciiChart chart(40, 4);
  chart.add_series("s", {1, 2, 3}, '*');
  chart.set_x_labels({"100KiB", "1MiB", "10MiB"});
  const std::string text = chart.render();
  EXPECT_NE(text.find("100KiB"), std::string::npos);
  EXPECT_NE(text.find("10MiB"), std::string::npos);
}

TEST(AsciiChartTest, MultipleSeriesShareTheArea) {
  AsciiChart chart(30, 6);
  chart.add_series("a", {0.1, 0.2, 0.3}, 'a');
  chart.add_series("b", {0.9, 0.8, 0.7}, 'b');
  const std::string text = chart.render();
  EXPECT_NE(text.find('a'), std::string::npos);
  EXPECT_NE(text.find('b'), std::string::npos);
  EXPECT_NE(text.find("a=a b=b"), std::string::npos);
}

}  // namespace
}  // namespace eacache
