#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eacache {
namespace {

TEST(GroupMetricsTest, EmptyIsAllZero) {
  GroupMetrics m;
  EXPECT_EQ(m.total_requests(), 0u);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.byte_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.miss_rate(), 0.0);
  EXPECT_EQ(m.measured_average_latency(), Duration::zero());
  EXPECT_DOUBLE_EQ(m.estimated_average_latency_ms(LatencyModel{}), 0.0);
}

TEST(GroupMetricsTest, RatesPartitionToOne) {
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 100, msec(146));
  m.record(RequestOutcome::kRemoteHit, 100, msec(342));
  m.record(RequestOutcome::kRemoteHit, 100, msec(342));
  m.record(RequestOutcome::kMiss, 100, msec(2784));
  EXPECT_EQ(m.total_requests(), 4u);
  EXPECT_DOUBLE_EQ(m.local_hit_rate(), 0.25);
  EXPECT_DOUBLE_EQ(m.remote_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(m.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(m.local_hit_rate() + m.remote_hit_rate() + m.miss_rate(), 1.0);
}

TEST(GroupMetricsTest, ByteHitRateUsesBytes) {
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 1000, msec(1));
  m.record(RequestOutcome::kMiss, 3000, msec(1));
  EXPECT_DOUBLE_EQ(m.byte_hit_rate(), 0.25);
  EXPECT_EQ(m.bytes_requested(), 4000u);
  EXPECT_EQ(m.bytes(RequestOutcome::kLocalHit), 1000u);
  EXPECT_EQ(m.bytes(RequestOutcome::kMiss), 3000u);
}

TEST(GroupMetricsTest, MeasuredAverageLatency) {
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 1, msec(100));
  m.record(RequestOutcome::kMiss, 1, msec(300));
  EXPECT_EQ(m.measured_average_latency(), msec(200));
}

TEST(GroupMetricsTest, Equation6MatchesHandComputation) {
  // Paper Eq. 6 with the paper's constants. 50% local, 30% remote, 20% miss:
  // 0.5*146 + 0.3*342 + 0.2*2784 = 73 + 102.6 + 556.8 = 732.4 ms.
  GroupMetrics m;
  for (int i = 0; i < 5; ++i) m.record(RequestOutcome::kLocalHit, 1, msec(0));
  for (int i = 0; i < 3; ++i) m.record(RequestOutcome::kRemoteHit, 1, msec(0));
  for (int i = 0; i < 2; ++i) m.record(RequestOutcome::kMiss, 1, msec(0));
  EXPECT_NEAR(m.estimated_average_latency_ms(LatencyModel::paper_defaults()), 732.4, 1e-9);
}

TEST(GroupMetricsTest, EstimatedEqualsMeasuredWhenModelDrivesRecording) {
  GroupMetrics m;
  const LatencyModel model;
  m.record(RequestOutcome::kLocalHit, 1, model.local_hit);
  m.record(RequestOutcome::kRemoteHit, 1, model.remote_hit);
  m.record(RequestOutcome::kMiss, 1, model.miss);
  m.record(RequestOutcome::kMiss, 1, model.miss);
  EXPECT_NEAR(m.estimated_average_latency_ms(model),
              static_cast<double>(m.measured_average_latency().count()), 1.0);
}

TEST(GroupMetricsTest, LatencyPercentiles) {
  GroupMetrics m;
  const LatencyModel model;  // 146 / 342 / 2784 ms
  for (int i = 0; i < 70; ++i) m.record(RequestOutcome::kLocalHit, 1, model.local_hit);
  for (int i = 0; i < 20; ++i) m.record(RequestOutcome::kRemoteHit, 1, model.remote_hit);
  for (int i = 0; i < 10; ++i) m.record(RequestOutcome::kMiss, 1, model.miss);
  // 10 ms bucket resolution: percentile returns the bucket's upper edge.
  EXPECT_NEAR(m.latency_percentile_ms(0.50), 150.0, 1e-9);
  EXPECT_NEAR(m.latency_percentile_ms(0.90), 350.0, 1e-9);
  EXPECT_NEAR(m.latency_percentile_ms(0.99), 2790.0, 1e-9);
  EXPECT_THROW((void)m.latency_percentile_ms(1.5), std::invalid_argument);
}

TEST(GroupMetricsTest, PercentileOfEmptyIsZero) {
  GroupMetrics m;
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(0.99), 0.0);
}

TEST(GroupMetricsTest, PercentilesSurviveMerge) {
  GroupMetrics a, b;
  for (int i = 0; i < 50; ++i) a.record(RequestOutcome::kLocalHit, 1, msec(100));
  for (int i = 0; i < 50; ++i) b.record(RequestOutcome::kMiss, 1, msec(2000));
  a.merge(b);
  // Exact bucket-boundary values land in [v, v+10): upper edge reported.
  EXPECT_NEAR(a.latency_percentile_ms(0.25), 110.0, 1e-9);
  EXPECT_NEAR(a.latency_percentile_ms(0.99), 2010.0, 1e-9);
}

TEST(GroupMetricsTest, OverflowLatencyClampsToTenSeconds) {
  GroupMetrics m;
  m.record(RequestOutcome::kMiss, 1, sec(60));
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(1.0), 10000.0);
}

TEST(GroupMetricsTest, PercentileRejectsOutOfRangeQuantiles) {
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 1, msec(100));
  EXPECT_THROW((void)m.latency_percentile_ms(-0.01), std::invalid_argument);
  EXPECT_THROW((void)m.latency_percentile_ms(1.01), std::invalid_argument);
  EXPECT_THROW((void)m.latency_percentile_ms(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)m.latency_percentile_ms(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(GroupMetricsTest, PercentileRejectsNaNQuantile) {
  // NaN fails every ordered comparison, so a naive `< 0 || > 1` guard lets
  // it through and the histogram scan returns its upper bound (10 s).
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 1, msec(100));
  EXPECT_THROW((void)m.latency_percentile_ms(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)m.latency_percentile_ms(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(GroupMetricsTest, PercentileBoundaryQuantiles) {
  GroupMetrics m;
  m.record(RequestOutcome::kLocalHit, 1, msec(100));
  m.record(RequestOutcome::kMiss, 1, msec(2000));
  // Quantile 0: the smallest L with P(latency < L) >= 0 is the floor.
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(0.0), 0.0);
  // Quantile 1: the upper edge of the bucket holding the maximum sample.
  EXPECT_NEAR(m.latency_percentile_ms(1.0), 2010.0, 1e-9);
}

TEST(GroupMetricsTest, EmptyPercentileIsZeroAtEveryQuantile) {
  GroupMetrics m;
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(1.0), 0.0);
}

TEST(GroupMetricsTest, OverflowBucketDominatesTailQuantiles) {
  GroupMetrics m;
  for (int i = 0; i < 90; ++i) m.record(RequestOutcome::kLocalHit, 1, msec(100));
  for (int i = 0; i < 10; ++i) m.record(RequestOutcome::kMiss, 1, sec(60));
  // The >10 s samples sit past the histogram range; quantiles that land
  // among them clamp to the 10'000 ms ceiling instead of disappearing.
  EXPECT_NEAR(m.latency_percentile_ms(0.90), 110.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(0.95), 10000.0);
  EXPECT_DOUBLE_EQ(m.latency_percentile_ms(1.0), 10000.0);
}

TEST(GroupMetricsTest, MergeAddsEverything) {
  GroupMetrics a, b;
  a.record(RequestOutcome::kLocalHit, 10, msec(5));
  b.record(RequestOutcome::kMiss, 20, msec(15));
  a.merge(b);
  EXPECT_EQ(a.total_requests(), 2u);
  EXPECT_EQ(a.count(RequestOutcome::kLocalHit), 1u);
  EXPECT_EQ(a.count(RequestOutcome::kMiss), 1u);
  EXPECT_EQ(a.bytes_requested(), 30u);
  EXPECT_EQ(a.measured_average_latency(), msec(10));
}

TEST(GroupMetricsTest, MergeWithEmptyIsIdentityBothWays) {
  GroupMetrics a, empty;
  a.record(RequestOutcome::kRemoteHit, 7, msec(42));
  a.merge(empty);
  EXPECT_EQ(a.total_requests(), 1u);
  EXPECT_DOUBLE_EQ(a.remote_hit_rate(), 1.0);

  GroupMetrics b;
  b.merge(a);
  EXPECT_EQ(b.total_requests(), 1u);
  EXPECT_EQ(b.bytes(RequestOutcome::kRemoteHit), 7u);
  EXPECT_EQ(b.measured_average_latency(), msec(42));
}

TEST(GroupMetricsTest, MergedRatesMatchRecordingEverythingInOne) {
  GroupMetrics shard_a, shard_b, combined;
  const auto feed = [](GroupMetrics& m, RequestOutcome outcome, int n) {
    for (int i = 0; i < n; ++i) m.record(outcome, 100, msec(10));
  };
  feed(shard_a, RequestOutcome::kLocalHit, 6);
  feed(shard_a, RequestOutcome::kMiss, 4);
  feed(shard_b, RequestOutcome::kRemoteHit, 8);
  feed(shard_b, RequestOutcome::kMiss, 2);
  feed(combined, RequestOutcome::kLocalHit, 6);
  feed(combined, RequestOutcome::kMiss, 4);
  feed(combined, RequestOutcome::kRemoteHit, 8);
  feed(combined, RequestOutcome::kMiss, 2);

  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.total_requests(), combined.total_requests());
  EXPECT_DOUBLE_EQ(shard_a.hit_rate(), combined.hit_rate());
  EXPECT_DOUBLE_EQ(shard_a.byte_hit_rate(), combined.byte_hit_rate());
  EXPECT_DOUBLE_EQ(shard_a.local_hit_rate(), combined.local_hit_rate());
  EXPECT_DOUBLE_EQ(shard_a.remote_hit_rate(), combined.remote_hit_rate());
  EXPECT_DOUBLE_EQ(shard_a.miss_rate(), combined.miss_rate());
  EXPECT_DOUBLE_EQ(shard_a.latency_percentile_ms(0.5),
                   combined.latency_percentile_ms(0.5));
}

}  // namespace
}  // namespace eacache
