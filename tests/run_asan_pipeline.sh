#!/bin/sh
# Runs the event-driven pipeline suites under AddressSanitizer+UBSan.
#
# The sanitizer binaries live in a separate build tree configured with
#   cmake -S . -B build-asan -DEACACHE_ASAN=ON -DEACACHE_UBSAN=ON -DEACACHE_WERROR=ON
#   cmake --build build-asan -j
# Registered in ctest with SKIP_RETURN_CODE 77: when the build-asan tree (or
# the binaries) are absent this script self-skips instead of failing, so the
# plain tier-1 run stays green on machines that never configured it.
#
# Why a dedicated pass: the pipeline is the one subsystem that keeps
# heap-allocated per-request state machines alive across event-queue
# callbacks (open_/pending_/joiners ownership transfers, lazy-cancelled
# timeout events), which is exactly the shape of code ASan exists for.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
asan_dir=${EACACHE_ASAN_BUILD_DIR:-"$repo_root/build-asan"}

if [ ! -x "$asan_dir/tests/test_sim" ] || [ ! -x "$asan_dir/tests/test_event" ] ||
   [ ! -x "$asan_dir/tests/test_group" ] || [ ! -x "$asan_dir/tests/test_validate" ]; then
  echo "asan_pipeline: no sanitizer build at $asan_dir (configure with -DEACACHE_ASAN=ON); skipping"
  exit 77
fi

if ! grep -q '^EACACHE_WERROR:BOOL=ON' "$asan_dir/CMakeCache.txt" 2>/dev/null; then
  echo "asan_pipeline: note: $asan_dir lacks EACACHE_WERROR=ON (recommended configure shown above)"
fi

export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

"$asan_dir/tests/test_event" --gtest_brief=1
"$asan_dir/tests/test_group" --gtest_filter='ConfigValidateTest.*' --gtest_brief=1
"$asan_dir/tests/test_sim" \
  --gtest_filter='PipelineTest.*:PipelineRegression.*:FailureInjectionTest.*' \
  --gtest_brief=1
# The invariant checker + differential fuzz harness (DESIGN.md §10): every
# fuzz arm allocates per-request pipeline state, so this is prime ASan food.
# A smaller corpus than the release default keeps the sanitizer run quick;
# override EACACHE_FUZZ_CASES for a deeper soak.
EACACHE_FUZZ_CASES=${EACACHE_FUZZ_CASES:-64} \
  "$asan_dir/tests/test_validate" --gtest_brief=1
# Workload-DSL battery (DESIGN.md §15): the streaming generator's chunk-heap
# and session-table churn is allocation-heavy by design. The bounded-memory
# test is filtered out — its operator new/delete replacement is compiled out
# under sanitizers (the sanitizer runtime owns the allocator) — and the fuzz
# corpus re-runs with the DSL trace mix armed.
if [ -x "$asan_dir/tests/test_workload" ]; then
  "$asan_dir/tests/test_workload" \
    --gtest_filter='-TraceSourceTest.StreamingMemoryBoundedByUniverse' \
    --gtest_brief=1
  EACACHE_FUZZ_CASES=32 EACACHE_FUZZ_WORKLOAD=1 \
    "$asan_dir/tests/test_validate" --gtest_filter='SimFuzzTest.*' --gtest_brief=1
else
  echo "asan_pipeline: note: $asan_dir/tests/test_workload not built; workload leg skipped"
fi
echo "asan_pipeline: all pipeline suites clean under ASan+UBSan"
