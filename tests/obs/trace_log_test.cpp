#include "obs/trace_log.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace eacache {
namespace {

SpanEvent make_event(std::uint64_t request, SpanKind kind) {
  SpanEvent event;
  event.request = request;
  event.kind = kind;
  return event;
}

TEST(TraceLogTest, DefaultConstructedIsDisabledAndRejectsEvents) {
  TraceLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.capacity(), 0u);
  log.record(make_event(1, SpanKind::kArrival));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLogTest, RecordsInOrderUntilCapacity) {
  TraceLog log(4);
  for (std::uint64_t i = 0; i < 3; ++i) log.record(make_event(i, SpanKind::kArrival));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
  const std::vector<SpanEvent> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].request, i);
}

TEST(TraceLogTest, RingOverwritesOldestFirst) {
  TraceLog log(3);
  for (std::uint64_t i = 0; i < 7; ++i) log.record(make_event(i, SpanKind::kArrival));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.recorded(), 7u);
  EXPECT_EQ(log.dropped(), 4u);
  const std::vector<SpanEvent> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].request, 4u);  // oldest surviving
  EXPECT_EQ(events[1].request, 5u);
  EXPECT_EQ(events[2].request, 6u);
}

TEST(TraceLogTest, SpanKindNamesAreStable) {
  // The JSONL "event" vocabulary is part of the documented schema.
  EXPECT_EQ(to_string(SpanKind::kArrival), "arrival");
  EXPECT_EQ(to_string(SpanKind::kLocalHit), "local_hit");
  EXPECT_EQ(to_string(SpanKind::kIcpProbe), "icp_probe");
  EXPECT_EQ(to_string(SpanKind::kIcpLoss), "icp_loss");
  EXPECT_EQ(to_string(SpanKind::kSiblingFetch), "sibling_fetch");
  EXPECT_EQ(to_string(SpanKind::kParentFetch), "parent_fetch");
  EXPECT_EQ(to_string(SpanKind::kOriginFetch), "origin_fetch");
  EXPECT_EQ(to_string(SpanKind::kPlacement), "placement");
  EXPECT_EQ(to_string(SpanKind::kComplete), "complete");
}

TEST(TraceLogTest, JsonlOmitsUnsetOptionalFields) {
  SpanEvent event;
  event.request = 7;
  event.at_ms = 1500;
  event.document = 42;
  event.proxy = 2;
  event.kind = SpanKind::kArrival;
  std::ostringstream out;
  write_span_jsonl(out, event);
  EXPECT_EQ(out.str(),
            R"({"request":7,"at_ms":1500,"proxy":2,"event":"arrival","doc":42})");
}

TEST(TraceLogTest, JsonlFlagKeyDependsOnKind) {
  const auto render = [](SpanKind kind, std::int8_t flag) {
    SpanEvent event;
    event.kind = kind;
    event.flag = flag;
    std::ostringstream out;
    write_span_jsonl(out, event);
    return out.str();
  };
  EXPECT_NE(render(SpanKind::kIcpProbe, 1).find("\"hit\":true"), std::string::npos);
  EXPECT_NE(render(SpanKind::kSiblingFetch, 0).find("\"found\":false"), std::string::npos);
  EXPECT_NE(render(SpanKind::kParentFetch, 1).find("\"found\":true"), std::string::npos);
  EXPECT_NE(render(SpanKind::kPlacement, 1).find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(render(SpanKind::kOriginFetch, 0).find("\"speculative\":false"),
            std::string::npos);
  EXPECT_NE(render(SpanKind::kLocalHit, 1).find("\"validated\":true"), std::string::npos);
}

TEST(TraceLogTest, JsonlCompleteCarriesOutcomeName) {
  SpanEvent event;
  event.kind = SpanKind::kComplete;
  for (const auto& [code, name] :
       std::vector<std::pair<std::int64_t, std::string>>{
           {0, "local-hit"}, {1, "remote-hit"}, {2, "miss"}}) {
    event.value = code;
    std::ostringstream out;
    write_span_jsonl(out, event);
    EXPECT_NE(out.str().find("\"outcome\":\"" + name + "\""), std::string::npos);
  }
}

TEST(TraceLogTest, JsonlInfiniteAgeSerializesAsString) {
  SpanEvent event;
  event.kind = SpanKind::kSiblingFetch;
  event.requester_ea_ms = std::numeric_limits<double>::infinity();
  event.responder_ea_ms = 2500.0;
  std::ostringstream out;
  write_span_jsonl(out, event);
  EXPECT_NE(out.str().find("\"requester_ea_ms\":\"inf\""), std::string::npos);
  EXPECT_NE(out.str().find("\"responder_ea_ms\":2500"), std::string::npos);
}

TEST(TraceLogTest, JsonlRunLabelLeadsAndIsEscaped) {
  SpanEvent event;
  std::ostringstream out;
  write_span_jsonl(out, event, "EA \"quoted\"\n");
  const std::string line = out.str();
  EXPECT_EQ(line.rfind("{\"run\":\"EA \\\"quoted\\\"\\n\",", 0), 0u) << line;
}

TEST(TraceLogTest, WriteJsonlEmitsOneLinePerEvent) {
  TraceLog log(8);
  log.record(make_event(0, SpanKind::kArrival));
  log.record(make_event(0, SpanKind::kComplete));
  std::ostringstream out;
  log.write_jsonl(out, "run-a");
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"run\":\"run-a\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
}

TEST(TraceLogTest, CopyIsASnapshot) {
  TraceLog original(4);
  original.record(make_event(1, SpanKind::kArrival));
  TraceLog snapshot = original;
  original.record(make_event(2, SpanKind::kComplete));
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(original.size(), 2u);
}

}  // namespace
}  // namespace eacache
