#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace eacache {
namespace {

TEST(MetricRegistryTest, CounterStartsAtZeroAndAccumulates) {
  MetricRegistry registry;
  const auto c = registry.counter("group.requests");
  EXPECT_TRUE(c.bound());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("group.requests"), 42u);
}

TEST(MetricRegistryTest, ReRegisteringReturnsSameSlot) {
  MetricRegistry registry;
  const auto a = registry.counter("proxy.0.local.hits");
  const auto b = registry.counter("proxy.0.local.hits");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(registry.counter_value("proxy.0.local.hits"), 7u);
  EXPECT_EQ(registry.counters().size(), 1u);
}

TEST(MetricRegistryTest, GaugeIsLastWriteWins) {
  MetricRegistry registry;
  const auto g = registry.gauge("proxy.0.resident_bytes");
  g.set(100.0);
  g.set(64.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("proxy.0.resident_bytes"), 64.5);
}

TEST(MetricRegistryTest, UnknownNamesReadAsZero) {
  MetricRegistry registry;
  EXPECT_EQ(registry.counter_value("no.such.counter"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("no.such.gauge"), 0.0);
}

TEST(MetricRegistryTest, NullHandlesSwallowEverything) {
  MetricRegistry::Counter counter;  // default-constructed = unbound
  MetricRegistry::Gauge gauge;
  MetricRegistry::HistogramHandle hist;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  EXPECT_FALSE(hist.bound());
  counter.inc();
  gauge.set(1.0);
  hist.observe(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricRegistryTest, DisabledRegistryHandsOutNullHandlesAndStaysEmpty) {
  MetricRegistry registry(/*enabled=*/false);
  EXPECT_FALSE(registry.enabled());
  const auto c = registry.counter("x");
  const auto g = registry.gauge("y");
  const auto h = registry.histogram("z", 0.0, 10.0, 10);
  EXPECT_FALSE(c.bound());
  EXPECT_FALSE(g.bound());
  EXPECT_FALSE(h.bound());
  c.inc();
  g.set(5.0);
  h.observe(1.0);
  EXPECT_TRUE(registry.empty());
}

TEST(MetricRegistryTest, HandlesSurviveManyLaterRegistrations) {
  MetricRegistry registry;
  const auto first = registry.counter("aaa.first");
  // Node-based storage: inserting hundreds more must not move the slot.
  for (int i = 0; i < 500; ++i) {
    registry.counter("filler." + std::to_string(i)).inc();
  }
  first.inc(9);
  EXPECT_EQ(registry.counter_value("aaa.first"), 9u);
}

TEST(MetricRegistryTest, HistogramObservationsLandInBuckets) {
  MetricRegistry registry;
  const auto h = registry.histogram("sizes", 0.0, 100.0, 10);
  h.observe(5.0);    // bucket 0
  h.observe(95.0);   // bucket 9
  h.observe(-1.0);   // underflow
  h.observe(100.0);  // overflow
  const Histogram& hist = registry.histograms().at("sizes");
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(9), 1u);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(MetricRegistryTest, HistogramReRegistrationChecksGeometry) {
  MetricRegistry registry;
  (void)registry.histogram("sizes", 0.0, 100.0, 10);
  EXPECT_NO_THROW((void)registry.histogram("sizes", 0.0, 100.0, 10));
  EXPECT_THROW((void)registry.histogram("sizes", 0.0, 200.0, 10), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("sizes", 0.0, 100.0, 20), std::invalid_argument);
}

TEST(MetricRegistryTest, ViewsIterateInSortedNameOrder) {
  MetricRegistry registry;
  registry.counter("zebra").inc();
  registry.counter("alpha").inc();
  registry.counter("mango").inc();
  std::vector<std::string> names;
  for (const auto& [name, value] : registry.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mango", "zebra"}));
}

TEST(MetricRegistryTest, MergeSumsCountersAndAdoptsNewNames) {
  MetricRegistry a, b;
  a.counter("shared").inc(10);
  b.counter("shared").inc(5);
  b.counter("only_b").inc(7);
  a.merge(b);
  EXPECT_EQ(a.counter_value("shared"), 15u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
}

TEST(MetricRegistryTest, MergeSumsGaugesAndMergesHistograms) {
  MetricRegistry a, b;
  a.gauge("occupancy").set(1.5);
  b.gauge("occupancy").set(2.5);
  a.histogram("sizes", 0.0, 10.0, 5).observe(1.0);
  b.histogram("sizes", 0.0, 10.0, 5).observe(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge_value("occupancy"), 4.0);
  const Histogram& hist = a.histograms().at("sizes");
  EXPECT_EQ(hist.total(), 2u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(4), 1u);
}

TEST(MetricRegistryTest, MergeHistogramGeometryMismatchThrows) {
  MetricRegistry a, b;
  a.histogram("sizes", 0.0, 10.0, 5).observe(1.0);
  b.histogram("sizes", 0.0, 20.0, 5).observe(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricRegistryTest, MergeIntoDisabledIsNoOp) {
  MetricRegistry disabled(/*enabled=*/false);
  MetricRegistry source;
  source.counter("x").inc(3);
  disabled.merge(source);
  EXPECT_TRUE(disabled.empty());
}

// Regression (PR 5): the sweep engine copies each group's registry into the
// completed SimulationResult while handles on the live registry may still be
// written (export_final_gauges is merely the *last* writer today). snapshot()
// is the explicit API for that handoff: later writes through live handles
// must never bleed into the already-captured copy.
TEST(MetricRegistryTest, SnapshotIsolatesLiveInstruments) {
  MetricRegistry live;
  const auto requests = live.counter("group.requests");
  const auto occupancy = live.gauge("proxy.0.resident_bytes");
  const auto sizes = live.histogram("sizes", 0.0, 10.0, 5);
  requests.inc(7);
  occupancy.set(3.5);
  sizes.observe(1.0);

  const MetricRegistry frozen = live.snapshot();

  requests.inc(100);
  occupancy.set(99.0);
  sizes.observe(9.0);

  EXPECT_EQ(frozen.counter_value("group.requests"), 7u);
  EXPECT_DOUBLE_EQ(frozen.gauge_value("proxy.0.resident_bytes"), 3.5);
  EXPECT_EQ(frozen.histograms().at("sizes").total(), 1u);
  EXPECT_EQ(live.counter_value("group.requests"), 107u);
  EXPECT_EQ(live.histograms().at("sizes").total(), 2u);
}

TEST(MetricRegistryTest, CopyIsASnapshotHandlesKeepPointingAtOriginal) {
  MetricRegistry original;
  const auto c = original.counter("x");
  c.inc(1);
  MetricRegistry snapshot = original;
  c.inc(1);  // handle still bound to `original`
  EXPECT_EQ(original.counter_value("x"), 2u);
  EXPECT_EQ(snapshot.counter_value("x"), 1u);
}

}  // namespace
}  // namespace eacache
