// Prometheus text-exposition exporter (obs/prometheus.h): exact output for
// a small registry covering every name-mapping branch DESIGN.md §13
// documents — group.* / telemetry.* flattening, proxy.<id>.* labels,
// link.<from>-><to>.* labels, histogram bucket cumulation — plus the
// family-grouping rule (no interleaving despite name-sorted inputs).
#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metric_registry.h"

namespace eacache {
namespace {

TEST(PrometheusTest, FamilyNameMapping) {
  EXPECT_EQ(prometheus_family_name("group.requests"), "eacache_group_requests");
  EXPECT_EQ(prometheus_family_name("group.icp.queries"), "eacache_group_icp_queries");
  EXPECT_EQ(prometheus_family_name("telemetry.requests_per_second"),
            "eacache_telemetry_requests_per_second");
  EXPECT_EQ(prometheus_family_name("proxy.3.local.hits"), "eacache_proxy_local_hits");
  EXPECT_EQ(prometheus_family_name("link.0->2.bytes"), "eacache_link_bytes");
  EXPECT_EQ(prometheus_family_name("link.1->origin.bytes"), "eacache_link_bytes");
  // Names that only look structured fall back to whole-name sanitizing.
  EXPECT_EQ(prometheus_family_name("proxy.fleet.size"), "eacache_proxy_fleet_size");
  EXPECT_EQ(prometheus_family_name("link.broken"), "eacache_link_broken");
}

TEST(PrometheusTest, ExactExpositionForSmallRegistry) {
  MetricRegistry registry(true);
  registry.counter("group.requests").inc(7);
  registry.counter("proxy.0.local.hits").inc(3);
  registry.counter("proxy.1.local.hits").inc(4);
  registry.counter("link.0->1.bytes").inc(512);
  registry.counter("link.1->origin.bytes").inc(2048);
  registry.gauge("telemetry.hit_rate").set(0.5);
  const MetricRegistry::HistogramHandle sizes =
      registry.histogram("group.request_bytes", 0.0, 100.0, 2);
  sizes.observe(-5.0);   // underflow: folds into every cumulative bucket
  sizes.observe(10.0);   // bucket le="50"
  sizes.observe(60.0);   // bucket le="100"
  sizes.observe(500.0);  // overflow: only in le="+Inf"

  std::ostringstream out;
  write_prometheus_exposition(out, registry);
  EXPECT_EQ(out.str(),
            "# HELP eacache_group_request_bytes eacache registry histogram "
            "group.request_bytes\n"
            "# TYPE eacache_group_request_bytes histogram\n"
            "eacache_group_request_bytes_bucket{le=\"50\"} 2\n"
            "eacache_group_request_bytes_bucket{le=\"100\"} 3\n"
            "eacache_group_request_bytes_bucket{le=\"+Inf\"} 4\n"
            "eacache_group_request_bytes_sum 565\n"
            "eacache_group_request_bytes_count 4\n"
            "# HELP eacache_group_requests_total eacache registry counter "
            "group.requests\n"
            "# TYPE eacache_group_requests_total counter\n"
            "eacache_group_requests_total 7\n"
            "# HELP eacache_link_bytes_total eacache registry counter "
            "link.<from>-><to>.bytes\n"
            "# TYPE eacache_link_bytes_total counter\n"
            "eacache_link_bytes_total{from=\"0\",to=\"1\"} 512\n"
            "eacache_link_bytes_total{from=\"1\",to=\"origin\"} 2048\n"
            "# HELP eacache_proxy_local_hits_total eacache registry counter "
            "proxy.<id>.local.hits\n"
            "# TYPE eacache_proxy_local_hits_total counter\n"
            "eacache_proxy_local_hits_total{proxy=\"0\"} 3\n"
            "eacache_proxy_local_hits_total{proxy=\"1\"} 4\n"
            "# HELP eacache_telemetry_hit_rate eacache registry gauge "
            "telemetry.hit_rate\n"
            "# TYPE eacache_telemetry_hit_rate gauge\n"
            "eacache_telemetry_hit_rate 0.5\n");
}

TEST(PrometheusTest, InterleavedNamesRegroupIntoFamilies) {
  // The registry's sorted map interleaves proxy.0.* and proxy.1.* series of
  // different families; the exporter must regroup them under one TYPE each.
  MetricRegistry registry(true);
  registry.gauge("proxy.0.resident_bytes").set(1.0);
  registry.gauge("proxy.0.resident_docs").set(2.0);
  registry.gauge("proxy.1.resident_bytes").set(3.0);
  registry.gauge("proxy.1.resident_docs").set(4.0);

  std::ostringstream out;
  write_prometheus_exposition(out, registry);
  const std::string text = out.str();
  // One TYPE per family and both samples adjacent under it.
  EXPECT_EQ(text,
            "# HELP eacache_proxy_resident_bytes eacache registry gauge "
            "proxy.<id>.resident_bytes\n"
            "# TYPE eacache_proxy_resident_bytes gauge\n"
            "eacache_proxy_resident_bytes{proxy=\"0\"} 1\n"
            "eacache_proxy_resident_bytes{proxy=\"1\"} 3\n"
            "# HELP eacache_proxy_resident_docs eacache registry gauge "
            "proxy.<id>.resident_docs\n"
            "# TYPE eacache_proxy_resident_docs gauge\n"
            "eacache_proxy_resident_docs{proxy=\"0\"} 2\n"
            "eacache_proxy_resident_docs{proxy=\"1\"} 4\n");
}

TEST(PrometheusTest, EmptyAndDisabledRegistriesExposeNothing) {
  std::ostringstream out;
  write_prometheus_exposition(out, MetricRegistry(true));
  EXPECT_EQ(out.str(), "");

  MetricRegistry disabled(false);
  disabled.counter("group.requests").inc(5);  // swallowed by the null handle
  std::ostringstream out2;
  write_prometheus_exposition(out2, disabled);
  EXPECT_EQ(out2.str(), "");
}

}  // namespace
}  // namespace eacache
