// Behavioral tests for the event-driven request pipeline: equivalence with
// the synchronous driver when concurrency effects are disabled, determinism
// under sweep parallelism, collapsed forwarding, and ICP timeout/retry
// semantics. The byte-identity of LEGACY runs is covered separately by
// pipeline_regression_test.cpp (goldens).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/result_json.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace synthetic_trace(std::size_t requests = 3000, std::uint64_t seed = 7) {
  SyntheticTraceConfig config;
  config.num_requests = requests;
  config.num_documents = 300;
  config.num_users = 16;
  config.span = hours(1);
  config.seed = seed;
  return generate_synthetic_trace(config);
}

/// The same trace re-stamped so consecutive requests are 5 s apart: every
/// request completes (max legacy latency 2.784 s) before the next arrives,
/// so the event-driven run has no overlap, no coalescing window pressure
/// and no concurrency effects at all.
Trace spaced_trace(std::size_t requests = 2000) {
  Trace trace = synthetic_trace(requests);
  trace.requests.resize(std::min<std::size_t>(requests, trace.requests.size()));
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    trace.requests[i].at = kSimEpoch + sec(5 * static_cast<SimClock::rep>(i));
  }
  return trace;
}

GroupConfig base_group(PlacementKind placement = PlacementKind::kEa) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = placement;
  return config;
}

TEST(PipelineTest, EventDrivenMatchesSerializedWhenRequestsDoNotOverlap) {
  const Trace trace = spaced_trace();
  GroupConfig legacy = base_group();
  GroupConfig event = base_group();
  event.pipeline.event_driven = true;

  const SimulationResult a = run_simulation(trace, legacy);
  const SimulationResult b = run_simulation(trace, event);

  // Outcomes, bytes and latency agree exactly: the stage decomposition
  // guarantees a no-overlap event-driven request measures the legacy
  // aggregate to the millisecond.
  EXPECT_EQ(a.metrics.total_requests(), b.metrics.total_requests());
  EXPECT_EQ(a.metrics.count(RequestOutcome::kLocalHit),
            b.metrics.count(RequestOutcome::kLocalHit));
  EXPECT_EQ(a.metrics.count(RequestOutcome::kRemoteHit),
            b.metrics.count(RequestOutcome::kRemoteHit));
  EXPECT_EQ(a.metrics.count(RequestOutcome::kMiss), b.metrics.count(RequestOutcome::kMiss));
  EXPECT_EQ(a.metrics.bytes_requested(), b.metrics.bytes_requested());
  EXPECT_EQ(a.metrics.measured_average_latency().count(),
            b.metrics.measured_average_latency().count());

  // Identical wire traffic: both drivers issue the same probes and fetches
  // in the same order (shared stage helpers, shared RNG draw order).
  EXPECT_EQ(a.transport.icp_queries, b.transport.icp_queries);
  EXPECT_EQ(a.transport.icp_replies, b.transport.icp_replies);
  EXPECT_EQ(a.transport.http_requests, b.transport.http_requests);
  EXPECT_EQ(a.transport.http_responses, b.transport.http_responses);
  EXPECT_EQ(a.transport.origin_fetches, b.transport.origin_fetches);
  EXPECT_EQ(a.transport.total_bytes(), b.transport.total_bytes());

  // End state of the disks is identical too.
  EXPECT_EQ(a.total_resident_copies, b.total_resident_copies);
  EXPECT_EQ(a.unique_resident_documents, b.unique_resident_documents);

  // The pipeline block exists only on the event-driven side.
  EXPECT_FALSE(a.pipeline.enabled);
  ASSERT_TRUE(b.pipeline.enabled);
  EXPECT_EQ(b.pipeline.started, trace.size());
  EXPECT_EQ(b.pipeline.completed, trace.size());
  EXPECT_EQ(b.pipeline.icp_timeouts, 0u);
  EXPECT_EQ(b.pipeline.max_in_flight, 1u);
}

TEST(PipelineTest, EventDrivenIsDeterministicAcrossSweepJobs) {
  // Overlapping trace + loss + retries + coalescing: the full concurrent
  // machinery, swept serialized (jobs=1) and parallel (jobs=8). Results
  // must be byte-identical — parallelism may reorder scheduling, never
  // results.
  const TraceRef trace = std::make_shared<const Trace>(synthetic_trace());
  const auto make_jobs = [&] {
    std::vector<SweepJob> jobs;
    for (const bool coalesce : {false, true}) {
      GroupConfig config = base_group();
      config.pipeline.event_driven = true;
      config.pipeline.icp_retries = 2;
      config.pipeline.coalesce = coalesce;
      config.icp_loss_probability = 0.3;
      RunSpec spec;
      spec.group = config;
      jobs.push_back({coalesce ? "coalesce" : "plain", std::move(spec), trace});
    }
    return jobs;
  };
  const auto sweep = [&](std::size_t n) {
    SweepOptions options;
    options.jobs = n;
    SweepRunner runner(options);
    for (SweepJob& job : make_jobs()) runner.add(std::move(job));
    return runner.run();
  };

  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(simulation_result_to_json(serial[i].result),
              simulation_result_to_json(parallel[i].result))
        << serial[i].label << " diverged between jobs=1 and jobs=8";
  }
}

/// N back-to-back misses for the same document at the same proxy while the
/// first fetch is still in flight.
Trace burst_trace(std::size_t n) {
  Trace trace;
  for (std::size_t i = 0; i < n; ++i) {
    trace.requests.push_back(
        Request{kSimEpoch + msec(5 * static_cast<SimClock::rep>(i)), /*user=*/1,
                /*document=*/42, /*size=*/4096});
  }
  return trace;
}

TEST(PipelineTest, CoalescingCollapsesConcurrentMissesIntoOneOriginFetch) {
  constexpr std::size_t kBurst = 4;
  GroupConfig config = base_group(PlacementKind::kAdHoc);
  config.pipeline.event_driven = true;
  config.pipeline.coalesce = true;

  const SimulationResult result = run_simulation(burst_trace(kBurst), config);
  EXPECT_EQ(result.transport.origin_fetches, 1u);
  EXPECT_EQ(result.pipeline.coalesced_joins, kBurst - 1);
  EXPECT_EQ(result.pipeline.completed, kBurst);
  EXPECT_EQ(result.metrics.total_requests(), kBurst);
  // Joiners inherit the leader's outcome class.
  EXPECT_EQ(result.metrics.count(RequestOutcome::kMiss), kBurst);
}

TEST(PipelineTest, WithoutCoalescingConcurrentMissesDuplicateTheFetch) {
  constexpr std::size_t kBurst = 4;
  GroupConfig config = base_group(PlacementKind::kAdHoc);
  config.pipeline.event_driven = true;  // coalesce stays off

  const SimulationResult result = run_simulation(burst_trace(kBurst), config);
  EXPECT_EQ(result.transport.origin_fetches, kBurst);
  EXPECT_EQ(result.pipeline.coalesced_joins, 0u);
  EXPECT_EQ(result.metrics.count(RequestOutcome::kMiss), kBurst);
}

TEST(PipelineTest, LostProbesTimeOutAndInflateLatency) {
  GroupConfig config = base_group();
  config.pipeline.event_driven = true;
  config.icp_loss_probability = 1.0;  // every probe vanishes

  Trace trace;
  trace.requests.push_back(Request{kSimEpoch + sec(1), 1, 7, 4096});
  const SimulationResult result = run_simulation(trace, config);

  ASSERT_TRUE(result.pipeline.enabled);
  EXPECT_EQ(result.pipeline.icp_timeouts, 1u);
  EXPECT_EQ(result.pipeline.icp_retries, 0u);
  EXPECT_EQ(result.metrics.count(RequestOutcome::kMiss), 1u);
  // local_lookup (10) + full timeout window (2000) + origin transfer
  // (2784 - 10 - 40): the silent window's excess over one ICP round trip
  // (2000 - 40 = 1960 ms) inflates the legacy 2784 ms miss.
  EXPECT_EQ(result.metrics.measured_average_latency().count(), msec(4744).count());
}

TEST(PipelineTest, RetriesReprobeSilentPeersAndRecoverRemoteHits) {
  GroupConfig config = base_group();
  config.pipeline.event_driven = true;
  config.pipeline.icp_retries = 3;
  config.icp_loss_probability = 0.4;
  config.obs.registry = true;

  const SimulationResult result = run_simulation(synthetic_trace(), config);
  ASSERT_TRUE(result.pipeline.enabled);
  EXPECT_GT(result.pipeline.icp_timeouts, 0u);
  EXPECT_GT(result.pipeline.icp_retries, 0u);
  // With 40% loss over 3000 requests and peers that do hold copies, some
  // retry round must win a positive reply the first round lost.
  EXPECT_GT(result.pipeline.icp_recoveries, 0u);

  // The pipeline counters surface in the registry dump.
  const auto& counters = result.registry.counters();
  const auto timeouts = counters.find("group.icp.timeouts");
  ASSERT_NE(timeouts, counters.end());
  EXPECT_EQ(timeouts->second, result.pipeline.icp_timeouts);
  const auto recoveries = counters.find("group.icp.recoveries");
  ASSERT_NE(recoveries, counters.end());
  EXPECT_EQ(recoveries->second, result.pipeline.icp_recoveries);
  ASSERT_NE(counters.find("group.icp.retries"), counters.end());
  ASSERT_NE(counters.find("group.coalesced_joins"), counters.end());
}

TEST(PipelineTest, TimeoutAndRetryAndJoinSpansAppearInTheTraceLog) {
  GroupConfig config = base_group(PlacementKind::kAdHoc);
  config.pipeline.event_driven = true;
  config.pipeline.coalesce = true;
  config.pipeline.icp_retries = 1;
  config.icp_loss_probability = 1.0;
  config.obs.trace_capacity = 4096;

  const SimulationResult result = run_simulation(burst_trace(4), config);
  const std::vector<SpanEvent> events = result.trace_log.events();
  const auto count_kind = [&](SpanKind kind) {
    return std::count_if(events.begin(), events.end(),
                         [kind](const SpanEvent& e) { return e.kind == kind; });
  };
  // Every probe is lost, so the leader times out, retries once (against
  // peers that stayed silent), and times out again; the three followers
  // coalesce onto it at their lookup stage.
  EXPECT_EQ(count_kind(SpanKind::kIcpTimeout), 2);
  EXPECT_EQ(count_kind(SpanKind::kIcpRetry), 1);
  EXPECT_EQ(count_kind(SpanKind::kCoalescedJoin), 3);
  // Joiners still get arrival + completion spans of their own.
  EXPECT_EQ(count_kind(SpanKind::kArrival), 4);
  EXPECT_EQ(count_kind(SpanKind::kComplete), 4);
}

TEST(PipelineTest, PeerOutageWindowCausesTimeoutsOnlyWhileOpen) {
  // Overlap-free trace, no UDP loss: the ONLY silence source is the outage
  // window, so every timeout maps to a probe into [start, end).
  GroupConfig config = base_group();
  config.pipeline.event_driven = true;

  Trace trace = spaced_trace(200);
  SimulationOptions options;
  const TimePoint start = trace.requests[50].at;
  const TimePoint end = trace.requests[100].at;
  // All four proxies serve users; take one down for a stretch of the run.
  options.faults.outages.push_back(PeerOutage{/*proxy=*/2, start, end});

  const SimulationResult down = run_simulation(trace, config, options);
  const SimulationResult clean = run_simulation(trace, config);
  EXPECT_GT(down.pipeline.icp_timeouts, 0u);
  EXPECT_EQ(clean.pipeline.icp_timeouts, 0u);
  // Outside the window behavior is identical, so the outage run can only
  // have fewer remote hits / more misses, never more hits.
  EXPECT_LE(down.metrics.count(RequestOutcome::kRemoteHit),
            clean.metrics.count(RequestOutcome::kRemoteHit));
}

}  // namespace
}  // namespace eacache
