#include "sim/result_json.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace eacache {
namespace {

SimulationResult sample_result() {
  SyntheticTraceConfig workload;
  workload.num_requests = 5000;
  workload.num_documents = 400;
  workload.num_users = 16;
  workload.span = hours(2);
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = PlacementKind::kEa;
  SimulationOptions options;
  options.snapshot_period = minutes(30);
  return run_simulation(trace, config, options);
}

TEST(ResultJsonTest, ContainsAllSections) {
  const std::string json = simulation_result_to_json(sample_result());
  for (const char* section : {"\"metrics\"", "\"transport\"", "\"coherence\"", "\"prefetch\"",
                              "\"expiration_age\"", "\"occupancy\"", "\"proxies\"",
                              "\"snapshots\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
}

TEST(ResultJsonTest, ValuesMatchResult) {
  const SimulationResult result = sample_result();
  const std::string json = simulation_result_to_json(result);
  EXPECT_NE(json.find("\"total_requests\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"origin_fetches\":" +
                      std::to_string(result.transport.origin_fetches)),
            std::string::npos);
  EXPECT_NE(json.find("\"replication_factor\":"), std::string::npos);
}

TEST(ResultJsonTest, BalancedBracesAndQuotes) {
  const std::string json = simulation_result_to_json(sample_result());
  int braces = 0;
  int brackets = 0;
  int quotes = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    const bool escaped = i > 0 && json[i - 1] == '\\';
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (c == '"' && !escaped) ++quotes;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(ResultJsonTest, InfiniteExpirationAgeIsNull) {
  // An empty run has no evictions: average age is infinite -> null.
  GroupConfig config;
  config.num_proxies = 2;
  config.aggregate_capacity = 64 * kKiB;
  const SimulationResult result = run_simulation(Trace{}, config);
  const std::string json = simulation_result_to_json(result);
  EXPECT_NE(json.find("\"average_seconds\":null"), std::string::npos);
}

TEST(ResultJsonTest, SnapshotsSerialized) {
  const SimulationResult result = sample_result();
  ASSERT_FALSE(result.snapshots.empty());
  const std::string json = simulation_result_to_json(result);
  EXPECT_NE(json.find("\"at_ms\":"), std::string::npos);
}

}  // namespace
}  // namespace eacache
