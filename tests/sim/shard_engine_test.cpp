// Sharded engine contracts (sim/shard_engine.h):
//  * the headline determinism guarantee — result JSON byte-identical for
//    shards=1 and shards={2,4,8}, EA and ad-hoc placement, flat and
//    three-level hierarchical topologies;
//  * request conservation (every trace request lands in GroupMetrics);
//  * the RunSpec validation rules that fence off the unsupported subset;
//  * the ShardMessage wire codec round trip (sim/shard_messages.h).
#include "sim/shard_engine.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/run_result_json.h"
#include "sim/shard_messages.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

// Dense short-span trace: ~3k requests inside one simulated minute keeps
// the conservative-window count (span / 20 ms) in the thousands, so the
// 1-vs-N sweep stays fast while every protocol path still fires.
Trace dense_trace(std::uint64_t seed = 7) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_requests = 3000;
  config.num_documents = 400;
  config.num_users = 64;
  config.span = minutes(1);
  return generate_synthetic_trace(config);
}

GroupConfig flat_group(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 8;
  config.aggregate_capacity = 2 * kMiB;
  config.placement = placement;
  return config;
}

// Three-level tree: 16 leaves under 4 mid caches under one root — the
// parent chain crosses shard boundaries at every cut the partitioner makes.
GroupConfig hierarchical_group(PlacementKind placement) {
  GroupConfig config;
  std::vector<std::optional<ProxyId>> parents(21);
  for (ProxyId leaf = 0; leaf < 16; ++leaf) parents[leaf] = static_cast<ProxyId>(16 + leaf / 4);
  for (ProxyId mid = 16; mid < 20; ++mid) parents[mid] = 20;
  parents[20] = std::nullopt;
  config.topology = TopologyKind::kHierarchical;
  config.custom_parents = std::move(parents);
  config.aggregate_capacity = 4 * kMiB;
  config.placement = placement;
  return config;
}

RunSpec sharded_spec(GroupConfig group, std::size_t shards) {
  RunSpec spec;
  spec.group = std::move(group);
  spec.exec.shards = shards;
  return spec;
}

/// The determinism pin: identical result JSON for every shard count.
void expect_shard_count_invariant(const GroupConfig& group, const Trace& trace) {
  const std::string baseline =
      simulation_result_to_json(run_sharded_simulation(trace, sharded_spec(group, 1)));
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const std::string json =
        simulation_result_to_json(run_sharded_simulation(trace, sharded_spec(group, shards)));
    EXPECT_EQ(json, baseline) << "shards=" << shards << " diverged from shards=1";
  }
}

TEST(ShardEngineTest, FlatEaResultIsShardCountInvariant) {
  expect_shard_count_invariant(flat_group(PlacementKind::kEa), dense_trace());
}

TEST(ShardEngineTest, FlatAdHocResultIsShardCountInvariant) {
  expect_shard_count_invariant(flat_group(PlacementKind::kAdHoc), dense_trace());
}

TEST(ShardEngineTest, HierarchicalEaResultIsShardCountInvariant) {
  expect_shard_count_invariant(hierarchical_group(PlacementKind::kEa), dense_trace(11));
}

TEST(ShardEngineTest, HierarchicalAdHocResultIsShardCountInvariant) {
  expect_shard_count_invariant(hierarchical_group(PlacementKind::kAdHoc), dense_trace(11));
}

TEST(ShardEngineTest, EveryTraceRequestIsAccounted) {
  const Trace trace = dense_trace();
  const SimulationResult result =
      run_sharded_simulation(trace, sharded_spec(flat_group(PlacementKind::kEa), 4));
  EXPECT_EQ(result.metrics.total_requests(), trace.requests.size());
  EXPECT_EQ(result.proxy_stats.size(), 8u);
}

TEST(ShardEngineTest, RunDispatcherRoutesShardedSpecs) {
  // sim/simulator.h run() must hand sharded specs to this engine: same
  // JSON as calling the engine directly.
  const Trace trace = dense_trace();
  const RunSpec spec = sharded_spec(flat_group(PlacementKind::kEa), 2);
  EXPECT_EQ(simulation_result_to_json(run(trace, spec)),
            simulation_result_to_json(run_sharded_simulation(trace, spec)));
}

TEST(ShardEngineTest, RejectsUnshardedSpec) {
  const Trace trace = dense_trace();
  EXPECT_THROW(
      (void)run_sharded_simulation(trace, sharded_spec(flat_group(PlacementKind::kEa), 0)),
      std::invalid_argument);
}

TEST(ShardEngineValidationTest, FencesOffTheUnsupportedSubset) {
  const auto violates = [](RunSpec spec) { return !spec.validate(RunTarget::kSimulation).empty(); };

  RunSpec loss = sharded_spec(flat_group(PlacementKind::kEa), 2);
  loss.group.icp_loss_probability = 0.25;
  EXPECT_TRUE(violates(loss)) << "seeded ICP loss draw is queue-order dependent";

  RunSpec pipeline = sharded_spec(flat_group(PlacementKind::kEa), 2);
  pipeline.group.pipeline.event_driven = true;
  EXPECT_TRUE(violates(pipeline)) << "the sharded engine is its own driver";

  RunSpec invariants = sharded_spec(flat_group(PlacementKind::kEa), 2);
  invariants.check_invariants = true;
  EXPECT_TRUE(violates(invariants));

  RunSpec snapshots = sharded_spec(flat_group(PlacementKind::kEa), 2);
  snapshots.snapshot_period = sec(10);
  EXPECT_TRUE(violates(snapshots));

  RunSpec spans = sharded_spec(flat_group(PlacementKind::kEa), 2);
  spans.group.obs.trace_capacity = 128;
  EXPECT_TRUE(violates(spans));

  // The override window must stay within the inter-proxy message floor —
  // wider would deliver a message inside the window that sent it.
  RunSpec wide = sharded_spec(flat_group(PlacementKind::kEa), 2);
  wide.exec.lookahead_override = default_lookahead(wide.group.latency) + msec(1);
  EXPECT_TRUE(violates(wide));

  RunSpec narrow = sharded_spec(flat_group(PlacementKind::kEa), 2);
  narrow.exec.lookahead_override = default_lookahead(narrow.group.latency);
  EXPECT_FALSE(violates(narrow)) << "the floor itself is a legal window";

  // An unsharded spec must not accept a lookahead override.
  RunSpec classic;
  classic.group = flat_group(PlacementKind::kEa);
  classic.exec.lookahead_override = msec(5);
  EXPECT_TRUE(violates(classic));
}

TEST(ShardEngineTest, NarrowedLookaheadPreservesTheResult) {
  // Any legal window width must give the same answer: the window is a
  // scheduling artifact, not a semantic knob.
  const Trace trace = dense_trace();
  const GroupConfig group = flat_group(PlacementKind::kEa);
  const std::string baseline =
      simulation_result_to_json(run_sharded_simulation(trace, sharded_spec(group, 4)));
  RunSpec narrowed = sharded_spec(group, 4);
  narrowed.exec.lookahead_override = msec(7);
  EXPECT_EQ(simulation_result_to_json(run_sharded_simulation(trace, narrowed)), baseline);
}

// ---- wire codec ----------------------------------------------------------

TEST(ShardMessageCodecTest, RoundTripsEveryField) {
  ShardMessage message;
  message.kind = ShardMessageKind::kParentBody;
  message.request_index = 0x1122334455667788ULL;
  message.hop = 3;
  message.from = 17;
  message.to = 4;
  message.deliver_at = kSimEpoch + msec(987654321);
  message.document = 0xdeadbeefcafef00dULL;
  message.size = 64 * 1024;
  message.status = ShardProbeStatus::kHit;
  message.found = false;
  message.source = ResponseSource::kOrigin;
  message.age = ExpAge::from_millis(1234.5);

  const ShardMessage decoded = decode_shard_message(encode_shard_message(message));
  EXPECT_EQ(decoded.kind, message.kind);
  EXPECT_EQ(decoded.request_index, message.request_index);
  EXPECT_EQ(decoded.hop, message.hop);
  EXPECT_EQ(decoded.from, message.from);
  EXPECT_EQ(decoded.to, message.to);
  EXPECT_EQ(decoded.deliver_at, message.deliver_at);
  EXPECT_EQ(decoded.document, message.document);
  EXPECT_EQ(decoded.size, message.size);
  EXPECT_EQ(decoded.status, message.status);
  EXPECT_EQ(decoded.found, message.found);
  EXPECT_EQ(decoded.source, message.source);
  ASSERT_TRUE(decoded.age.has_value());
  EXPECT_EQ(decoded.age->millis(), 1234.5);
}

TEST(ShardMessageCodecTest, RoundTripsMissingAndInfiniteAges) {
  ShardMessage no_age;
  no_age.kind = ShardMessageKind::kIcpProbe;
  EXPECT_FALSE(decode_shard_message(encode_shard_message(no_age)).age.has_value());

  ShardMessage infinite;
  infinite.kind = ShardMessageKind::kFetchBody;
  infinite.age = ExpAge::infinite();
  const ShardMessage decoded = decode_shard_message(encode_shard_message(infinite));
  ASSERT_TRUE(decoded.age.has_value());
  EXPECT_TRUE(decoded.age->is_infinite());
}

TEST(ShardMessageCodecTest, RejectsMalformedBuffers) {
  ShardMessage message;
  message.age = ExpAge::from_millis(10.0);
  std::vector<std::uint8_t> wire = encode_shard_message(message);

  std::vector<std::uint8_t> truncated(wire.begin(), wire.end() - 3);
  EXPECT_THROW((void)decode_shard_message(truncated), std::invalid_argument);

  std::vector<std::uint8_t> trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_shard_message(trailing), std::invalid_argument);

  std::vector<std::uint8_t> bad_kind = wire;
  bad_kind[0] = 200;
  EXPECT_THROW((void)decode_shard_message(bad_kind), std::invalid_argument);

  EXPECT_THROW((void)decode_shard_message({}), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
