#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace small_trace() {
  SyntheticTraceConfig config;
  config.num_requests = 4000;
  config.num_documents = 400;
  config.num_users = 16;
  config.span = hours(1);
  return generate_synthetic_trace(config);
}

TEST(ExperimentTest, PaperLadderValues) {
  const auto ladder = paper_capacity_ladder();
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_EQ(ladder[0], 100 * kKiB);
  EXPECT_EQ(ladder[1], 1 * kMiB);
  EXPECT_EQ(ladder[2], 10 * kMiB);
  EXPECT_EQ(ladder[3], 100 * kMiB);
  EXPECT_EQ(ladder[4], 1 * kGiB);
}

TEST(ExperimentTest, CapacitySweepRunsBothSchemes) {
  const Trace trace = small_trace();
  GroupConfig base;
  base.num_proxies = 2;
  const Bytes capacities[] = {32 * kKiB, 128 * kKiB};
  const auto points = compare_schemes_over_capacities(trace, base, capacities);
  ASSERT_EQ(points.size(), 2u);
  for (const SchemeComparison& point : points) {
    EXPECT_EQ(point.adhoc.metrics.total_requests(), trace.size());
    EXPECT_EQ(point.ea.metrics.total_requests(), trace.size());
  }
  EXPECT_EQ(points[0].aggregate_capacity, 32 * kKiB);
  EXPECT_EQ(points[1].aggregate_capacity, 128 * kKiB);
  // Bigger caches never hurt the hit rate on the same trace/scheme.
  EXPECT_GE(points[1].ea.metrics.hit_rate(), points[0].ea.metrics.hit_rate() - 0.02);
}

TEST(ExperimentTest, GroupSizeSweep) {
  const Trace trace = small_trace();
  GroupConfig base;
  base.aggregate_capacity = 64 * kKiB;
  const std::size_t sizes[] = {2, 4};
  const auto points = compare_schemes_over_group_sizes(trace, base, sizes);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].num_proxies, 2u);
  EXPECT_EQ(points[1].num_proxies, 4u);
  for (const GroupSizePoint& point : points) {
    EXPECT_EQ(point.adhoc.metrics.total_requests(), trace.size());
    EXPECT_EQ(point.ea.metrics.total_requests(), trace.size());
  }
}

}  // namespace
}  // namespace eacache
