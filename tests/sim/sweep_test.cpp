#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "sim/result_json.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace make_trace(std::uint64_t seed = 11) {
  SyntheticTraceConfig config;
  config.num_requests = 3000;
  config.num_documents = 300;
  config.num_users = 16;
  config.span = hours(1);
  config.seed = seed;
  return generate_synthetic_trace(config);
}

std::vector<SweepJob> sweep_jobs(const TraceRef& trace) {
  std::vector<SweepJob> jobs;
  for (const Bytes capacity : {32 * kKiB, 64 * kKiB, 128 * kKiB, 256 * kKiB}) {
    for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
      GroupConfig config;
      config.num_proxies = 4;
      config.aggregate_capacity = capacity;
      config.placement = placement;
      RunSpec spec;
      spec.group = config;
      jobs.push_back({std::string(to_string(placement)) + "@" + format_bytes(capacity),
                      std::move(spec), trace});
    }
  }
  return jobs;
}

std::vector<SweepRunResult> run_sweep(const TraceRef& trace, std::size_t jobs) {
  SweepOptions options;
  options.jobs = jobs;
  SweepRunner runner(options);
  for (SweepJob& job : sweep_jobs(trace)) runner.add(std::move(job));
  return runner.run();
}

TEST(TraceCacheTest, FactoryRunsOncePerKey) {
  TraceCache cache;
  std::atomic<int> calls{0};
  const auto factory = [&] {
    ++calls;
    return make_trace();
  };
  const TraceRef first = cache.get_or_create("a", factory);
  const TraceRef second = cache.get_or_create("a", factory);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(first.get(), second.get());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->size(), 3000u);

  (void)cache.get_or_create("b", factory);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

// Regression (PR 5): entry publication is a Mutex/CondVar state machine
// (kIdle→kLoading→kReady) instead of std::call_once, whose exceptional
// path deadlocks under TSan's pthread_once interceptor. Winner loads,
// losers block until kReady, everyone shares one Trace.
TEST(TraceCacheTest, ConcurrentGetOrCreateLoadsOnce) {
  TraceCache cache;
  std::atomic<int> calls{0};
  std::vector<TraceRef> seen(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&cache, &calls, &seen, t] {
      seen[t] = cache.get_or_create("shared", [&calls] {
        ++calls;
        return make_trace();
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(calls.load(), 1);
  for (const TraceRef& ref : seen) {
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref.get(), seen[0].get());
  }
}

TEST(TraceCacheTest, ThrowingFactoryIsRetried) {
  TraceCache cache;
  int calls = 0;
  EXPECT_THROW((void)cache.get_or_create("key",
                                         [&]() -> Trace {
                                           ++calls;
                                           throw std::runtime_error("load failed");
                                         }),
               std::runtime_error);
  const TraceRef trace = cache.get_or_create("key", [&] {
    ++calls;
    return make_trace();
  });
  EXPECT_EQ(calls, 2);
  EXPECT_NE(trace, nullptr);
}

TEST(SweepRunnerTest, ResultsArriveInSubmissionOrder) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  SweepRunner runner(SweepOptions{.jobs = 4, .sink = {}, .obs_override = {}, .validate = false});
  std::vector<std::string> expected;
  for (SweepJob& job : sweep_jobs(trace)) {
    expected.push_back(job.label);
    runner.add(std::move(job));
  }
  const auto runs = runner.run();
  ASSERT_EQ(runs.size(), expected.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].label, expected[i]);
    EXPECT_EQ(runs[i].result.metrics.total_requests(), trace->size());
    EXPECT_GE(runs[i].wall_ms, 0.0);
  }
}

// The engine's core guarantee (and this PR's regression gate): the same
// config sweep serialized with jobs=1 and jobs=8 must produce byte-identical
// SimulationResult JSON — parallelism may reorder scheduling, never results.
TEST(SweepRunnerTest, ParallelSweepIsByteIdenticalToSerial) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  const auto serial = run_sweep(trace, 1);
  const auto parallel = run_sweep(trace, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(simulation_result_to_json(serial[i].result),
              simulation_result_to_json(parallel[i].result))
        << "run " << i << " (" << serial[i].label << ") diverged";
  }
}

TEST(SweepRunnerTest, SinkStreamsCompletedRunsInOrder) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  std::vector<std::string> streamed;
  SweepOptions options;
  options.jobs = 8;
  options.sink = [&](const SweepRunResult& run) { streamed.push_back(run.label); };
  SweepRunner runner(options);
  std::vector<std::string> expected;
  for (SweepJob& job : sweep_jobs(trace)) {
    expected.push_back(job.label);
    runner.add(std::move(job));
  }
  (void)runner.run();
  EXPECT_EQ(streamed, expected);
}

TEST(SweepRunnerTest, JsonRowSinkEmitsOneLinePerRun) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  std::ostringstream out;
  SweepOptions options;
  options.jobs = 2;
  options.sink = make_json_row_sink(out);
  SweepRunner runner(options);
  GroupConfig config;
  config.aggregate_capacity = 64 * kKiB;
  runner.add("row-a", config, trace);
  runner.add("row-b", config, trace);
  (void)runner.run();

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].find("\"label\":\"row-a\""), std::string::npos);
  EXPECT_NE(rows[0].find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(rows[0].find("\"aggregate_capacity\":65536"), std::string::npos);
  EXPECT_NE(rows[1].find("\"label\":\"row-b\""), std::string::npos);
}

TEST(SweepRunnerTest, EveryJobRunsEvenWhenOneThrows) {
  const TraceRef good = std::make_shared<const Trace>(make_trace());
  // An unordered trace makes run_simulation throw std::invalid_argument.
  Trace shuffled = make_trace(7);
  std::swap(shuffled.requests.front(), shuffled.requests.back());
  const TraceRef bad = std::make_shared<const Trace>(std::move(shuffled));

  SweepOptions options;
  options.jobs = 4;
  std::vector<std::string> streamed;
  options.sink = [&](const SweepRunResult& run) { streamed.push_back(run.label); };
  SweepRunner runner(options);
  GroupConfig config;
  config.aggregate_capacity = 64 * kKiB;
  runner.add("ok-1", config, good);
  runner.add("boom", config, bad);
  runner.add("ok-2", config, good);
  EXPECT_THROW((void)runner.run(), std::invalid_argument);
  // The failed run is skipped by the sink; the healthy ones still stream.
  EXPECT_EQ(streamed, (std::vector<std::string>{"ok-1", "ok-2"}));
}

// Regression (PR 5): a sink that throws used to unwind run() while pool
// threads were still joinable, so ~thread() called std::terminate and took
// the whole process down. The join-on-unwind guard drains the pool first;
// "every job runs" still holds because workers run the queue to exhaustion.
TEST(SweepRunnerTest, SinkExceptionJoinsWorkersAndPropagates) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  SweepOptions options;
  options.jobs = 4;
  int sink_calls = 0;
  options.sink = [&](const SweepRunResult&) {
    ++sink_calls;
    throw std::runtime_error("sink gave up");
  };
  SweepRunner runner(options);
  for (SweepJob& job : sweep_jobs(trace)) runner.add(std::move(job));
  EXPECT_THROW((void)runner.run(), std::runtime_error);
  EXPECT_EQ(sink_calls, 1);
}

// Regression (PR 5): the trace-load cost table used to keep rows forever.
// Beyond unbounded growth across cleared caches, a later Trace recycling a
// dead trace's address would inherit its stale load cost — nondeterministic
// trace_load_ms on sweep rows. Rows now die with their trace.
TEST(TraceCacheTest, TraceLoadTableRowsDieWithTheirTrace) {
  const std::size_t base = detail::trace_load_table_size();
  {
    TraceCache cache;
    const TraceRef trace = cache.get_or_create("lifetime", [] { return make_trace(); });
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(detail::trace_load_table_size(), base + 1);
  }  // the cache and the last TraceRef die here, taking the row with them
  EXPECT_EQ(detail::trace_load_table_size(), base);
}

TEST(SweepRunnerTest, RejectsJobWithoutTrace) {
  SweepRunner runner;
  GroupConfig config;
  EXPECT_THROW((void)runner.add("no-trace", config, nullptr), std::invalid_argument);
}

TEST(SweepRunnerTest, BorrowedTraceSharesWithoutCopying) {
  const Trace owned = make_trace();
  const TraceRef borrowed = borrow_trace(owned);
  EXPECT_EQ(borrowed.get(), &owned);
}

TEST(ResolveJobCountTest, PreferredWinsOverEnvironment) {
  ::setenv("EACACHE_JOBS", "5", 1);
  EXPECT_EQ(resolve_job_count(3), 3u);
  EXPECT_EQ(resolve_job_count(), 5u);
  ::setenv("EACACHE_JOBS", "not-a-number", 1);
  EXPECT_GE(resolve_job_count(), 1u);
  ::unsetenv("EACACHE_JOBS");
  EXPECT_GE(resolve_job_count(), 1u);
}

TEST(ResolveJobCountTest, ProcessDefaultBeatsHardwareButNotEnvOrArgument) {
  ::unsetenv("EACACHE_JOBS");
  set_default_job_count(3);
  EXPECT_EQ(resolve_job_count(), 3u);
  EXPECT_EQ(resolve_job_count(2), 2u);  // explicit argument still wins
  ::setenv("EACACHE_JOBS", "5", 1);
  EXPECT_EQ(resolve_job_count(), 5u);  // environment still wins
  ::unsetenv("EACACHE_JOBS");
  set_default_job_count(0);  // clear the process-wide slot for other tests
  EXPECT_GE(resolve_job_count(), 1u);
}

}  // namespace
}  // namespace eacache
