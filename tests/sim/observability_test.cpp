// The observability subsystem's two core guarantees, tested end to end:
//
//  1. Observability is FREE: running with the registry + tracer + series on
//     must not change any simulation outcome. We compare full result JSON
//     (with the obs-only fields neutralized) between an instrumented run and
//     a --no-obs run, byte for byte.
//  2. Observability is DETERMINISTIC: the same sweep run with jobs=1 and
//     jobs=8 must serialize the registry dump and the span JSONL
//     byte-identically — parallelism may reorder scheduling, never output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/result_json.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace make_trace(std::uint64_t seed = 23) {
  SyntheticTraceConfig config;
  config.num_requests = 2000;
  config.num_documents = 200;
  config.num_users = 12;
  config.span = hours(1);
  config.seed = seed;
  return generate_synthetic_trace(config);
}

GroupConfig make_config() {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 128 * kKiB;
  config.placement = PlacementKind::kEa;
  return config;
}

/// Blank out the fields only the observability layer writes, so the rest of
/// the result can be compared byte-for-byte across obs on/off runs.
std::string json_without_obs_fields(SimulationResult result) {
  result.registry = MetricRegistry();
  result.trace_log = TraceLog();
  result.proxy_series.clear();
  return simulation_result_to_json(result);
}

TEST(ObservabilityTest, InstrumentationNeverChangesSimulationOutcomes) {
  const Trace trace = make_trace();
  GroupConfig instrumented = make_config();
  instrumented.obs = ObsConfig::with_tracing();  // registry + tracer + series
  GroupConfig dark = make_config();
  dark.obs = ObsConfig::disabled();

  const SimulationResult with_obs = run_simulation(trace, instrumented);
  const SimulationResult without_obs = run_simulation(trace, dark);

  // The instrumented run actually observed things...
  EXPECT_FALSE(with_obs.registry.empty());
  EXPECT_GT(with_obs.trace_log.recorded(), 0u);
  EXPECT_FALSE(with_obs.proxy_series.empty());
  EXPECT_TRUE(without_obs.registry.empty());
  EXPECT_EQ(without_obs.trace_log.recorded(), 0u);
  EXPECT_TRUE(without_obs.proxy_series.empty());

  // ...and everything else is bit-for-bit what the dark run produced.
  EXPECT_EQ(json_without_obs_fields(with_obs), json_without_obs_fields(without_obs));
}

TEST(ObservabilityTest, RegistryCountersAgreeWithTopLevelMetrics) {
  const Trace trace = make_trace();
  const GroupConfig config = make_config();
  const SimulationResult result = run_simulation(trace, config);
  const MetricRegistry& registry = result.registry;

  EXPECT_EQ(registry.counter_value("group.requests"), result.metrics.total_requests());
  EXPECT_EQ(registry.counter_value("group.icp.queries"), result.transport.icp_queries);
  EXPECT_EQ(registry.counter_value("group.icp.replies"), result.transport.icp_replies);
  EXPECT_EQ(registry.counter_value("group.origin_fetches"), result.transport.origin_fetches);

  // Per-proxy counters sum to the group totals reported via ProxyStats.
  std::uint64_t local_hits = 0, accepted = 0, rejected = 0, suppressed = 0;
  for (std::size_t p = 0; p < config.num_proxies; ++p) {
    const std::string prefix = "proxy." + std::to_string(p) + ".";
    local_hits += registry.counter_value(prefix + "local.hits");
    accepted += registry.counter_value(prefix + "placement.accepted");
    rejected += registry.counter_value(prefix + "placement.rejected");
    suppressed += registry.counter_value(prefix + "promotions.suppressed");
  }
  std::uint64_t expected_hits = 0, expected_stored = 0, expected_declined = 0,
                expected_suppressed = 0;
  for (const ProxyStats& stats : result.proxy_stats) {
    expected_hits += stats.local_hits;
    expected_stored += stats.copies_stored;
    expected_declined += stats.copies_declined;
    expected_suppressed += stats.promotions_suppressed;
  }
  EXPECT_EQ(local_hits, expected_hits);
  EXPECT_EQ(suppressed, expected_suppressed);
  // Placement decisions are a superset of ProxyStats' copies_stored (the
  // registry also counts decisions taken on origin-fetch and parent paths),
  // so assert presence rather than equality where the books differ.
  EXPECT_GE(accepted + rejected, 1u);
  EXPECT_GT(expected_stored + expected_declined, 0u);

  // The request-size histogram saw every request.
  const auto it = registry.histograms().find("group.request_bytes");
  ASSERT_NE(it, registry.histograms().end());
  EXPECT_EQ(it->second.total(), result.metrics.total_requests());

  // End-of-run gauges mirror the occupancy block.
  EXPECT_DOUBLE_EQ(registry.gauge_value("group.replication_factor"),
                   result.replication_factor);
}

TEST(ObservabilityTest, TraceRingCapturesRequestLifecycles) {
  const Trace trace = make_trace();
  GroupConfig config = make_config();
  config.obs.trace_capacity = 1 << 20;  // large enough to keep everything
  const SimulationResult result = run_simulation(trace, config);
  const std::vector<SpanEvent> events = result.trace_log.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(result.trace_log.dropped(), 0u);

  std::uint64_t arrivals = 0, completes = 0;
  std::int64_t last_at = -1;
  for (const SpanEvent& event : events) {
    EXPECT_GE(event.at_ms, last_at);  // record order follows simulated time
    last_at = event.at_ms;
    if (event.kind == SpanKind::kArrival) ++arrivals;
    if (event.kind == SpanKind::kComplete) {
      ++completes;
      ASSERT_GE(event.value, 0);
      EXPECT_LE(event.value, 2);  // RequestOutcome codes
    }
  }
  // Every request opens with an arrival and closes with a completion.
  EXPECT_EQ(arrivals, trace.size());
  EXPECT_EQ(completes, trace.size());
}

TEST(ObservabilityTest, BoundedRingDropsOldestButKeepsCounting) {
  const Trace trace = make_trace();
  GroupConfig config = make_config();
  config.obs.trace_capacity = 64;
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.trace_log.size(), 64u);
  EXPECT_GT(result.trace_log.dropped(), 0u);
  EXPECT_EQ(result.trace_log.recorded(),
            result.trace_log.dropped() + result.trace_log.size());
}

TEST(ObservabilityTest, ProxySeriesSpansTheTrace) {
  const Trace trace = make_trace();
  GroupConfig config = make_config();
  config.obs.series_points = 8;
  const SimulationResult result = run_simulation(trace, config);
  ASSERT_FALSE(result.proxy_series.empty());
  TimePoint last = TimePoint::min();
  for (const ProxySeriesPoint& point : result.proxy_series) {
    EXPECT_GT(point.at, last);
    last = point.at;
    ASSERT_EQ(point.proxies.size(), config.num_proxies);
    for (const ProxySeriesSample& sample : point.proxies) {
      if (sample.finite) {
        EXPECT_GE(sample.exp_age_ms, 0.0);
      }
    }
  }
  // The final sample reflects end-of-run occupancy: some proxy holds bytes.
  Bytes resident = 0;
  for (const ProxySeriesSample& sample : result.proxy_series.back().proxies) {
    resident += sample.resident_bytes;
  }
  EXPECT_GT(resident, 0u);
}

TEST(ObservabilityTest, SeriesDisabledWhenPointsAreZero) {
  const Trace trace = make_trace();
  GroupConfig config = make_config();
  config.obs.series_points = 0;
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_TRUE(result.proxy_series.empty());
}

TEST(ObservabilityTest, PhaseTimingsArePopulated) {
  const Trace trace = make_trace();
  PhaseTimings timings;
  (void)run_simulation(trace, make_config(), {}, &timings);
  EXPECT_GT(timings.sim_ms, 0.0);
  EXPECT_GE(timings.report_ms, 0.0);
}

// S3's parallel-determinism gate for the observability outputs themselves:
// registry dump, span JSONL and proxy series must not depend on worker count.
TEST(ObservabilityTest, TracedSweepIsByteIdenticalAcrossWorkerCounts) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());

  const auto run_with_jobs = [&](std::size_t jobs) {
    SweepOptions options;
    options.jobs = jobs;
    options.obs_override = ObsConfig::with_tracing(4096);
    std::vector<std::string> trace_dumps;
    options.sink = [&](const SweepRunResult& run) {
      std::ostringstream out;
      run.result.trace_log.write_jsonl(out, run.label);
      trace_dumps.push_back(out.str());
    };
    SweepRunner runner(options);
    for (const Bytes capacity : {64 * kKiB, 128 * kKiB}) {
      for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
        GroupConfig config = make_config();
        config.aggregate_capacity = capacity;
        config.placement = placement;
        runner.add(std::string(to_string(placement)) + "@" + format_bytes(capacity),
                   config, trace);
      }
    }
    std::vector<std::string> result_dumps;
    for (const SweepRunResult& run : runner.run()) {
      result_dumps.push_back(simulation_result_to_json(run.result));
    }
    return std::make_pair(result_dumps, trace_dumps);
  };

  const auto [serial_results, serial_traces] = run_with_jobs(1);
  const auto [parallel_results, parallel_traces] = run_with_jobs(8);
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(serial_results[i], parallel_results[i]) << "result " << i << " diverged";
  }
  ASSERT_EQ(serial_traces.size(), parallel_traces.size());
  for (std::size_t i = 0; i < serial_traces.size(); ++i) {
    EXPECT_FALSE(serial_traces[i].empty());
    EXPECT_EQ(serial_traces[i], parallel_traces[i]) << "trace " << i << " diverged";
  }
}

TEST(ObservabilityTest, SweepObsOverrideAppliesToEveryJob) {
  const TraceRef trace = std::make_shared<const Trace>(make_trace());
  SweepOptions options;
  options.jobs = 1;
  options.obs_override = ObsConfig::disabled();
  SweepRunner runner(options);
  GroupConfig config = make_config();  // default obs: registry ON
  runner.add("dark", config, trace);
  const auto runs = runner.run();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(runs[0].config.obs.registry);
  EXPECT_TRUE(runs[0].result.registry.empty());
  EXPECT_EQ(runs[0].result.trace_log.recorded(), 0u);
}

}  // namespace
}  // namespace eacache
