#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/synthetic.h"

namespace eacache {
namespace {

SyntheticTraceConfig tiny_trace_config() {
  SyntheticTraceConfig config;
  config.num_requests = 5000;
  config.num_documents = 500;
  config.num_users = 20;
  config.span = hours(2);
  return config;
}

GroupConfig tiny_group(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = placement;
  return config;
}

TEST(SimulatorTest, RejectsUnorderedTrace) {
  Trace trace;
  trace.requests = {Request{kSimEpoch + sec(5), 0, 1, 100},
                    Request{kSimEpoch + sec(1), 0, 2, 100}};
  EXPECT_THROW((void)run_simulation(trace, tiny_group(PlacementKind::kEa)),
               std::invalid_argument);
}

TEST(SimulatorTest, EmptyTraceRunsCleanly) {
  const SimulationResult result = run_simulation(Trace{}, tiny_group(PlacementKind::kEa));
  EXPECT_EQ(result.metrics.total_requests(), 0u);
  EXPECT_TRUE(result.average_cache_expiration_age.is_infinite());
}

TEST(SimulatorTest, AccountsEveryRequest) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  const SimulationResult result = run_simulation(trace, tiny_group(PlacementKind::kEa));
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_EQ(result.metrics.count(RequestOutcome::kLocalHit) +
                result.metrics.count(RequestOutcome::kRemoteHit) +
                result.metrics.count(RequestOutcome::kMiss),
            trace.size());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  const GroupConfig config = tiny_group(PlacementKind::kEa);
  const SimulationResult a = run_simulation(trace, config);
  const SimulationResult b = run_simulation(trace, config);
  EXPECT_EQ(a.metrics.total_requests(), b.metrics.total_requests());
  EXPECT_DOUBLE_EQ(a.metrics.hit_rate(), b.metrics.hit_rate());
  EXPECT_DOUBLE_EQ(a.metrics.byte_hit_rate(), b.metrics.byte_hit_rate());
  EXPECT_EQ(a.transport.total_messages(), b.transport.total_messages());
  EXPECT_EQ(a.total_resident_copies, b.total_resident_copies);
  EXPECT_EQ(a.average_cache_expiration_age, b.average_cache_expiration_age);
}

TEST(SimulatorTest, PerProxyDataPopulated) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  const SimulationResult result = run_simulation(trace, tiny_group(PlacementKind::kEa));
  EXPECT_EQ(result.proxy_stats.size(), 4u);
  EXPECT_EQ(result.per_cache_expiration_age.size(), 4u);
  std::uint64_t client_requests = 0;
  for (const ProxyStats& stats : result.proxy_stats) client_requests += stats.client_requests;
  EXPECT_EQ(client_requests, trace.size());
}

TEST(SimulatorTest, SnapshotsCoverTheRun) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  SimulationOptions options;
  options.snapshot_period = minutes(10);
  const SimulationResult result =
      run_simulation(trace, tiny_group(PlacementKind::kEa), options);
  // 2-hour trace, 10-minute snapshots: roughly 12, allow Poisson wiggle.
  EXPECT_GE(result.snapshots.size(), 6u);
  EXPECT_LE(result.snapshots.size(), 24u);
  for (std::size_t i = 1; i < result.snapshots.size(); ++i) {
    EXPECT_GT(result.snapshots[i].at, result.snapshots[i - 1].at);
    EXPECT_GE(result.snapshots[i].total_requests, result.snapshots[i - 1].total_requests);
  }
}

TEST(SimulatorTest, NoSnapshotsByDefault) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  const SimulationResult result = run_simulation(trace, tiny_group(PlacementKind::kEa));
  EXPECT_TRUE(result.snapshots.empty());
}

TEST(SimulatorTest, ReplicationDiagnosticsConsistent) {
  const Trace trace = generate_synthetic_trace(tiny_trace_config());
  const SimulationResult result = run_simulation(trace, tiny_group(PlacementKind::kAdHoc));
  EXPECT_GE(result.total_resident_copies, result.unique_resident_documents);
  if (result.unique_resident_documents > 0) {
    EXPECT_NEAR(result.replication_factor,
                static_cast<double>(result.total_resident_copies) /
                    static_cast<double>(result.unique_resident_documents),
                1e-12);
  }
}

}  // namespace
}  // namespace eacache
