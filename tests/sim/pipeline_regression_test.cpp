// Legacy-result pinning for the request-pipeline redesign.
//
// These tests replay a fixed synthetic trace through every major
// configuration axis and compare the FULL result JSON byte-for-byte against
// goldens generated from the pre-pipeline synchronous CacheGroup::serve().
// They are the enforcement behind the redesign's compatibility contract:
// with the pipeline's concurrency effects disabled (the default —
// event_driven off, retries off, coalescing off), the staged request
// machine must reproduce the legacy figures exactly.
//
// Regenerate (only when a change is MEANT to alter legacy results):
//   EACACHE_UPDATE_GOLDEN=1 ./test_sim --gtest_filter='PipelineRegression*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "group/cache_group.h"
#include "sim/result_json.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

#ifndef EACACHE_GOLDEN_DIR
#error "EACACHE_GOLDEN_DIR must point at tests/golden"
#endif

namespace eacache {
namespace {

const Trace& regression_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config;
    config.num_requests = 6000;
    config.num_documents = 900;
    config.num_users = 32;
    config.span = hours(6);
    config.seed = 424242;
    return generate_synthetic_trace(config);
  }();
  return trace;
}

GroupConfig base_config() {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  return config;
}

std::string golden_path(const std::string& name) {
  return std::string(EACACHE_GOLDEN_DIR) + "/" + name + ".json";
}

void check_against_golden(const std::string& name, const GroupConfig& config) {
  const SimulationResult result = run_simulation(regression_trace(), config);
  const std::string json = simulation_result_to_json(result);

  const std::string path = golden_path(name);
  if (std::getenv("EACACHE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << json << '\n';
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with EACACHE_UPDATE_GOLDEN=1)";
  std::ostringstream stored;
  stored << in.rdbuf();
  std::string expected = stored.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  // Byte-identical, not merely equal-parsed: the pre-pipeline serialization
  // is part of the contract (downstream plots diff these files).
  EXPECT_EQ(json, expected) << "result JSON diverged from the pre-pipeline golden '"
                            << name << "'";
}

TEST(PipelineRegression, EaDistributed) { check_against_golden("ea_distributed", base_config()); }

TEST(PipelineRegression, AdHocDistributed) {
  GroupConfig config = base_config();
  config.placement = PlacementKind::kAdHoc;
  check_against_golden("adhoc_distributed", config);
}

TEST(PipelineRegression, EaHierarchical) {
  GroupConfig config = base_config();
  config.topology = TopologyKind::kHierarchical;
  check_against_golden("ea_hierarchical", config);
}

TEST(PipelineRegression, EaDigestDiscovery) {
  GroupConfig config = base_config();
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 2048;
  config.digest.refresh_period = minutes(15);
  check_against_golden("ea_digest", config);
}

TEST(PipelineRegression, EaIcpLoss) {
  // Pins the network RNG draw order: one deterministic draw per probed peer.
  GroupConfig config = base_config();
  config.icp_loss_probability = 0.2;
  check_against_golden("ea_icp_loss", config);
}

TEST(PipelineRegression, EaCoherence) {
  GroupConfig config = base_config();
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = minutes(30);
  config.origin.min_update_interval = minutes(30);
  config.origin.max_update_interval = hours(8);
  check_against_golden("ea_coherence", config);
}

TEST(PipelineRegression, HashPartition) {
  GroupConfig config = base_config();
  config.placement = PlacementKind::kAdHoc;
  config.routing = RoutingMode::kHashPartition;
  check_against_golden("hash_partition", config);
}

TEST(PipelineRegression, EaPrefetch) {
  GroupConfig config = base_config();
  config.prefetch.enabled = true;
  check_against_golden("ea_prefetch", config);
}

TEST(PipelineRegression, EaTraced) {
  // Tracing on: the result JSON carries the span-ring occupancy, so this
  // golden pins the NUMBER of spans the legacy path records per request.
  GroupConfig config = base_config();
  config.obs.trace_capacity = 4096;
  check_against_golden("ea_traced", config);
}

}  // namespace
}  // namespace eacache
