// Failure injection: proxies crash-restart (losing their disks) mid-trace.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace failure_trace() {
  SyntheticTraceConfig config;
  config.num_requests = 20000;
  config.num_documents = 1500;
  config.num_users = 48;
  config.span = hours(10);
  return generate_synthetic_trace(config);
}

GroupConfig group_config(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = placement;
  return config;
}

TEST(FailureInjectionTest, FlushEmptiesExactlyOneProxy) {
  CacheGroup group(group_config(PlacementKind::kEa));
  for (int i = 0; i < 200; ++i) {
    group.serve(Request{kSimEpoch + sec(i + 1), static_cast<UserId>(i % 16),
                        static_cast<DocumentId>(i % 60), 512});
  }
  ASSERT_GT(group.proxy(0).store().resident_count(), 0u);
  const std::size_t other = group.proxy(1).store().resident_count();
  group.flush_proxy(0, kSimEpoch + sec(300));
  EXPECT_EQ(group.proxy(0).store().resident_count(), 0u);
  EXPECT_EQ(group.proxy(0).store().resident_bytes(), 0u);
  EXPECT_EQ(group.proxy(1).store().resident_count(), other);
}

TEST(FailureInjectionTest, FlushDoesNotPoisonContentionStats) {
  CacheGroup group(group_config(PlacementKind::kEa));
  for (int i = 0; i < 100; ++i) {
    group.serve(Request{kSimEpoch + sec(i + 1), 1, static_cast<DocumentId>(i), 512});
  }
  const auto victims_before = group.proxy(group.home_proxy(1)).contention().victims_observed();
  group.flush_proxy(group.home_proxy(1), kSimEpoch + sec(200));
  // Explicit removals are not contention signals.
  EXPECT_EQ(group.proxy(group.home_proxy(1)).contention().victims_observed(), victims_before);
}

TEST(FailureInjectionTest, GroupKeepsServingAfterFlush) {
  const Trace trace = failure_trace();
  SimulationOptions options;
  const TimePoint mid = trace.requests[trace.size() / 2].at;
  options.faults.flushes.push_back({mid, 0});
  options.faults.flushes.push_back({mid, 2});
  const SimulationResult result = run_simulation(trace, group_config(PlacementKind::kEa), options);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
}

TEST(FailureInjectionTest, FlushCostsHitRate) {
  const Trace trace = failure_trace();
  const GroupConfig config = group_config(PlacementKind::kEa);
  const SimulationResult undisturbed = run_simulation(trace, config);

  SimulationOptions options;
  // Crash every proxy at the midpoint: the second half restarts cold.
  const TimePoint mid = trace.requests[trace.size() / 2].at;
  for (ProxyId p = 0; p < 4; ++p) options.faults.flushes.push_back({mid, p});
  const SimulationResult crashed = run_simulation(trace, config, options);

  EXPECT_LT(crashed.metrics.hit_rate(), undisturbed.metrics.hit_rate());
  EXPECT_EQ(crashed.metrics.total_requests(), undisturbed.metrics.total_requests());
}

TEST(FailureInjectionTest, BothSchemesSurviveRepeatedCrashes) {
  const Trace trace = failure_trace();
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    SimulationOptions options;
    for (int k = 1; k <= 8; ++k) {
      options.faults.flushes.push_back(
          {trace.requests[trace.size() * static_cast<std::size_t>(k) / 9].at,
           static_cast<ProxyId>(k % 4)});
    }
    const SimulationResult result = run_simulation(trace, group_config(placement), options);
    EXPECT_EQ(result.metrics.total_requests(), trace.size());
    EXPECT_GT(result.metrics.hit_rate(), 0.0);
  }
}

TEST(FailureInjectionTest, DigestModeRecoversViaRefresh) {
  // After a crash the victim's stale snapshot advertises documents it no
  // longer has: failed probes until the next refresh republishes reality.
  const Trace trace = failure_trace();
  GroupConfig config = group_config(PlacementKind::kEa);
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 2048;
  config.digest.refresh_period = minutes(10);

  SimulationOptions options;
  options.faults.flushes.push_back({trace.requests[trace.size() / 2].at, 0});
  const SimulationResult result = run_simulation(trace, config, options);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_GT(result.transport.failed_probes, 0u);
}

TEST(FailureInjectionTest, RunSpecFaultsMatchLegacySimulationOptions) {
  // The RunSpec entry point (shards == 0) must drive the identical classic
  // path: a fault plan expressed either way produces identical results.
  // (The pre-FaultPlan flush_events shim was removed with the RunSpec API.)
  const Trace trace = failure_trace();
  const GroupConfig config = group_config(PlacementKind::kEa);
  const TimePoint mid = trace.requests[trace.size() / 2].at;

  RunSpec spec;
  spec.group = config;
  spec.faults.flushes.push_back({mid, 1});
  SimulationOptions plan;
  plan.faults.flushes.push_back({mid, 1});

  const SimulationResult a = run(trace, spec);
  const SimulationResult b = run_simulation(trace, config, plan);
  EXPECT_EQ(a.metrics.hit_rate(), b.metrics.hit_rate());
  EXPECT_EQ(a.metrics.measured_average_latency(), b.metrics.measured_average_latency());
  EXPECT_EQ(a.transport.total_messages(), b.transport.total_messages());
  EXPECT_EQ(a.total_resident_copies, b.total_resident_copies);
}

TEST(FailureInjectionTest, PeerOutageSilencesProbesUnderTheSerializedDriver) {
  // The serialized driver books unanswered probes as ICP losses; outside
  // the window the run is untouched.
  const Trace trace = failure_trace();
  const GroupConfig config = group_config(PlacementKind::kEa);

  SimulationOptions options;
  options.faults.outages.push_back(
      PeerOutage{/*proxy=*/1, trace.requests[trace.size() / 4].at,
                 trace.requests[trace.size() / 2].at});

  const SimulationResult down = run_simulation(trace, config, options);
  const SimulationResult clean = run_simulation(trace, config);
  EXPECT_GT(down.transport.icp_losses, 0u);
  EXPECT_EQ(clean.transport.icp_losses, 0u);
  EXPECT_EQ(down.metrics.total_requests(), trace.size());
  // Silent peers cannot answer hits: cooperative hit rate can only drop.
  EXPECT_LE(down.metrics.hit_rate(), clean.metrics.hit_rate());
}

TEST(FailureInjectionTest, OutageWindowIsHalfOpen) {
  GroupConfig config = group_config(PlacementKind::kEa);
  CacheGroup group(config);
  group.set_outages({PeerOutage{2, kSimEpoch + sec(10), kSimEpoch + sec(20)}});
  EXPECT_FALSE(group.peer_down(2, kSimEpoch + sec(9)));
  EXPECT_TRUE(group.peer_down(2, kSimEpoch + sec(10)));
  EXPECT_TRUE(group.peer_down(2, kSimEpoch + sec(19)));
  EXPECT_FALSE(group.peer_down(2, kSimEpoch + sec(20)));
  EXPECT_FALSE(group.peer_down(1, kSimEpoch + sec(15)));
}

TEST(FailureInjectionTest, HeterogeneousCapacitiesRespectWeights) {
  GroupConfig config = group_config(PlacementKind::kEa);
  config.aggregate_capacity = 8 * kMiB;
  config.capacity_weights = {4.0, 2.0, 1.0, 1.0};
  CacheGroup group(config);
  EXPECT_EQ(group.proxy(0).store().capacity(), 4 * kMiB);
  EXPECT_EQ(group.proxy(1).store().capacity(), 2 * kMiB);
  EXPECT_EQ(group.proxy(2).store().capacity(), 1 * kMiB);
  EXPECT_EQ(group.proxy(3).store().capacity(), 1 * kMiB);
}

TEST(FailureInjectionTest, HeterogeneousCapacityValidation) {
  GroupConfig config = group_config(PlacementKind::kEa);
  config.capacity_weights = {1.0, 2.0};  // wrong size for 4 caches
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
  config.capacity_weights = {1.0, 1.0, 1.0, -1.0};
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(FailureInjectionTest, SkewedCapacitiesStillServeCorrectly) {
  const Trace trace = failure_trace();
  GroupConfig config = group_config(PlacementKind::kEa);
  config.capacity_weights = {8.0, 1.0, 1.0, 1.0};
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  // The big cache should experience less contention than the small ones.
  const ExpAge big = result.per_cache_expiration_age[0];
  const ExpAge small = result.per_cache_expiration_age[1];
  if (!big.is_infinite() && !small.is_infinite()) {
    EXPECT_GT(big.millis(), small.millis());
  }
}

}  // namespace
}  // namespace eacache
