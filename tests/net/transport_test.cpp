#include "net/transport.h"

#include <gtest/gtest.h>

namespace eacache {
namespace {

TEST(TransportTest, StartsEmpty) {
  Transport t;
  EXPECT_EQ(t.stats().total_messages(), 0u);
  EXPECT_EQ(t.stats().total_bytes(), 0u);
}

TEST(TransportTest, IcpAccounting) {
  Transport t;
  t.record_icp_query(IcpQuery{0, 1, 42});
  t.record_icp_reply(IcpReply{1, 0, 42, true});
  EXPECT_EQ(t.stats().icp_queries, 1u);
  EXPECT_EQ(t.stats().icp_replies, 1u);
  EXPECT_EQ(t.stats().icp_bytes, 2 * t.costs().icp_message());
}

TEST(TransportTest, HttpWithoutPiggybackHasNoOverheadBytes) {
  Transport t;
  HttpRequest req{0, 1, 42, std::nullopt};
  t.record_http_request(req);
  HttpResponse resp;
  resp.body_size = 4096;
  t.record_http_response(resp);
  EXPECT_EQ(t.stats().piggyback_bytes, 0u);
  EXPECT_EQ(t.stats().http_body_bytes, 4096u);
  EXPECT_EQ(t.stats().http_header_bytes,
            t.costs().http_request_headers + t.costs().http_response_headers);
}

TEST(TransportTest, EaPiggybackCostsEightBytesPerHttpMessage) {
  Transport t;
  HttpRequest req{0, 1, 42, ExpAge::from_millis(500)};
  t.record_http_request(req);
  HttpResponse resp;
  resp.responder_age = ExpAge::from_millis(900);
  t.record_http_response(resp);
  EXPECT_EQ(t.stats().piggyback_bytes, 2 * t.costs().ea_piggyback);
}

TEST(TransportTest, OriginFetchCountsBothDirections) {
  Transport t;
  t.record_origin_fetch(/*requester=*/0, 1000);
  EXPECT_EQ(t.stats().origin_fetches, 1u);
  EXPECT_EQ(t.stats().http_body_bytes, 1000u);
  EXPECT_EQ(t.stats().http_header_bytes,
            t.costs().http_request_headers + t.costs().http_response_headers);
  // Origin traffic is not an inter-proxy message.
  EXPECT_EQ(t.stats().total_messages(), 0u);
}

TEST(TransportTest, PerLinkCountersAccumulateByEndpointPair) {
  MetricRegistry registry;
  Transport t;
  t.bind_registry(&registry, 2);
  t.record_icp_query(IcpQuery{0, 1, 42});
  t.record_icp_reply(IcpReply{1, 0, 42, true});
  t.record_origin_fetch(/*requester=*/1, 1000);
  EXPECT_EQ(registry.counter_value("link.0->1.bytes"), t.costs().icp_message());
  EXPECT_EQ(registry.counter_value("link.1->0.bytes"), t.costs().icp_message());
  EXPECT_EQ(registry.counter_value("link.1->origin.bytes"),
            t.costs().http_request_headers + t.costs().http_response_headers + 1000);
  // Unused links register nothing (sparse accounting).
  EXPECT_EQ(registry.counters().size(), 3u);
}

TEST(TransportTest, UnboundRegistryRecordsNoLinkCounters) {
  Transport t;
  t.record_icp_query(IcpQuery{0, 1, 42});  // must not crash; stats still move
  EXPECT_EQ(t.stats().icp_queries, 1u);

  MetricRegistry disabled(false);
  Transport t2;
  t2.bind_registry(&disabled, 2);
  t2.record_icp_query(IcpQuery{0, 1, 42});
  EXPECT_TRUE(disabled.empty());
}

TEST(TransportTest, TotalsAddUp) {
  Transport t;
  t.record_icp_query(IcpQuery{});
  t.record_icp_reply(IcpReply{});
  t.record_http_request(HttpRequest{});
  HttpResponse resp;
  resp.body_size = 10;
  t.record_http_response(resp);
  EXPECT_EQ(t.stats().total_messages(), 4u);
  EXPECT_EQ(t.stats().total_bytes(), t.stats().icp_bytes + t.stats().http_header_bytes +
                                         t.stats().http_body_bytes +
                                         t.stats().piggyback_bytes);
}

TEST(TransportTest, CustomWireCosts) {
  WireCosts costs;
  costs.icp_header = 10;
  costs.avg_url = 30;
  Transport t(costs);
  t.record_icp_query(IcpQuery{});
  EXPECT_EQ(t.stats().icp_bytes, 40u);
}

}  // namespace
}  // namespace eacache
