#include "net/latency_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

TEST(LatencyModelTest, PaperDefaults) {
  constexpr LatencyModel model = LatencyModel::paper_defaults();
  EXPECT_EQ(model.local_hit, msec(146));
  EXPECT_EQ(model.remote_hit, msec(342));
  EXPECT_EQ(model.miss, msec(2784));
}

TEST(LatencyModelTest, LatencyForOutcome) {
  constexpr LatencyModel model;
  EXPECT_EQ(model.latency_for(RequestOutcome::kLocalHit), msec(146));
  EXPECT_EQ(model.latency_for(RequestOutcome::kRemoteHit), msec(342));
  EXPECT_EQ(model.latency_for(RequestOutcome::kMiss), msec(2784));
}

TEST(LatencyModelTest, RemoteToMissRatio) {
  const LatencyModel model = LatencyModel::with_remote_to_miss_ratio(0.5);
  EXPECT_EQ(model.remote_hit, msec(1392));
  EXPECT_EQ(model.miss, msec(2784));
  EXPECT_EQ(model.local_hit, msec(146));
}

TEST(LatencyModelTest, RatioClampedToLocalHit) {
  // A tiny ratio cannot make remote hits faster than local ones.
  const LatencyModel model = LatencyModel::with_remote_to_miss_ratio(0.001);
  EXPECT_EQ(model.remote_hit, model.local_hit);
}

TEST(LatencyModelTest, PaperRatioIsAboutEightPercent) {
  // The paper's measured constants give RHL/ML = 342/2784 ~ 0.123.
  constexpr LatencyModel model;
  const double ratio = static_cast<double>(model.remote_hit.count()) /
                       static_cast<double>(model.miss.count());
  EXPECT_NEAR(ratio, 0.123, 0.001);
}

TEST(LatencyModelTest, BadRatioThrows) {
  EXPECT_THROW((void)LatencyModel::with_remote_to_miss_ratio(0.0), std::invalid_argument);
  EXPECT_THROW((void)LatencyModel::with_remote_to_miss_ratio(-1.0), std::invalid_argument);
}

TEST(OutcomeTest, ToString) {
  EXPECT_EQ(to_string(RequestOutcome::kLocalHit), "local-hit");
  EXPECT_EQ(to_string(RequestOutcome::kRemoteHit), "remote-hit");
  EXPECT_EQ(to_string(RequestOutcome::kMiss), "miss");
}

}  // namespace
}  // namespace eacache
