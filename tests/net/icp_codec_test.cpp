#include "net/icp_codec.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/random.h"
#include "net/transport.h"

namespace eacache {
namespace {

IcpPacket sample_query() {
  IcpPacket packet;
  packet.opcode = IcpOpcode::kQuery;
  packet.request_number = 0xdeadbeef;
  packet.sender_address = 0x0a000001;
  packet.requester_address = 0x0a000002;
  packet.url = "http://example.com/index.html";
  return packet;
}

TEST(IcpCodecTest, QueryRoundTrip) {
  const IcpPacket original = sample_query();
  const auto bytes = icp_encode(original);
  const auto decoded = icp_decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(IcpCodecTest, ReplyRoundTrip) {
  for (const IcpOpcode opcode : {IcpOpcode::kHit, IcpOpcode::kMiss, IcpOpcode::kErr,
                                 IcpOpcode::kMissNoFetch, IcpOpcode::kDenied}) {
    IcpPacket packet;
    packet.opcode = opcode;
    packet.request_number = 42;
    packet.sender_address = 7;
    packet.url = "http://a/b";
    const auto decoded = icp_decode(icp_encode(packet));
    ASSERT_TRUE(decoded.has_value()) << to_string(opcode);
    EXPECT_EQ(*decoded, packet);
  }
}

TEST(IcpCodecTest, HeaderLayoutMatchesRfc2186) {
  const auto bytes = icp_encode(sample_query());
  EXPECT_EQ(bytes[0], 1u);  // ICP_OP_QUERY
  EXPECT_EQ(bytes[1], 2u);  // version 2
  // Message length, big-endian, equals the buffer size.
  EXPECT_EQ((bytes[2] << 8) | bytes[3], static_cast<int>(bytes.size()));
  // Request number 0xdeadbeef at offset 4.
  EXPECT_EQ(bytes[4], 0xde);
  EXPECT_EQ(bytes[5], 0xad);
  EXPECT_EQ(bytes[6], 0xbe);
  EXPECT_EQ(bytes[7], 0xef);
  // NUL-terminated payload.
  EXPECT_EQ(bytes.back(), 0u);
}

TEST(IcpCodecTest, EncodedSizeFormula) {
  const IcpPacket query = sample_query();
  EXPECT_EQ(icp_encoded_size(query), 20 + 4 + query.url.size() + 1);
  EXPECT_EQ(icp_encode(query).size(), icp_encoded_size(query));
  IcpPacket reply = query;
  reply.opcode = IcpOpcode::kHit;
  reply.requester_address = 0;
  EXPECT_EQ(icp_encoded_size(reply), 20 + reply.url.size() + 1);
}

TEST(IcpCodecTest, RejectsUnencodablePackets) {
  IcpPacket bad = sample_query();
  bad.opcode = IcpOpcode::kInvalid;
  EXPECT_THROW((void)icp_encode(bad), std::invalid_argument);
  bad = sample_query();
  bad.url = std::string("a\0b", 3);
  EXPECT_THROW((void)icp_encode(bad), std::invalid_argument);
  bad = sample_query();
  bad.url.assign(70000, 'x');
  EXPECT_THROW((void)icp_encode(bad), std::invalid_argument);
}

TEST(IcpCodecTest, DecodeRejectsMalformedInput) {
  const auto good = icp_encode(sample_query());

  // Truncated header.
  EXPECT_FALSE(icp_decode(std::span(good).first(10)).has_value());
  // Truncated payload (length field no longer matches).
  EXPECT_FALSE(icp_decode(std::span(good).first(good.size() - 3)).has_value());

  auto bad = good;
  bad[0] = 99;  // unknown opcode
  EXPECT_FALSE(icp_decode(bad).has_value());

  bad = good;
  bad[1] = 3;  // wrong version
  EXPECT_FALSE(icp_decode(bad).has_value());

  bad = good;
  bad[3] ^= 0xff;  // corrupted length
  EXPECT_FALSE(icp_decode(bad).has_value());

  bad = good;
  bad.back() = 'x';  // missing NUL terminator
  EXPECT_FALSE(icp_decode(bad).has_value());

  // A query too short to carry the requester address.
  IcpPacket tiny;
  tiny.opcode = IcpOpcode::kHit;
  tiny.url = "";
  auto hit_bytes = icp_encode(tiny);
  hit_bytes[0] = static_cast<std::uint8_t>(IcpOpcode::kQuery);
  EXPECT_FALSE(icp_decode(hit_bytes).has_value());
}

TEST(IcpCodecTest, DecodeNeverCrashesOnRandomBytes) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> noise(rng.next_below(64));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)icp_decode(noise);  // must not crash; result may be anything valid
  }
  SUCCEED();
}

TEST(IcpCodecTest, FuzzRoundTripRandomPackets) {
  Rng rng(0xc0de);
  const IcpOpcode opcodes[] = {IcpOpcode::kQuery, IcpOpcode::kHit, IcpOpcode::kMiss,
                               IcpOpcode::kErr, IcpOpcode::kMissNoFetch, IcpOpcode::kDenied};
  for (int trial = 0; trial < 2000; ++trial) {
    IcpPacket packet;
    packet.opcode = opcodes[rng.next_below(6)];
    packet.request_number = static_cast<std::uint32_t>(rng.next());
    packet.options = static_cast<std::uint32_t>(rng.next());
    packet.option_data = static_cast<std::uint32_t>(rng.next());
    packet.sender_address = static_cast<std::uint32_t>(rng.next());
    if (packet.opcode == IcpOpcode::kQuery) {
      packet.requester_address = static_cast<std::uint32_t>(rng.next());
    }
    const std::size_t url_len = rng.next_below(200);
    packet.url.reserve(url_len);
    for (std::size_t i = 0; i < url_len; ++i) {
      packet.url.push_back(static_cast<char>('!' + rng.next_below(90)));
    }
    const auto decoded = icp_decode(icp_encode(packet));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, packet);
  }
}

TEST(IcpCodecTest, SimulatorWireCostsApproximateRealPackets) {
  // The transport layer charges icp_header + avg_url per message; the real
  // encoding of a typical query must land in the same ballpark (the
  // simulator's byte accounting is an estimate, not fiction).
  const WireCosts costs;
  IcpPacket packet = sample_query();
  packet.url = "http://www.cs.bu.edu/students/grads/index.html";  // typical mid-90s URL
  const double real = static_cast<double>(icp_encoded_size(packet));
  const double modeled = static_cast<double>(costs.icp_message());
  EXPECT_NEAR(modeled, real, 0.4 * real);
}

TEST(IcpCodecTest, FuzzRejectsEveryTruncationPoint) {
  // The length field in the header covers the whole message, so NO proper
  // prefix of a valid encoding may decode — random packets, random cuts.
  Rng rng(0xcafe);
  for (int trial = 0; trial < 500; ++trial) {
    IcpPacket packet;
    packet.opcode = rng.next_bool(0.5) ? IcpOpcode::kQuery : IcpOpcode::kHit;
    packet.request_number = static_cast<std::uint32_t>(rng.next());
    packet.sender_address = static_cast<std::uint32_t>(rng.next());
    if (packet.opcode == IcpOpcode::kQuery) {
      packet.requester_address = static_cast<std::uint32_t>(rng.next());
    }
    const std::size_t url_len = rng.next_below(120);
    for (std::size_t i = 0; i < url_len; ++i) {
      packet.url.push_back(static_cast<char>('!' + rng.next_below(90)));
    }
    const auto bytes = icp_encode(packet);
    ASSERT_TRUE(icp_decode(bytes).has_value());
    const std::size_t cut = rng.next_below(bytes.size());  // in [0, size)
    EXPECT_FALSE(icp_decode(std::span(bytes).first(cut)).has_value())
        << "trial " << trial << ": prefix of " << cut << " of " << bytes.size()
        << " bytes decoded";
  }
}

TEST(IcpCodecTest, OpcodeNames) {
  EXPECT_EQ(to_string(IcpOpcode::kQuery), "ICP_OP_QUERY");
  EXPECT_EQ(to_string(IcpOpcode::kMissNoFetch), "ICP_OP_MISS_NOFETCH");
  EXPECT_EQ(to_string(IcpOpcode::kInvalid), "ICP_OP_INVALID");
}

}  // namespace
}  // namespace eacache
