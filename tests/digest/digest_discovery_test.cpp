// Group-level behaviour of the Summary-Cache digest discovery mode.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

GroupConfig digest_group(PlacementKind placement = PlacementKind::kEa) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 64 * kKiB;
  config.placement = placement;
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 256;
  config.digest.refresh_period = minutes(5);
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

UserId user_on(const CacheGroup& group, ProxyId proxy) {
  for (UserId u = 0; u < 10000; ++u) {
    if (group.home_proxy(u) == proxy) return u;
  }
  throw std::runtime_error("no user maps to proxy");
}

TEST(DigestDiscoveryTest, NoIcpTrafficEver) {
  CacheGroup group(digest_group());
  const UserId u = user_on(group, 0);
  for (int i = 0; i < 50; ++i) {
    group.serve(req(i + 1, u, static_cast<DocumentId>(i % 10)));
  }
  EXPECT_EQ(group.transport_stats().icp_queries, 0u);
  EXPECT_EQ(group.transport_stats().icp_replies, 0u);
  EXPECT_GT(group.transport_stats().digest_publications, 0u);
  EXPECT_GT(group.transport_stats().digest_bytes, 0u);
}

TEST(DigestDiscoveryTest, InitialPublicationIsOnePerPeerPair) {
  CacheGroup group(digest_group());
  const UserId u = user_on(group, 0);
  group.serve(req(1, u, 1));
  // 4 proxies broadcast to 3 peers each on first contact.
  EXPECT_EQ(group.transport_stats().digest_publications, 12u);
}

TEST(DigestDiscoveryTest, RepublishesAfterRefreshPeriod) {
  CacheGroup group(digest_group());
  const UserId u = user_on(group, 0);
  group.serve(req(1, u, 1));
  const auto first = group.transport_stats().digest_publications;
  group.serve(req(2, u, 2));  // within the period: no new publications
  EXPECT_EQ(group.transport_stats().digest_publications, first);
  group.serve(req(600, u, 3));  // 10 minutes later: everyone republishes
  EXPECT_EQ(group.transport_stats().digest_publications, first + 12);
}

TEST(DigestDiscoveryTest, FreshSnapshotEnablesRemoteHit) {
  CacheGroup group(digest_group(PlacementKind::kAdHoc));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(1, u0, 42));  // miss; cached at proxy 0, NOT yet in any snapshot
  // After the refresh period the snapshot includes doc 42:
  const RequestOutcome outcome = group.serve(req(601, u1, 42));
  EXPECT_EQ(outcome, RequestOutcome::kRemoteHit);
  EXPECT_EQ(group.transport_stats().failed_probes, 0u);
}

TEST(DigestDiscoveryTest, StaleSnapshotMissesRecentAdmissions) {
  // A document admitted right after a publish is invisible to peers until
  // the next refresh: the request goes to the origin even though a copy
  // exists in the group (the false-negative cost of Summary Cache).
  CacheGroup group(digest_group(PlacementKind::kAdHoc));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(1, u0, 42));  // snapshots were published at t=1 BEFORE this miss
  const RequestOutcome outcome = group.serve(req(2, u1, 42));
  EXPECT_EQ(outcome, RequestOutcome::kMiss);
  EXPECT_TRUE(group.proxy(0).store().contains(42));
}

TEST(DigestDiscoveryTest, StaleSnapshotCausesFailedProbe) {
  // Proxy 0 caches doc 42, publishes, then evicts it; a peer probing on the
  // stale snapshot gets a found=false response and falls back to origin.
  GroupConfig config = digest_group(PlacementKind::kAdHoc);
  config.aggregate_capacity = 8 * kKiB;  // 2KiB per proxy: 4 x 512B docs
  CacheGroup group(config);
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);

  group.serve(req(1, u0, 42));
  group.serve(req(601, u0, 1000));  // triggers republish including doc 42
  // Churn proxy 0 so doc 42 is evicted (4 new docs push everything out).
  for (int i = 0; i < 6; ++i) {
    group.serve(req(602 + i, u0, 2000 + static_cast<DocumentId>(i)));
  }
  ASSERT_FALSE(group.proxy(0).store().contains(42));

  const auto probes_before = group.transport_stats().failed_probes;
  const RequestOutcome outcome = group.serve(req(650, u1, 42));
  EXPECT_EQ(outcome, RequestOutcome::kMiss);
  EXPECT_GT(group.transport_stats().failed_probes, probes_before);
}

TEST(DigestDiscoveryTest, FailedProbesAddLatency) {
  GroupConfig config = digest_group(PlacementKind::kAdHoc);
  config.aggregate_capacity = 8 * kKiB;
  config.latency.failed_probe = msec(200);
  CacheGroup group(config);
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);

  group.serve(req(1, u0, 42));
  group.serve(req(601, u0, 1000));  // republish
  for (int i = 0; i < 6; ++i) {
    group.serve(req(602 + i, u0, 2000 + static_cast<DocumentId>(i)));
  }
  const Duration sum_before = group.metrics().total_latency();
  group.serve(req(650, u1, 42));  // failed probe(s) then origin fetch
  const Duration last = group.metrics().total_latency() - sum_before;
  EXPECT_GE(last, config.latency.miss + config.latency.failed_probe);
}

TEST(DigestDiscoveryTest, EndToEndBothSchemes) {
  SyntheticTraceConfig workload;
  workload.num_requests = 10000;
  workload.num_documents = 1000;
  workload.num_users = 32;
  workload.span = hours(4);
  const Trace trace = generate_synthetic_trace(workload);

  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    GroupConfig config = digest_group(placement);
    config.aggregate_capacity = 512 * kKiB;
    config.digest.expected_items = 1024;
    const SimulationResult result = run_simulation(trace, config);
    EXPECT_EQ(result.metrics.total_requests(), trace.size());
    EXPECT_GT(result.metrics.hit_rate(), 0.0);
    EXPECT_EQ(result.transport.icp_queries, 0u);
    EXPECT_GT(result.transport.digest_publications, 0u);
  }
}

TEST(DigestDiscoveryTest, DigestTradesMessagesForHitRate) {
  // The Summary-Cache promise: far fewer inter-proxy messages than ICP at a
  // modest hit-rate cost (stale snapshots miss some remote hits).
  SyntheticTraceConfig workload;
  workload.num_requests = 20000;
  workload.num_documents = 2000;
  workload.num_users = 32;
  workload.span = hours(4);
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  config.digest.expected_items = 2048;

  config.discovery = DiscoveryMode::kIcp;
  const SimulationResult icp = run_simulation(trace, config);
  config.discovery = DiscoveryMode::kDigest;
  const SimulationResult digest = run_simulation(trace, config);

  EXPECT_LT(digest.transport.total_messages(), icp.transport.total_messages() / 2);
  EXPECT_LE(digest.metrics.hit_rate(), icp.metrics.hit_rate() + 1e-9);
  EXPECT_GT(digest.metrics.hit_rate(), icp.metrics.hit_rate() - 0.15);
}

}  // namespace
}  // namespace eacache
