#include "digest/counting_bloom.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/random.h"

namespace eacache {
namespace {

TEST(CountingBloomTest, InsertRemoveRoundTrip) {
  CountingBloomFilter filter(1 << 12, 4);
  filter.insert(7);
  EXPECT_TRUE(filter.maybe_contains(7));
  filter.remove(7);
  EXPECT_FALSE(filter.maybe_contains(7));
}

TEST(CountingBloomTest, RemoveSupportsChurn) {
  // The whole point of counting over plain Bloom: a churning directory
  // stays accurate instead of filling up.
  CountingBloomFilter filter(1 << 13, 5);
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    DocumentId batch[64];
    for (auto& id : batch) {
      id = rng.next();
      filter.insert(id);
    }
    for (const auto& id : batch) {
      EXPECT_TRUE(filter.maybe_contains(id));
      filter.remove(id);
    }
  }
  // After removing everything, false positives should be rare again.
  int positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (filter.maybe_contains(rng.next())) ++positives;
  }
  EXPECT_LT(positives, 100);
}

TEST(CountingBloomTest, DoubleRemoveThrows) {
  CountingBloomFilter filter(1 << 10, 3);
  filter.insert(5);
  filter.remove(5);
  EXPECT_THROW(filter.remove(5), std::logic_error);
}

TEST(CountingBloomTest, OverlappingInsertsNeedMatchingRemoves) {
  CountingBloomFilter filter(1 << 10, 3);
  filter.insert(9);
  filter.insert(9);
  filter.remove(9);
  EXPECT_TRUE(filter.maybe_contains(9));  // one insert remains
  filter.remove(9);
  EXPECT_FALSE(filter.maybe_contains(9));
}

TEST(CountingBloomTest, SaturatedCountersPin) {
  CountingBloomFilter filter(1 << 10, 1);
  // 16 inserts of the same id: counter saturates at 15 on the 16th.
  for (int i = 0; i < 16; ++i) filter.insert(777);
  EXPECT_EQ(filter.saturations(), 1u);
  // Removals never take a saturated cell below 15: still "contained" after
  // any number of removes.
  for (int i = 0; i < 40; ++i) filter.remove(777);
  EXPECT_TRUE(filter.maybe_contains(777));
}

TEST(CountingBloomTest, SnapshotMatchesMembership) {
  CountingBloomFilter filter(1 << 12, 4);
  for (DocumentId id = 0; id < 200; ++id) filter.insert(id * 31);
  const BloomFilter snapshot = filter.snapshot();
  for (DocumentId id = 0; id < 200; ++id) {
    EXPECT_TRUE(snapshot.maybe_contains(id * 31));
  }
  EXPECT_EQ(snapshot.bit_count(), filter.cell_count());
  EXPECT_EQ(snapshot.hash_count(), filter.hash_count());
}

TEST(CountingBloomTest, SnapshotIsDecoupled) {
  CountingBloomFilter filter(1 << 10, 3);
  filter.insert(1);
  const BloomFilter snapshot = filter.snapshot();
  filter.remove(1);
  filter.insert(2);
  // The snapshot reflects the publish-time state, not later churn.
  EXPECT_TRUE(snapshot.maybe_contains(1));
  EXPECT_FALSE(snapshot.maybe_contains(2));
}

TEST(CountingBloomTest, RejectsBadGeometry) {
  EXPECT_THROW(CountingBloomFilter(4, 3), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(100, 0), std::invalid_argument);
}

TEST(CountingBloomTest, SizedLikeBloom) {
  const CountingBloomFilter filter =
      CountingBloomFilter::with_false_positive_rate(10000, 0.01);
  const BloomFilter reference = BloomFilter::with_false_positive_rate(10000, 0.01);
  EXPECT_EQ(filter.cell_count(), reference.bit_count());
  EXPECT_EQ(filter.hash_count(), reference.hash_count());
}

}  // namespace
}  // namespace eacache
