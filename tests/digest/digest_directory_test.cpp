#include "digest/digest_directory.h"

#include <gtest/gtest.h>

#include "storage/cache_store.h"
#include "storage/lru_policy.h"

namespace eacache {
namespace {

DigestConfig small_config() {
  DigestConfig config;
  config.expected_items = 512;
  config.false_positive_rate = 0.01;
  config.refresh_period = minutes(5);
  return config;
}

TEST(LocalDigestTest, TracksAdmissions) {
  LocalDigest digest(small_config());
  digest.note_admission(42);
  EXPECT_TRUE(digest.publish().maybe_contains(42));
  EXPECT_FALSE(digest.publish().maybe_contains(43));
}

TEST(LocalDigestTest, MirrorsCacheStoreViaObserver) {
  CacheStore store(300, std::make_unique<LruPolicy>());
  LocalDigest digest(small_config());
  store.add_eviction_observer(&digest);

  const TimePoint t0 = kSimEpoch;
  store.admit({1, 100}, t0);
  digest.note_admission(1);
  store.admit({2, 100}, t0);
  digest.note_admission(2);
  store.admit({3, 100}, t0);
  digest.note_admission(3);
  // Admitting 4 evicts 1 (LRU); the digest hears it through the observer.
  store.admit({4, 100}, t0 + sec(1));
  digest.note_admission(4);

  const BloomFilter snapshot = digest.publish();
  EXPECT_FALSE(snapshot.maybe_contains(1));
  EXPECT_TRUE(snapshot.maybe_contains(2));
  EXPECT_TRUE(snapshot.maybe_contains(3));
  EXPECT_TRUE(snapshot.maybe_contains(4));
}

TEST(PeerDirectoryTest, CandidatesFromSnapshots) {
  PeerDigestDirectory directory(small_config());
  LocalDigest a(small_config());
  LocalDigest b(small_config());
  a.note_admission(100);
  b.note_admission(100);
  b.note_admission(200);

  directory.update(0, a.publish(), kSimEpoch);
  directory.update(1, b.publish(), kSimEpoch);

  EXPECT_EQ(directory.candidates(100), (std::vector<ProxyId>{0, 1}));
  EXPECT_EQ(directory.candidates(200), (std::vector<ProxyId>{1}));
  EXPECT_TRUE(directory.candidates(999).empty());
}

TEST(PeerDirectoryTest, UpdateReplacesSnapshot) {
  PeerDigestDirectory directory(small_config());
  LocalDigest digest(small_config());
  digest.note_admission(5);
  directory.update(0, digest.publish(), kSimEpoch);
  EXPECT_EQ(directory.candidates(5), (std::vector<ProxyId>{0}));

  // New snapshot without the document: stale claim disappears.
  LocalDigest empty(small_config());
  directory.update(0, empty.publish(), kSimEpoch + minutes(5));
  EXPECT_TRUE(directory.candidates(5).empty());
  EXPECT_EQ(directory.published_at(0), kSimEpoch + minutes(5));
}

TEST(PeerDirectoryTest, SnapshotBookkeeping) {
  PeerDigestDirectory directory(small_config());
  EXPECT_FALSE(directory.has_snapshot(3));
  EXPECT_FALSE(directory.published_at(3).has_value());
  LocalDigest digest(small_config());
  directory.update(3, digest.publish(), kSimEpoch + sec(9));
  EXPECT_TRUE(directory.has_snapshot(3));
  EXPECT_EQ(directory.published_at(3), kSimEpoch + sec(9));
}

}  // namespace
}  // namespace eacache
