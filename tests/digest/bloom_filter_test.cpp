#include "digest/bloom_filter.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/random.h"

namespace eacache {
namespace {

TEST(BloomFilterTest, RejectsBadGeometry) {
  EXPECT_THROW(BloomFilter(4, 3), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 17), std::invalid_argument);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1 << 14, 7);
  for (DocumentId id = 0; id < 1000; ++id) filter.insert(id * 977);
  for (DocumentId id = 0; id < 1000; ++id) {
    EXPECT_TRUE(filter.maybe_contains(id * 977)) << id;
  }
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 4);
  for (DocumentId id = 0; id < 100; ++id) EXPECT_FALSE(filter.maybe_contains(id));
  EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
}

TEST(BloomFilterTest, FalsePositiveRateNearDesignPoint) {
  constexpr std::size_t kItems = 5000;
  constexpr double kTarget = 0.01;
  BloomFilter filter = BloomFilter::with_false_positive_rate(kItems, kTarget);
  for (DocumentId id = 0; id < kItems; ++id) filter.insert(id);

  int false_positives = 0;
  constexpr int kProbes = 100000;
  for (int i = 0; i < kProbes; ++i) {
    const DocumentId absent = 1'000'000 + static_cast<DocumentId>(i);
    if (filter.maybe_contains(absent)) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, 3.0 * kTarget);
  // And the analytic estimate should agree with reality.
  EXPECT_NEAR(filter.estimated_false_positive_rate(), rate, 0.01);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter(1024, 4);
  filter.insert(42);
  EXPECT_TRUE(filter.maybe_contains(42));
  filter.clear();
  EXPECT_FALSE(filter.maybe_contains(42));
  EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
}

TEST(BloomFilterTest, WireSizeIsBitsOverEight) {
  EXPECT_EQ(BloomFilter(1024, 4).wire_size(), 128u);
  EXPECT_EQ(BloomFilter(1000, 4).wire_size(), 125u);
  EXPECT_EQ(BloomFilter(1001, 4).wire_size(), 126u);
}

TEST(BloomFilterTest, SizingFormula) {
  // For p=0.01 the optimum is ~9.59 bits/item and ~6.6 hashes.
  const BloomFilter filter = BloomFilter::with_false_positive_rate(10000, 0.01);
  EXPECT_NEAR(static_cast<double>(filter.bit_count()) / 10000.0, 9.59, 0.05);
  EXPECT_EQ(filter.hash_count(), 7u);
  EXPECT_THROW((void)BloomFilter::with_false_positive_rate(0, 0.01), std::invalid_argument);
  EXPECT_THROW((void)BloomFilter::with_false_positive_rate(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)BloomFilter::with_false_positive_rate(10, 1.0), std::invalid_argument);
}

TEST(BloomFilterTest, FillRatioMonotone) {
  BloomFilter filter(4096, 4);
  double previous = 0.0;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    filter.insert(rng.next());
    EXPECT_GE(filter.fill_ratio(), previous);
    previous = filter.fill_ratio();
  }
  EXPECT_GT(previous, 0.0);
  EXPECT_LE(previous, 1.0);
}

}  // namespace
}  // namespace eacache
