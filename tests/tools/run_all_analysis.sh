#!/bin/sh
# One-shot driver for the whole static-analysis stack (DESIGN.md §11 + §16):
#
#   format        clang-format dry-run        (tests/tools/check_format.sh)
#   clang-tidy    .clang-tidy profile         (tests/tools/run_clang_tidy.sh)
#   project_lint  repo-convention rules       (tests/tools/project_lint.py)
#   eacheck-dag   architecture DAG pass       (tools/eacheck, layering.toml)
#   eacheck-locks static deadlock pass        (tools/eacheck, lock-order graph)
#   eacheck-det   determinism audit           (tools/eacheck)
#
# All six legs run CONCURRENTLY (they are independent read-only scans; the
# slowest leg bounds wall time), then a single summary table reports each
# leg's verdict. Exit is nonzero iff any leg FAILED; legs that self-skip
# (exit 77 — e.g. no clang-tidy on PATH) count as SKIP, not failure, exactly
# like their ctest registrations. Per-leg output is buffered to a temp file
# and replayed only for failing legs, so a green run prints just the table.
set -u

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
python=${EACACHE_PYTHON:-python3}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

run_leg() {
  # $1 = leg name, rest = command. Records exit status alongside the log.
  leg=$1
  shift
  "$@" > "$workdir/$leg.log" 2>&1
  echo $? > "$workdir/$leg.status"
}

run_leg format       "$repo_root/tests/tools/check_format.sh" &
run_leg clang-tidy   "$repo_root/tests/tools/run_clang_tidy.sh" &
run_leg project_lint "$python" "$repo_root/tests/tools/project_lint.py" &
run_leg eacheck-dag  "$python" "$repo_root/tools/eacheck/eacheck.py" --pass dag &
run_leg eacheck-locks "$python" "$repo_root/tools/eacheck/eacheck.py" --pass locks &
run_leg eacheck-det  "$python" "$repo_root/tools/eacheck/eacheck.py" --pass determinism &
wait

failed=0
echo "run_all_analysis: summary"
echo "  leg            verdict"
echo "  -------------  -------"
for leg in format clang-tidy project_lint eacheck-dag eacheck-locks eacheck-det; do
  status=$(cat "$workdir/$leg.status" 2>/dev/null || echo 1)
  case "$status" in
    0)  verdict=PASS ;;
    77) verdict=SKIP ;;
    *)  verdict=FAIL; failed=1 ;;
  esac
  printf '  %-13s  %s\n' "$leg" "$verdict"
done

for leg in format clang-tidy project_lint eacheck-dag eacheck-locks eacheck-det; do
  status=$(cat "$workdir/$leg.status" 2>/dev/null || echo 1)
  if [ "$status" != 0 ] && [ "$status" != 77 ]; then
    echo ""
    echo "run_all_analysis: ---- $leg output ----"
    cat "$workdir/$leg.log"
  fi
done

if [ "$failed" -ne 0 ]; then
  echo ""
  echo "run_all_analysis: FAIL — see failing leg output above"
  exit 1
fi
echo "run_all_analysis: all legs clean (SKIP legs need their tool installed)"
