#!/bin/sh
# Negative control for the Clang Thread Safety annotations (DESIGN.md §11).
#
# Proves the annotation layer has teeth: a fixture with a deliberate
# GUARDED_BY violation must FAIL to compile under
#   clang++ -Wthread-safety -Werror=thread-safety
# while its corrected twin compiles cleanly under the same flags. If the
# violation ever compiles, the macros in src/common/thread_annotations.h have
# degraded to no-ops under Clang and the entire static tier is vacuous.
#
# Self-skips (exit 77) when no clang++ is on PATH — GCC cannot run the
# analysis (the macros expand to nothing there by design), so there is
# nothing to check. The clean twin is still compiled by every tier-1 build
# via tests/CMakeLists.txt, which keeps the fixtures from rotting.
set -eu

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
clangxx=${EACACHE_CLANGXX:-clang++}

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "thread_safety_negative: no $clangxx on PATH; skipping (GCC cannot run -Wthread-safety)"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -I$repo_root/src -Wthread-safety -Werror=thread-safety"

# Sanity leg: the clean twin must compile, or the failure below would prove
# nothing (bad include path and a missing-header error also "fail").
# shellcheck disable=SC2086  # $flags is a deliberate word-split flag list
if ! "$clangxx" $flags "$repo_root/tests/analysis/thread_safety_clean.cpp"; then
  echo "thread_safety_negative: FAIL — the CLEAN fixture does not compile; fix flags/fixture first"
  exit 1
fi

stderr_file=$(mktemp)
trap 'rm -f "$stderr_file"' EXIT

set +e
# shellcheck disable=SC2086
"$clangxx" $flags "$repo_root/tests/analysis/thread_safety_violation.cpp" 2>"$stderr_file"
violation_status=$?
set -e

if [ "$violation_status" -eq 0 ]; then
  echo "thread_safety_negative: FAIL — the violation fixture compiled cleanly."
  echo "thread_safety_negative: the annotations are no-ops under Clang; check thread_annotations.h"
  exit 1
fi

if ! grep -q 'thread-safety' "$stderr_file"; then
  echo "thread_safety_negative: FAIL — compile failed but not with a thread-safety diagnostic:"
  cat "$stderr_file"
  exit 1
fi

echo "thread_safety_negative: clean twin compiles, violation rejected with -Werror=thread-safety"
