// trace_jsonl_check — validates a --trace-out JSONL file against the span
// schema documented in DESIGN.md §8 (and mirrored in obs/trace_log.cpp).
//
// Run as a ctest fixture: bench_smoke --trace-out FILE produces the file
// (FIXTURES_SETUP), this binary consumes it (FIXTURES_REQUIRED). Exits 0
// iff every line is a well-formed flat JSON object whose keys, types and
// vocabulary match the schema; prints the first violation otherwise.
//
// The parser is deliberately minimal: span lines are FLAT objects with
// string / number / boolean values only, so a full JSON library is
// unnecessary (and the independence from the producer's own serializer is
// the point of the check).
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

namespace {

enum class ValueType { kString, kNumber, kBool };

struct Value {
  ValueType type = ValueType::kString;
  std::string text;  // raw string payload / numeric literal / "true"/"false"
};

// Parses `{"key":value,...}` with string/number/bool values into `out`.
// Returns false with `error` set on malformed input or duplicate keys.
bool parse_flat_object(const std::string& line, std::map<std::string, Value>& out,
                       std::string& error) {
  std::size_t i = 0;
  const auto fail = [&](const std::string& what) {
    error = what + " at byte " + std::to_string(i);
    return false;
  };
  const auto parse_string = [&](std::string& into) {
    if (line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) return false;
        switch (line[i]) {
          case '"': into += '"'; break;
          case '\\': into += '\\'; break;
          case 'n': into += '\n'; break;
          case 'r': into += '\r'; break;
          case 't': into += '\t'; break;
          case 'u':
            if (i + 4 >= line.size()) return false;
            into += '?';  // escaped control char; exact value irrelevant here
            i += 4;
            break;
          default: return false;
        }
      } else {
        into += line[i];
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  if (line.empty() || line.front() != '{') return fail("expected '{'");
  ++i;
  if (i < line.size() && line[i] == '}') {
    ++i;
    return i == line.size() ? true : fail("trailing bytes after '}'");
  }
  while (true) {
    std::string key;
    if (i >= line.size() || !parse_string(key)) return fail("expected key string");
    if (out.count(key) != 0) return fail("duplicate key \"" + key + "\"");
    if (i >= line.size() || line[i] != ':') return fail("expected ':'");
    ++i;
    Value value;
    if (i >= line.size()) return fail("expected value");
    if (line[i] == '"') {
      value.type = ValueType::kString;
      if (!parse_string(value.text)) return fail("bad string value");
    } else if (line.compare(i, 4, "true") == 0) {
      value.type = ValueType::kBool;
      value.text = "true";
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      value.type = ValueType::kBool;
      value.text = "false";
      i += 5;
    } else if (line[i] == '-' || std::isdigit(static_cast<unsigned char>(line[i]))) {
      value.type = ValueType::kNumber;
      const std::size_t start = i;
      if (line[i] == '-') ++i;
      while (i < line.size() &&
             (std::isdigit(static_cast<unsigned char>(line[i])) || line[i] == '.' ||
              line[i] == 'e' || line[i] == 'E' || line[i] == '+' || line[i] == '-')) {
        ++i;
      }
      value.text = line.substr(start, i - start);
    } else {
      return fail("unrecognized value");
    }
    out.emplace(std::move(key), std::move(value));
    if (i >= line.size()) return fail("unterminated object");
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      return i == line.size() ? true : fail("trailing bytes after '}'");
    }
    return fail("expected ',' or '}'");
  }
}

bool is_nonnegative_integer(const Value& value) {
  if (value.type != ValueType::kNumber || value.text.empty()) return false;
  for (const char c : value.text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool is_integer(const Value& value) {
  if (value.type != ValueType::kNumber || value.text.empty()) return false;
  std::size_t start = value.text[0] == '-' ? 1 : 0;
  if (start == value.text.size()) return false;
  for (std::size_t i = start; i < value.text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(value.text[i]))) return false;
  }
  return true;
}

// Expiration ages: non-negative number, or the string "inf" (a cold cache).
bool is_age(const Value& value) {
  if (value.type == ValueType::kString) return value.text == "inf";
  return value.type == ValueType::kNumber && value.text[0] != '-';
}

const std::set<std::string>& event_vocabulary() {
  static const std::set<std::string> kEvents = {
      "arrival",      "local_hit",    "icp_probe", "icp_loss", "sibling_fetch",
      "parent_fetch", "origin_fetch", "placement", "complete",
      // Pipeline-only kinds (event-driven driver, DESIGN.md §9).
      "icp_timeout",  "icp_retry",    "coalesced_join"};
  return kEvents;
}

/// The value-carrying key each event kind uses (DESIGN.md §8): most spans
/// record "bytes", but completion records the outcome and the pipeline kinds
/// carry their own counters.
std::string value_key_for(const std::string& event) {
  if (event == "complete") return "outcome";
  if (event == "icp_timeout") return "unanswered";  // peers that stayed silent
  if (event == "icp_retry") return "attempt";       // 1-based retry round
  if (event == "coalesced_join") return "leader";   // request id joined
  return "bytes";
}

/// The boolean-flag key each event kind is allowed to carry (DESIGN.md §8).
std::string flag_key_for(const std::string& event) {
  if (event == "icp_probe") return "hit";
  if (event == "sibling_fetch" || event == "parent_fetch") return "found";
  if (event == "placement") return "accepted";
  if (event == "origin_fetch") return "speculative";
  if (event == "local_hit") return "validated";
  return "flag";
}

bool validate_span(const std::map<std::string, Value>& fields, std::string& error) {
  const auto get = [&](const std::string& key) -> const Value* {
    const auto it = fields.find(key);
    return it != fields.end() ? &it->second : nullptr;
  };
  const auto require = [&](const std::string& key, bool (*check)(const Value&),
                           const char* what) {
    const Value* value = get(key);
    if (value == nullptr) {
      error = "missing required key \"" + key + "\"";
      return false;
    }
    if (!check(*value)) {
      error = "key \"" + key + "\" is not " + what;
      return false;
    }
    return true;
  };

  if (!require("request", is_nonnegative_integer, "a non-negative integer")) return false;
  if (!require("at_ms", is_integer, "an integer")) return false;
  if (!require("proxy", is_nonnegative_integer, "a non-negative integer")) return false;
  if (!require("doc", is_nonnegative_integer, "a non-negative integer")) return false;

  const Value* event = get("event");
  if (event == nullptr || event->type != ValueType::kString) {
    error = "missing or non-string \"event\"";
    return false;
  }
  if (event_vocabulary().count(event->text) == 0) {
    error = "unknown event kind \"" + event->text + "\"";
    return false;
  }

  std::set<std::string> allowed = {"run", "request", "at_ms", "proxy", "doc", "event",
                                  "peer", "requester_ea_ms", "responder_ea_ms",
                                  // Daemon cross-hop trace identity (DESIGN.md §8).
                                  "span", "parent_span", "hop"};
  allowed.insert(flag_key_for(event->text));
  allowed.insert(value_key_for(event->text));
  for (const auto& [key, value] : fields) {
    if (allowed.count(key) == 0) {
      error = "key \"" + key + "\" not allowed on event \"" + event->text + "\"";
      return false;
    }
  }

  if (const Value* run = get("run"); run != nullptr && run->type != ValueType::kString) {
    error = "\"run\" must be a string";
    return false;
  }
  if (const Value* peer = get("peer");
      peer != nullptr && !is_nonnegative_integer(*peer)) {
    error = "\"peer\" must be a non-negative integer";
    return false;
  }
  for (const char* key : {"requester_ea_ms", "responder_ea_ms"}) {
    if (const Value* age = get(key); age != nullptr && !is_age(*age)) {
      error = std::string("\"") + key + "\" must be a non-negative number or \"inf\"";
      return false;
    }
  }
  if (const Value* flag = get(flag_key_for(event->text));
      flag != nullptr && flag->type != ValueType::kBool) {
    error = "\"" + flag_key_for(event->text) + "\" must be a boolean";
    return false;
  }
  if (const Value* outcome = get("outcome"); outcome != nullptr) {
    if (outcome->type != ValueType::kString ||
        (outcome->text != "local-hit" && outcome->text != "remote-hit" &&
         outcome->text != "miss")) {
      error = "\"outcome\" must be one of local-hit/remote-hit/miss";
      return false;
    }
  }
  for (const char* key : {"bytes", "unanswered", "attempt", "leader"}) {
    if (const Value* count = get(key); count != nullptr && !is_nonnegative_integer(*count)) {
      error = std::string("\"") + key + "\" must be a non-negative integer";
      return false;
    }
  }
  // Cross-hop trace identity: "span" is a positive integer id; "parent_span"
  // links to another line's "span"; "hop" is the distance from the home proxy.
  for (const char* key : {"span", "parent_span", "hop"}) {
    if (const Value* id = get(key); id != nullptr && !is_nonnegative_integer(*id)) {
      error = std::string("\"") + key + "\" must be a non-negative integer";
      return false;
    }
  }
  if (get("parent_span") != nullptr && get("span") == nullptr) {
    error = "\"parent_span\" requires a \"span\" id on the same line";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s TRACE.jsonl\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }

  std::string line;
  std::size_t line_number = 0;
  std::size_t events = 0;
  std::set<std::string> runs;
  std::map<std::string, std::size_t> by_kind;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::map<std::string, Value> fields;
    std::string error;
    if (!parse_flat_object(line, fields, error) || !validate_span(fields, error)) {
      std::fprintf(stderr, "%s:%zu: %s\n  %s\n", argv[1], line_number, error.c_str(),
                   line.c_str());
      return 1;
    }
    ++events;
    if (const auto it = fields.find("run"); it != fields.end()) runs.insert(it->second.text);
    ++by_kind[fields.at("event").text];
  }
  if (events == 0) {
    std::fprintf(stderr, "%s: no span events found\n", argv[1]);
    return 1;
  }

  std::printf("%s: %zu events across %zu runs, all schema-valid\n", argv[1], events,
              runs.size());
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-14s %zu\n", kind.c_str(), count);
  }
  return 0;
}
