#!/bin/sh
# clang-tidy leg of the analysis gate (DESIGN.md §11, tier 3).
#
# Runs the checked-in .clang-tidy profile (WarningsAsErrors: '*') over every
# translation unit under src/, using the compile_commands.json that each
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally in the
# root CMakeLists). Any finding fails the ctest.
#
# Self-skips (exit 77) when clang-tidy is not on PATH or no build tree has
# exported a compilation database yet, so plain tier-1 runs stay green on
# machines without the LLVM toolchain.
#
# Database discovery is shared with the eacheck analyzer: both shell out to
# tools/eacheck/compdb.py, so the EACACHE_BUILD_DIR override and the
# build/build-asan/build-tsan/build-ubsan preference order live in exactly
# one place (DESIGN.md §16).
set -eu

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
clang_tidy=${EACACHE_CLANG_TIDY:-clang-tidy}
python=${EACACHE_PYTHON:-python3}

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: SKIP: no $clang_tidy on PATH (install the LLVM toolchain or point EACACHE_CLANG_TIDY at one)"
  exit 77
fi

if ! build_dir=$("$python" "$repo_root/tools/eacheck/compdb.py" --print-dir); then
  # compdb.py already printed the actionable reason (which trees it looked
  # in, or why the EACACHE_BUILD_DIR override was rejected) on stdout.
  echo "run_clang_tidy: SKIP: $build_dir"
  exit 77
fi

echo "run_clang_tidy: using $build_dir/compile_commands.json"

status=0
for source in $(find "$repo_root/src" -name '*.cpp' | sort); do
  if ! "$clang_tidy" -p "$build_dir" --quiet "$source"; then
    echo "run_clang_tidy: FINDINGS in $source"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: FAIL — findings above (profile: $repo_root/.clang-tidy)"
  exit 1
fi
echo "run_clang_tidy: all src/ translation units clean"
