#!/bin/sh
# clang-tidy leg of the analysis gate (DESIGN.md §11, tier 3).
#
# Runs the checked-in .clang-tidy profile (WarningsAsErrors: '*') over every
# translation unit under src/, using the compile_commands.json that each
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally in the
# root CMakeLists). Any finding fails the ctest.
#
# Self-skips (exit 77) when clang-tidy is not on PATH or no build tree has
# exported a compilation database yet, so plain tier-1 runs stay green on
# machines without the LLVM toolchain.
set -eu

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
clang_tidy=${EACACHE_CLANG_TIDY:-clang-tidy}

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: no $clang_tidy on PATH; skipping"
  exit 77
fi

# Prefer an explicit build dir, else the conventional trees in preference
# order (the default tree first — it matches how developers actually build).
build_dir=${EACACHE_BUILD_DIR:-}
if [ -z "$build_dir" ]; then
  for candidate in "$repo_root/build" "$repo_root/build-asan" "$repo_root/build-tsan"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build_dir=$candidate
      break
    fi
  done
fi

if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json found (configure a build first); skipping"
  exit 77
fi

echo "run_clang_tidy: using $build_dir/compile_commands.json"

status=0
for source in $(find "$repo_root/src" -name '*.cpp' | sort); do
  if ! "$clang_tidy" -p "$build_dir" --quiet "$source"; then
    echo "run_clang_tidy: FINDINGS in $source"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: FAIL — findings above (profile: $repo_root/.clang-tidy)"
  exit 1
fi
echo "run_clang_tidy: all src/ translation units clean"
