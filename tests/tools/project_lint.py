#!/usr/bin/env python3
"""Project-specific lint rules (DESIGN.md §11, tier 3).

Codifies repo conventions no generic linter knows about. Runs as the
``project_lint`` ctest (``ctest -L analysis``) with no dependencies beyond
the Python 3 the build already requires, so unlike the clang-tidy leg it can
never self-skip.

Rules
-----
1. no-bare-stdout   src/ never prints to stdout directly (no ``std::cout``,
                    no bare ``printf``). Library code reports through
                    ostream parameters, the logging layer, or result JSON;
                    only bench/example/tool mains own stdout. ``snprintf``
                    and ``fprintf(stderr, ...)`` stay legal.
2. metrics-documented
                    every metric name literal registered through
                    ``registry.counter/gauge/histogram`` in src/ appears in
                    DESIGN.md (the §11 name tables). A metric nobody can
                    look up is write-only telemetry.
3. json-keys-documented
                    every ``key("...")``/``field("...")`` literal in
                    src/core/run_result_json.cpp and src/sim/result_json.cpp
                    appears in DESIGN.md. The result JSON is the contract
                    the bench/plot layer parses.
4. no-ambient-rng   src/ never reaches for ``rand``/``srand``/
                    ``std::random_device``. Simulations must be replayable
                    from their config seed alone (common/random.h).
5. annotated-sync-only
                    raw ``std::mutex``/``std::lock_guard``/
                    ``std::unique_lock``/``std::scoped_lock``/
                    ``std::condition_variable``/``std::shared_mutex`` appear
                    nowhere in src/ outside common/thread_annotations.h.
                    Locking goes through the annotated Mutex/MutexLock/
                    CondVar wrappers so Clang's -Wthread-safety sees every
                    acquisition. ``std::once_flag``/``call_once`` remain
                    legal (one-shot init, not a lock).
6. core-no-sim-includes
                    DELEGATED to the eacheck architecture-DAG pass
                    (``tools/eacheck/eacheck.py --pass dag``, the
                    ``eacheck_dag`` ctest): the declared module DAG in
                    tools/eacheck/layering.toml generalizes this one seam to
                    every module pair and adds cycle detection (DESIGN.md
                    §16). The textual matcher survives here only to back the
                    ``--layering-fixture <file>`` self-test mode (exit 0 iff
                    the violation is caught); the main scan no longer runs
                    it.
7. prom-names-documented
                    every ``"eacache_..."`` Prometheus name literal in src/
                    appears in DESIGN.md (the §13 exposition table). The
                    scrape names are as much a contract as the result-JSON
                    keys: a dashboard built on an undocumented family breaks
                    silently on rename. Substring match, so prefix literals
                    (``"eacache_proxy_"``) pass once the full family names
                    are documented. Run with ``--prom-fixture <file>`` to
                    self-test against a deliberately undocumented name
                    (exit 0 iff the violation is caught).
8. sim-no-daemon-includes
                    DELEGATED to the eacheck architecture-DAG pass, like
                    rule 6: layering.toml declares no ``sim -> daemon`` edge,
                    so the DAG pass convicts the include this rule used to
                    police textually (the simulator and the daemon are
                    sibling CLIENTS of the core — DESIGN.md §12, §16). The
                    textual matcher survives here only to back the
                    ``--sim-fixture <file>`` self-test mode (exit 0 iff the
                    violation is caught); the main scan no longer runs it.
9. scenario-tests-exist
                    every workload scenario pack registered in
                    src/trace/scenarios.cpp (``pack.name = "..."``) names a
                    validation test (``pack.validation_test = "Suite.Test"``)
                    that actually exists as a ``TEST(Suite, Test)`` under
                    tests/. A scenario cannot ship without the statistical
                    test that validates its generated traffic (DESIGN.md
                    §15). Run with ``--scenario-fixture <file>`` to
                    self-test against a deliberately dangling registration
                    (exit 0 iff the violation is caught).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"
DESIGN = REPO_ROOT / "DESIGN.md"

ANNOTATIONS_HEADER = SRC / "common" / "thread_annotations.h"

BARE_STDOUT = re.compile(r"std::cout|(?<![a-zA-Z_0-9])printf\s*\(")
AMBIENT_RNG = re.compile(r"(?<![a-zA-Z_0-9:])s?rand\s*\(|std::random_device")
RAW_SYNC = re.compile(
    r"std::(?:mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|"
    r"condition_variable(?:_any)?)\b"
)
METRIC_CALL = re.compile(r"\.\s*(?:counter|gauge|histogram)\s*\(")
STRING_LITERAL = re.compile(r'"((?:[^"\\]|\\.)+)"')
JSON_KEY = re.compile(r'\.(?:key|field)\s*\(\s*"((?:[^"\\]|\\.)+)"')
SIM_INCLUDE = re.compile(r'#\s*include\s+"(?:sim|event)/')
DAEMON_INCLUDE = re.compile(r'#\s*include\s+"daemon/')
PROM_NAME = re.compile(r'"(eacache_[a-zA-Z0-9_]*)"')

TESTS = REPO_ROOT / "tests"
SCENARIOS = SRC / "trace" / "scenarios.cpp"
PACK_NAME = re.compile(r'pack\.name\s*=\s*"((?:[^"\\]|\\.)+)"')
PACK_TEST = re.compile(r'pack\.validation_test\s*=\s*"((?:[^"\\]|\\.)+)"')
TEST_DECL = re.compile(r"TEST(?:_F|_P)?\s*\(\s*([A-Za-z0-9_]+)\s*,\s*([A-Za-z0-9_]+)\s*\)")

def strip_line_comment(line: str) -> str:
    """Drop // comments so prose mentioning std::mutex etc. stays legal."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def source_files() -> list[Path]:
    return sorted(p for p in SRC.rglob("*") if p.suffix in (".h", ".cpp"))


def sim_layer_findings(rel: Path, text: str) -> list[str]:
    findings = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        if DAEMON_INCLUDE.search(strip_line_comment(raw)):
            findings.append(
                f"{rel}:{lineno}: [sim-no-daemon-includes] the simulator "
                f"layer must not include daemon/ headers (DESIGN.md §12); "
                f"the simulator and the daemon are sibling clients of the "
                f"core — parallel simulation lives on simulated time, not "
                f"the daemon's wall clock"
            )
    return findings


def sim_layer_selftest(fixture: Path) -> int:
    """Negative control: the fixture MUST trip the sim-layer rule."""
    findings = sim_layer_findings(fixture, fixture.read_text(encoding="utf-8"))
    if not findings:
        print(
            f"project_lint: negative control FAILED — {fixture} contains a "
            f"daemon/ include but the sim-no-daemon-includes rule missed it"
        )
        return 1
    print(
        f"project_lint: negative control ok — sim-no-daemon-includes caught "
        f"{len(findings)} violation(s) in {fixture.name}"
    )
    return 0


def layering_findings(rel: Path, text: str) -> list[str]:
    findings = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        if SIM_INCLUDE.search(strip_line_comment(raw)):
            findings.append(
                f"{rel}:{lineno}: [core-no-sim-includes] the libeacache core "
                f"layer must not include sim/ or event/ headers (DESIGN.md "
                f"§12); the simulator is a client of the core, not a "
                f"dependency"
            )
    return findings


def layering_selftest(fixture: Path) -> int:
    """Negative control: the fixture MUST trip the layering rule."""
    findings = layering_findings(fixture, fixture.read_text(encoding="utf-8"))
    if not findings:
        print(
            f"project_lint: negative control FAILED — {fixture} contains a "
            f"sim/ include but the core-no-sim-includes rule missed it"
        )
        return 1
    print(
        f"project_lint: negative control ok — core-no-sim-includes caught "
        f"{len(findings)} violation(s) in {fixture.name}"
    )
    return 0


def prom_findings(rel: Path, text: str, design_text: str) -> list[str]:
    findings = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        for literal in PROM_NAME.findall(strip_line_comment(raw)):
            if literal not in design_text:
                findings.append(
                    f"{rel}:{lineno}: [prom-names-documented] Prometheus name "
                    f'piece "{literal}" is not mentioned in DESIGN.md (add the '
                    f"family to the §13 exposition table)"
                )
    return findings


def prom_selftest(fixture: Path) -> int:
    """Negative control: the fixture MUST trip the prom-name rule."""
    design_text = DESIGN.read_text(encoding="utf-8")
    findings = prom_findings(fixture, fixture.read_text(encoding="utf-8"), design_text)
    if not findings:
        print(
            f"project_lint: negative control FAILED — {fixture} exports an "
            f"undocumented eacache_* name but the prom-names-documented rule "
            f"missed it"
        )
        return 1
    print(
        f"project_lint: negative control ok — prom-names-documented caught "
        f"{len(findings)} violation(s) in {fixture.name}"
    )
    return 0


def declared_tests(tests_root: Path) -> set[str]:
    """Every ``TEST*(Suite, Case)`` declared under tests/, as "Suite.Case"."""
    declared: set[str] = set()
    for test_file in sorted(tests_root.rglob("*.cpp")):
        for suite, case in TEST_DECL.findall(test_file.read_text(encoding="utf-8")):
            declared.add(f"{suite}.{case}")
    return declared


def scenario_findings(rel: Path, text: str, declared: set[str]) -> list[str]:
    """Rule 9: every registered pack names an existing validation test.

    Registration style is a textual contract (see the note atop
    scenarios.cpp): each pack is a run of ``pack.name = "...";`` ...
    ``pack.validation_test = "Suite.Test";`` assignments, so pairing the
    k-th name with the k-th validation test is exact.
    """
    names = [(m.start(), m.group(1)) for m in PACK_NAME.finditer(text)]
    tests = [(m.start(), m.group(1)) for m in PACK_TEST.finditer(text)]
    findings = []
    if len(names) != len(tests):
        findings.append(
            f"{rel}: [scenario-tests-exist] {len(names)} pack.name "
            f"registration(s) but {len(tests)} pack.validation_test "
            f"assignment(s) — every scenario pack must name its validation "
            f"test (DESIGN.md §15)"
        )
        return findings
    for (_, name), (offset, validation) in zip(names, tests):
        if validation not in declared:
            lineno = text.count("\n", 0, offset) + 1
            findings.append(
                f"{rel}:{lineno}: [scenario-tests-exist] scenario pack "
                f'"{name}" names validation test "{validation}", but no such '
                f"TEST(Suite, Case) exists under tests/ — a scenario cannot "
                f"ship without its statistical validation (DESIGN.md §15)"
            )
    return findings


def scenario_selftest(fixture: Path) -> int:
    """Negative control: the fixture MUST trip the scenario rule."""
    findings = scenario_findings(
        fixture, fixture.read_text(encoding="utf-8"), declared_tests(TESTS)
    )
    if not findings:
        print(
            f"project_lint: negative control FAILED — {fixture} registers a "
            f"scenario with a dangling validation test but the "
            f"scenario-tests-exist rule missed it"
        )
        return 1
    print(
        f"project_lint: negative control ok — scenario-tests-exist caught "
        f"{len(findings)} violation(s) in {fixture.name}"
    )
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--layering-fixture":
        return layering_selftest(Path(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--prom-fixture":
        return prom_selftest(Path(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--sim-fixture":
        return sim_layer_selftest(Path(sys.argv[2]))
    if len(sys.argv) == 3 and sys.argv[1] == "--scenario-fixture":
        return scenario_selftest(Path(sys.argv[2]))

    design_text = DESIGN.read_text(encoding="utf-8")
    failures: list[str] = []

    failures.extend(
        scenario_findings(
            SCENARIOS.relative_to(REPO_ROOT),
            SCENARIOS.read_text(encoding="utf-8"),
            declared_tests(TESTS),
        )
    )

    # Rules 6 and 8 (the §12 layering seams) are delegated to the eacheck
    # architecture-DAG pass, which checks the full declared module DAG in
    # tools/eacheck/layering.toml rather than two hand-picked seams. The
    # textual matchers above remain only for the fixture self-test modes.
    for path in source_files():
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        failures.extend(prom_findings(rel, text, design_text))
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = strip_line_comment(raw)

            if BARE_STDOUT.search(line):
                failures.append(
                    f"{rel}:{lineno}: [no-bare-stdout] src/ must not print to "
                    f"stdout; use an ostream parameter or the logging layer"
                )
            if AMBIENT_RNG.search(line):
                failures.append(
                    f"{rel}:{lineno}: [no-ambient-rng] use the seeded RNG in "
                    f"common/random.h; runs must replay from their config seed"
                )
            if path != ANNOTATIONS_HEADER and RAW_SYNC.search(line):
                failures.append(
                    f"{rel}:{lineno}: [annotated-sync-only] use Mutex/MutexLock/"
                    f"CondVar from common/thread_annotations.h so "
                    f"-Wthread-safety sees the acquisition"
                )
            if METRIC_CALL.search(line):
                for literal in STRING_LITERAL.findall(line):
                    if literal not in design_text:
                        failures.append(
                            f"{rel}:{lineno}: [metrics-documented] metric name "
                            f'piece "{literal}" is not mentioned in DESIGN.md '
                            f"(add it to the §11 metric table)"
                        )

    for serializer in (
        SRC / "core" / "run_result_json.cpp",
        SRC / "sim" / "result_json.cpp",
        SRC / "daemon" / "telemetry.cpp",
    ):
        for lineno, raw in enumerate(serializer.read_text(encoding="utf-8").splitlines(), 1):
            for literal in JSON_KEY.findall(strip_line_comment(raw)):
                if literal not in design_text:
                    failures.append(
                        f"{serializer.relative_to(REPO_ROOT)}:{lineno}: "
                        f'[json-keys-documented] result-JSON key "{literal}" is not '
                        f"mentioned in DESIGN.md (add it to the §11 key table)"
                    )

    if failures:
        print(f"project_lint: {len(failures)} finding(s):")
        for failure in failures:
            print("  " + failure)
        return 1
    print(
        f"project_lint: {len(source_files())} src files clean across 7 rules "
        f"(layering rules 6+8 delegated to eacheck --pass dag)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
