#!/bin/sh
# Format leg of the analysis gate (DESIGN.md §11, tier 3): clang-format
# --dry-run -Werror over the files the static-analysis stack owns.
#
# Scoped to a curated list rather than the whole tree on purpose — the
# repo-wide style predates .clang-format and a wholesale reformat would bury
# real diffs. Files added here are expected to stay clean forever; grow the
# list as files are touched, never shrink it.
#
# Self-skips (exit 77) when clang-format is not on PATH.
set -eu

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
clang_format=${EACACHE_CLANG_FORMAT:-clang-format}

if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "check_format: no $clang_format on PATH; skipping"
  exit 77
fi

# Files owned by the analysis stack (this PR) — kept formatted under the
# checked-in .clang-format profile.
files="
src/common/thread_annotations.h
tests/analysis/thread_safety_clean.cpp
tests/analysis/thread_safety_violation.cpp
tests/analysis/tsan_race_fixture.cpp
"

status=0
for file in $files; do
  path="$repo_root/$file"
  if [ ! -f "$path" ]; then
    echo "check_format: FAIL — listed file missing: $file"
    status=1
    continue
  fi
  if ! "$clang_format" --dry-run -Werror --style=file "$path"; then
    echo "check_format: needs formatting: $file"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_format: FAIL — run: clang-format -i --style=file <file>"
  exit 1
fi
echo "check_format: all listed files match .clang-format"
