#!/usr/bin/env bash
# Regenerate the goldens in tests/golden/ — the pipeline-regression set
# (test_sim) and the daemon smoke-replay pin (test_daemon) — and show what
# changed before you commit anything.
#
# Usage:
#   tests/tools/refresh_goldens.sh            # uses ./build
#   EACACHE_BUILD_DIR=build-asan tests/tools/refresh_goldens.sh
#
# The goldens are written straight into the source tree (the test binaries
# bake in EACACHE_GOLDEN_DIR), so the git diff below IS the review: an
# empty diff means the refresh was a no-op, anything else deserves a close
# read before `git add tests/golden`.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${EACACHE_BUILD_DIR:-build}"
test_sim="$repo_root/$build_dir/tests/test_sim"
test_daemon="$repo_root/$build_dir/tests/test_daemon"

if [[ ! -x "$test_sim" ]]; then
  echo "error: $test_sim not found or not executable" >&2
  echo "build it first: cmake --build $build_dir --target test_sim" >&2
  exit 1
fi

echo "== regenerating goldens via $test_sim =="
EACACHE_UPDATE_GOLDEN=1 "$test_sim" --gtest_filter='PipelineRegression*' --gtest_brief=1

# Daemon smoke-replay pin: 4 live worker threads must keep reproducing the
# simulator's bytes on the fixed regression workload. The TelemetryGolden
# filter also refreshes the telemetry JSON schema pin
# (tests/golden/telemetry_snapshot.json, DESIGN.md §13).
if [[ -x "$test_daemon" ]]; then
  echo
  echo "== regenerating daemon smoke + telemetry goldens via $test_daemon =="
  EACACHE_UPDATE_GOLDEN=1 "$test_daemon" \
    --gtest_filter='DaemonGolden*:TelemetryGolden*' --gtest_brief=1
else
  echo "warning: $test_daemon not built; skipping tests/golden/daemon_smoke.json" >&2
fi

echo
echo "== resulting diff in tests/golden =="
untracked=$(git -C "$repo_root" ls-files --others --exclude-standard -- tests/golden)
if git -C "$repo_root" diff --quiet -- tests/golden && [[ -z "$untracked" ]]; then
  echo "(no changes — goldens already matched)"
else
  git -C "$repo_root" diff --stat -- tests/golden
  if [[ -n "$untracked" ]]; then
    echo "new goldens (untracked):"
    printf '  %s\n' $untracked
  fi
  echo
  git -C "$repo_root" diff -- tests/golden
  echo
  echo "review the diff above, then: git add tests/golden"
fi
