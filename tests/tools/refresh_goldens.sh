#!/usr/bin/env bash
# Regenerate the pipeline-regression goldens in tests/golden/ and show what
# changed before you commit anything.
#
# Usage:
#   tests/tools/refresh_goldens.sh            # uses ./build
#   EACACHE_BUILD_DIR=build-asan tests/tools/refresh_goldens.sh
#
# The goldens are written straight into the source tree (the test binary
# bakes in EACACHE_GOLDEN_DIR), so the git diff below IS the review: an
# empty diff means the refresh was a no-op, anything else deserves a close
# read before `git add tests/golden`.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
build_dir="${EACACHE_BUILD_DIR:-build}"
test_sim="$repo_root/$build_dir/tests/test_sim"

if [[ ! -x "$test_sim" ]]; then
  echo "error: $test_sim not found or not executable" >&2
  echo "build it first: cmake --build $build_dir --target test_sim" >&2
  exit 1
fi

echo "== regenerating goldens via $test_sim =="
EACACHE_UPDATE_GOLDEN=1 "$test_sim" --gtest_filter='PipelineRegression*' --gtest_brief=1

echo
echo "== resulting diff in tests/golden =="
if git -C "$repo_root" diff --quiet -- tests/golden; then
  echo "(no changes — goldens already matched)"
else
  git -C "$repo_root" diff --stat -- tests/golden
  echo
  git -C "$repo_root" diff -- tests/golden
  echo
  echo "review the diff above, then: git add tests/golden"
fi
