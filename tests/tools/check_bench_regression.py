#!/usr/bin/env python3
"""Throughput-regression gate over the microbenchmarks and the smoke sweep.

Usage:
    check_bench_regression.py <bench_micro_ops> <bench_smoke> <baseline.json>
        [--recalibrate]

Captures a machine-fingerprinted baseline (BENCH_baseline.json at the repo
root) from ``bench_micro_ops`` (google-benchmark JSON, best-of-N repetitions)
and ``bench_smoke --json`` (per-run sim_ms), then fails when any tracked
metric regresses by more than the tolerance (default 10%, override with
EACACHE_BENCH_TOLERANCE).

The baseline is only comparable on the machine that captured it: when the
fingerprint (cpu count + nominal MHz) differs — or no baseline exists yet —
the script rewrites the baseline for the current machine and exits 77 so
ctest reports SKIP, not FAIL. ``--recalibrate`` forces that rewrite.

Shared machines (CI VMs) show double-digit run-to-run noise, so the gate is
asymmetric: the baseline records the MEDIAN rate across repetitions while a
comparison run only needs its BEST sample to clear the floor. The noise
spread is thereby built into the headroom — a lucky baseline can't strand
later runs — yet a real regression shifts the whole distribution down and
still trips the gate. A failing comparison is additionally remeasured up to
MAX_ROUNDS times (keeping the best rate seen) so transient neighbor load
can clear.

Exit codes: 0 ok, 1 regression (or harness error), 77 skip/recalibrated.
"""

import json
import os
import statistics
import subprocess
import sys
import time

SKIP = 77

# Fast, steady microbenchmark families; the multi-second trace-analysis
# benches (BM_SyntheticTraceGeneration, BM_StackDistances) are excluded to
# keep the gate quick.
MICRO_FILTER = (
    "BM_ZipfSample|BM_CacheStoreChurn|BM_GroupServe|"
    "BM_CountingBloomChurn|BM_IcpCodecRoundTrip"
)
REPETITIONS = 5
MAX_ROUNDS = 6
ROUND_BACKOFF_SECONDS = 2.0  # let transient neighbor load drain before remeasuring


def run_micro(binary):
    """Per-benchmark items_per_second (or 1/real_time) samples, one per rep."""
    out = subprocess.run(
        [
            binary,
            f"--benchmark_filter={MICRO_FILTER}",
            "--benchmark_format=json",
            "--benchmark_min_time=0.02",
            f"--benchmark_repetitions={REPETITIONS}",
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    doc = json.loads(out.stdout)
    samples = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue  # aggregate rows
        name = bench["run_name"]
        rate = bench.get("items_per_second")
        if rate is None:
            real = float(bench["real_time"])
            rate = 0.0 if real <= 0 else 1e9 / real  # ops/s from ns/op
        samples.setdefault(name, []).append(float(rate))
    context = doc.get("context", {})
    fingerprint = {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
    }
    return samples, fingerprint


def run_smoke(binary):
    """Total simulated-requests-per-second samples, one per sweep run."""
    samples = []
    for _ in range(3):
        out = subprocess.run(
            [binary, "--json"], check=True, capture_output=True, text=True
        )
        total_requests = 0
        total_sim_ms = 0.0
        for line in out.stdout.splitlines():
            if not line.startswith("json,"):
                continue
            run = json.loads(line[len("json,") :])
            total_requests += run["result"]["metrics"]["total_requests"]
            total_sim_ms += run["timings"]["sim_ms"]
        if total_sim_ms > 0:
            samples.append(1000.0 * total_requests / total_sim_ms)
    return samples


def main(argv):
    if len(argv) < 4:
        print(__doc__)
        return 1
    micro_bin, smoke_bin, baseline_path = argv[1], argv[2], argv[3]
    recalibrate = "--recalibrate" in argv[4:]
    tolerance = float(os.environ.get("EACACHE_BENCH_TOLERANCE", "0.10"))

    for binary in (micro_bin, smoke_bin):
        if not os.path.exists(binary):
            print(f"SKIP: {binary} not built")
            return SKIP

    micro_samples, fingerprint = run_micro(micro_bin)
    smoke_samples = run_smoke(smoke_bin)
    # Comparison uses the best sample; calibration stores the median (see
    # the module docstring for why the asymmetry).
    micro = {name: max(rates) for name, rates in micro_samples.items()}
    smoke_rps = max(smoke_samples) if smoke_samples else 0.0

    baseline = None
    if os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)

    if recalibrate or baseline is None or baseline.get("fingerprint") != fingerprint:
        calibrated = {
            "fingerprint": fingerprint,
            "micro_items_per_second": {
                name: statistics.median(rates)
                for name, rates in micro_samples.items()
            },
            "smoke_requests_per_second": (
                statistics.median(smoke_samples) if smoke_samples else 0.0
            ),
        }
        with open(baseline_path, "w") as handle:
            json.dump(calibrated, handle, indent=2, sort_keys=True)
            handle.write("\n")
        why = (
            "forced"
            if recalibrate
            else "no baseline" if baseline is None else "machine fingerprint changed"
        )
        print(f"SKIP: recalibrated {baseline_path} ({why})")
        return SKIP

    floor = 1.0 - tolerance

    def compare():
        failures = []
        for name, base_rate in sorted(baseline["micro_items_per_second"].items()):
            rate = micro.get(name)
            if rate is None:
                failures.append(f"{name}: benchmark disappeared from bench_micro_ops")
            elif rate < base_rate * floor:
                failures.append(
                    f"{name}: {rate:,.0f} items/s vs baseline {base_rate:,.0f} "
                    f"({100 * (1 - rate / base_rate):.1f}% slower)"
                )
        base_smoke = baseline["smoke_requests_per_second"]
        if smoke_rps < base_smoke * floor:
            failures.append(
                f"bench_smoke: {smoke_rps:,.0f} req/s vs baseline {base_smoke:,.0f} "
                f"({100 * (1 - smoke_rps / base_smoke):.1f}% slower)"
            )
        return failures

    failures = compare()
    rounds = 1
    while failures and rounds < MAX_ROUNDS:
        # Transient noise defense: remeasure and keep the best rate seen.
        print(f"round {rounds}: {len(failures)} metric(s) low, remeasuring...")
        rounds += 1
        time.sleep(ROUND_BACKOFF_SECONDS)
        remicro, _ = run_micro(micro_bin)
        for name, rates in remicro.items():
            micro[name] = max(micro.get(name, 0.0), max(rates))
        smoke_rps = max([smoke_rps] + run_smoke(smoke_bin))
        failures = compare()

    if failures:
        print(f"throughput regression (> {100 * tolerance:.0f}% below baseline):")
        for failure in failures:
            print(f"  {failure}")
        print(
            "If intentional, recalibrate: "
            f"check_bench_regression.py <micro> <smoke> {baseline_path} --recalibrate"
        )
        return 1

    checked = len(baseline["micro_items_per_second"]) + 1
    print(f"ok: {checked} throughput metrics within {100 * tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
