#!/usr/bin/env python3
"""Throughput-regression gate over the microbenchmarks and the smoke sweep.

Usage:
    check_bench_regression.py <bench_micro_ops> <bench_smoke> <baseline.json>
        [daemon_demo] [bench_scale_group_size] [--recalibrate]

Captures a machine-fingerprinted baseline (BENCH_baseline.json at the repo
root) from ``bench_micro_ops`` (google-benchmark JSON, best-of-N repetitions)
and ``bench_smoke --json`` (per-run sim_ms), then fails when any tracked
metric regresses by more than the tolerance (default 10%, override with
EACACHE_BENCH_TOLERANCE).

The baseline is only comparable on the machine that captured it: when the
fingerprint (cpu count + nominal MHz) differs — or no baseline exists yet —
the script rewrites the baseline for the current machine and exits 77 so
ctest reports SKIP, not FAIL. ``--recalibrate`` forces that rewrite.

When a ``daemon_demo`` binary is given, a SELF-RELATIVE obs-overhead arm
also runs (DESIGN.md §12): the live daemon replays the same workload twice —
telemetry plane armed (poller + HTTP endpoint + flight ring) vs ``--no-obs``
— and the telemetry arm's throughput must stay within 5% (override with
EACACHE_OBS_TOLERANCE) of the baseline arm's. Both arms run in the same
invocation on the same machine, so no fingerprint gating applies; the
measured pair is recorded in the baseline file under ``daemon_obs_overhead``
for trend visibility only.

When a ``bench_scale_group_size`` binary is given, a SELF-RELATIVE
shard-scaling arm also runs (DESIGN.md §14): the sharded engine replays a
1024-leaf hierarchical workload at 1, 2, 4 and 8 shards; each rate is
recorded in the baseline under ``shard_scaling_rps``. On machines with at
least MIN_SHARD_CPUS CPUs the 8-shard rate must reach SHARD_SPEEDUP_FLOOR
(3x) the 1-shard rate; smaller machines record the rates without enforcing
(8 worker threads cannot speed anything up on 1 core).

Shared machines (CI VMs) show double-digit run-to-run noise, so the gate is
asymmetric: the baseline records the MEDIAN rate across repetitions while a
comparison run only needs its BEST sample to clear the floor. The noise
spread is thereby built into the headroom — a lucky baseline can't strand
later runs — yet a real regression shifts the whole distribution down and
still trips the gate. A failing comparison is additionally remeasured up to
MAX_ROUNDS times (keeping the best rate seen) so transient neighbor load
can clear.

Exit codes: 0 ok, 1 regression (or harness error), 77 skip/recalibrated.
"""

import json
import os
import statistics
import subprocess
import sys
import time

SKIP = 77

# Fast, steady microbenchmark families; the multi-second trace-analysis
# benches (BM_SyntheticTraceGeneration, BM_StackDistances) are excluded to
# keep the gate quick.
MICRO_FILTER = (
    "BM_ZipfSample|BM_CacheStoreChurn|BM_GroupServe|"
    "BM_CountingBloomChurn|BM_IcpCodecRoundTrip"
)
REPETITIONS = 5
MAX_ROUNDS = 6
ROUND_BACKOFF_SECONDS = 2.0  # let transient neighbor load drain before remeasuring


def run_micro(binary):
    """Per-benchmark items_per_second (or 1/real_time) samples, one per rep."""
    out = subprocess.run(
        [
            binary,
            f"--benchmark_filter={MICRO_FILTER}",
            "--benchmark_format=json",
            "--benchmark_min_time=0.02",
            f"--benchmark_repetitions={REPETITIONS}",
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    doc = json.loads(out.stdout)
    samples = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue  # aggregate rows
        name = bench["run_name"]
        rate = bench.get("items_per_second")
        if rate is None:
            real = float(bench["real_time"])
            rate = 0.0 if real <= 0 else 1e9 / real  # ops/s from ns/op
        samples.setdefault(name, []).append(float(rate))
    context = doc.get("context", {})
    fingerprint = {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
    }
    return samples, fingerprint


def run_smoke(binary):
    """Total simulated-requests-per-second samples, one per sweep run."""
    samples = []
    for _ in range(3):
        out = subprocess.run(
            [binary, "--json"], check=True, capture_output=True, text=True
        )
        total_requests = 0
        total_sim_ms = 0.0
        for line in out.stdout.splitlines():
            if not line.startswith("json,"):
                continue
            run = json.loads(line[len("json,") :])
            total_requests += run["result"]["metrics"]["total_requests"]
            total_sim_ms += run["timings"]["sim_ms"]
        if total_sim_ms > 0:
            samples.append(1000.0 * total_requests / total_sim_ms)
    return samples


# Obs-overhead arm: a small wall-clock daemon replay, full speed (speedup so
# high that submission is never the bottleneck), compared with/without the
# telemetry plane. Keep it short — each arm runs up to OBS_RUNS times.
OBS_DEMO_ARGS = ["40000", "4", "1e9"]
OBS_TELEMETRY_FLAGS = ["--stats-port=0", "--stats-period-ms=100", "--flight-capacity=256"]
OBS_RUNS = 3


# Shard-scaling arm: self-relative like the obs arm. Enforced only where the
# hardware can plausibly deliver the speedup.
MIN_SHARD_CPUS = 8
SHARD_SPEEDUP_FLOOR = 3.0


def run_shard_scaling(binary):
    """{shards: requests_per_second} from the bench's SHARD_SCALING lines."""
    out = subprocess.run(
        [binary, "--shard-scaling"], check=True, capture_output=True, text=True
    )
    rates = {}
    for line in out.stdout.splitlines():
        if not line.startswith("SHARD_SCALING "):
            continue
        fields = dict(
            item.split("=", 1) for item in line.split()[1:] if "=" in item
        )
        rates[int(fields["shards"])] = float(fields["rps"])
    return rates


def run_daemon_arm(binary, flags):
    """Best throughput_rps over OBS_RUNS daemon_demo runs (0.0 on failure)."""
    best = 0.0
    for _ in range(OBS_RUNS):
        out = subprocess.run(
            [binary, *OBS_DEMO_ARGS, *flags],
            check=True,
            capture_output=True,
            text=True,
        )
        for line in out.stdout.splitlines():
            line = line.strip()
            if line.startswith("throughput_rps="):
                best = max(best, float(line.split("=", 1)[1]))
    return best


def main(argv):
    if len(argv) < 4:
        print(__doc__)
        return 1
    micro_bin, smoke_bin, baseline_path = argv[1], argv[2], argv[3]
    extras = argv[4:]
    recalibrate = "--recalibrate" in extras
    positional = [a for a in extras if not a.startswith("--")]
    daemon_bin = positional[0] if len(positional) > 0 else None
    scale_bin = positional[1] if len(positional) > 1 else None
    tolerance = float(os.environ.get("EACACHE_BENCH_TOLERANCE", "0.10"))
    obs_tolerance = float(os.environ.get("EACACHE_OBS_TOLERANCE", "0.05"))

    for binary in (micro_bin, smoke_bin):
        if not os.path.exists(binary):
            print(f"SKIP: {binary} not built")
            return SKIP
    if daemon_bin is not None and not os.path.exists(daemon_bin):
        print(f"note: {daemon_bin} not built; skipping the obs-overhead arm")
        daemon_bin = None
    if scale_bin is not None and not os.path.exists(scale_bin):
        print(f"note: {scale_bin} not built; skipping the shard-scaling arm")
        scale_bin = None

    micro_samples, fingerprint = run_micro(micro_bin)
    smoke_samples = run_smoke(smoke_bin)
    # Comparison uses the best sample; calibration stores the median (see
    # the module docstring for why the asymmetry).
    micro = {name: max(rates) for name, rates in micro_samples.items()}
    smoke_rps = max(smoke_samples) if smoke_samples else 0.0

    # Self-relative obs-overhead arm: both rates measured now, on this
    # machine, so the verdict never depends on the stored baseline.
    obs_rates = None
    if daemon_bin is not None:
        obs_rates = {
            "telemetry_rps": run_daemon_arm(daemon_bin, OBS_TELEMETRY_FLAGS),
            "no_obs_rps": run_daemon_arm(daemon_bin, ["--no-obs"]),
        }

    # Self-relative shard-scaling arm: rates measured now, on this machine.
    shard_rates = run_shard_scaling(scale_bin) if scale_bin is not None else None

    baseline = None
    if os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)

    if recalibrate or baseline is None or baseline.get("fingerprint") != fingerprint:
        calibrated = {
            "fingerprint": fingerprint,
            "micro_items_per_second": {
                name: statistics.median(rates)
                for name, rates in micro_samples.items()
            },
            "smoke_requests_per_second": (
                statistics.median(smoke_samples) if smoke_samples else 0.0
            ),
        }
        if obs_rates is not None:
            calibrated["daemon_obs_overhead"] = obs_rates
        if shard_rates is not None:
            calibrated["shard_scaling_rps"] = {
                str(shards): rate for shards, rate in sorted(shard_rates.items())
            }
        with open(baseline_path, "w") as handle:
            json.dump(calibrated, handle, indent=2, sort_keys=True)
            handle.write("\n")
        why = (
            "forced"
            if recalibrate
            else "no baseline" if baseline is None else "machine fingerprint changed"
        )
        print(f"SKIP: recalibrated {baseline_path} ({why})")
        return SKIP

    floor = 1.0 - tolerance

    def compare():
        failures = []
        for name, base_rate in sorted(baseline.get("micro_items_per_second", {}).items()):
            rate = micro.get(name)
            if rate is None:
                failures.append(f"{name}: benchmark disappeared from bench_micro_ops")
            elif rate < base_rate * floor:
                failures.append(
                    f"{name}: {rate:,.0f} items/s vs baseline {base_rate:,.0f} "
                    f"({100 * (1 - rate / base_rate):.1f}% slower)"
                )
        base_smoke = baseline.get("smoke_requests_per_second", 0.0)
        if smoke_rps < base_smoke * floor:
            failures.append(
                f"bench_smoke: {smoke_rps:,.0f} req/s vs baseline {base_smoke:,.0f} "
                f"({100 * (1 - smoke_rps / base_smoke):.1f}% slower)"
            )
        if obs_rates is not None and obs_rates["no_obs_rps"] > 0:
            with_obs = obs_rates["telemetry_rps"]
            without = obs_rates["no_obs_rps"]
            if with_obs < without * (1.0 - obs_tolerance):
                failures.append(
                    f"daemon_obs_overhead: {with_obs:,.0f} req/s with telemetry vs "
                    f"{without:,.0f} with --no-obs "
                    f"({100 * (1 - with_obs / without):.1f}% overhead, "
                    f"bound {100 * obs_tolerance:.0f}%)"
                )
        if (
            shard_rates is not None
            and shard_rates.get(1, 0.0) > 0
            and (fingerprint.get("num_cpus") or 0) >= MIN_SHARD_CPUS
        ):
            speedup = shard_rates.get(8, 0.0) / shard_rates[1]
            if speedup < SHARD_SPEEDUP_FLOOR:
                failures.append(
                    f"shard_scaling: 8-shard speedup {speedup:.2f}x over 1 shard "
                    f"(floor {SHARD_SPEEDUP_FLOOR:.1f}x; rates "
                    + ", ".join(
                        f"{s}={r:,.0f} req/s" for s, r in sorted(shard_rates.items())
                    )
                    + ")"
                )
        return failures

    failures = compare()
    rounds = 1
    while failures and rounds < MAX_ROUNDS:
        # Transient noise defense: remeasure and keep the best rate seen.
        print(f"round {rounds}: {len(failures)} metric(s) low, remeasuring...")
        rounds += 1
        time.sleep(ROUND_BACKOFF_SECONDS)
        remicro, _ = run_micro(micro_bin)
        for name, rates in remicro.items():
            micro[name] = max(micro.get(name, 0.0), max(rates))
        smoke_rps = max([smoke_rps] + run_smoke(smoke_bin))
        if obs_rates is not None and any("daemon_obs_overhead" in f for f in failures):
            obs_rates["telemetry_rps"] = max(
                obs_rates["telemetry_rps"],
                run_daemon_arm(daemon_bin, OBS_TELEMETRY_FLAGS),
            )
        if shard_rates is not None and any("shard_scaling" in f for f in failures):
            for shards, rate in run_shard_scaling(scale_bin).items():
                shard_rates[shards] = max(shard_rates.get(shards, 0.0), rate)
        failures = compare()

    if failures:
        print(f"throughput regression (> {100 * tolerance:.0f}% below baseline):")
        for failure in failures:
            print(f"  {failure}")
        print(
            "If intentional, recalibrate: "
            f"check_bench_regression.py <micro> <smoke> {baseline_path} --recalibrate"
        )
        return 1

    checked = len(baseline.get("micro_items_per_second", {})) + 1
    if obs_rates is not None:
        checked += 1
        overhead = 1 - obs_rates["telemetry_rps"] / max(obs_rates["no_obs_rps"], 1e-9)
        print(f"daemon_obs_overhead: {100 * overhead:.1f}% (bound {100 * obs_tolerance:.0f}%)")
    if shard_rates is not None and shard_rates.get(1, 0.0) > 0:
        checked += 1
        speedup = shard_rates.get(8, 0.0) / shard_rates[1]
        enforced = (fingerprint.get("num_cpus") or 0) >= MIN_SHARD_CPUS
        print(
            f"shard_scaling: 8-shard speedup {speedup:.2f}x "
            f"({'enforced' if enforced else 'record-only, < ' + str(MIN_SHARD_CPUS) + ' cpus'})"
        )
    print(f"ok: {checked} throughput metrics within {100 * tolerance:.0f}% of baseline")

    # The self-relative arms are verdicts of this run, not of the stored
    # baseline — but their latest rates go into the baseline file anyway so
    # the JSON history shows the trend (the fingerprint-gated metrics are
    # left untouched).
    recorded = False
    if obs_rates is not None:
        baseline["daemon_obs_overhead"] = obs_rates
        recorded = True
    if shard_rates is not None:
        baseline["shard_scaling_rps"] = {
            str(shards): rate for shards, rate in sorted(shard_rates.items())
        }
        recorded = True
    if recorded:
        with open(baseline_path, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
