#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace eacache {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, ReseedRestartsStream) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(rng.next());
  rng.reseed(77);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(RandomTest, NextBelowIsRoughlyUniform) {
  Rng rng(31);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  // Each bucket expects 10000; allow +-5% (far beyond 6-sigma).
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(RandomTest, NextInIsInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_in(3, 5));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(3));
  EXPECT_TRUE(seen.count(5));
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RandomTest, NormalMeanAndVariance) {
  Rng rng(44);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RandomTest, LognormalMeanMatchesFormula) {
  Rng rng(45);
  const double mu = 2.0;
  const double sigma = 0.5;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_lognormal(mu, sigma);
  const double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / kN, expected, expected * 0.02);
}

TEST(RandomTest, ParetoRespectsScale) {
  Rng rng(46);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.next_pareto(100.0, 1.5), 100.0);
  }
}

TEST(RandomTest, ExponentialMeanMatchesRate) {
  Rng rng(47);
  const double rate = 0.25;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(rate);
  EXPECT_NEAR(sum / kN, 1.0 / rate, 0.1);
}

TEST(RandomTest, SplitMix64KnownVector) {
  // Reference values from the public-domain splitmix64.c by Sebastiano
  // Vigna, seed = 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RandomTest, UsableWithStdShuffleConcepts) {
  // Rng satisfies UniformRandomBitGenerator.
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace eacache
