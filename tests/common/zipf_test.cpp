#include "common/zipf.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace eacache {
namespace {

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfTest, SingleElementAlwaysRankZero) {
  ZipfSampler zipf(1, 0.8);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler zipf(1000, 0.75);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(500, 0.75);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 500; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(100, 1.2);
  for (std::uint64_t k = 1; k < 100; ++k) EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfSampler zipf(10, 0.9);
  EXPECT_EQ(zipf.pmf(10), 0.0);
  EXPECT_EQ(zipf.pmf(1000), 0.0);
}

// Empirical frequencies should match the analytic pmf for head ranks.
class ZipfGoodnessTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfGoodnessTest, EmpiricalMatchesPmf) {
  const double alpha = GetParam();
  constexpr std::uint64_t kN = 200;
  constexpr int kDraws = 400000;
  ZipfSampler zipf(kN, alpha);
  Rng rng(1234);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t k = 0; k < 10; ++k) {
    const double expected = zipf.pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 1.0)
        << "alpha=" << alpha << " rank=" << k;
  }
  const int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, kDraws);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfGoodnessTest,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5, 2.0));

TEST(ZipfTest, ExponentOneIsHandled) {
  // s == 1 hits the log1p limit branch in the normalisation math.
  ZipfSampler zipf(100, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 100u);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, DeterministicGivenRngSeed) {
  ZipfSampler zipf(1000, 0.8);
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

}  // namespace
}  // namespace eacache
