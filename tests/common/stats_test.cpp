#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/random.h"

namespace eacache {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  Rng rng(11);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, MergeRequiresMatchingGeometry) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(5.0);
  b.add(100.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.bucket(5), 1u);
  Histogram mismatched(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
  Histogram wrong_buckets(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(wrong_buckets), std::invalid_argument);
}

TEST(HistogramTest, PercentileBasics) {
  Histogram h(0.0, 100.0, 100);  // unit buckets
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.01), 1.0);
}

TEST(HistogramTest, PercentileEmptyAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.add(999.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);  // overflow clamps to hi
  Histogram u(0.0, 10.0, 10);
  u.add(-5.0);
  EXPECT_DOUBLE_EQ(u.percentile(0.5), 0.0);  // underflow counts as lo
}

TEST(HistogramTest, BoundaryGoesToLowerEdgeBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  EXPECT_EQ(h.bucket(0), 1u);
  h.add(9.999999);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(HistogramTest, SumCoversEverySampleIncludingOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // empty histogram: 0, never NaN
  h.add(2.0);
  h.add(-3.0);   // underflow still contributes its true value
  h.add(100.0);  // overflow too
  EXPECT_DOUBLE_EQ(h.sum(), 99.0);
  EXPECT_EQ(h.total(), 3u);

  Histogram other(0.0, 10.0, 10);
  other.add(1.0);
  h.merge(other);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
}

TEST(HistogramTest, EmptyPercentilesAreLoNeverNaN) {
  // The registry JSON serializer leans on this: an unused histogram must
  // render finite p50/p90/p99 (DESIGN.md §11).
  const Histogram h(5.0, 10.0, 4);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_DOUBLE_EQ(p, 5.0) << "q=" << q;
    EXPECT_FALSE(std::isnan(p));
  }
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

}  // namespace
}  // namespace eacache
