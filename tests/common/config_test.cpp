#include "common/config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

TEST(ConfigTest, ParsesBasicKeyValues) {
  const Config cfg = Config::parse("a = 1\nb= two\n c =3.5\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "two");
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0.0), 3.5);
}

TEST(ConfigTest, SkipsCommentsAndBlanks) {
  const Config cfg = Config::parse("# comment\n\n; also comment\nkey = value\n");
  EXPECT_EQ(cfg.entries().size(), 1u);
  EXPECT_EQ(cfg.get_string("key", ""), "value");
}

TEST(ConfigTest, MissingEqualsThrowsWithLineNumber) {
  try {
    (void)Config::parse("ok = 1\nbroken line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigTest, EmptyKeyThrows) {
  EXPECT_THROW((void)Config::parse(" = 1\n"), std::runtime_error);
}

TEST(ConfigTest, FallbacksWhenAbsent) {
  const Config cfg = Config::parse("");
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_EQ(cfg.get_string("nope", "d"), "d");
  EXPECT_TRUE(cfg.get_bool("nope", true));
  EXPECT_EQ(cfg.get_bytes("nope", kib(4)), kib(4));
  EXPECT_EQ(cfg.get_duration("nope", msec(5)), msec(5));
}

TEST(ConfigTest, MalformedTypedValueThrows) {
  const Config cfg = Config::parse("n = abc\n");
  EXPECT_THROW((void)cfg.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_double("n", 0.0), std::runtime_error);
  EXPECT_THROW((void)cfg.get_bool("n", false), std::runtime_error);
}

TEST(ConfigTest, BoolSpellings) {
  const Config cfg = Config::parse("a=true\nb=0\nc=YES\nd=off\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(ConfigTest, ByteSuffixes) {
  EXPECT_EQ(Config::parse_bytes("4096").value(), Bytes{4096});
  EXPECT_EQ(Config::parse_bytes("100KiB").value(), kib(100));
  EXPECT_EQ(Config::parse_bytes("100KB").value(), kib(100));
  EXPECT_EQ(Config::parse_bytes("1MiB").value(), mib(1));
  EXPECT_EQ(Config::parse_bytes("2GiB").value(), gib(2));
  EXPECT_EQ(Config::parse_bytes("1.5KiB").value(), Bytes{1536});
  EXPECT_FALSE(Config::parse_bytes("oops").has_value());
  EXPECT_FALSE(Config::parse_bytes("1XB").has_value());
  EXPECT_FALSE(Config::parse_bytes("-5KiB").has_value());
}

TEST(ConfigTest, DurationSuffixes) {
  EXPECT_EQ(Config::parse_duration("250").value(), msec(250));
  EXPECT_EQ(Config::parse_duration("250ms").value(), msec(250));
  EXPECT_EQ(Config::parse_duration("3s").value(), sec(3));
  EXPECT_EQ(Config::parse_duration("5m").value(), minutes(5));
  EXPECT_EQ(Config::parse_duration("2h").value(), hours(2));
  EXPECT_FALSE(Config::parse_duration("abc").has_value());
}

TEST(ConfigTest, LastAssignmentWins) {
  const Config cfg = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(ConfigTest, SetOverridesParsed) {
  Config cfg = Config::parse("k = 1\n");
  cfg.set("k", "9");
  EXPECT_EQ(cfg.get_int("k", 0), 9);
}

TEST(ConfigTest, ValuesMayContainEquals) {
  const Config cfg = Config::parse("url = http://x/?a=b\n");
  EXPECT_EQ(cfg.get_string("url", ""), "http://x/?a=b");
}

}  // namespace
}  // namespace eacache
