#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace eacache {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override {
    set_log_level(saved_);
    set_log_sink(nullptr);
    set_log_thread_tag("");
  }

 private:
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  // (Fixture saved whatever level the suite runs with; assert the shipped
  // default explicitly.)
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, MacrosRespectLevel) {
  // The macro's side expression must not evaluate when filtered out.
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return "x";
  };
  EACACHE_LOG_DEBUG("test") << touch();
  EACACHE_LOG_INFO("test") << touch();
  EACACHE_LOG_WARN("test") << touch();
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kOff);
  EACACHE_LOG_ERROR("test") << touch();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EnabledMacroEvaluatesOnce) {
  set_log_level(LogLevel::kDebug);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return 42;
  };
  EACACHE_LOG_DEBUG("test") << "value=" << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogMessageHonoursOff) {
  set_log_level(LogLevel::kOff);
  // Must be a no-op (nothing observable to assert beyond not crashing,
  // but the level guard is the contract under test).
  log_message(LogLevel::kError, "component", "message");
  SUCCEED();
}

TEST_F(LoggingTest, SinkReceivesFormattedLine) {
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, std::string_view line) { lines.emplace_back(line); });
  EACACHE_LOG_INFO("sweep") << "job done in " << 42 << "ms";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[INFO] sweep: job done in 42ms");
}

TEST_F(LoggingTest, ThreadTagAppearsInLine) {
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, std::string_view line) { lines.emplace_back(line); });
  set_log_thread_tag("w2/j17");
  EXPECT_EQ(log_thread_tag(), "w2/j17");
  log_message(LogLevel::kWarn, "sweep", "slow job");
  set_log_thread_tag("");
  log_message(LogLevel::kWarn, "sweep", "untagged");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[WARN] [w2/j17] sweep: slow job");
  EXPECT_EQ(lines[1], "[WARN] sweep: untagged");
}

TEST_F(LoggingTest, ScopedTagRestoresPrevious) {
  set_log_thread_tag("outer");
  {
    const ScopedLogTag inner("inner");
    EXPECT_EQ(log_thread_tag(), "inner");
  }
  EXPECT_EQ(log_thread_tag(), "outer");
}

TEST_F(LoggingTest, TagIsPerThread) {
  set_log_thread_tag("main-thread");
  std::string other_tag = "unset";
  std::thread worker([&] {
    other_tag = log_thread_tag();  // must start empty, not inherit
    set_log_thread_tag("worker-thread");
  });
  worker.join();
  EXPECT_EQ(other_tag, "");
  EXPECT_EQ(log_thread_tag(), "main-thread");
}

TEST_F(LoggingTest, ConcurrentWritersNeverInterleaveWithinALine) {
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> lines;  // sink runs under the logger's lock
  set_log_sink([&](LogLevel, std::string_view line) { lines.emplace_back(line); });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      const ScopedLogTag tag("w" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        EACACHE_LOG_INFO("stress") << "thread " << t << " line " << i;
      }
    });
  }
  for (std::thread& thread : pool) thread.join();

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    // Every line must be exactly one whole statement from one thread:
    // "[INFO] [wT] stress: thread T line I" with matching tag and body.
    const auto tag_open = line.find("[w");
    ASSERT_NE(tag_open, std::string::npos) << line;
    const auto tag_close = line.find(']', tag_open);
    ASSERT_NE(tag_close, std::string::npos) << line;
    const std::string tag = line.substr(tag_open + 2, tag_close - tag_open - 2);
    EXPECT_EQ(line.substr(0, tag_open), "[INFO] ") << line;
    EXPECT_EQ(line.substr(tag_close + 1, 17), " stress: thread " + tag) << line;
  }
}

TEST_F(LoggingTest, MacroInsideUnbracedIfIsSafe) {
  set_log_level(LogLevel::kOff);
  bool reached_else = false;
  // The macro expands to an if/else chain; it must not steal this else.
  if (false)
    EACACHE_LOG_ERROR("test") << "never";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace eacache
