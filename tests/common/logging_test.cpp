#include "common/logging.h"

#include <gtest/gtest.h>

namespace eacache {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

 private:
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  // (Fixture saved whatever level the suite runs with; assert the shipped
  // default explicitly.)
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, MacrosRespectLevel) {
  // The macro's side expression must not evaluate when filtered out.
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return "x";
  };
  EACACHE_LOG_DEBUG("test") << touch();
  EACACHE_LOG_INFO("test") << touch();
  EACACHE_LOG_WARN("test") << touch();
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kOff);
  EACACHE_LOG_ERROR("test") << touch();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, EnabledMacroEvaluatesOnce) {
  set_log_level(LogLevel::kDebug);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return 42;
  };
  EACACHE_LOG_DEBUG("test") << "value=" << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogMessageHonoursOff) {
  set_log_level(LogLevel::kOff);
  // Must be a no-op (nothing observable to assert beyond not crashing,
  // but the level guard is the contract under test).
  log_message(LogLevel::kError, "component", "message");
  SUCCEED();
}

TEST_F(LoggingTest, MacroInsideUnbracedIfIsSafe) {
  set_log_level(LogLevel::kOff);
  bool reached_else = false;
  // The macro expands to an if/else chain; it must not steal this else.
  if (false)
    EACACHE_LOG_ERROR("test") << "never";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace eacache
