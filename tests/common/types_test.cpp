#include "common/types.h"

#include <gtest/gtest.h>

namespace eacache {
namespace {

TEST(TypesTest, DurationHelpersCompose) {
  EXPECT_EQ(msec(1500), sec(1) + msec(500));
  EXPECT_EQ(minutes(2), sec(120));
  EXPECT_EQ(hours(1), minutes(60));
}

TEST(TypesTest, ToSecondsIsFractional) {
  EXPECT_DOUBLE_EQ(to_seconds(msec(250)), 0.25);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_seconds(Duration::zero()), 0.0);
}

TEST(TypesTest, ByteHelpers) {
  EXPECT_EQ(kib(1), Bytes{1024});
  EXPECT_EQ(mib(1), Bytes{1024} * 1024);
  EXPECT_EQ(gib(1), Bytes{1024} * 1024 * 1024);
  EXPECT_EQ(kib(100), Bytes{102400});
}

TEST(TypesTest, FormatBytesExactUnits) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(kib(1)), "1KiB");
  EXPECT_EQ(format_bytes(kib(100)), "100KiB");
  EXPECT_EQ(format_bytes(mib(10)), "10MiB");
  EXPECT_EQ(format_bytes(gib(1)), "1GiB");
}

TEST(TypesTest, FormatBytesFractional) {
  EXPECT_EQ(format_bytes(kib(1) + 512), "1.50KiB");
}

TEST(TypesTest, FormatDuration) {
  EXPECT_EQ(format_duration(msec(342)), "342ms");
  EXPECT_EQ(format_duration(sec(3)), "3s");
  EXPECT_EQ(format_duration(msec(1250)), "1.250s");
}

TEST(TypesTest, SimEpochIsZero) {
  EXPECT_EQ(kSimEpoch.time_since_epoch(), Duration::zero());
  EXPECT_LT(kSimEpoch, kSimTimeMax);
}

TEST(TypesTest, TimePointArithmetic) {
  const TimePoint t = kSimEpoch + sec(10);
  EXPECT_EQ((t - kSimEpoch), sec(10));
  EXPECT_EQ(t + msec(500) - t, msec(500));
}

}  // namespace
}  // namespace eacache
