#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace eacache {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1aIsConstexpr) {
  static_assert(fnv1a64("abc") != fnv1a64("abd"));
  SUCCEED();
}

TEST(HashTest, Fnv1aDistinguishesUrls) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(fnv1a64("http://example.com/page/" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(HashTest, Mix64AvalanchesSequentialIds) {
  // Sequential inputs should produce well-spread outputs: check that the
  // low bit of mix64 flips roughly half the time across consecutive ids.
  int flips = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (((mix64(i) ^ mix64(i + 1)) & 1u) != 0) ++flips;
  }
  EXPECT_GT(flips, 4500);
  EXPECT_LT(flips, 5500);
}

TEST(HashTest, Mix64IsInjectiveOnSmallRange) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  const auto ab = hash_combine(hash_combine(0, 1), 2);
  const auto ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, HashCombineSeedSensitive) {
  EXPECT_NE(hash_combine(1, 42), hash_combine(2, 42));
}

}  // namespace
}  // namespace eacache
