#include "proxy/proxy_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "storage/lru_policy.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

struct Fixture {
  explicit Fixture(PlacementKind kind, Bytes capacity = 1000)
      : placement(make_placement(kind)),
        proxy(0, capacity, std::make_unique<LruPolicy>(), WindowConfig::cumulative(),
              placement.get()) {}

  std::unique_ptr<PlacementPolicy> placement;
  ProxyCache proxy;
};

// Drive evictions until the proxy's expiration age is a known finite value:
// fill with one-shot docs of 400 bytes so victims die `gap` seconds after
// their admission (== last hit).
void force_expiration_age(ProxyCache& proxy, std::int64_t base_s, std::int64_t gap_s,
                          int victims) {
  DocumentId next_id = 900000;
  std::int64_t t = base_s;
  // Prime with two resident docs.
  proxy.cache_after_origin_fetch({next_id++, 400}, at(t));
  proxy.cache_after_origin_fetch({next_id++, 400}, at(t));
  for (int i = 0; i < victims; ++i) {
    t += gap_s;
    proxy.cache_after_origin_fetch({next_id++, 400}, at(t));
  }
}

TEST(ProxyCacheTest, NullPlacementThrows) {
  EXPECT_THROW(
      ProxyCache(0, 100, std::make_unique<LruPolicy>(), WindowConfig::cumulative(), nullptr),
      std::invalid_argument);
}

TEST(ProxyCacheTest, ColdProxyHasInfiniteAge) {
  Fixture f(PlacementKind::kEa);
  EXPECT_TRUE(f.proxy.expiration_age(at(0)).is_infinite());
}

TEST(ProxyCacheTest, ServeLocalHitAndMiss) {
  Fixture f(PlacementKind::kAdHoc);
  f.proxy.cache_after_origin_fetch({1, 300}, at(0));
  const auto size = f.proxy.serve_local(1, at(1));
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 300u);
  EXPECT_EQ(f.proxy.stats().local_hits, 1u);
  EXPECT_FALSE(f.proxy.serve_local(2, at(2)).has_value());
}

TEST(ProxyCacheTest, AnswerIcpIsSideEffectFree) {
  Fixture f(PlacementKind::kEa);
  f.proxy.cache_after_origin_fetch({1, 300}, at(0));
  EXPECT_TRUE(f.proxy.answer_icp(1));
  EXPECT_FALSE(f.proxy.answer_icp(2));
  EXPECT_EQ(f.proxy.store().peek(1)->hit_count, 1u);
}

TEST(ProxyCacheTest, ServeRemoteAdHocPromotes) {
  Fixture f(PlacementKind::kAdHoc);
  f.proxy.cache_after_origin_fetch({1, 300}, at(0));
  HttpRequest request{1, 0, 1, std::nullopt};
  const HttpResponse response = f.proxy.serve_remote(request, at(5));
  EXPECT_EQ(response.body_size, 300u);
  EXPECT_EQ(response.source, ResponseSource::kCache);
  EXPECT_FALSE(response.responder_age.has_value());  // ad-hoc: no piggyback
  EXPECT_EQ(f.proxy.store().peek(1)->hit_count, 2u);  // promoted
  EXPECT_EQ(f.proxy.stats().remote_fetches_served, 1u);
  EXPECT_EQ(f.proxy.stats().promotions_suppressed, 0u);
}

TEST(ProxyCacheTest, ServeRemoteEaSuppressesPromotionWhenRequesterWins) {
  Fixture f(PlacementKind::kEa);
  // Give the responder a finite (low) age; the requester claims infinite.
  force_expiration_age(f.proxy, 0, 1, 5);
  f.proxy.cache_after_origin_fetch({1, 300}, at(100));
  HttpRequest request{1, 0, 1, ExpAge::infinite()};
  const HttpResponse response = f.proxy.serve_remote(request, at(105));
  ASSERT_TRUE(response.responder_age.has_value());
  EXPECT_FALSE(response.responder_age->is_infinite());
  EXPECT_EQ(f.proxy.store().peek(1)->hit_count, 1u);  // NOT promoted
  EXPECT_EQ(f.proxy.stats().promotions_suppressed, 1u);
}

TEST(ProxyCacheTest, ServeRemoteEaPromotesWhenResponderWins) {
  Fixture f(PlacementKind::kEa);
  // Responder is cold -> infinite age; requester sends a finite age.
  f.proxy.cache_after_origin_fetch({1, 300}, at(0));
  HttpRequest request{1, 0, 1, ExpAge::from_millis(5000)};
  const HttpResponse response = f.proxy.serve_remote(request, at(5));
  ASSERT_TRUE(response.responder_age.has_value());
  EXPECT_TRUE(response.responder_age->is_infinite());
  EXPECT_EQ(f.proxy.store().peek(1)->hit_count, 2u);  // promoted
}

TEST(ProxyCacheTest, ServeRemoteAbsentDocumentThrows) {
  Fixture f(PlacementKind::kEa);
  HttpRequest request{1, 0, 42, std::nullopt};
  EXPECT_THROW((void)f.proxy.serve_remote(request, at(0)), std::logic_error);
}

TEST(ProxyCacheTest, ConsiderCachingStoresWhenRequesterWinsOrTies) {
  Fixture f(PlacementKind::kEa);
  // Cold proxy: infinite age; responder also infinite -> tie -> store.
  EXPECT_TRUE(f.proxy.consider_caching({1, 100}, ExpAge::infinite(), at(0)));
  EXPECT_TRUE(f.proxy.store().contains(1));
  EXPECT_EQ(f.proxy.stats().copies_stored, 1u);
}

TEST(ProxyCacheTest, ConsiderCachingDeclinesWhenResponderWins) {
  Fixture f(PlacementKind::kEa);
  force_expiration_age(f.proxy, 0, 1, 5);  // finite own age
  EXPECT_FALSE(f.proxy.consider_caching({1, 100}, ExpAge::infinite(), at(100)));
  EXPECT_FALSE(f.proxy.store().contains(1));
  EXPECT_EQ(f.proxy.stats().copies_declined, 1u);
}

TEST(ProxyCacheTest, ConsiderCachingAdHocAlwaysStores) {
  Fixture f(PlacementKind::kAdHoc);
  EXPECT_TRUE(f.proxy.consider_caching({1, 100}, std::nullopt, at(0)));
}

TEST(ProxyCacheTest, ConsiderCachingSkipsResidentDocument) {
  Fixture f(PlacementKind::kAdHoc);
  f.proxy.cache_after_origin_fetch({1, 100}, at(0));
  EXPECT_FALSE(f.proxy.consider_caching({1, 100}, std::nullopt, at(1)));
}

TEST(ProxyCacheTest, ConsiderCachingOversizedDocument) {
  Fixture f(PlacementKind::kAdHoc, 100);
  EXPECT_FALSE(f.proxy.consider_caching({1, 500}, std::nullopt, at(0)));
  EXPECT_FALSE(f.proxy.store().contains(1));
}

TEST(ProxyCacheTest, ResolveMissAsParentStoresOnStrictWin) {
  Fixture f(PlacementKind::kEa);
  // Parent cold (infinite age), requester finite -> parent > requester.
  HttpRequest request{1, 0, 7, ExpAge::from_millis(100)};
  const HttpResponse response = f.proxy.resolve_miss_as_parent({7, 200}, request, at(0));
  EXPECT_TRUE(f.proxy.store().contains(7));
  EXPECT_EQ(response.source, ResponseSource::kOrigin);
  ASSERT_TRUE(response.responder_age.has_value());
}

TEST(ProxyCacheTest, ResolveMissAsParentDeclinesOnLoss) {
  Fixture f(PlacementKind::kEa);
  force_expiration_age(f.proxy, 0, 1, 5);  // finite parent age
  HttpRequest request{1, 0, 7, ExpAge::infinite()};
  (void)f.proxy.resolve_miss_as_parent({7, 200}, request, at(100));
  EXPECT_FALSE(f.proxy.store().contains(7));
  EXPECT_GE(f.proxy.stats().copies_declined, 1u);
}

TEST(ProxyCacheTest, ResolveMissAsParentTieGoesToRequester) {
  Fixture f(PlacementKind::kEa);
  // Both infinite: parent_should_cache is strict, so the parent declines
  // (the requester will store — paper's tie-break).
  HttpRequest request{1, 0, 7, ExpAge::infinite()};
  (void)f.proxy.resolve_miss_as_parent({7, 200}, request, at(0));
  EXPECT_FALSE(f.proxy.store().contains(7));
}

TEST(ProxyCacheTest, CacheAfterOriginFetchOnResidentThrows) {
  Fixture f(PlacementKind::kAdHoc);
  f.proxy.cache_after_origin_fetch({1, 100}, at(0));
  EXPECT_THROW(f.proxy.cache_after_origin_fetch({1, 100}, at(1)), std::logic_error);
}

}  // namespace
}  // namespace eacache
