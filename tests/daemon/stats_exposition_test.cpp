// Live telemetry plane tests (DESIGN.md §13):
//  * StatsExpositionTest — scrape the real loopback HTTP endpoint twice
//    around live load and validate Prometheus exposition grammar plus
//    counter monotonicity between the scrapes.
//  * TelemetryGoldenTest — a hand-built deterministic TelemetrySnapshot
//    pins the JSON exporter schema byte-for-byte
//    (tests/golden/telemetry_snapshot.json, EACACHE_UPDATE_GOLDEN to
//    regenerate via tests/tools/refresh_goldens.sh).
//  * SpanPropagationTest — cross-hop trace identity: remote ICP-probe and
//    sibling-fetch spans link back to a root span minted on another worker.
//  * FlightRecorderTest — FaultPlan-triggered dumps write span + delta
//    lines without perturbing smoke-replay byte-identity.
//  * SampleStatsTest — the snapshot seam's basic contract.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "daemon/telemetry.h"
#include "trace/synthetic.h"

#ifndef EACACHE_GOLDEN_DIR
#error "EACACHE_GOLDEN_DIR must point at tests/golden"
#endif

namespace eacache {
namespace {

Trace small_trace(std::uint64_t requests, std::uint64_t seed) {
  SyntheticTraceConfig workload;
  workload.num_requests = requests;
  workload.num_documents = requests / 8;
  workload.num_users = 24;
  workload.span = hours(2);
  workload.seed = seed;
  return generate_synthetic_trace(workload);
}

GroupConfig daemon_config(std::size_t proxies) {
  GroupConfig config;
  config.num_proxies = proxies;
  config.aggregate_capacity = 512 * kKiB;
  config.placement = PlacementKind::kEa;
  config.obs.series_points = 0;
  return config;
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body) or an empty string on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  const ssize_t sent = ::write(fd, request.data(), request.size());
  EXPECT_EQ(sent, static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : response.substr(split + 4);
}

/// Parsed Prometheus text exposition, validated against the subset of the
/// grammar the exporter promises: HELP/TYPE per family, families never
/// interleaved, every sample belonging to an announced family.
struct Exposition {
  std::map<std::string, std::string> types;    // family -> counter|gauge|histogram
  std::map<std::string, double> samples;       // name+labels -> value
};

Exposition parse_exposition(const std::string& text) {
  Exposition parsed;
  // Counters render via std::to_string, doubles via %.12g (may yield
  // scientific notation, inf or nan).
  const std::regex sample_re(
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?(?:[0-9][0-9eE+.\-]*|inf|nan))$)");
  std::string current_family;
  std::set<std::string> closed_families;  // grammar: no interleaving
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << "bad TYPE line: " << line;
      EXPECT_EQ(parsed.types.count(family), 0u)
          << "family announced twice (interleaved): " << family;
      if (!current_family.empty()) closed_families.insert(current_family);
      current_family = family;
      parsed.types[family] = type;
      continue;
    }
    std::smatch match;
    const bool is_sample = std::regex_match(line, match, sample_re);
    EXPECT_TRUE(is_sample) << "line is neither comment nor sample: " << line;
    if (!is_sample) continue;
    const std::string name = match[1];
    EXPECT_FALSE(current_family.empty()) << "sample before any TYPE: " << line;
    // A sample belongs to the family announced immediately above it: the
    // family name itself, or its _bucket/_sum/_count series for histograms.
    const bool in_family =
        name == current_family ||
        (parsed.types[current_family] == "histogram" &&
         (name == current_family + "_bucket" || name == current_family + "_sum" ||
          name == current_family + "_count"));
    EXPECT_TRUE(in_family) << "sample " << name << " outside announced family "
                           << current_family;
    EXPECT_EQ(closed_families.count(current_family), 0u)
        << "family reopened (interleaved): " << current_family;
    parsed.samples[match[1].str() + match[2].str()] = std::strtod(match[3].str().c_str(), nullptr);
  }
  return parsed;
}

TEST(StatsExpositionTest, LiveScrapeGrammarAndMonotoneCounters) {
  const GroupConfig config = daemon_config(3);
  SteadyClock clock(kSimEpoch);
  DaemonGroup group(config, clock, DaemonMode::kWallClock, /*flight_capacity=*/256);
  group.start();

  StatsPoller::Options poll_options;
  poll_options.period = msec(50);
  StatsPoller poller(group, poll_options);  // driven manually: poll_once()
  StatsHttpServer server(StatsHttpHandler(poller), /*port=*/0);
  server.start();
  ASSERT_GT(server.bound_port(), 0);

  LoadGenOptions load;
  load.speedup = 1e6;  // compress the synthetic span: finish fast
  {
    LoadGen gen(group, clock, nullptr, DaemonMode::kWallClock, load);
    const LoadGenReport report = gen.replay(small_trace(4000, 21));
    ASSERT_EQ(report.completed, report.submitted);
  }
  ASSERT_TRUE(poller.poll_once());
  const std::string first_response = http_get(server.bound_port(), "/metrics");
  ASSERT_NE(first_response.find("HTTP/1.0 200"), std::string::npos);
  ASSERT_NE(first_response.find("text/plain; version=0.0.4"), std::string::npos);
  const Exposition first = parse_exposition(body_of(first_response));

  {
    LoadGen gen(group, clock, nullptr, DaemonMode::kWallClock, load);
    const LoadGenReport report = gen.replay(small_trace(4000, 22));
    ASSERT_EQ(report.completed, report.submitted);
  }
  ASSERT_TRUE(poller.poll_once());
  const Exposition second = parse_exposition(body_of(http_get(server.bound_port(), "/metrics")));

  // Both scrapes carry the headline families with correct kinds.
  for (const Exposition* scrape : {&first, &second}) {
    EXPECT_EQ(scrape->types.at("eacache_group_requests_total"), "counter");
    EXPECT_EQ(scrape->types.at("eacache_group_request_bytes"), "histogram");
    EXPECT_EQ(scrape->types.at("eacache_telemetry_requests_per_second"), "gauge");
    EXPECT_EQ(scrape->types.at("eacache_proxy_local_hits_total"), "counter");
    EXPECT_GT(scrape->samples.count("eacache_proxy_local_hits_total{proxy=\"0\"}"), 0u);
    EXPECT_GT(scrape->samples.count("eacache_group_request_bytes_bucket{le=\"+Inf\"}"), 0u);
  }
  // Counters are monotone across scrapes — strictly so for the request
  // count, which grew by a whole second trace between them.
  EXPECT_EQ(first.samples.at("eacache_group_requests_total"), 4000.0);
  EXPECT_EQ(second.samples.at("eacache_group_requests_total"), 8000.0);
  for (const auto& [key, value] : first.samples) {
    if (key.find("_total") == std::string::npos) continue;
    const auto later = second.samples.find(key);
    ASSERT_NE(later, second.samples.end()) << "counter vanished between scrapes: " << key;
    EXPECT_GE(later->second, value) << "counter moved backwards: " << key;
  }

  // JSON twin serves the same registry plus the derived block.
  const std::string json_response = http_get(server.bound_port(), "/stats.json");
  EXPECT_NE(json_response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(json_response.find("\"derived\""), std::string::npos);
  EXPECT_NE(json_response.find("\"group.requests\":8000"), std::string::npos);
  EXPECT_NE(http_get(server.bound_port(), "/nope").find("HTTP/1.0 404"), std::string::npos);

  server.stop();
  group.stop();
}

TEST(TelemetryGoldenTest, JsonSnapshotMatchesGolden) {
  // Hand-built, fully deterministic snapshot: no clocks, no threads.
  MetricRegistry registry(true);
  registry.counter("group.requests").inc(100);
  registry.counter("group.icp.queries").inc(57);
  registry.counter("proxy.0.local.hits").inc(42);
  registry.counter("proxy.1.local.hits").inc(13);
  registry.counter("link.0->1.bytes").inc(2048);
  registry.gauge("proxy.0.resident_bytes").set(4096.0);
  registry.gauge("telemetry.requests_per_second").set(66.5);
  const MetricRegistry::HistogramHandle sizes =
      registry.histogram("group.request_bytes", 0.0, 4096.0, 4);
  sizes.observe(100.0);
  sizes.observe(1024.0);
  sizes.observe(5000.0);  // overflow

  TelemetrySnapshot snapshot;
  snapshot.at_ms = 86'400'000;
  snapshot.tick = 3;
  snapshot.window_seconds = 1.5;
  snapshot.total_requests = 100;
  snapshot.in_flight = 2;
  snapshot.resident_bytes = 4096;
  snapshot.resident_docs = 7;
  snapshot.hit_rate = 0.42;
  snapshot.window_hit_rate = 0.5;
  snapshot.requests_per_second = 66.5;
  snapshot.icp_queries_per_second = 12.25;
  snapshot.origin_fetches_per_second = 3.75;
  snapshot.registry = registry.snapshot();

  const std::string json = telemetry_snapshot_to_json(snapshot);
  const std::string path = std::string(EACACHE_GOLDEN_DIR) + "/telemetry_snapshot.json";
  if (std::getenv("EACACHE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << json;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with tests/tools/refresh_goldens.sh)";
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_EQ(json, stored.str())
      << "telemetry JSON schema diverged from tests/golden/telemetry_snapshot.json";

  // The Prometheus twin of the same snapshot must expose the histogram as
  // cumulative buckets with matching _count, and render the derived gauge.
  std::ostringstream prom;
  write_telemetry_prometheus(prom, snapshot);
  const Exposition exposition = parse_exposition(prom.str());
  EXPECT_EQ(exposition.samples.at("eacache_group_request_bytes_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_EQ(exposition.samples.at("eacache_group_request_bytes_count"), 3.0);
  EXPECT_EQ(exposition.samples.at("eacache_group_request_bytes_sum"), 6124.0);
  EXPECT_EQ(exposition.samples.at("eacache_telemetry_requests_per_second"), 66.5);
  EXPECT_EQ(exposition.samples.at("eacache_link_bytes_total{from=\"0\",to=\"1\"}"), 2048.0);
}

TEST(SpanPropagationTest, RemoteSpansLinkToRootsAcrossWorkers) {
  const GroupConfig config = daemon_config(3);
  FakeClock fake(kSimEpoch);
  DaemonGroup group(config, fake, DaemonMode::kSmokeReplay, /*flight_capacity=*/65536);
  group.start();
  LoadGen gen(group, fake, &fake, DaemonMode::kSmokeReplay, LoadGenOptions{});
  const Trace trace = small_trace(3000, 33);
  const LoadGenReport report = gen.replay(trace);
  ASSERT_EQ(report.completed, trace.size());

  const auto samples = group.sample_stats(/*want_spans=*/true, std::chrono::seconds(10));
  ASSERT_TRUE(samples.has_value());
  ASSERT_EQ(samples->size(), 3u);

  std::map<std::uint64_t, ProxyId> roots;  // root span id -> minting worker
  for (const auto& sample : *samples) {
    for (const SpanEvent& span : sample.spans) {
      if (span.kind == SpanKind::kArrival) {
        ASSERT_NE(span.span, 0u) << "arrival span without trace identity";
        EXPECT_LT(span.parent_span, 0) << "arrival must be a root";
        EXPECT_EQ(span.hop, 0);
        EXPECT_TRUE(roots.emplace(span.span, sample.proxy).second)
            << "span id minted twice: " << span.span;
      }
    }
  }
  ASSERT_FALSE(roots.empty());

  std::uint64_t cross_hop_spans = 0;
  for (const auto& sample : *samples) {
    for (const SpanEvent& span : sample.spans) {
      if (span.kind != SpanKind::kIcpProbe && span.kind != SpanKind::kSiblingFetch) continue;
      if (span.hop != 1) continue;  // hop-1 events ran on the remote worker
      ++cross_hop_spans;
      ASSERT_GE(span.parent_span, 0);
      const auto root = roots.find(static_cast<std::uint64_t>(span.parent_span));
      ASSERT_NE(root, roots.end())
          << "remote span parents an unknown root: " << span.parent_span;
      EXPECT_NE(root->second, sample.proxy)
          << "hop-1 span recorded on the same worker that minted the root";
    }
  }
  EXPECT_GT(cross_hop_spans, 0u) << "workload produced no cross-hop protocol spans";
  group.stop();
}

TEST(FlightRecorderTest, FaultPlanDumpWritesSpansAndDeltas) {
  const Trace trace = small_trace(2000, 44);
  const GroupConfig config = daemon_config(3);
  const std::string dump_path = testing::TempDir() + "/eacache_flight_dump.jsonl";
  std::remove(dump_path.c_str());

  DaemonOptions options;  // smoke replay
  options.telemetry.flight_capacity = 4096;
  options.telemetry.flight_out = dump_path;
  options.faults.flight_dumps = {trace.requests[trace.requests.size() / 2].at};
  const RunResult with_dump = run_daemon(trace, config, options);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in) << "flight dump not written to " << dump_path;
  std::uint64_t span_lines = 0, delta_lines = 0, summary_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"event\"") != std::string::npos) {
      ++span_lines;
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
    } else if (line.find("\"metric\"") != std::string::npos) {
      ++delta_lines;
      EXPECT_NE(line.find("\"delta\""), std::string::npos);
      EXPECT_NE(line.find("\"worker\""), std::string::npos);
    } else if (line.find("\"spans_recorded\"") != std::string::npos) {
      ++summary_lines;
    }
  }
  EXPECT_GT(span_lines, 0u);
  EXPECT_GT(delta_lines, 0u);
  EXPECT_EQ(summary_lines, 3u);  // one per worker

  // Flight recording + mid-run sampling must not perturb the replay: the
  // result JSON stays byte-identical to a run with the plane fully off.
  const RunResult plain = run_daemon(trace, config);
  EXPECT_EQ(run_result_to_json(with_dump), run_result_to_json(plain));
}

TEST(SampleStatsTest, SamplesCoverEveryWorkerAndSumToTotals) {
  const Trace trace = small_trace(1500, 55);
  const GroupConfig config = daemon_config(4);
  FakeClock fake(kSimEpoch);
  DaemonGroup group(config, fake, DaemonMode::kSmokeReplay);
  group.start();
  LoadGen gen(group, fake, &fake, DaemonMode::kSmokeReplay, LoadGenOptions{});
  (void)gen.replay(trace);

  const auto samples = group.sample_stats(false, std::chrono::seconds(10));
  ASSERT_TRUE(samples.has_value());
  ASSERT_EQ(samples->size(), 4u);
  std::uint64_t requests = 0, in_flight = 0;
  std::set<ProxyId> seen;
  for (const auto& sample : *samples) {
    seen.insert(sample.proxy);
    requests += sample.registry.counter_value("group.requests");
    in_flight += sample.in_flight;
    EXPECT_TRUE(sample.spans.empty()) << "spans returned without want_spans";
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(requests, trace.size());
  EXPECT_EQ(in_flight, 0u) << "closed-loop replay left requests pending";

  group.stop();
  // A stopped group cannot ack: the sampler reports failure, not a hang.
  EXPECT_FALSE(group.sample_stats(false, std::chrono::milliseconds(50)).has_value());
}

}  // namespace
}  // namespace eacache
