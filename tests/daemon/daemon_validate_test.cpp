// Daemon-run validation: configurations whose semantics only exist inside
// the discrete-event simulator, and load options that could never finish
// (zero-rate pacing, wall-clock fault plans), are rejected with aggregated
// messages — same contract as GroupConfig::validate().
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "daemon/daemon.h"

namespace eacache {
namespace {

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  return std::any_of(errors.begin(), errors.end(), [&needle](const std::string& error) {
    return error.find(needle) != std::string::npos;
  });
}

GroupConfig runnable_config() {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  return config;
}

TEST(DaemonValidateTest, DefaultConfigAndOptionsAreRunnable) {
  EXPECT_TRUE(validate_daemon_run(runnable_config(), DaemonOptions{}).empty());
  EXPECT_NO_THROW(validate_daemon_run_or_throw(runnable_config(), DaemonOptions{}));
}

TEST(DaemonValidateTest, SimulatorOnlyFeaturesAreRejected) {
  GroupConfig config = runnable_config();
  config.topology = TopologyKind::kHierarchical;
  config.discovery = DiscoveryMode::kDigest;
  config.coherence.enabled = true;
  config.prefetch.enabled = true;
  config.icp_loss_probability = 0.05;
  config.pipeline.event_driven = true;
  config.obs.trace_capacity = 1024;

  const std::vector<std::string> errors = config.validate_for_daemon();
  EXPECT_TRUE(mentions(errors, "kDistributed"));
  EXPECT_TRUE(mentions(errors, "kIcp discovery"));
  EXPECT_TRUE(mentions(errors, "coherence"));
  EXPECT_TRUE(mentions(errors, "prefetch"));
  EXPECT_TRUE(mentions(errors, "icp_loss_probability"));
  EXPECT_TRUE(mentions(errors, "event_driven"));
  EXPECT_TRUE(mentions(errors, "span"));
  // All aggregated, not first-failure-only.
  EXPECT_GE(errors.size(), 7u);
}

TEST(DaemonValidateTest, HashPartitionRoutingIsRejected) {
  GroupConfig config = runnable_config();
  config.routing = RoutingMode::kHashPartition;
  config.placement = PlacementKind::kAdHoc;  // valid for the simulator...
  EXPECT_TRUE(config.validate().empty());
  // ...but not for the daemon.
  EXPECT_TRUE(mentions(config.validate_for_daemon(), "kCooperative"));
}

TEST(DaemonValidateTest, BaseValidationErrorsAreIncluded) {
  GroupConfig config = runnable_config();
  config.num_proxies = 0;
  const std::vector<std::string> errors = validate_daemon_run(config, DaemonOptions{});
  EXPECT_TRUE(mentions(errors, "num_proxies"));
}

TEST(DaemonValidateTest, ZeroRateWallClockLoadIsRejected) {
  const GroupConfig config = runnable_config();

  DaemonOptions zero_speedup;
  zero_speedup.mode = DaemonMode::kWallClock;
  zero_speedup.load.speedup = 0.0;
  EXPECT_TRUE(mentions(validate_daemon_run(config, zero_speedup), "speedup"));

  DaemonOptions zero_rate;
  zero_rate.mode = DaemonMode::kWallClock;
  zero_rate.load.pacing = PacingMode::kFixedRate;
  zero_rate.load.requests_per_second = 0.0;
  EXPECT_TRUE(
      mentions(validate_daemon_run(config, zero_rate), "requests_per_second"));

  DaemonOptions zero_window;
  zero_window.mode = DaemonMode::kWallClock;
  zero_window.load.max_in_flight = 0;
  EXPECT_TRUE(mentions(validate_daemon_run(config, zero_window), "max_in_flight"));

  // Smoke replay ignores pacing knobs entirely: closed-loop submission is
  // driven by completions, so a zero speedup is not an error there.
  DaemonOptions smoke = zero_speedup;
  smoke.mode = DaemonMode::kSmokeReplay;
  smoke.load.max_in_flight = 0;
  EXPECT_TRUE(validate_daemon_run(config, smoke).empty());
}

TEST(DaemonValidateTest, WallClockFaultPlanIsRejected) {
  const GroupConfig config = runnable_config();
  DaemonOptions options;
  options.mode = DaemonMode::kWallClock;
  options.faults.flushes.push_back({kSimEpoch + sec(10), 0});
  EXPECT_TRUE(mentions(validate_daemon_run(config, options), "FaultPlan"));

  // The same plan is fine in smoke replay, where timestamps ARE trace time.
  options.mode = DaemonMode::kSmokeReplay;
  EXPECT_TRUE(validate_daemon_run(config, options).empty());
}

TEST(DaemonValidateTest, OutageInjectionIsAlwaysRejected) {
  const GroupConfig config = runnable_config();
  DaemonOptions options;
  options.faults.outages.push_back({1, kSimEpoch, kSimEpoch + sec(5)});
  EXPECT_TRUE(mentions(validate_daemon_run(config, options), "outages"));
}

TEST(DaemonValidateTest, NonPositiveDrainTimeoutIsRejected) {
  const GroupConfig config = runnable_config();
  DaemonOptions options;
  options.load.drain_timeout = Duration::zero();
  EXPECT_TRUE(mentions(validate_daemon_run(config, options), "drain_timeout"));
}

TEST(DaemonValidateTest, ThrowingWrapperAggregatesEverything) {
  GroupConfig config = runnable_config();
  config.coherence.enabled = true;
  DaemonOptions options;
  options.load.drain_timeout = Duration::zero();
  try {
    validate_daemon_run_or_throw(config, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("coherence"), std::string::npos);
    EXPECT_NE(message.find("drain_timeout"), std::string::npos);
  }
}

TEST(DaemonValidateTest, RunDaemonRefusesInvalidRuns) {
  GroupConfig config = runnable_config();
  config.pipeline.event_driven = true;
  EXPECT_THROW((void)run_daemon(Trace{}, config), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
