// The extraction proof: the multi-threaded daemon, replaying a trace in
// closed-loop smoke mode over the in-memory wire, produces a RunResult that
// serializes BYTE-IDENTICALLY to run_simulation on the same workload — the
// placement/serving core behaves the same whether an event loop or four
// worker threads drive it. Wall-clock mode (real concurrency, nothing
// pinned) is held to the paper-level acceptance bound instead: EA hit rate
// within two points of the simulated run.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace workload(std::uint64_t requests, std::uint64_t seed) {
  SyntheticTraceConfig config;
  config.num_requests = requests;
  config.num_documents = requests / 8;
  config.num_users = 32;
  config.span = hours(6);
  config.seed = seed;
  return generate_synthetic_trace(config);
}

GroupConfig daemon_comparable_config(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 2 * kMiB;
  config.placement = placement;
  // The simulator samples a mid-run per-proxy time series on the event
  // queue; the daemon has no mid-run sampling hook, so comparisons switch
  // the series off on both sides.
  config.obs.series_points = 0;
  return config;
}

TEST(DaemonVsSimTest, SmokeReplayIsByteIdenticalToSimulator) {
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    const Trace trace = workload(20'000, 71);
    const GroupConfig config = daemon_comparable_config(placement);

    const std::string simulated = simulation_result_to_json(run_simulation(trace, config));

    LoadGenReport report;
    const std::string live =
        run_result_to_json(run_daemon(trace, config, DaemonOptions{}, &report));

    EXPECT_EQ(report.submitted, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(simulated, live) << "placement " << to_string(placement);
  }
}

TEST(DaemonVsSimTest, SmokeReplayMatchesUnderFlushInjection) {
  const Trace trace = workload(10'000, 72);
  const GroupConfig config = daemon_comparable_config(PlacementKind::kEa);
  const TimePoint mid = trace.requests[trace.size() / 2].at;

  SimulationOptions sim_options;
  sim_options.faults.flushes.push_back({mid, 1});
  const std::string simulated =
      simulation_result_to_json(run_simulation(trace, config, sim_options));

  DaemonOptions daemon_options;
  daemon_options.faults.flushes.push_back({mid, 1});
  LoadGenReport report;
  const std::string live =
      run_result_to_json(run_daemon(trace, config, daemon_options, &report));

  EXPECT_EQ(report.flushes_injected, 1u);
  EXPECT_EQ(simulated, live);
}

TEST(DaemonVsSimTest, WallClockHitRateWithinTwoPointsOfSimulation) {
  const Trace trace = workload(30'000, 73);
  const GroupConfig config = daemon_comparable_config(PlacementKind::kEa);

  const RunResult simulated = run_simulation(trace, config);

  DaemonOptions options;
  options.mode = DaemonMode::kWallClock;
  // Compress the six-hour trace span aggressively so the test stays fast;
  // the EA contention window is victim-count based (WindowConfig default),
  // so uniform time compression preserves placement comparisons.
  options.load.speedup = 6.0 * 3600.0 * 50.0;  // whole span in ~20 ms
  LoadGenReport report;
  const RunResult live = run_daemon(trace, config, options, &report);

  EXPECT_EQ(report.submitted, trace.size());
  EXPECT_EQ(report.completed, trace.size()) << "wall-clock run left stragglers";
  EXPECT_EQ(live.metrics.total_requests(), trace.size());
  EXPECT_LT(std::abs(live.metrics.hit_rate() - simulated.metrics.hit_rate()), 0.02)
      << "daemon " << live.metrics.hit_rate() << " vs sim " << simulated.metrics.hit_rate();
  // Conservation: every request resolves to exactly one outcome class.
  EXPECT_EQ(live.metrics.count(RequestOutcome::kLocalHit) +
                live.metrics.count(RequestOutcome::kRemoteHit) +
                live.metrics.count(RequestOutcome::kMiss),
            trace.size());
}

TEST(DaemonVsSimTest, FixedRatePacingCompletesEveryRequest) {
  const Trace trace = workload(2'000, 74);
  const GroupConfig config = daemon_comparable_config(PlacementKind::kEa);

  DaemonOptions options;
  options.mode = DaemonMode::kWallClock;
  options.load.pacing = PacingMode::kFixedRate;
  options.load.requests_per_second = 200'000.0;
  LoadGenReport report;
  const RunResult live = run_daemon(trace, config, options, &report);

  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(live.metrics.total_requests(), trace.size());
}

}  // namespace
}  // namespace eacache
