// Golden pin for the daemon's smoke-replay mode: a fixed workload driven
// through 4 live worker threads must serialize byte-for-byte to
// tests/golden/daemon_smoke.json, session after session. Together with
// DaemonVsSimTest (daemon JSON == simulator JSON on the same run) this
// transitively pins the daemon to the simulator's own golden lineage.
//
// Regenerate (only when a change is MEANT to alter results):
//   EACACHE_UPDATE_GOLDEN=1 ./test_daemon --gtest_filter='DaemonGolden*'
// or tests/tools/refresh_goldens.sh, which shows the diff for review.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "trace/synthetic.h"

#ifndef EACACHE_GOLDEN_DIR
#error "EACACHE_GOLDEN_DIR must point at tests/golden"
#endif

namespace eacache {
namespace {

TEST(DaemonGoldenTest, SmokeReplayMatchesGolden) {
  SyntheticTraceConfig workload;
  workload.num_requests = 6000;
  workload.num_documents = 900;
  workload.num_users = 32;
  workload.span = hours(6);
  workload.seed = 424242;  // the pipeline-regression trace
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  config.obs.series_points = 0;  // no mid-run sampling hook in daemon mode

  const std::string json = run_result_to_json(run_daemon(trace, config));

  const std::string path = std::string(EACACHE_GOLDEN_DIR) + "/daemon_smoke.json";
  if (std::getenv("EACACHE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << json << '\n';
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with tests/tools/refresh_goldens.sh)";
  std::ostringstream stored;
  stored << in.rdbuf();
  std::string expected = stored.str();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(json, expected)
      << "daemon smoke-replay JSON diverged from tests/golden/daemon_smoke.json";
}

}  // namespace
}  // namespace eacache
