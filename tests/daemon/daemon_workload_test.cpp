// Streaming workload-DSL traces through daemon mode (DESIGN.md §15):
// run_daemon(TraceSource&, RunSpec) must equal run_daemon(Trace, RunSpec) on
// the materialized trace byte-for-byte in smoke replay — the proof that a
// never-materialized soak exercises the exact same path — and the streaming
// monotone-time contract must be enforced incrementally.
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "trace/scenarios.h"
#include "trace/workload.h"

namespace eacache {
namespace {

WorkloadSpec small_pack_spec(const char* name) {
  const ScenarioPack* pack = find_scenario(name);
  EXPECT_NE(pack, nullptr) << name;
  return scaled_spec(*pack, 3'000);
}

RunSpec smoke_spec() {
  RunSpec spec;
  spec.group.num_proxies = 3;
  spec.group.aggregate_capacity = 2 * kMiB;
  spec.group.placement = PlacementKind::kEa;
  spec.group.obs.series_points = 0;
  return spec;
}

DaemonOptions smoke_options() {
  DaemonOptions options;
  options.mode = DaemonMode::kSmokeReplay;
  return options;
}

TEST(DaemonWorkloadTest, StreamingSmokeReplayMatchesMaterialized) {
  // segmented-media is the structurally richest pack (chunk trains merge
  // into the arrival order), so it is the one to pin the equality on.
  const WorkloadSpec workload = small_pack_spec("segmented-media");
  const RunSpec spec = smoke_spec();

  const Trace trace = generate_workload_trace(workload);
  const RunResult materialized = run_daemon(trace, spec, smoke_options());

  WorkloadSource source(workload);
  LoadGenReport report;
  const RunResult streamed = run_daemon(source, spec, smoke_options(), &report);

  EXPECT_EQ(report.submitted, trace.size());
  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(run_result_to_json(streamed), run_result_to_json(materialized));
}

TEST(DaemonWorkloadTest, StreamingRunHonoursFaultPlanFlushes) {
  const WorkloadSpec workload = small_pack_spec("stationary");
  RunSpec spec = smoke_spec();
  spec.faults.flushes.push_back({kSimEpoch + workload.span / 2, 0});

  const Trace trace = generate_workload_trace(workload);
  const RunResult materialized = run_daemon(trace, spec, smoke_options());

  WorkloadSource source(workload);
  LoadGenReport report;
  const RunResult streamed = run_daemon(source, spec, smoke_options(), &report);

  EXPECT_EQ(report.flushes_injected, 1u);
  EXPECT_EQ(run_result_to_json(streamed), run_result_to_json(materialized));
}

TEST(DaemonWorkloadTest, StreamingRejectsTimestampRegression) {
  class RegressingSource final : public TraceSource {
   public:
    bool next(Request& out) override {
      if (emitted_ >= 3) return false;
      out = Request{};
      out.at = kSimEpoch + sec(emitted_ == 2 ? 1 : 10 * (emitted_ + 1));
      out.document = static_cast<DocumentId>(emitted_);
      out.size = 1024;
      ++emitted_;
      return true;
    }
    void reset() override { emitted_ = 0; }

   private:
    std::int64_t emitted_ = 0;
  };

  RegressingSource source;
  EXPECT_THROW((void)run_daemon(source, smoke_spec(), smoke_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace eacache
