// Randomized differential harness (DESIGN.md §10): seeded random
// (config, faults, trace) cases replayed through BOTH request drivers with
// the invariant checker attached, then diffed counter-for-counter.
//
// Environment knobs (for soak runs and triage):
//   EACACHE_FUZZ_SEED     — corpus base seed (default 20260806)
//   EACACHE_FUZZ_CASES    — corpus size (default 200)
//   EACACHE_FUZZ_WORKLOAD — non-zero mixes workload-DSL traces into the
//                           main corpus (odd-indexed cases; see
//                           random_workload_spec). A small DSL corpus also
//                           runs unconditionally below.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "validate/fuzz_driver.h"

namespace eacache {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

constexpr std::uint64_t kDefaultBaseSeed = 20260806;

TEST(SimFuzzTest, GeneratorIsDeterministic) {
  const FuzzCase a = make_fuzz_case(kDefaultBaseSeed);
  const FuzzCase b = make_fuzz_case(kDefaultBaseSeed);
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.trace->size(), b.trace->size());
  EXPECT_EQ(a.trace->requests.front().document, b.trace->requests.front().document);
  EXPECT_EQ(a.faults.flushes.size(), b.faults.flushes.size());
  EXPECT_EQ(a.faults.outages.size(), b.faults.outages.size());
  EXPECT_EQ(a.config.num_proxies, b.config.num_proxies);
  EXPECT_EQ(a.strict, b.strict);
}

TEST(SimFuzzTest, GeneratedCasesAreWellFormed) {
  for (std::uint64_t seed = kDefaultBaseSeed; seed < kDefaultBaseSeed + 32; ++seed) {
    const FuzzCase fuzz_case = make_fuzz_case(seed);
    EXPECT_TRUE(fuzz_case.config.validate().empty()) << fuzz_case.label;
    EXPECT_FALSE(fuzz_case.config.pipeline.event_driven) << fuzz_case.label;
    EXPECT_GE(fuzz_case.trace->size(), 300u) << fuzz_case.label;
    EXPECT_TRUE(is_time_ordered(fuzz_case.trace->requests)) << fuzz_case.label;
    for (const FaultPlan::Flush& flush : fuzz_case.faults.flushes) {
      EXPECT_GT(flush.at, fuzz_case.trace->requests.front().at) << fuzz_case.label;
      EXPECT_LT(flush.at, fuzz_case.trace->requests.back().at) << fuzz_case.label;
    }
    for (const PeerOutage& outage : fuzz_case.faults.outages) {
      EXPECT_LT(outage.start, outage.end) << fuzz_case.label;
    }
  }
}

TEST(SimFuzzTest, SingleCaseSerialRun) {
  const FuzzDiff diff = run_fuzz_case(make_fuzz_case(kDefaultBaseSeed));
  EXPECT_TRUE(diff.ok()) << diff.summary();
}

TEST(SimFuzzTest, CorpusAgreesUnderBothDrivers) {
  const std::uint64_t base_seed = env_u64("EACACHE_FUZZ_SEED", kDefaultBaseSeed);
  const std::size_t count =
      static_cast<std::size_t>(env_u64("EACACHE_FUZZ_CASES", 200));
  const bool include_workload = env_u64("EACACHE_FUZZ_WORKLOAD", 0) != 0;
  const std::vector<FuzzDiff> diffs =
      run_fuzz_corpus(base_seed, count, /*jobs=*/0, include_workload);
  ASSERT_EQ(diffs.size(), count);
  std::size_t failures = 0;
  for (const FuzzDiff& diff : diffs) {
    if (!diff.ok()) {
      ++failures;
      ADD_FAILURE() << diff.summary();
    }
  }
  EXPECT_EQ(failures, 0u) << failures << " of " << count << " fuzz cases diverged";
}

TEST(SimFuzzTest, WorkloadDslCasesAreWellFormed) {
  // Odd-indexed seeds carry DSL traces when the workload mix is on; the
  // generated specs must validate clean and produce time-ordered traces.
  std::size_t dsl_cases = 0;
  for (std::uint64_t seed = kDefaultBaseSeed; seed < kDefaultBaseSeed + 16; ++seed) {
    const FuzzCase fuzz_case =
        make_fuzz_case(seed, seed % 2 == 1 ? FuzzTraceKind::kWorkloadDsl
                                           : FuzzTraceKind::kSynthetic);
    EXPECT_TRUE(fuzz_case.config.validate().empty()) << fuzz_case.label;
    EXPECT_TRUE(is_time_ordered(fuzz_case.trace->requests)) << fuzz_case.label;
    if (fuzz_case.label.find("/dsl") != std::string::npos) ++dsl_cases;
  }
  EXPECT_EQ(dsl_cases, 8u);
}

TEST(SimFuzzTest, WorkloadDslCorpusAgreesUnderBothDrivers) {
  // A small always-on DSL corpus keeps the tier-1 runtime flat while still
  // exercising chunk trains, flash spikes and session affinity through both
  // request drivers every run; EACACHE_FUZZ_WORKLOAD=1 scales the mix up to
  // the full corpus above.
  const std::vector<FuzzDiff> diffs =
      run_fuzz_corpus(kDefaultBaseSeed, 8, /*jobs=*/2, /*include_workload=*/true);
  ASSERT_EQ(diffs.size(), 8u);
  for (const FuzzDiff& diff : diffs) {
    EXPECT_TRUE(diff.ok()) << diff.summary();
  }
}

TEST(SimFuzzTest, CorpusVerdictIndependentOfWorkerCount) {
  // The validate_sweep sharding must be deterministic: the same 8 cases
  // through a serial pool and a 4-worker pool give identical verdicts and
  // identical per-case summaries.
  const std::vector<FuzzDiff> serial = run_fuzz_corpus(kDefaultBaseSeed, 8, /*jobs=*/1);
  const std::vector<FuzzDiff> parallel = run_fuzz_corpus(kDefaultBaseSeed, 8, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_EQ(serial[i].ok(), parallel[i].ok());
    EXPECT_EQ(serial[i].summary(), parallel[i].summary());
  }
}

}  // namespace
}  // namespace eacache
