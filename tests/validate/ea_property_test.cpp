// Property tests for the EA math (DESIGN.md §10, satellite of the invariant
// net): the Eq. 5 window estimators must equal a brute-force mean over the
// same victim stream, the LFU DocExpAge with HIT_COUNTER == 1 must collapse
// to plain residence time, and an empty window must read as infinite.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ea/contention.h"
#include "ea/expiration_age.h"
#include "storage/eviction.h"

namespace eacache {
namespace {

/// Randomized victim stream: monotone evict times, entry <= last_hit <=
/// evict, occasional kExplicit records (which Eq. 5 must IGNORE — explicit
/// invalidations are not contention).
std::vector<EvictionRecord> random_victims(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<EvictionRecord> records;
  records.reserve(count);
  TimePoint now = kSimEpoch;
  for (std::size_t i = 0; i < count; ++i) {
    now += msec(static_cast<std::int64_t>(1 + rng.next_below(120'000)));
    EvictionRecord record;
    record.id = i;
    record.size = 1 + rng.next_below(64 * kKiB);
    record.evict_time = now;
    const Duration residence = msec(static_cast<std::int64_t>(rng.next_below(7'200'000)));
    record.entry_time = now - residence;
    record.last_hit_time =
        record.entry_time +
        msec(static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(residence.count()) + 1)));
    record.hit_count = 1 + rng.next_below(20);
    record.cause = rng.next_bool(0.2) ? EvictionCause::kExplicit : EvictionCause::kCapacity;
    records.push_back(record);
  }
  return records;
}

/// Brute-force Eq. 5: the mean victim DocExpAge over whichever suffix of
/// the capacity-eviction stream the window selects.
ExpAge brute_force_age(AgeForm form, const WindowConfig& window,
                       const std::vector<EvictionRecord>& records, TimePoint now) {
  std::vector<const EvictionRecord*> capacity;
  for (const EvictionRecord& record : records) {
    if (record.cause == EvictionCause::kCapacity) capacity.push_back(&record);
  }
  std::size_t first = 0;
  switch (window.kind) {
    case WindowKind::kCumulative:
      break;
    case WindowKind::kVictimCount:
      first = capacity.size() > window.victim_count ? capacity.size() - window.victim_count : 0;
      break;
    case WindowKind::kTimeWindow: {
      const TimePoint cutoff =
          now - window.time_window >= kSimEpoch ? now - window.time_window : kSimEpoch;
      while (first < capacity.size() && capacity[first]->evict_time < cutoff) ++first;
      break;
    }
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = first; i < capacity.size(); ++i) {
    sum += doc_exp_age(form, *capacity[i]).millis();
    ++n;
  }
  if (n == 0) return ExpAge::infinite();
  return ExpAge::from_millis(sum / static_cast<double>(n));
}

void expect_ages_near(ExpAge actual, ExpAge expected, const char* context) {
  if (expected.is_infinite() || actual.is_infinite()) {
    EXPECT_EQ(actual.is_infinite(), expected.is_infinite()) << context;
    return;
  }
  EXPECT_NEAR(actual.millis(), expected.millis(), 1e-6 * (1.0 + expected.millis())) << context;
}

TEST(EaPropertyTest, Eq5WindowMeansMatchBruteForce) {
  const WindowConfig windows[] = {
      WindowConfig::cumulative(),
      WindowConfig::victims(1),
      WindowConfig::victims(16),
      WindowConfig::victims(1000),  // larger than the stream: all victims
      WindowConfig::time(minutes(5)),
      WindowConfig::time(hours(6)),
  };
  for (const AgeForm form : {AgeForm::kLru, AgeForm::kLfu}) {
    for (const WindowConfig& window : windows) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::vector<EvictionRecord> records = random_victims(seed * 17, 200);
        ContentionEstimator estimator(form, window);
        TimePoint now = kSimEpoch;
        for (const EvictionRecord& record : records) {
          estimator.on_eviction(record);
          now = record.evict_time;
        }
        const std::string context = "form=" + std::to_string(static_cast<int>(form)) +
                                    " window_kind=" +
                                    std::to_string(static_cast<int>(window.kind)) +
                                    " seed=" + std::to_string(seed);
        expect_ages_near(estimator.cache_expiration_age(now),
                         brute_force_age(form, window, records, now), context.c_str());
        // Querying must be idempotent (the time window prunes lazily).
        expect_ages_near(estimator.cache_expiration_age(now),
                         brute_force_age(form, window, records, now), context.c_str());
      }
    }
  }
}

TEST(EaPropertyTest, Eq5IgnoresExplicitRemovals) {
  ContentionEstimator estimator(AgeForm::kLru, WindowConfig::cumulative());
  EvictionRecord record;
  record.entry_time = kSimEpoch;
  record.last_hit_time = kSimEpoch + sec(5);
  record.evict_time = kSimEpoch + sec(30);
  record.cause = EvictionCause::kExplicit;
  estimator.on_eviction(record);
  EXPECT_EQ(estimator.victims_observed(), 0u);
  EXPECT_TRUE(estimator.cache_expiration_age(record.evict_time).is_infinite());
}

TEST(EaPropertyTest, LfuWithSingleHitDegeneratesToResidenceTime) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    EvictionRecord record;
    record.entry_time = kSimEpoch + msec(static_cast<std::int64_t>(rng.next_below(100'000)));
    const Duration residence = msec(static_cast<std::int64_t>(1 + rng.next_below(3'600'000)));
    record.evict_time = record.entry_time + residence;
    record.last_hit_time = record.entry_time;  // admission was the only "hit"
    record.hit_count = 1;                      // paper convention: starts at 1
    const ExpAge lfu = doc_exp_age(AgeForm::kLfu, record);
    EXPECT_DOUBLE_EQ(lfu.millis(), static_cast<double>(residence.count()));
    // With no promoting hit the LRU form measures the same interval.
    EXPECT_DOUBLE_EQ(doc_exp_age(AgeForm::kLru, record).millis(), lfu.millis());
  }
}

TEST(EaPropertyTest, LfuDividesResidenceByHitCount) {
  EvictionRecord record;
  record.entry_time = kSimEpoch;
  record.evict_time = kSimEpoch + sec(100);
  record.last_hit_time = kSimEpoch + sec(90);
  record.hit_count = 4;
  EXPECT_DOUBLE_EQ(doc_exp_age(AgeForm::kLfu, record).millis(), 100'000.0 / 4.0);
}

TEST(EaPropertyTest, EmptyWindowsReadInfinite) {
  for (const WindowConfig& window :
       {WindowConfig::cumulative(), WindowConfig::victims(8), WindowConfig::time(minutes(5))}) {
    ContentionEstimator estimator(AgeForm::kLru, window);
    EXPECT_TRUE(estimator.cache_expiration_age(kSimEpoch + hours(1)).is_infinite());
    EXPECT_TRUE(estimator.lifetime_average().is_infinite());
  }
}

TEST(EaPropertyTest, TimeWindowForgetsAndGoesInfinite) {
  // Per DESIGN.md: a window that slid past every victim reports infinite —
  // the cache exhibits no RECENT contention, so EA treats it as
  // unconstrained (exactly like a cold cache).
  ContentionEstimator estimator(AgeForm::kLru, WindowConfig::time(minutes(5)));
  EvictionRecord record;
  record.entry_time = kSimEpoch;
  record.last_hit_time = kSimEpoch + sec(10);
  record.evict_time = kSimEpoch + sec(60);
  record.cause = EvictionCause::kCapacity;
  estimator.on_eviction(record);
  EXPECT_FALSE(estimator.cache_expiration_age(record.evict_time).is_infinite());
  EXPECT_TRUE(estimator.cache_expiration_age(record.evict_time + hours(1)).is_infinite());
  // The lifetime (Table 1) aggregate is windowless and must survive.
  EXPECT_FALSE(estimator.lifetime_average().is_infinite());
  EXPECT_EQ(estimator.victims_observed(), 1u);
}

}  // namespace
}  // namespace eacache
