// InvariantChecker integration tests (DESIGN.md §10): clean runs stay
// clean under both drivers, the "validation" JSON block appears exactly
// when requested, and a deliberately broken placement policy is caught —
// the negative control proving the checker can actually fail.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ea/placement.h"
#include "sim/result_json.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

SyntheticTraceConfig small_trace_config() {
  SyntheticTraceConfig config;
  config.seed = 7001;
  config.num_requests = 1500;
  config.num_documents = 200;
  config.num_users = 16;
  config.span = hours(2);
  config.max_size = 32 * kKiB;
  config.repeat_probability = 0.3;  // drive remote hits between proxies
  return config;
}

GroupConfig small_group_config() {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;  // tight: steady evictions
  config.obs = ObsConfig::disabled();
  return config;
}

TEST(InvariantCheckerTest, CleanRunsPassUnderBothDrivers) {
  const Trace trace = generate_synthetic_trace(small_trace_config());
  SimulationOptions options;
  options.validate = true;

  for (const PlacementKind placement :
       {PlacementKind::kAdHoc, PlacementKind::kEa, PlacementKind::kEaHysteresis}) {
    for (const bool event_driven : {false, true}) {
      GroupConfig config = small_group_config();
      config.placement = placement;
      config.pipeline.event_driven = event_driven;
      const SimulationResult result = run_simulation(trace, config, options);
      EXPECT_TRUE(result.validation.enabled);
      EXPECT_GT(result.validation.checks, trace.size());
      EXPECT_TRUE(result.validation.ok())
          << "placement=" << to_string(placement) << " event_driven=" << event_driven
          << ": " << result.validation.summary();
    }
  }
}

TEST(InvariantCheckerTest, CleanRunAcrossPoliciesAndWindows) {
  const Trace trace = generate_synthetic_trace(small_trace_config());
  SimulationOptions options;
  options.validate = true;

  struct Variant {
    PolicyKind replacement;
    WindowConfig window;
  };
  const Variant variants[] = {
      {PolicyKind::kLru, WindowConfig::cumulative()},
      {PolicyKind::kLfu, WindowConfig::victims(32)},
      {PolicyKind::kGreedyDualSize, WindowConfig::time(minutes(30))},
  };
  for (const Variant& variant : variants) {
    GroupConfig config = small_group_config();
    config.replacement = variant.replacement;
    config.window = variant.window;
    config.topology = TopologyKind::kHierarchical;
    const SimulationResult result = run_simulation(trace, config, options);
    EXPECT_TRUE(result.validation.ok())
        << to_string(variant.replacement) << ": " << result.validation.summary();
  }
}

TEST(InvariantCheckerTest, ValidationBlockAppearsExactlyWhenRequested) {
  const Trace trace = generate_synthetic_trace(small_trace_config());
  const GroupConfig config = small_group_config();

  const SimulationResult plain = run_simulation(trace, config);
  EXPECT_FALSE(plain.validation.enabled);
  EXPECT_EQ(simulation_result_to_json(plain).find("\"validation\""), std::string::npos);

  SimulationOptions options;
  options.validate = true;
  const SimulationResult validated = run_simulation(trace, config, options);
  EXPECT_TRUE(validated.validation.enabled);
  const std::string json = simulation_result_to_json(validated);
  EXPECT_NE(json.find("\"validation\""), std::string::npos);
  EXPECT_NE(json.find("\"checks\""), std::string::npos);
  EXPECT_NE(json.find("\"first_violations\""), std::string::npos);
}

/// Negative control: claims to be the EA scheme (kind() == kEa) but applies
/// the requester rule with the comparison FLIPPED — the exact bug class the
/// checker exists to catch.
class FlippedEaPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] bool requester_should_cache(ExpAge requester, ExpAge responder) const override {
    return requester < responder;  // wrong on purpose (paper §3.4 says >=)
  }
  [[nodiscard]] bool responder_should_promote(ExpAge responder, ExpAge requester) const override {
    return responder > requester;
  }
  [[nodiscard]] bool parent_should_cache(ExpAge parent, ExpAge requester) const override {
    return parent > requester;
  }
  [[nodiscard]] bool requester_should_cache_after_origin_fetch() const override { return true; }
  [[nodiscard]] PlacementKind kind() const override { return PlacementKind::kEa; }
  [[nodiscard]] std::string_view name() const override { return "ea-flipped"; }
};

TEST(InvariantCheckerTest, FlippedEaComparisonIsCaught) {
  const Trace trace = generate_synthetic_trace(small_trace_config());
  GroupConfig config = small_group_config();
  config.placement = PlacementKind::kEa;
  config.placement_override = std::make_shared<FlippedEaPlacement>();
  ASSERT_TRUE(config.validate().empty());

  SimulationOptions options;
  options.validate = true;
  const SimulationResult result = run_simulation(trace, config, options);
  EXPECT_FALSE(result.validation.ok()) << "the flipped >= went unnoticed";
  ASSERT_FALSE(result.validation.first_violations.empty());
  bool saw_placement_rule = false;
  for (const ValidationViolation& violation : result.validation.first_violations) {
    if (violation.law == "placement-rule") saw_placement_rule = true;
  }
  EXPECT_TRUE(saw_placement_rule) << result.validation.summary();
}

TEST(InvariantCheckerTest, PlacementOverrideKindMismatchIsRejected) {
  GroupConfig config = small_group_config();
  config.placement = PlacementKind::kAdHoc;
  config.placement_override = std::make_shared<EaPlacement>();
  const std::vector<std::string> errors = config.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_THROW(config.validate_or_throw(), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
