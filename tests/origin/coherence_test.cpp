// TTL + If-Modified-Since coherence across the cache group.
#include <gtest/gtest.h>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

GroupConfig coherent_group(Duration ttl = hours(1)) {
  GroupConfig config;
  config.num_proxies = 2;
  config.aggregate_capacity = 64 * kKiB;
  config.placement = PlacementKind::kAdHoc;
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = ttl;
  // Deterministic fixed update interval keeps the tests exact.
  config.origin.min_update_interval = hours(10);
  config.origin.max_update_interval = hours(10);
  return config;
}

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size = 512) {
  return Request{at(t_s), user, doc, size};
}

// The update process has a random per-document phase; tests that need "no
// change in [a, b]" pick a document id with that property via the oracle.
DocumentId doc_stable_between(const GroupConfig& config, TimePoint a, TimePoint b) {
  const OriginServer origin(config.origin);
  for (DocumentId d = 1; d < 10000; ++d) {
    if (origin.version_at(d, a) == origin.version_at(d, b)) return d;
  }
  throw std::runtime_error("no stable document found");
}

UserId user_on(const CacheGroup& group, ProxyId proxy) {
  for (UserId u = 0; u < 10000; ++u) {
    if (group.home_proxy(u) == proxy) return u;
  }
  throw std::runtime_error("no user maps to proxy");
}

TEST(CoherenceTest, RejectsNonPositiveTtl) {
  GroupConfig config = coherent_group(Duration::zero());
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(CoherenceTest, FreshHitWithinTtlNeedsNoValidation) {
  const GroupConfig config = coherent_group(hours(1));
  CacheGroup group(config);
  const UserId u = user_on(group, 0);
  const DocumentId doc = doc_stable_between(config, at(0), at(60));
  group.serve(req(0, u, doc));
  EXPECT_EQ(group.serve(req(60, u, doc)), RequestOutcome::kLocalHit);
  EXPECT_EQ(group.coherence_stats().validations, 0u);
}

TEST(CoherenceTest, TtlExpiryTriggersValidation304) {
  const GroupConfig config = coherent_group(hours(1));
  CacheGroup group(config);
  const UserId u = user_on(group, 0);
  const DocumentId doc = doc_stable_between(config, at(0), at(7200));
  group.serve(req(0, u, doc));
  // 2 hours later: TTL expired but the document is unchanged.
  EXPECT_EQ(group.serve(req(7200, u, doc)), RequestOutcome::kLocalHit);
  EXPECT_EQ(group.coherence_stats().validations, 1u);
  EXPECT_EQ(group.coherence_stats().validated_304, 1u);
  EXPECT_EQ(group.coherence_stats().validated_200, 0u);
}

TEST(CoherenceTest, ValidationRenewsFreshness) {
  const GroupConfig config = coherent_group(hours(1));
  CacheGroup group(config);
  const UserId u = user_on(group, 0);
  const DocumentId doc = doc_stable_between(config, at(0), at(9000));
  group.serve(req(0, u, doc));
  group.serve(req(7200, u, doc));  // validation at t=2h
  // 30 minutes after the validation the copy is fresh again.
  group.serve(req(7200 + 1800, u, doc));
  EXPECT_EQ(group.coherence_stats().validations, 1u);
}

TEST(CoherenceTest, ChangedDocumentCountsAsMiss) {
  CacheGroup group(coherent_group(hours(1)));
  const UserId u = user_on(group, 0);
  group.serve(req(0, u, 1));
  // 20 hours later the 10-hour-interval document has certainly changed AND
  // the TTL has expired: IMS returns 200 with a new body.
  EXPECT_EQ(group.serve(req(72000, u, 1)), RequestOutcome::kMiss);
  EXPECT_EQ(group.coherence_stats().validated_200, 1u);
  // The fresh copy was admitted and serves the next request.
  EXPECT_EQ(group.serve(req(72060, u, 1)), RequestOutcome::kLocalHit);
}

TEST(CoherenceTest, StaleCopiesNotAdvertisedOverIcp) {
  CacheGroup group(coherent_group(hours(1)));
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  group.serve(req(0, u0, 1));
  // 2 hours later another proxy asks: proxy 0's copy is TTL-stale, so ICP
  // answers miss and the request goes to the origin.
  EXPECT_EQ(group.serve(req(7200, u1, 1)), RequestOutcome::kMiss);
}

TEST(CoherenceTest, FreshCopyServedRemotelyWithInheritedClock) {
  const GroupConfig config = coherent_group(hours(1));
  CacheGroup group(config);
  const UserId u0 = user_on(group, 0);
  const UserId u1 = user_on(group, 1);
  const DocumentId doc = doc_stable_between(config, at(0), at(4500));
  group.serve(req(0, u0, doc));
  // 45 minutes later: proxy 0's copy is fresh; remote hit. The copy at
  // proxy 1 INHERITS the t=0 validation clock.
  EXPECT_EQ(group.serve(req(2700, u1, doc)), RequestOutcome::kRemoteHit);
  const auto entry = group.proxy(1).store().peek(doc);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->last_validated, at(0));
  // So 30 minutes later (75 min since validation) proxy 1 must revalidate.
  EXPECT_EQ(group.serve(req(2700 + 1800, u1, doc)), RequestOutcome::kLocalHit);
  EXPECT_EQ(group.coherence_stats().validations, 1u);
}

TEST(CoherenceTest, StaleServedIsDetectedByOracle) {
  // A LONG TTL makes the proxy serve without validating even after the
  // origin changed: the oracle counts those silent stale serves.
  CacheGroup group(coherent_group(hours(1000)));
  const UserId u = user_on(group, 0);
  group.serve(req(0, u, 1));
  group.serve(req(72000, u, 1));  // 20h later: origin changed, TTL still fresh
  EXPECT_EQ(group.coherence_stats().stale_served, 1u);
  EXPECT_EQ(group.coherence_stats().validations, 0u);
}

TEST(CoherenceTest, WorksUnderEaPlacementEndToEnd) {
  SyntheticTraceConfig workload;
  workload.num_requests = 20000;
  workload.num_documents = 1500;
  workload.num_users = 32;
  workload.span = hours(24 * 7);
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = hours(6);
  config.origin.min_update_interval = hours(12);
  config.origin.max_update_interval = hours(24 * 30);

  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.metrics.total_requests(), trace.size());
  EXPECT_GT(result.coherence.validations, 0u);
  EXPECT_GT(result.coherence.validated_304, 0u);
  EXPECT_EQ(result.coherence.validations,
            result.coherence.validated_304 + result.coherence.validated_200);
}

TEST(CoherenceTest, ShorterTtlReducesStaleness) {
  SyntheticTraceConfig workload;
  workload.num_requests = 20000;
  workload.num_documents = 800;
  workload.num_users = 32;
  workload.span = hours(24 * 7);
  const Trace trace = generate_synthetic_trace(workload);

  const auto stale_fraction = [&](Duration ttl) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = 8 * kMiB;  // everything fits: isolate coherence
    config.placement = PlacementKind::kAdHoc;
    config.coherence.enabled = true;
    config.coherence.fresh_ttl = ttl;
    config.origin.min_update_interval = hours(6);
    config.origin.max_update_interval = hours(24 * 10);
    const SimulationResult result = run_simulation(trace, config);
    return static_cast<double>(result.coherence.stale_served) /
           static_cast<double>(result.metrics.total_requests());
  };
  EXPECT_LT(stale_fraction(minutes(30)), stale_fraction(hours(48)));
}

TEST(CoherenceTest, LmFactorValidation) {
  GroupConfig config = coherent_group(hours(1));
  config.coherence.rule = FreshnessRule::kLmFactor;
  config.coherence.lm_factor = 0.0;
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
  config.coherence.lm_factor = 0.2;
  config.coherence.min_ttl = hours(2);
  config.coherence.max_ttl = hours(1);  // max < min
  EXPECT_THROW(CacheGroup{config}, std::invalid_argument);
}

TEST(CoherenceTest, LmFactorGivesStableDocumentsLongerLifetimes) {
  // Two documents with the same fixed 10h update interval but different
  // phases: validate both right after admission; the one whose version is
  // OLDER at validation time earns the longer freshness lifetime, so the
  // younger one revalidates first.
  GroupConfig config = coherent_group(hours(10));
  config.coherence.rule = FreshnessRule::kLmFactor;
  config.coherence.lm_factor = 0.5;
  config.coherence.min_ttl = minutes(1);
  config.coherence.max_ttl = hours(100);

  // Find one document whose current version started long ago and one whose
  // version is brand new at t = probe.
  const OriginServer oracle(config.origin);
  const TimePoint probe = kSimEpoch + hours(40);
  DocumentId old_doc = 0;
  DocumentId young_doc = 0;
  bool found_old = false, found_young = false;
  for (DocumentId d = 1; d < 5000 && (!found_old || !found_young); ++d) {
    const TimePoint start = oracle.version_start(d, oracle.version_at(d, probe));
    const Duration age = probe - start;
    if (!found_old && age > hours(8)) {
      old_doc = d;
      found_old = true;
    }
    if (!found_young && age < hours(1) && start > kSimEpoch) {
      young_doc = d;
      found_young = true;
    }
  }
  ASSERT_TRUE(found_old && found_young);

  CacheGroup group(config);
  const UserId u = user_on(group, 0);
  const std::int64_t t0 = 40 * 3600;
  group.serve(req(t0, u, old_doc));
  group.serve(req(t0 + 1, u, young_doc));

  // 2.5 hours later: the old document (age > 8h => lifetime > 4h) is still
  // fresh; the young one (age < 1h => lifetime < 30min) must revalidate.
  const auto validations_before = group.coherence_stats().validations;
  group.serve(req(t0 + 9000, u, old_doc));
  EXPECT_EQ(group.coherence_stats().validations, validations_before);
  group.serve(req(t0 + 9001, u, young_doc));
  EXPECT_EQ(group.coherence_stats().validations, validations_before + 1);
}

TEST(CoherenceTest, HashRoutingHonoursCoherence) {
  GroupConfig config = coherent_group(hours(1));
  config.routing = RoutingMode::kHashPartition;
  CacheGroup group(config);
  // Find a user and a document homed at that user's proxy.
  const UserId u = 0;
  const ProxyId home = group.home_proxy(u);
  HashRing ring(config.hash_virtual_nodes);
  for (const ProxyId p : group.topology().client_facing()) ring.add_proxy(p);
  DocumentId doc = 0;
  while (ring.home_of(doc) != home) ++doc;

  group.serve(req(0, u, doc));
  EXPECT_EQ(group.serve(req(60, u, doc)), RequestOutcome::kLocalHit);
  // TTL expiry at the home triggers validation there too.
  group.serve(req(7200, u, doc));
  EXPECT_EQ(group.coherence_stats().validations, 1u);
}

}  // namespace
}  // namespace eacache
