#include "origin/origin_server.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

OriginConfig config_with(Duration min_interval, Duration max_interval) {
  OriginConfig config;
  config.min_update_interval = min_interval;
  config.max_update_interval = max_interval;
  return config;
}

TEST(OriginServerTest, RejectsBadIntervals) {
  EXPECT_THROW(OriginServer(config_with(Duration::zero(), hours(1))), std::invalid_argument);
  EXPECT_THROW(OriginServer(config_with(hours(2), hours(1))), std::invalid_argument);
}

TEST(OriginServerTest, VersionsAreMonotone) {
  const OriginServer origin(config_with(hours(1), hours(100)));
  for (DocumentId d = 0; d < 50; ++d) {
    std::uint64_t previous = 0;
    for (int step = 0; step < 200; ++step) {
      const std::uint64_t v = origin.version_at(d, kSimEpoch + hours(step));
      EXPECT_GE(v, previous) << "doc " << d << " step " << step;
      previous = v;
    }
  }
}

TEST(OriginServerTest, DeterministicAcrossInstances) {
  const OriginServer a(config_with(hours(1), hours(100)));
  const OriginServer b(config_with(hours(1), hours(100)));
  for (DocumentId d = 0; d < 100; ++d) {
    EXPECT_EQ(a.version_at(d, kSimEpoch + hours(37)), b.version_at(d, kSimEpoch + hours(37)));
    EXPECT_EQ(a.update_interval(d), b.update_interval(d));
  }
}

TEST(OriginServerTest, IntervalsWithinConfiguredRange) {
  const OriginServer origin(config_with(hours(2), hours(50)));
  for (DocumentId d = 0; d < 1000; ++d) {
    const Duration interval = origin.update_interval(d);
    EXPECT_GE(interval, hours(2));
    EXPECT_LE(interval, hours(50));
  }
}

TEST(OriginServerTest, IntervalsSpanTheRange) {
  // Log-uniform sampling should populate both the fast and slow ends.
  const OriginServer origin(config_with(hours(1), hours(1000)));
  int fast = 0;
  int slow = 0;
  for (DocumentId d = 0; d < 2000; ++d) {
    const Duration interval = origin.update_interval(d);
    if (interval < hours(10)) ++fast;
    if (interval > hours(100)) ++slow;
  }
  EXPECT_GT(fast, 100);
  EXPECT_GT(slow, 100);
}

TEST(OriginServerTest, DocumentChangesRoughlyOncePerInterval) {
  const OriginServer origin(config_with(hours(10), hours(10)));  // fixed interval
  const DocumentId doc = 7;
  const std::uint64_t v0 = origin.version_at(doc, kSimEpoch);
  const std::uint64_t v1 = origin.version_at(doc, kSimEpoch + hours(100));
  EXPECT_EQ(v1 - v0, 10u);
}

TEST(OriginServerTest, VersionStartBoundsTheVersion) {
  const OriginServer origin(config_with(hours(1), hours(100)));
  for (DocumentId d = 0; d < 50; ++d) {
    const TimePoint now = kSimEpoch + hours(200);
    const std::uint64_t v = origin.version_at(d, now);
    const TimePoint start = origin.version_start(d, v);
    // The version began at or before now...
    EXPECT_LE(start, now);
    // ...and was indeed current at its own start.
    EXPECT_EQ(origin.version_at(d, start), v);
    // The previous instant belonged to an older version (or the epoch clamp).
    if (start > kSimEpoch) {
      EXPECT_LT(origin.version_at(d, start - msec(1)), v);
    }
  }
}

TEST(OriginServerTest, VersionStartClampsToEpoch) {
  const OriginServer origin(config_with(hours(10), hours(10)));
  // Version 0 predates (or straddles) the epoch for any positive phase.
  EXPECT_GE(origin.version_start(7, 0), kSimEpoch);
}

TEST(OriginServerTest, DifferentSeedsChangeSchedules) {
  OriginConfig a_config = config_with(hours(1), hours(1000));
  OriginConfig b_config = a_config;
  b_config.seed = 999;
  const OriginServer a(a_config);
  const OriginServer b(b_config);
  int differing = 0;
  for (DocumentId d = 0; d < 200; ++d) {
    if (a.update_interval(d) != b.update_interval(d)) ++differing;
  }
  EXPECT_GT(differing, 150);
}

}  // namespace
}  // namespace eacache
