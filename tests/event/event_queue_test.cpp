#include "event/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eacache {
namespace {

TEST(EventQueueTest, StartsAtEpochEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), kSimEpoch);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(kSimEpoch + sec(3), [&](TimePoint) { order.push_back(3); });
  q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { order.push_back(1); });
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  const TimePoint t = kSimEpoch + sec(1);
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(t, [&order, i](TimePoint) { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NowAdvancesToFiringTime) {
  EventQueue q;
  TimePoint seen{};
  q.schedule_at(kSimEpoch + msec(1500), [&](TimePoint t) { seen = t; });
  q.run();
  EXPECT_EQ(seen, kSimEpoch + msec(1500));
  EXPECT_EQ(q.now(), kSimEpoch + msec(1500));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  std::vector<Duration> at;
  q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) {
    q.schedule_after(sec(2), [&](TimePoint t) { at.push_back(t - kSimEpoch); });
  });
  q.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], sec(3));
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(kSimEpoch + sec(5), [](TimePoint) {});
  q.run();
  EXPECT_THROW(q.schedule_at(kSimEpoch + sec(1), [](TimePoint) {}), std::logic_error);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { fired.push_back(1); });
  q.schedule_at(kSimEpoch + sec(5), [&](TimePoint) { fired.push_back(5); });
  EXPECT_EQ(q.run_until(kSimEpoch + sec(3)), 1u);
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_EQ(q.now(), kSimEpoch + sec(3));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeOnEmptyQueue) {
  EventQueue q;
  q.run_until(kSimEpoch + sec(10));
  EXPECT_EQ(q.now(), kSimEpoch + sec(10));
}

TEST(EventQueueTest, RunUntilInclusiveOfDeadline) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { fired = true; });
  q.run_until(kSimEpoch + sec(2));
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, StepExecutesOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { ++count; });
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { ++count; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  EventFn recurse = [&](TimePoint) {
    if (++depth < 5) {
      q.schedule_after(sec(1), [&](TimePoint t) {
        (void)t;
        ++depth;
      });
    }
  };
  q.schedule_at(kSimEpoch + sec(1), recurse);
  q.run();
  EXPECT_EQ(depth, 2);  // one recursion level scheduled, then executed
}

TEST(EventQueueTest, CancelledEventNeverFires) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { ++fired; });
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { ++fired; });
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  q.run();
  EXPECT_EQ(fired, 1);  // only the uncancelled event
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancellingOnlyEventEmptiesTheQueue) {
  EventQueue q;
  const EventId id = q.schedule_at(kSimEpoch + sec(1), [](TimePoint) {});
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());  // nothing fireable remains
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
  q.cancel(id);  // already fired: no-op, must not corrupt bookkeeping
  q.cancel(id);  // double-cancel: still a no-op
  q.cancel(kNoEvent);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  int later = 0;
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { ++later; });
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(later, 1);
}

TEST(EventQueueTest, CancelFromInsideAnEarlierEvent) {
  // The ICP pattern: a reply handler cancels the discovery timeout that is
  // already sitting in the heap.
  EventQueue q;
  int timeout_fired = 0;
  const EventId timeout = q.schedule_at(kSimEpoch + sec(10),
                                        [&](TimePoint) { ++timeout_fired; });
  q.schedule_at(kSimEpoch + sec(1), [&](TimePoint) { q.cancel(timeout); });
  EXPECT_EQ(q.run(), 1u);  // only the reply executes
  EXPECT_EQ(timeout_fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  std::vector<int> order;
  const EventId first = q.schedule_at(kSimEpoch + sec(1),
                                      [&](TimePoint) { order.push_back(1); });
  q.schedule_at(kSimEpoch + sec(2), [&](TimePoint) { order.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.run_until(kSimEpoch + sec(3)), 1u);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(q.now(), kSimEpoch + sec(3));
}

TEST(PeriodicEventTest, FiresEveryPeriodUntilDeadline) {
  EventQueue q;
  std::vector<Duration> fires;
  PeriodicEvent::start(q, kSimEpoch + sec(1), sec(2),
                       [&](TimePoint t) { fires.push_back(t - kSimEpoch); });
  q.run_until(kSimEpoch + sec(10));
  ASSERT_EQ(fires.size(), 5u);  // t=1,3,5,7,9
  EXPECT_EQ(fires.front(), sec(1));
  EXPECT_EQ(fires.back(), sec(9));
}

TEST(PeriodicEventTest, RejectsNonPositivePeriod) {
  EventQueue q;
  EXPECT_THROW(PeriodicEvent::start(q, kSimEpoch, Duration::zero(), [](TimePoint) {}),
               std::logic_error);
}

TEST(PeriodicEventTest, InterleavesWithOtherEvents) {
  EventQueue q;
  std::vector<std::string> log;
  PeriodicEvent::start(q, kSimEpoch + sec(2), sec(2),
                       [&](TimePoint) { log.push_back("tick"); });
  q.schedule_at(kSimEpoch + sec(3), [&](TimePoint) { log.push_back("event"); });
  q.run_until(kSimEpoch + sec(5));
  EXPECT_EQ(log, (std::vector<std::string>{"tick", "event", "tick"}));
}

TEST(EventQueueTest, CancelChurnWithStaleIdsStaysConsistent) {
  // Regression guard for the lazy-cancellation bookkeeping: interleave
  // schedules, fires, cancels of live events, and cancels of ALREADY-FIRED
  // (stale) ids, then verify exactly the never-cancelled events ran. A
  // stale cancel must not resurrect, double-fire, or suppress anything.
  EventQueue q;
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.schedule_at(kSimEpoch + sec(i + 1), [&fired, i](TimePoint) {
      fired.push_back(i);
    }));
  }
  // Cancel every third event up front (these must never fire).
  for (std::size_t i = 0; i < 64; i += 3) q.cancel(ids[i]);
  // Fire the first half; after each step, cancel an id that just fired and
  // schedule-then-cancel a brand-new event so the live/cancelled sets churn.
  for (int step = 0; step < 32; ++step) {
    q.run_until(kSimEpoch + sec(step + 1));
    // Stale for non-multiples of 3: must be a no-op.
    q.cancel(ids[static_cast<std::size_t>(step)]);
    const EventId ephemeral =
        q.schedule_at(kSimEpoch + sec(200), [&fired](TimePoint) { fired.push_back(-1); });
    q.cancel(ephemeral);
  }
  q.run();
  std::vector<int> expected;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eacache
