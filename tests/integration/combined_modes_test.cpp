// Cross-feature integration: the orthogonal knobs (placement x discovery x
// topology x replacement x coherence x window) must compose. Each test runs
// a full simulation of one non-trivial combination and checks accounting
// plus a combination-specific property.
#include <gtest/gtest.h>

#include "ea/contention.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

const Trace& combo_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config;
    config.num_requests = 25000;
    config.num_documents = 2000;
    config.num_users = 64;
    config.span = hours(24);
    config.seed = 77;
    return generate_synthetic_trace(config);
  }();
  return trace;
}

void expect_accounting(const SimulationResult& result) {
  EXPECT_EQ(result.metrics.count(RequestOutcome::kLocalHit) +
                result.metrics.count(RequestOutcome::kRemoteHit) +
                result.metrics.count(RequestOutcome::kMiss),
            combo_trace().size());
}

TEST(CombinedModesTest, EaDigestHierarchy) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEa;
  config.topology = TopologyKind::kHierarchical;
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 1024;
  const SimulationResult result = run_simulation(combo_trace(), config);
  expect_accounting(result);
  EXPECT_EQ(result.transport.icp_queries, 0u);
  EXPECT_GT(result.transport.digest_publications, 0u);
  EXPECT_EQ(result.proxy_stats.size(), 5u);  // 4 leaves + root
}

TEST(CombinedModesTest, EaDigestCoherence) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 2 * kMiB;
  config.placement = PlacementKind::kEa;
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 2048;
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = hours(2);
  config.origin.min_update_interval = hours(6);
  config.origin.max_update_interval = hours(24 * 10);
  const SimulationResult result = run_simulation(combo_trace(), config);
  expect_accounting(result);
  EXPECT_GT(result.coherence.validations, 0u);
}

TEST(CombinedModesTest, HysteresisHierarchyLfu) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEaHysteresis;
  config.ea_hysteresis = 2.0;
  config.topology = TopologyKind::kHierarchical;
  config.replacement = PolicyKind::kLfu;
  const SimulationResult result = run_simulation(combo_trace(), config);
  expect_accounting(result);
  EXPECT_GT(result.metrics.hit_rate(), 0.0);
}

TEST(CombinedModesTest, LfuReplacementUsesLfuAgeForm) {
  GroupConfig config;
  config.num_proxies = 2;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = PlacementKind::kEa;
  config.replacement = PolicyKind::kLfu;
  CacheGroup group(config);
  for (ProxyId p = 0; p < 2; ++p) {
    EXPECT_EQ(group.proxy(p).contention().form(), AgeForm::kLfu);
  }
  config.replacement = PolicyKind::kLru;
  CacheGroup lru_group(config);
  EXPECT_EQ(lru_group.proxy(0).contention().form(), AgeForm::kLru);
}

TEST(CombinedModesTest, TimeWindowEstimatorEndToEnd) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 512 * kKiB;
  config.placement = PlacementKind::kEa;
  config.window = WindowConfig::time(hours(2));
  const SimulationResult result = run_simulation(combo_trace(), config);
  expect_accounting(result);
  EXPECT_GT(result.metrics.hit_rate(), 0.0);
}

TEST(CombinedModesTest, CoherenceHashRoutingHeterogeneous) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 2 * kMiB;
  config.placement = PlacementKind::kAdHoc;
  config.routing = RoutingMode::kHashPartition;
  config.capacity_weights = {2.0, 1.0, 1.0, 1.0};
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = hours(1);
  const SimulationResult result = run_simulation(combo_trace(), config);
  expect_accounting(result);
  EXPECT_LE(result.replication_factor, 1.0 + 1e-12);
}

TEST(CombinedModesTest, EverythingAtOnce) {
  // The maximal stack: EA-hysteresis placement, digest discovery, deep
  // hierarchy, GDS replacement, time-window estimator, coherence, skewed
  // capacities, and a mid-trace crash.
  GroupConfig config;
  config.topology = TopologyKind::kHierarchical;
  config.custom_parents = {ProxyId{4}, ProxyId{4}, ProxyId{5}, ProxyId{5},
                           ProxyId{6}, ProxyId{6}, std::nullopt};
  config.aggregate_capacity = 2 * kMiB;
  config.capacity_weights = {1, 1, 1, 1, 2, 2, 4};
  config.placement = PlacementKind::kEaHysteresis;
  config.ea_hysteresis = 1.5;
  config.replacement = PolicyKind::kGreedyDualSize;
  config.window = WindowConfig::time(hours(4));
  config.discovery = DiscoveryMode::kDigest;
  config.digest.expected_items = 1024;
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = hours(3);

  SimulationOptions options;
  options.faults.flushes.push_back({combo_trace().requests[combo_trace().size() / 2].at, 1});
  options.snapshot_period = hours(1);

  const SimulationResult result = run_simulation(combo_trace(), config, options);
  expect_accounting(result);
  EXPECT_GT(result.metrics.hit_rate(), 0.0);
  EXPECT_FALSE(result.snapshots.empty());
  EXPECT_EQ(result.proxy_stats.size(), 7u);
}

TEST(CombinedModesTest, DeterministicUnderTheFullStack) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 1 * kMiB;
  config.placement = PlacementKind::kEaHysteresis;
  config.discovery = DiscoveryMode::kDigest;
  config.coherence.enabled = true;
  const SimulationResult a = run_simulation(combo_trace(), config);
  const SimulationResult b = run_simulation(combo_trace(), config);
  EXPECT_DOUBLE_EQ(a.metrics.hit_rate(), b.metrics.hit_rate());
  EXPECT_EQ(a.transport.total_bytes(), b.transport.total_bytes());
  EXPECT_EQ(a.coherence.validations, b.coherence.validations);
}

}  // namespace
}  // namespace eacache
