// Group-scale property tests for the invariants listed in DESIGN.md §7.
#include <gtest/gtest.h>

#include <unordered_set>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace invariant_trace(std::uint64_t seed) {
  SyntheticTraceConfig config;
  config.num_requests = 15000;
  config.num_documents = 1200;
  config.num_users = 40;
  config.span = hours(3);
  config.seed = seed;
  return generate_synthetic_trace(config);
}

class SchemeInvariantTest : public ::testing::TestWithParam<PlacementKind> {};

// Invariant 1: no cache ever exceeds its byte budget.
TEST_P(SchemeInvariantTest, CapacityRespectedThroughoutTheRun) {
  const Trace trace = invariant_trace(1);
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = GetParam();
  CacheGroup group(config);
  for (const Request& request : trace.requests) {
    group.serve(request);
    for (ProxyId p = 0; p < 4; ++p) {
      ASSERT_LE(group.proxy(p).store().resident_bytes(), group.proxy(p).store().capacity());
    }
  }
}

// Invariant 2: every request is exactly one of local hit / remote hit / miss.
TEST_P(SchemeInvariantTest, OutcomePartition) {
  const Trace trace = invariant_trace(2);
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 512 * kKiB;
  config.placement = GetParam();
  const SimulationResult result = run_simulation(trace, config);
  EXPECT_EQ(result.metrics.count(RequestOutcome::kLocalHit) +
                result.metrics.count(RequestOutcome::kRemoteHit) +
                result.metrics.count(RequestOutcome::kMiss),
            trace.size());
  EXPECT_EQ(result.metrics.bytes(RequestOutcome::kLocalHit) +
                result.metrics.bytes(RequestOutcome::kRemoteHit) +
                result.metrics.bytes(RequestOutcome::kMiss),
            result.metrics.bytes_requested());
}

// Invariant 5: a document resident anywhere in the group at request time is
// served as a hit, never re-fetched from the origin.
TEST_P(SchemeInvariantTest, ResidentDocumentsAreAlwaysHits) {
  const Trace trace = invariant_trace(3);
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 384 * kKiB;
  config.placement = GetParam();
  CacheGroup group(config);
  for (const Request& request : trace.requests) {
    bool resident = false;
    for (ProxyId p = 0; p < 4; ++p) {
      if (group.proxy(p).store().contains(request.document)) {
        resident = true;
        break;
      }
    }
    const RequestOutcome outcome = group.serve(request);
    if (resident) {
      ASSERT_NE(outcome, RequestOutcome::kMiss)
          << "document " << request.document << " was resident but missed";
    } else {
      ASSERT_EQ(outcome, RequestOutcome::kMiss)
          << "document " << request.document << " was absent but hit";
    }
  }
}

// Invariant 6: EA and ad-hoc exchange the same NUMBER of messages per event
// class; EA only adds piggyback bytes. (Totals can differ across schemes
// because outcomes diverge, so we assert the per-event accounting instead:
// every local miss costs exactly |siblings| query/reply pairs, every remote
// hit exactly one HTTP pair.)
TEST_P(SchemeInvariantTest, MessageAccountingMatchesOutcomes) {
  const Trace trace = invariant_trace(4);
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 512 * kKiB;
  config.placement = GetParam();
  const SimulationResult result = run_simulation(trace, config);

  const std::uint64_t local_misses = result.metrics.count(RequestOutcome::kRemoteHit) +
                                     result.metrics.count(RequestOutcome::kMiss);
  EXPECT_EQ(result.transport.icp_queries, local_misses * 3);  // 3 siblings
  EXPECT_EQ(result.transport.icp_replies, result.transport.icp_queries);
  EXPECT_EQ(result.transport.http_requests, result.metrics.count(RequestOutcome::kRemoteHit));
  EXPECT_EQ(result.transport.http_responses, result.transport.http_requests);
  EXPECT_EQ(result.transport.origin_fetches, result.metrics.count(RequestOutcome::kMiss));

  if (GetParam() == PlacementKind::kEa) {
    EXPECT_EQ(result.transport.piggyback_bytes,
              (result.transport.http_requests + result.transport.http_responses) * 8);
  } else {
    EXPECT_EQ(result.transport.piggyback_bytes, 0u);
  }
}

// Invariant 7: identical (seed, config) => identical results.
TEST_P(SchemeInvariantTest, Determinism) {
  const Trace trace = invariant_trace(5);
  GroupConfig config;
  config.num_proxies = 8;
  config.aggregate_capacity = 256 * kKiB;
  config.placement = GetParam();
  const SimulationResult a = run_simulation(trace, config);
  const SimulationResult b = run_simulation(trace, config);
  EXPECT_EQ(a.metrics.count(RequestOutcome::kLocalHit),
            b.metrics.count(RequestOutcome::kLocalHit));
  EXPECT_EQ(a.metrics.count(RequestOutcome::kRemoteHit),
            b.metrics.count(RequestOutcome::kRemoteHit));
  EXPECT_EQ(a.transport.total_bytes(), b.transport.total_bytes());
  EXPECT_EQ(a.replication_factor, b.replication_factor);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SchemeInvariantTest,
                         ::testing::Values(PlacementKind::kAdHoc, PlacementKind::kEa),
                         [](const ::testing::TestParamInfo<PlacementKind>& param_info) {
                           return param_info.param == PlacementKind::kEa ? "ea" : "adhoc";
                         });

// Invariant 8: a smaller cache exhibits more contention (lower expiration
// age) on the same request stream.
TEST(ContentionMonotonicityTest, SmallerCacheHasLowerExpirationAge) {
  const Trace trace = invariant_trace(6);
  const auto age_for = [&](Bytes aggregate) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = aggregate;
    config.placement = PlacementKind::kAdHoc;  // isolate the estimator
    const SimulationResult result = run_simulation(trace, config);
    return result.average_cache_expiration_age;
  };
  const ExpAge small = age_for(128 * kKiB);
  const ExpAge large = age_for(1 * kMiB);
  ASSERT_FALSE(small.is_infinite());
  // A 8x larger cache must not report more contention (allowing it to be
  // infinite if it never evicts).
  EXPECT_LT(small.millis(), large.millis());
}

// Invariant 9 (statistical): EA's replica count never exceeds ad-hoc's on
// the same trace at any sampled point.
TEST(ReplicationBoundTest, EaNeverMoreReplicatedAtSamples) {
  const Trace trace = invariant_trace(7);
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 256 * kKiB;

  config.placement = PlacementKind::kAdHoc;
  CacheGroup adhoc(config);
  config.placement = PlacementKind::kEa;
  CacheGroup ea(config);

  std::size_t samples = 0;
  std::size_t ea_wins = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    adhoc.serve(trace.requests[i]);
    ea.serve(trace.requests[i]);
    if (i % 500 == 499) {
      ++samples;
      if (ea.replication_factor() <= adhoc.replication_factor() + 1e-9) ++ea_wins;
    }
  }
  ASSERT_GT(samples, 10u);
  // Allow a little noise early in the run, but EA must dominate.
  EXPECT_GE(static_cast<double>(ea_wins) / static_cast<double>(samples), 0.9);
}

}  // namespace
}  // namespace eacache
