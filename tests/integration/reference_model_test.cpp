// Model-based differential testing: an INDEPENDENT, deliberately naive
// re-implementation of the distributed ad-hoc/EA protocols (paper §3.3,
// LRU replacement, cumulative Eq. 5 estimator) is run in lock-step with
// the production CacheGroup on random traces; every single request must
// produce the same outcome. Any divergence in promotion rules, tie-breaks,
// eviction order or expiration-age arithmetic fails loudly.
#include <gtest/gtest.h>

#include <list>
#include <optional>
#include <vector>

#include "common/hash.h"
#include "group/cache_group.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

// ---------------------------------------------------------------------------
// The reference model. Simple data structures, no shared code with the
// production path beyond basic vocabulary types.
// ---------------------------------------------------------------------------
struct RefEntry {
  DocumentId doc;
  Bytes size;
  TimePoint last_hit;
};

class RefProxy {
 public:
  explicit RefProxy(Bytes capacity) : capacity_(capacity) {}

  bool contains(DocumentId doc) const {
    for (const RefEntry& e : lru_) {
      if (e.doc == doc) return true;
    }
    return false;
  }

  // Promoting hit; returns size.
  std::optional<Bytes> hit(DocumentId doc, TimePoint now) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->doc == doc) {
        RefEntry e = *it;
        e.last_hit = now;
        lru_.erase(it);
        lru_.push_front(e);
        return e.size;
      }
    }
    return std::nullopt;
  }

  // Non-promoting serve (EA responder rule): metadata untouched.
  Bytes peek_size(DocumentId doc) const {
    for (const RefEntry& e : lru_) {
      if (e.doc == doc) return e.size;
    }
    ADD_FAILURE() << "peek_size of absent doc";
    return 0;
  }

  void store(DocumentId doc, Bytes size, TimePoint now) {
    if (size > capacity_) return;
    while (bytes_ + size > capacity_) {
      const RefEntry& victim = lru_.back();
      victim_age_sum_ms_ += static_cast<double>((now - victim.last_hit).count());
      ++victims_;
      bytes_ -= victim.size;
      lru_.pop_back();
    }
    lru_.push_front(RefEntry{doc, size, now});
    bytes_ += size;
  }

  // Cumulative cache expiration age; infinity encoded as nullopt.
  std::optional<double> expiration_age_ms() const {
    if (victims_ == 0) return std::nullopt;
    return victim_age_sum_ms_ / static_cast<double>(victims_);
  }

 private:
  Bytes capacity_;
  Bytes bytes_ = 0;
  std::list<RefEntry> lru_;
  double victim_age_sum_ms_ = 0.0;
  std::uint64_t victims_ = 0;
};

// age comparison with nullopt == +infinity.
bool age_geq(const std::optional<double>& a, const std::optional<double>& b) {
  if (!a) return true;          // inf >= anything
  if (!b) return false;         // finite >= inf is false
  return *a >= *b;
}
bool age_gt(const std::optional<double>& a, const std::optional<double>& b) {
  if (!a) return b.has_value();  // inf > finite, not > inf
  if (!b) return false;
  return *a > *b;
}

class RefGroup {
 public:
  RefGroup(std::size_t n, Bytes aggregate, bool ea) : ea_(ea) {
    for (std::size_t p = 0; p < n; ++p) proxies_.emplace_back(aggregate / n);
  }

  ProxyId home(UserId user) const {
    return static_cast<ProxyId>(mix64(user) % proxies_.size());
  }

  RequestOutcome serve(const Request& request) {
    const TimePoint now = request.at;
    const ProxyId req_id = home(request.user);
    RefProxy& requester = proxies_[req_id];

    if (requester.hit(request.document, now)) return RequestOutcome::kLocalHit;

    // Positive ICP answers, nearest-after-requester ring order.
    const std::size_t n = proxies_.size();
    std::optional<ProxyId> responder_id;
    std::size_t best = n + 1;
    for (ProxyId p = 0; p < n; ++p) {
      if (p == req_id || !proxies_[p].contains(request.document)) continue;
      const std::size_t distance = (p + n - req_id) % n;
      if (distance < best) {
        best = distance;
        responder_id = p;
      }
    }

    if (responder_id) {
      RefProxy& responder = proxies_[*responder_id];
      const auto req_age = requester.expiration_age_ms();
      const auto resp_age = responder.expiration_age_ms();
      Bytes size = 0;
      bool requester_stores = true;
      if (!ea_) {
        size = *responder.hit(request.document, now);  // ad-hoc: promote
      } else if (age_gt(resp_age, req_age)) {
        size = *responder.hit(request.document, now);  // responder keeps lease
        requester_stores = false;                      // req < resp
      } else {
        size = responder.peek_size(request.document);  // left unaltered
        requester_stores = age_geq(req_age, resp_age);  // true by trichotomy
      }
      if (requester_stores) requester.store(request.document, size, now);
      return RequestOutcome::kRemoteHit;
    }

    requester.store(request.document, request.size, now);
    return RequestOutcome::kMiss;
  }

 private:
  bool ea_;
  std::vector<RefProxy> proxies_;
};

// ---------------------------------------------------------------------------
// Lock-step comparison.
// ---------------------------------------------------------------------------
struct DifferentialCase {
  std::size_t proxies;
  bool ea;
  std::uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(DifferentialTest, OutcomesMatchRequestByRequest) {
  const DifferentialCase param = GetParam();

  SyntheticTraceConfig workload;
  workload.num_requests = 12000;
  workload.num_documents = 900;
  workload.num_users = 40;
  workload.span = hours(4);
  workload.seed = param.seed;
  const Trace trace = generate_synthetic_trace(workload);

  GroupConfig config;
  config.num_proxies = param.proxies;
  config.aggregate_capacity = 96 * kKiB * param.proxies;
  config.placement = param.ea ? PlacementKind::kEa : PlacementKind::kAdHoc;
  config.window = WindowConfig::cumulative();  // match the reference model
  CacheGroup production(config);

  RefGroup reference(param.proxies, config.aggregate_capacity, param.ea);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& request = trace.requests[i];
    // Identical user pinning is part of the contract.
    ASSERT_EQ(production.home_proxy(request.user), reference.home(request.user));
    const RequestOutcome expected = reference.serve(request);
    const RequestOutcome actual = production.serve(request);
    ASSERT_EQ(actual, expected)
        << "request " << i << " doc " << request.document << " user " << request.user
        << " at " << (request.at - kSimEpoch).count() << "ms";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DifferentialTest,
    ::testing::Values(DifferentialCase{2, false, 1}, DifferentialCase{2, true, 1},
                      DifferentialCase{4, false, 2}, DifferentialCase{4, true, 2},
                      DifferentialCase{8, true, 3}, DifferentialCase{3, true, 4}),
    [](const ::testing::TestParamInfo<DifferentialCase>& param_info) {
      return std::string(param_info.param.ea ? "ea" : "adhoc") + "_p" +
             std::to_string(param_info.param.proxies) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace eacache
