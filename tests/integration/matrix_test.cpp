// Configuration-matrix sweep: every (placement x discovery x topology x
// replacement) combination must satisfy the universal invariants —
// outcome partition, byte partition, capacity bounds, message accounting
// sanity, determinism. 3 x 2 x 2 x 5 = 60 parameterized cases.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

using MatrixParam = std::tuple<PlacementKind, DiscoveryMode, TopologyKind, PolicyKind>;

const Trace& matrix_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config;
    config.num_requests = 8000;
    config.num_documents = 700;
    config.num_users = 32;
    config.span = hours(4);
    config.seed = 5;
    return generate_synthetic_trace(config);
  }();
  return trace;
}

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  static GroupConfig make_config(const MatrixParam& param) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = 384 * kKiB;
    config.placement = std::get<0>(param);
    config.discovery = std::get<1>(param);
    config.topology = std::get<2>(param);
    config.replacement = std::get<3>(param);
    config.digest.expected_items = 512;
    return config;
  }
};

TEST_P(ConfigMatrixTest, UniversalInvariantsHold) {
  const GroupConfig config = make_config(GetParam());
  const SimulationResult result = run_simulation(matrix_trace(), config);

  // Outcome and byte partitions.
  EXPECT_EQ(result.metrics.count(RequestOutcome::kLocalHit) +
                result.metrics.count(RequestOutcome::kRemoteHit) +
                result.metrics.count(RequestOutcome::kMiss),
            matrix_trace().size());
  EXPECT_EQ(result.metrics.bytes(RequestOutcome::kLocalHit) +
                result.metrics.bytes(RequestOutcome::kRemoteHit) +
                result.metrics.bytes(RequestOutcome::kMiss),
            result.metrics.bytes_requested());

  // Every client request landed at a client-facing proxy.
  std::uint64_t client_requests = 0;
  for (const ProxyStats& stats : result.proxy_stats) client_requests += stats.client_requests;
  EXPECT_EQ(client_requests, matrix_trace().size());

  // Message accounting sanity by discovery mode.
  if (config.discovery == DiscoveryMode::kIcp) {
    EXPECT_EQ(result.transport.icp_queries, result.transport.icp_replies);
    EXPECT_EQ(result.transport.digest_publications, 0u);
    EXPECT_EQ(result.transport.failed_probes, 0u);
  } else {
    EXPECT_EQ(result.transport.icp_queries, 0u);
    EXPECT_GT(result.transport.digest_publications, 0u);
  }
  EXPECT_EQ(result.transport.http_requests, result.transport.http_responses);

  // Replication diagnostics are consistent.
  EXPECT_GE(result.total_resident_copies, result.unique_resident_documents);
}

TEST_P(ConfigMatrixTest, Deterministic) {
  const GroupConfig config = make_config(GetParam());
  const SimulationResult a = run_simulation(matrix_trace(), config);
  const SimulationResult b = run_simulation(matrix_trace(), config);
  EXPECT_DOUBLE_EQ(a.metrics.hit_rate(), b.metrics.hit_rate());
  EXPECT_EQ(a.transport.total_bytes(), b.transport.total_bytes());
  EXPECT_EQ(a.total_resident_copies, b.total_resident_copies);
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& param_info) {
  std::string name;
  name += std::get<0>(param_info.param) == PlacementKind::kAdHoc  ? "adhoc"
          : std::get<0>(param_info.param) == PlacementKind::kEa   ? "ea"
                                                                  : "hyst";
  name += std::get<1>(param_info.param) == DiscoveryMode::kIcp ? "_icp" : "_digest";
  name += std::get<2>(param_info.param) == TopologyKind::kDistributed ? "_flat" : "_tree";
  name += "_";
  name += to_string(std::get<3>(param_info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrixTest,
    ::testing::Combine(::testing::Values(PlacementKind::kAdHoc, PlacementKind::kEa,
                                         PlacementKind::kEaHysteresis),
                       ::testing::Values(DiscoveryMode::kIcp, DiscoveryMode::kDigest),
                       ::testing::Values(TopologyKind::kDistributed,
                                         TopologyKind::kHierarchical),
                       ::testing::Values(PolicyKind::kLru, PolicyKind::kLfu,
                                         PolicyKind::kLfuAging, PolicyKind::kSizeBiggestFirst,
                                         PolicyKind::kGreedyDualSize)),
    matrix_name);

}  // namespace
}  // namespace eacache
