// Soak test: a long, adversarial random walk over the PUBLIC API of one
// CacheGroup — interleaving client requests, proxy flushes and
// configuration-visible oddities (tiny documents, giant documents, repeated
// ids, bursts from one user) — with the structural invariants checked
// continuously. This is the "leave it running and see what breaks" test.
#include <gtest/gtest.h>

#include "common/random.h"
#include "group/cache_group.h"

namespace eacache {
namespace {

class SoakTest : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(SoakTest, LongAdversarialRandomWalk) {
  GroupConfig config;
  config.num_proxies = 5;
  config.aggregate_capacity = 640 * kKiB;  // 128 KiB per proxy
  config.placement = GetParam();
  config.coherence.enabled = true;
  config.coherence.fresh_ttl = minutes(30);
  CacheGroup group(config);

  Rng rng(0x50a51234);
  TimePoint now = kSimEpoch;
  std::uint64_t local = 0, remote = 0, miss = 0;

  for (int step = 0; step < 60000; ++step) {
    now += msec(static_cast<std::int64_t>(rng.next_below(2000)));

    const auto action = rng.next_below(100);
    if (action < 2) {
      // Crash a random proxy.
      group.flush_proxy(static_cast<ProxyId>(rng.next_below(5)), now);
      continue;
    }

    Request request;
    request.at = now;
    if (action < 20) {
      // Burst: one hot user, tiny hot set.
      request.user = 1;
      request.document = rng.next_below(8);
      request.size = 512;
    } else if (action < 25) {
      // Giant document (bigger than a whole proxy): must be rejected
      // gracefully everywhere.
      request.user = static_cast<UserId>(rng.next_below(64));
      request.document = 1'000'000 + rng.next_below(4);
      request.size = 1 * kMiB;
    } else if (action < 30) {
      // Zero-byte document.
      request.user = static_cast<UserId>(rng.next_below(64));
      request.document = 2'000'000 + rng.next_below(16);
      request.size = 0;
    } else {
      request.user = static_cast<UserId>(rng.next_below(64));
      request.document = rng.next_below(3000);
      request.size = 256 + rng.next_below(8 * kKiB);
    }

    switch (group.serve(request)) {
      case RequestOutcome::kLocalHit: ++local; break;
      case RequestOutcome::kRemoteHit: ++remote; break;
      case RequestOutcome::kMiss: ++miss; break;
    }

    if (step % 1000 == 0) {
      for (ProxyId p = 0; p < 5; ++p) {
        ASSERT_LE(group.proxy(p).store().resident_bytes(),
                  group.proxy(p).store().capacity());
      }
      ASSERT_EQ(group.metrics().total_requests(), local + remote + miss);
      ASSERT_GE(group.total_resident_copies(), group.unique_resident_documents() > 0 ? 1u : 0u);
    }
  }

  // The walk must exercise every outcome class, and the group's own
  // accounting must agree with ours exactly.
  EXPECT_GT(local, 0u);
  EXPECT_GT(remote, 0u);
  EXPECT_GT(miss, 0u);
  EXPECT_EQ(group.metrics().total_requests(), local + remote + miss);
  EXPECT_EQ(group.metrics().count(RequestOutcome::kLocalHit), local);
  EXPECT_EQ(group.metrics().count(RequestOutcome::kRemoteHit), remote);
  EXPECT_EQ(group.metrics().count(RequestOutcome::kMiss), miss);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SoakTest,
                         ::testing::Values(PlacementKind::kAdHoc, PlacementKind::kEa,
                                           PlacementKind::kEaHysteresis),
                         [](const ::testing::TestParamInfo<PlacementKind>& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace eacache
