// End-to-end runs over a contended synthetic workload: checks that the
// whole pipeline (trace -> group -> metrics) behaves sensibly under both
// schemes and both topologies.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

const Trace& shared_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config;
    config.num_requests = 30000;
    config.num_documents = 3000;
    config.num_users = 64;
    config.span = hours(6);
    config.seed = 2002;
    return generate_synthetic_trace(config);
  }();
  return trace;
}

GroupConfig contended_group(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 4;
  // ~3000 docs x ~4KiB ~ 12MiB of unique bytes; 512KiB aggregate is a
  // heavily contended regime, where the paper's effect is largest.
  config.aggregate_capacity = 512 * kKiB;
  config.placement = placement;
  return config;
}

TEST(EndToEndTest, BothSchemesServeTheWholeTrace) {
  for (const PlacementKind kind : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    const SimulationResult result = run_simulation(shared_trace(), contended_group(kind));
    EXPECT_EQ(result.metrics.total_requests(), shared_trace().size());
    EXPECT_GT(result.metrics.hit_rate(), 0.0);
    EXPECT_LT(result.metrics.hit_rate(), 1.0);
  }
}

TEST(EndToEndTest, ContendedRunProducesEvictionsAndFiniteAges) {
  const SimulationResult result =
      run_simulation(shared_trace(), contended_group(PlacementKind::kEa));
  EXPECT_FALSE(result.average_cache_expiration_age.is_infinite());
  for (const ExpAge age : result.per_cache_expiration_age) {
    EXPECT_FALSE(age.is_infinite()) << "every cache should see contention here";
  }
}

TEST(EndToEndTest, EaReducesReplication) {
  const SimulationResult adhoc =
      run_simulation(shared_trace(), contended_group(PlacementKind::kAdHoc));
  const SimulationResult ea =
      run_simulation(shared_trace(), contended_group(PlacementKind::kEa));
  EXPECT_LE(ea.replication_factor, adhoc.replication_factor)
      << "EA must not replicate more than ad-hoc";
  EXPECT_GE(ea.unique_resident_documents, adhoc.unique_resident_documents)
      << "EA should keep at least as many unique documents resident";
}

TEST(EndToEndTest, EaRaisesCacheExpirationAges) {
  // Paper Table 1: EA's average cache expiration age exceeds ad-hoc's.
  const SimulationResult adhoc =
      run_simulation(shared_trace(), contended_group(PlacementKind::kAdHoc));
  const SimulationResult ea =
      run_simulation(shared_trace(), contended_group(PlacementKind::kEa));
  ASSERT_FALSE(adhoc.average_cache_expiration_age.is_infinite());
  ASSERT_FALSE(ea.average_cache_expiration_age.is_infinite());
  EXPECT_GT(ea.average_cache_expiration_age.millis(),
            adhoc.average_cache_expiration_age.millis());
}

TEST(EndToEndTest, EaTradesLocalForRemoteHits) {
  // Reduced replication means more documents are only available at a peer.
  const SimulationResult adhoc =
      run_simulation(shared_trace(), contended_group(PlacementKind::kAdHoc));
  const SimulationResult ea =
      run_simulation(shared_trace(), contended_group(PlacementKind::kEa));
  EXPECT_GT(ea.metrics.remote_hit_rate(), adhoc.metrics.remote_hit_rate());
}

TEST(EndToEndTest, HierarchicalTopologyWorksEndToEnd) {
  GroupConfig config = contended_group(PlacementKind::kEa);
  config.topology = TopologyKind::kHierarchical;
  const SimulationResult result = run_simulation(shared_trace(), config);
  EXPECT_EQ(result.metrics.total_requests(), shared_trace().size());
  EXPECT_GT(result.metrics.hit_rate(), 0.0);
  // 4 leaves + 1 root.
  EXPECT_EQ(result.proxy_stats.size(), 5u);
  // The root never receives client requests.
  EXPECT_EQ(result.proxy_stats[4].client_requests, 0u);
}

TEST(EndToEndTest, NonLruPoliciesRunEndToEnd) {
  for (const PolicyKind policy :
       {PolicyKind::kLfu, PolicyKind::kLfuAging, PolicyKind::kSizeBiggestFirst,
        PolicyKind::kGreedyDualSize}) {
    GroupConfig config = contended_group(PlacementKind::kEa);
    config.replacement = policy;
    const SimulationResult result = run_simulation(shared_trace(), config);
    EXPECT_EQ(result.metrics.total_requests(), shared_trace().size())
        << "policy " << to_string(policy);
  }
}

TEST(EndToEndTest, LargerCacheNeverHurtsHitRateMuch) {
  GroupConfig base = contended_group(PlacementKind::kEa);
  const Bytes capacities[] = {256 * kKiB, 1 * kMiB, 4 * kMiB};
  const auto points = compare_schemes_over_capacities(shared_trace(), base, capacities);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].ea.metrics.hit_rate(), points[i - 1].ea.metrics.hit_rate() - 0.01);
    EXPECT_GE(points[i].adhoc.metrics.hit_rate(),
              points[i - 1].adhoc.metrics.hit_rate() - 0.01);
  }
}

}  // namespace
}  // namespace eacache
