// Qualitative reproduction of the paper's headline results (section 4.2):
// the SHAPE of each claim, not the absolute numbers (our workload is a
// calibrated synthetic stand-in for the BU traces — see DESIGN.md §3).
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

const Trace& claims_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config;
    config.num_requests = 60000;
    config.num_documents = 6000;
    config.num_users = 128;
    config.span = hours(12);
    config.seed = 1994;  // the BU traces' vintage
    // Same concentration profile as the bench workload (see
    // bench/bench_common.cpp): BU-like hot-set dominance.
    config.zipf_alpha = 1.0;
    config.repeat_probability = 0.5;
    config.repeat_window = 256;
    return generate_synthetic_trace(config);
  }();
  return trace;
}

GroupConfig four_cache_group() {
  GroupConfig config;
  config.num_proxies = 4;
  return config;
}

// Capacity points spanning heavy contention to everything-fits for the
// ~24 MiB unique-byte synthetic trace.
const Bytes kSmall = 256 * kKiB;
const Bytes kMedium = 2 * kMiB;
const Bytes kLarge = 64 * kMiB;

TEST(PaperClaimsTest, Figure1_EaHitRateWinsUnderContention) {
  const Bytes capacities[] = {kSmall, kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  for (const SchemeComparison& point : points) {
    EXPECT_GT(point.ea.metrics.hit_rate(), point.adhoc.metrics.hit_rate())
        << "at " << format_bytes(point.aggregate_capacity);
  }
}

TEST(PaperClaimsTest, Figure1_GapShrinksAsCachesGrow) {
  const Bytes capacities[] = {kSmall, kLarge};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  const double gap_small =
      points[0].ea.metrics.hit_rate() - points[0].adhoc.metrics.hit_rate();
  const double gap_large =
      points[1].ea.metrics.hit_rate() - points[1].adhoc.metrics.hit_rate();
  EXPECT_GT(gap_small, gap_large)
      << "EA's advantage must be largest when cache space is scarce";
}

TEST(PaperClaimsTest, Figure1_EaNeverWorseEvenWhenEverythingFits) {
  const Bytes capacities[] = {kLarge};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  // "Even in the worst case our scheme is as good as the ad-hoc scheme."
  EXPECT_GE(points[0].ea.metrics.hit_rate(), points[0].adhoc.metrics.hit_rate() - 1e-9);
}

TEST(PaperClaimsTest, Figure2_ByteHitRatesFollowTheSameShape) {
  const Bytes capacities[] = {kSmall, kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  for (const SchemeComparison& point : points) {
    EXPECT_GT(point.ea.metrics.byte_hit_rate(), point.adhoc.metrics.byte_hit_rate())
        << "at " << format_bytes(point.aggregate_capacity);
  }
}

TEST(PaperClaimsTest, Table1_EaRaisesAverageExpirationAge) {
  const Bytes capacities[] = {kSmall, kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  for (const SchemeComparison& point : points) {
    ASSERT_FALSE(point.adhoc.average_cache_expiration_age.is_infinite());
    ASSERT_FALSE(point.ea.average_cache_expiration_age.is_infinite());
    EXPECT_GT(point.ea.average_cache_expiration_age.millis(),
              point.adhoc.average_cache_expiration_age.millis())
        << "at " << format_bytes(point.aggregate_capacity);
  }
}

TEST(PaperClaimsTest, Table2_EaShiftsLocalHitsToRemoteHits) {
  const Bytes capacities[] = {kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  const SchemeComparison& point = points[0];
  EXPECT_GT(point.ea.metrics.remote_hit_rate(), point.adhoc.metrics.remote_hit_rate());
  EXPECT_LT(point.ea.metrics.miss_rate(), point.adhoc.metrics.miss_rate());
}

TEST(PaperClaimsTest, Figure3_EaLatencyWinsUnderContention) {
  const LatencyModel model = LatencyModel::paper_defaults();
  const Bytes capacities[] = {kSmall, kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  for (const SchemeComparison& point : points) {
    EXPECT_LT(point.ea.metrics.estimated_average_latency_ms(model),
              point.adhoc.metrics.estimated_average_latency_ms(model))
        << "at " << format_bytes(point.aggregate_capacity);
  }
}

TEST(PaperClaimsTest, Figure3_RemoteHitInflationCanCostEaAtLargeCaches) {
  // At 1GB the paper measured EA slightly WORSE on latency: the miss-rate
  // gap vanishes while EA still serves many more remote hits (32.02% vs
  // 11.06%). We check the mechanism rather than the sign (which is
  // workload-dependent): at a nearly-fitting capacity the miss-rate gap
  // must be small while EA's remote-hit rate stays higher.
  const Bytes capacities[] = {16 * kMiB};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  const SchemeComparison& point = points[0];
  EXPECT_LT(point.adhoc.metrics.miss_rate() - point.ea.metrics.miss_rate(), 0.02);
  EXPECT_GT(point.ea.metrics.remote_hit_rate(), point.adhoc.metrics.remote_hit_rate());

  // And when NOTHING ever evicts, every EA decision is a tie and the two
  // schemes must coincide exactly — the degenerate end of the same curve.
  const Bytes everything_fits[] = {kLarge};
  const auto fit_points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), everything_fits);
  EXPECT_DOUBLE_EQ(fit_points[0].ea.metrics.remote_hit_rate(),
                   fit_points[0].adhoc.metrics.remote_hit_rate());
  EXPECT_DOUBLE_EQ(fit_points[0].ea.metrics.miss_rate(),
                   fit_points[0].adhoc.metrics.miss_rate());
}

TEST(PaperClaimsTest, Section42_EaAdvantageGrowsWithGroupSize) {
  // The paper reports ~6.5% hit-rate gain for 8 caches at 100KB vs ~2.5%
  // for smaller settings: more caches = more uncontrolled replication for
  // ad-hoc to waste space on.
  GroupConfig base = four_cache_group();
  base.aggregate_capacity = kSmall;
  const std::size_t sizes[] = {2, 8};
  const auto points = compare_schemes_over_group_sizes(claims_trace(), base, sizes);
  const double gain2 =
      points[0].ea.metrics.hit_rate() - points[0].adhoc.metrics.hit_rate();
  const double gain8 =
      points[1].ea.metrics.hit_rate() - points[1].adhoc.metrics.hit_rate();
  EXPECT_GT(gain8, 0.0);
  EXPECT_GT(gain8, gain2 - 0.005)
      << "EA's edge should not shrink materially as the group grows";
}

TEST(PaperClaimsTest, EaWinsAcrossWorkloadSeeds) {
  // Robustness: the headline claim must not be an artifact of one seed.
  // Five independent workloads at a contended capacity: EA's hit rate must
  // beat ad-hoc's on every one of them.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    SyntheticTraceConfig config;
    config.num_requests = 25000;
    config.num_documents = 2500;
    config.num_users = 64;
    config.span = hours(6);
    config.seed = seed;
    config.zipf_alpha = 1.0;
    config.repeat_probability = 0.5;
    const Trace trace = generate_synthetic_trace(config);

    GroupConfig group = four_cache_group();
    group.aggregate_capacity = 1 * kMiB;
    group.placement = PlacementKind::kAdHoc;
    const double adhoc = run_simulation(trace, group).metrics.hit_rate();
    group.placement = PlacementKind::kEa;
    const double ea = run_simulation(trace, group).metrics.hit_rate();
    EXPECT_GT(ea, adhoc) << "seed " << seed;
  }
}

TEST(PaperClaimsTest, NoExtraMessagesClaim) {
  // Section 3.4: "there is no hidden communication costs incurred to
  // implement the EA scheme" — EA adds only the fixed piggyback bytes.
  const Bytes capacities[] = {kMedium};
  const auto points =
      compare_schemes_over_capacities(claims_trace(), four_cache_group(), capacities);
  const TransportStats& ea = points[0].ea.transport;
  EXPECT_EQ(ea.piggyback_bytes, (ea.http_requests + ea.http_responses) * 8);
  // Piggyback overhead is negligible against body traffic.
  EXPECT_LT(static_cast<double>(ea.piggyback_bytes),
            0.01 * static_cast<double>(ea.http_body_bytes + ea.icp_bytes));
}

}  // namespace
}  // namespace eacache
