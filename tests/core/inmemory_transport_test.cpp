// InMemoryTransport's delivery contract: no loss, exactly-once, per-sender
// FIFO — the properties the daemon's request correlation rests on.
#include "core/inmemory_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace eacache {
namespace {

using std::chrono::milliseconds;

WireMessage make_message(ProxyId from, ProxyId to, std::uint64_t request_id) {
  WireMessage message;
  message.kind = WireMessage::Kind::kIcpQuery;
  message.from = from;
  message.to = to;
  message.request_id = request_id;
  return message;
}

TEST(InMemoryTransportTest, ZeroEndpointsIsRejected) {
  EXPECT_THROW(InMemoryTransport{0}, std::invalid_argument);
}

TEST(InMemoryTransportTest, OutOfRangeEndpointThrows) {
  InMemoryTransport wire(2);
  EXPECT_THROW(wire.send(2, WireMessage{}), std::out_of_range);
  EXPECT_THROW((void)wire.try_receive(7), std::out_of_range);
}

TEST(InMemoryTransportTest, EmptyMailboxTimesOutWithNullopt) {
  InMemoryTransport wire(1);
  EXPECT_EQ(wire.receive(0, milliseconds(5)), std::nullopt);
  EXPECT_EQ(wire.try_receive(0), std::nullopt);
}

TEST(InMemoryTransportTest, SingleThreadFifoOrder) {
  InMemoryTransport wire(2);
  for (std::uint64_t i = 0; i < 10; ++i) wire.send(1, make_message(0, 1, i));
  EXPECT_EQ(wire.pending(1), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto message = wire.try_receive(1);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->request_id, i);
  }
  EXPECT_EQ(wire.try_receive(1), std::nullopt);
}

TEST(InMemoryTransportTest, ReceiveWakesOnCrossThreadSend) {
  InMemoryTransport wire(1);
  std::thread sender([&wire] {
    std::this_thread::sleep_for(milliseconds(20));
    wire.send(0, make_message(0, 0, 42));
  });
  const auto message = wire.receive(0, std::chrono::seconds(10));
  sender.join();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->request_id, 42u);
}

TEST(InMemoryTransportTest, ConcurrentSendersLoseNothingAndKeepPerSenderOrder) {
  // M senders each push K sequenced messages at one receiver. Delivery must
  // be exactly-once (M*K distinct messages) and per-sender FIFO (each
  // sender's sequence numbers arrive strictly increasing); interleaving
  // ACROSS senders is unconstrained, like IP.
  constexpr std::size_t kSenders = 8;
  constexpr std::uint64_t kPerSender = 2'000;
  InMemoryTransport wire(kSenders + 1);
  const ProxyId receiver = kSenders;

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (std::size_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&wire, receiver, s] {
      for (std::uint64_t i = 0; i < kPerSender; ++i) {
        wire.send(receiver, make_message(static_cast<ProxyId>(s), receiver, i));
      }
    });
  }

  std::vector<std::uint64_t> next_expected(kSenders, 0);
  std::uint64_t received = 0;
  while (received < kSenders * kPerSender) {
    const auto message = wire.receive(receiver, std::chrono::seconds(30));
    ASSERT_TRUE(message.has_value()) << "lost messages: got " << received;
    ASSERT_LT(message->from, kSenders);
    // Exactly the next sequence number from that sender: no loss, no
    // duplication, no reordering within the sender's stream.
    ASSERT_EQ(message->request_id, next_expected[message->from]);
    ++next_expected[message->from];
    ++received;
  }
  for (std::thread& sender : senders) sender.join();

  EXPECT_EQ(wire.try_receive(receiver), std::nullopt);
  for (std::size_t s = 0; s < kSenders; ++s) EXPECT_EQ(next_expected[s], kPerSender);
}

TEST(InMemoryTransportTest, MailboxesAreIndependent) {
  InMemoryTransport wire(3);
  wire.send(1, make_message(0, 1, 10));
  wire.send(2, make_message(0, 2, 20));
  EXPECT_EQ(wire.pending(0), 0u);
  const auto at_two = wire.try_receive(2);
  ASSERT_TRUE(at_two.has_value());
  EXPECT_EQ(at_two->request_id, 20u);
  const auto at_one = wire.try_receive(1);
  ASSERT_TRUE(at_one.has_value());
  EXPECT_EQ(at_one->request_id, 10u);
}

}  // namespace
}  // namespace eacache
