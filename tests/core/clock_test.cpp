// The Clock seam's contract: now() never goes backwards, manual time only
// moves when the driver says so, and SteadyClock maps the wall clock onto
// the TimePoint timeline from its anchor.
#include "core/clock.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace eacache {
namespace {

TEST(FakeClockTest, StartsAtConfiguredOrigin) {
  FakeClock at_epoch;
  EXPECT_EQ(at_epoch.now(), kSimEpoch);

  const TimePoint later = kSimEpoch + hours(3);
  FakeClock at_later(later);
  EXPECT_EQ(at_later.now(), later);
}

TEST(FakeClockTest, AdvanceMovesTimeAndReturnsNewNow) {
  FakeClock clock;
  EXPECT_EQ(clock.advance(msec(250)), kSimEpoch + msec(250));
  EXPECT_EQ(clock.advance(sec(1)), kSimEpoch + msec(1250));
  EXPECT_EQ(clock.now(), kSimEpoch + msec(1250));
}

TEST(FakeClockTest, ZeroAdvanceIsLegalNoOp) {
  FakeClock clock;
  clock.advance(msec(10));
  EXPECT_EQ(clock.advance(Duration::zero()), kSimEpoch + msec(10));
}

TEST(FakeClockTest, NegativeAdvanceThrows) {
  FakeClock clock;
  clock.advance(sec(5));
  EXPECT_THROW(clock.advance(msec(-1)), std::logic_error);
  // The failed call must not have moved time.
  EXPECT_EQ(clock.now(), kSimEpoch + sec(5));
}

TEST(FakeClockTest, SetJumpsAheadToAbsoluteInstant) {
  FakeClock clock;
  clock.set(kSimEpoch + minutes(90));
  EXPECT_EQ(clock.now(), kSimEpoch + minutes(90));
}

TEST(FakeClockTest, SetToCurrentInstantIsLegal) {
  // Traces carry duplicate timestamps; replaying them re-sets the same
  // instant and must not trip the monotonicity guard.
  FakeClock clock;
  clock.set(kSimEpoch + sec(7));
  EXPECT_NO_THROW(clock.set(kSimEpoch + sec(7)));
  EXPECT_EQ(clock.now(), kSimEpoch + sec(7));
}

TEST(FakeClockTest, SetBackwardsThrows) {
  FakeClock clock;
  clock.set(kSimEpoch + sec(10));
  EXPECT_THROW(clock.set(kSimEpoch + sec(9)), std::logic_error);
  EXPECT_EQ(clock.now(), kSimEpoch + sec(10));
}

TEST(FakeClockTest, SleepUntilNeverBlocks) {
  // Manual time: sleeping would deadlock the driver, so it's a no-op even
  // for instants far in the future.
  FakeClock clock;
  clock.sleep_until(kSimEpoch + hours(24 * 365));
  EXPECT_EQ(clock.now(), kSimEpoch);
}

TEST(FakeClockTest, ReadersOnOtherThreadsSeeMonotonicTime) {
  FakeClock clock;
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&clock] {
      TimePoint last = clock.now();
      for (int i = 0; i < 10'000; ++i) {
        const TimePoint now = clock.now();
        ASSERT_GE(now, last);
        last = now;
      }
    });
  }
  for (int i = 0; i < 1'000; ++i) clock.advance(msec(1));
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(clock.now(), kSimEpoch + msec(1'000));
}

TEST(SteadyClockTest, StartsAtItsAnchorOrigin) {
  const TimePoint origin = kSimEpoch + hours(12);
  SteadyClock clock(origin);
  const TimePoint first = clock.now();
  EXPECT_GE(first, origin);
  // Constructing and reading happen well within a second of each other.
  EXPECT_LT(first - origin, sec(1));
}

TEST(SteadyClockTest, NowIsMonotonic) {
  SteadyClock clock;
  TimePoint last = clock.now();
  for (int i = 0; i < 10'000; ++i) {
    const TimePoint now = clock.now();
    ASSERT_GE(now, last);
    last = now;
  }
}

TEST(SteadyClockTest, SleepUntilPastInstantReturnsImmediately) {
  SteadyClock clock;
  clock.sleep_until(kSimEpoch - hours(1));  // already in the past: no block
  SUCCEED();
}

TEST(SteadyClockTest, SleepUntilReachesTheTarget) {
  SteadyClock clock;
  const TimePoint target = clock.now() + msec(30);
  clock.sleep_until(target);
  EXPECT_GE(clock.now(), target);
}

}  // namespace
}  // namespace eacache
