// Pins the libeacache extraction as behaviour-neutral: repeated simulated
// runs of the same workload serialize to byte-identical result JSON (the
// core's serializer is deterministic and the core libraries hold no hidden
// global state that could leak between runs).
#include <gtest/gtest.h>

#include <string>

#include "core/run_result_json.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Trace small_trace() {
  SyntheticTraceConfig workload;
  workload.num_requests = 5'000;
  workload.num_documents = 600;
  workload.num_users = 16;
  workload.span = hours(2);
  workload.seed = 1234;
  return generate_synthetic_trace(workload);
}

GroupConfig small_config(PlacementKind placement) {
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 512 * kKiB;
  config.placement = placement;
  return config;
}

TEST(ExtractionDeterminismTest, RepeatedRunsSerializeByteIdentically) {
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    const Trace trace = small_trace();
    const GroupConfig config = small_config(placement);
    const std::string first = simulation_result_to_json(run_simulation(trace, config));
    const std::string second = simulation_result_to_json(run_simulation(trace, config));
    EXPECT_EQ(first, second) << "placement " << to_string(placement);
    EXPECT_FALSE(first.empty());
  }
}

TEST(ExtractionDeterminismTest, RegeneratedTraceGivesSameBytes) {
  // The workload generator is seeded: regenerating the trace from scratch
  // must reproduce the identical run, so goldens stay stable across
  // processes, not just within one.
  const GroupConfig config = small_config(PlacementKind::kEa);
  const std::string first = simulation_result_to_json(run_simulation(small_trace(), config));
  const std::string second = simulation_result_to_json(run_simulation(small_trace(), config));
  EXPECT_EQ(first, second);
}

TEST(ExtractionDeterminismTest, RunResultAliasSerializersMatch) {
  const Trace trace = small_trace();
  const GroupConfig config = small_config(PlacementKind::kEa);
  const RunResult result = run_simulation(trace, config);
  EXPECT_EQ(run_result_to_json(result), simulation_result_to_json(result));
}

}  // namespace
}  // namespace eacache
