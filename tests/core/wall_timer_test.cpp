// The wall-clock seam extension's contract (DESIGN.md §16): WallTimer and
// Deadline are the only sanctioned monotonic-clock access outside
// core/clock.* and src/daemon/ — eacheck's determinism pass convicts any
// raw steady_clock use that bypasses them. These tests pin the behaviour
// the ported call sites (sweep, simulator, shard_engine, the in-memory
// transport's receive timeout) rely on.
#include "core/wall_timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace eacache {
namespace {

using namespace std::chrono_literals;

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  const WallTimer timer;
  const double first = timer.elapsed_ms();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(2ms);
  const double second = timer.elapsed_ms();
  EXPECT_GE(second, first);
  EXPECT_GT(second, 0.0);
}

TEST(WallTimerTest, RestartResetsTheOrigin) {
  WallTimer timer;
  std::this_thread::sleep_for(2ms);
  const double before = timer.elapsed_ms();
  timer.restart();
  const double after = timer.elapsed_ms();
  EXPECT_LT(after, before);
}

TEST(DeadlineTest, RemainingStartsAtBudgetAndShrinks) {
  const Deadline deadline(1h);
  const auto first = deadline.remaining();
  EXPECT_GT(first, 59min);
  EXPECT_LE(first, 1h);
  EXPECT_FALSE(deadline.expired());
  const auto second = deadline.remaining();
  EXPECT_LE(second, first);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline deadline(0ns);
  EXPECT_EQ(deadline.remaining(), 0ns);
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, RemainingClampsAtZeroAfterExpiry) {
  const Deadline deadline(1ms);
  std::this_thread::sleep_for(3ms);
  // Never negative: the transport's wait loop feeds remaining() straight
  // into CondVar::wait_for, which must not see a negative budget.
  EXPECT_EQ(deadline.remaining(), 0ns);
  EXPECT_TRUE(deadline.expired());
}

}  // namespace
}  // namespace eacache
