#!/bin/sh
# Runs the strict-UBSan tier: smoke sweep + fuzz corpus + workload battery.
#
# The binaries live in a dedicated build tree configured with
#   cmake -S . -B build-ubsan -DEACACHE_UBSAN=ON -DEACACHE_WERROR=ON
#   cmake --build build-ubsan -j
# Registered in ctest with SKIP_RETURN_CODE 77: when the build-ubsan tree (or
# the binaries) are absent this script self-skips instead of failing, so the
# plain tier-1 run stays green on machines that never configured it.
#
# Why a tier beyond the ASan pipeline's piggybacked -fsanitize=undefined:
# EACACHE_UBSAN arms the strict checks on top of the default group —
# float-divide-by-zero everywhere, plus implicit-conversion, local-bounds and
# nullability under Clang (bounds-strict under GCC, which lacks the other
# three) — and compiles with -fno-sanitize-recover=all so any finding aborts
# the run instead of scrolling past. Hit-rate and latency math divides by
# request/byte counts all over the metrics plane; this tier is what proves
# those denominators are guarded rather than quietly producing NaNs.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
ubsan_dir=${EACACHE_UBSAN_BUILD_DIR:-"$repo_root/build-ubsan"}

if [ ! -x "$ubsan_dir/tests/test_sim" ] || [ ! -x "$ubsan_dir/tests/test_validate" ] ||
   [ ! -x "$ubsan_dir/bench/bench_smoke" ]; then
  echo "ubsan_pipeline: no strict-UBSan build at $ubsan_dir (configure with -DEACACHE_UBSAN=ON); skipping"
  exit 77
fi

if ! grep -q '^EACACHE_UBSAN:BOOL=ON' "$ubsan_dir/CMakeCache.txt" 2>/dev/null; then
  echo "ubsan_pipeline: $ubsan_dir was not configured with -DEACACHE_UBSAN=ON; skipping"
  exit 77
fi
if ! grep -q '^EACACHE_WERROR:BOOL=ON' "$ubsan_dir/CMakeCache.txt" 2>/dev/null; then
  echo "ubsan_pipeline: note: $ubsan_dir lacks EACACHE_WERROR=ON (recommended configure shown above)"
fi

export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

# Leg 1 — smoke sweep: one end-to-end simulation per protocol arm, the
# densest concentration of hit-rate/latency divisions in the tree.
"$ubsan_dir/bench/bench_smoke" --json > /dev/null
"$ubsan_dir/bench/bench_smoke" --pipeline --coalesce --json > /dev/null

# Leg 2 — fuzz corpus: the invariant checker + differential harness
# (DESIGN.md §10) randomizes configs toward the edges (zero-capacity caches,
# single-document universes) where unguarded denominators live. Override
# EACACHE_FUZZ_CASES for a deeper soak.
EACACHE_FUZZ_CASES=${EACACHE_FUZZ_CASES:-64} \
  "$ubsan_dir/tests/test_validate" --gtest_brief=1

# Leg 3 — workload battery (DESIGN.md §15): the DSL generators lean on
# float weights and integer narrowing (Zipf tables, session inter-arrivals),
# prime implicit-conversion territory. The bounded-memory test is filtered
# out — its operator new/delete replacement is compiled out under sanitizers
# — and the fuzz corpus re-runs with the DSL trace mix armed.
if [ -x "$ubsan_dir/tests/test_workload" ]; then
  "$ubsan_dir/tests/test_workload" \
    --gtest_filter='-TraceSourceTest.StreamingMemoryBoundedByUniverse' \
    --gtest_brief=1
  EACACHE_FUZZ_CASES=32 EACACHE_FUZZ_WORKLOAD=1 \
    "$ubsan_dir/tests/test_validate" --gtest_filter='SimFuzzTest.*' --gtest_brief=1
else
  echo "ubsan_pipeline: note: $ubsan_dir/tests/test_workload not built; workload leg skipped"
fi
echo "ubsan_pipeline: smoke + fuzz corpus + workload battery clean under strict UBSan"
