#!/bin/sh
# Runs the concurrent subsystems under ThreadSanitizer (DESIGN.md §11, tier 2).
#
# The TSan binaries live in a separate build tree configured with
#   cmake -S . -B build-tsan -DEACACHE_TSAN=ON -DEACACHE_WERROR=ON
#   cmake --build build-tsan -j
# Registered in ctest with SKIP_RETURN_CODE 77: when the build-tsan tree (or
# the binaries) are absent this script self-skips instead of failing, so the
# plain tier-1 run stays green on machines that never configured it.
#
# Why a dedicated pass: the sweep engine is the one subsystem where multiple
# threads touch shared state on purpose — the trace cache's once_flag
# publication, the trace-load cost table, the completion board that orders
# sink delivery, log-sink swaps, and the fuzz harness's sharded corpus. The
# Clang annotations (tier 1) prove lock discipline statically; TSan proves
# the happens-before story dynamically, on real interleavings at jobs=8.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
tsan_dir=${EACACHE_TSAN_BUILD_DIR:-"$repo_root/build-tsan"}

if [ ! -x "$tsan_dir/tests/test_sim" ] || [ ! -x "$tsan_dir/tests/test_validate" ] ||
   [ ! -x "$tsan_dir/tests/tsan_race_fixture" ] || [ ! -x "$tsan_dir/bench/bench_smoke" ]; then
  echo "tsan_pipeline: no TSan build at $tsan_dir (configure with -DEACACHE_TSAN=ON); skipping"
  exit 77
fi

if ! grep -q '^EACACHE_TSAN:BOOL=ON' "$tsan_dir/CMakeCache.txt" 2>/dev/null; then
  echo "tsan_pipeline: $tsan_dir was not configured with -DEACACHE_TSAN=ON; skipping"
  exit 77
fi

if ! grep -q '^EACACHE_WERROR:BOOL=ON' "$tsan_dir/CMakeCache.txt" 2>/dev/null; then
  echo "tsan_pipeline: note: $tsan_dir lacks EACACHE_WERROR=ON (recommended configure shown above)"
fi

# Negative control first: the deliberate race in tests/analysis/ MUST trip
# the sanitizer (exit 66). A clean exit means TSan is not actually armed in
# this tree — stale cache, stripped flags — and every "pass" below would be
# meaningless, so we fail loudly instead.
echo "tsan_pipeline: negative control (deliberate race must be flagged)..."
set +e
TSAN_OPTIONS="exitcode=66:halt_on_error=1" "$tsan_dir/tests/tsan_race_fixture" >/dev/null 2>&1
race_status=$?
set -e
if [ "$race_status" -ne 66 ]; then
  echo "tsan_pipeline: FAIL — deliberate race exited $race_status (expected 66)."
  echo "tsan_pipeline: ThreadSanitizer is not armed in $tsan_dir; rebuild it."
  exit 1
fi
echo "tsan_pipeline: negative control flagged as expected"

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}

# Sweep engine + trace cache + observability handoff at a worker count high
# enough to force real contention on the completion board.
EACACHE_JOBS=8 "$tsan_dir/tests/test_sim" \
  --gtest_filter='SweepRunnerTest.*:TraceCacheTest.*:ResolveJobCountTest.*:ObservabilityTest.*' \
  --gtest_brief=1

# Sharded parallel engine: the determinism suite runs the same trace at 1, 2,
# 4 and 8 shard threads and byte-compares the result JSON, so every mailbox
# handoff, barrier crossing and merge path runs under TSan while the
# comparison proves the interleavings never leak into the result.
"$tsan_dir/tests/test_sim" \
  --gtest_filter='ShardEngineTest.*:ShardEngineValidationTest.*:ShardMessageCodecTest.*' \
  --gtest_brief=1

# The bench harness drives the same pool through its CLI surface: a plain
# multi-job sweep, then the event-driven pipeline arm with retries+coalescing
# (per-request state machines shared across queue callbacks).
"$tsan_dir/bench/bench_smoke" --jobs 8 --json >/dev/null
"$tsan_dir/bench/bench_smoke" --jobs 8 --pipeline --coalesce --icp-retries 2 --json >/dev/null

# Differential fuzz corpus with sharded execution: 64 cases at jobs=8
# re-proves the corpus verdict is independent of worker count while TSan
# watches the sharding itself. EACACHE_FUZZ_WORKLOAD=1 mixes workload-DSL
# traces (chunk trains, flash spikes, session affinity) into the corpus so
# the streaming generator also runs under the sharded pool.
EACACHE_FUZZ_CASES=64 EACACHE_JOBS=8 EACACHE_FUZZ_WORKLOAD=1 \
  "$tsan_dir/tests/test_validate" --gtest_filter='SimFuzzTest.*' --gtest_brief=1

# Workload-DSL battery (DESIGN.md §15): the cross-thread claims are that
# seeded generation is bit-identical from concurrent threads and that the
# shard engine's result JSON is invariant in the shard count on a DSL trace.
# The bounded-memory fixture is filtered out — its operator new/delete
# replacement is compiled out under sanitizers (TSan owns the allocator).
if [ -x "$tsan_dir/tests/test_workload" ]; then
  echo "tsan_pipeline: workload-DSL battery (concurrent generation + shard invariance)..."
  "$tsan_dir/tests/test_workload" \
    --gtest_filter='-TraceSourceTest.StreamingMemoryBoundedByUniverse' \
    --gtest_brief=1
else
  echo "tsan_pipeline: note: $tsan_dir/tests/test_workload not built; workload leg skipped"
fi

# Daemon mode: 4 proxy worker threads cooperating over the in-memory wire
# while the load generator replays 10k requests open-loop — the share-nothing
# worker design (per-worker registries merged after join) and the mailbox
# CondVar handoffs are exactly what TSan exists to check. The demo binary
# also asserts live-vs-simulated hit-rate parity, so a rate bound failure
# surfaces here too.
#
# The second run arms the full telemetry plane (DESIGN.md §13): the
# StatsPoller thread samples every worker through the kStatsRequest seam
# while requests are in flight, the HTTP endpoint thread serves concurrent
# scrapes, the file exporter renames snapshots, and the flight ring records
# spans — every cross-thread edge the plane added runs under TSan here.
if [ -x "$tsan_dir/examples/daemon_demo" ]; then
  echo "tsan_pipeline: daemon demo (4 worker threads, 10k requests)..."
  "$tsan_dir/examples/daemon_demo" 10000 4 1000000 >/dev/null
  echo "tsan_pipeline: daemon demo + live telemetry plane (poller, exporters, flight ring)..."
  stats_tmp="${TMPDIR:-/tmp}/eacache_tsan_stats.$$.json"
  "$tsan_dir/examples/daemon_demo" 20000 4 200000 \
    --stats-port=0 --stats-out="$stats_tmp" --stats-period-ms=20 \
    --flight-capacity=1024 >/dev/null 2>&1
  rm -f "$stats_tmp"
else
  echo "tsan_pipeline: note: $tsan_dir/examples/daemon_demo not built; daemon leg skipped"
fi

# Live-scrape leg: the StatsExposition suite drives real TCP scrapes against
# the endpoint while poll_once samples the group — the sampler/worker/server
# interleaving under TSan.
if [ -x "$tsan_dir/tests/test_daemon" ]; then
  echo "tsan_pipeline: live stats scrape (StatsExposition + SampleStats suites)..."
  "$tsan_dir/tests/test_daemon" \
    --gtest_filter='StatsExpositionTest.*:SampleStatsTest.*' --gtest_brief=1
else
  echo "tsan_pipeline: note: $tsan_dir/tests/test_daemon not built; scrape leg skipped"
fi

echo "tsan_pipeline: all concurrent suites clean under ThreadSanitizer"
