// Negative control for eacheck's determinism pass (DESIGN.md §16).
//
// NEVER compiled or linked. The eacheck_determinism_negative ctest runs
//   eacheck.py --pass determinism --fixture <this file>
// and passes iff all three planted violation kinds are reported:
//
//  1. unordered-iteration-into-JSON: result_json() serializes an
//     unordered_map in hash order — the exact escape the pass exists to
//     catch (order differs across stdlib hash implementations).
//  2. wall-clock-outside-the-seam: a system_clock stamp inside exported
//     results, bypassing core/clock.* and core/wall_timer.h.
//  3. float-accumulation-in-unordered-order: double += inside the hash-
//     ordered loop, so the sum depends on bucket order.

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

namespace eacache {

class BrokenExporter {
 public:
  std::string result_json() const;

 private:
  std::unordered_map<unsigned long, double> costs_;
};

std::string BrokenExporter::result_json() const {
  std::string out = "[";
  std::vector<unsigned long> ids;
  double total = 0.0;
  for (const auto& [id, cost] : costs_) {
    ids.push_back(id);  // planted: hash order materialized into the output
    total += cost;      // planted: float accumulation in hash order
  }
  for (const unsigned long id : ids) {
    out += std::to_string(id);
    out += ",";
  }
  // planted: wall-clock stamp inside exported results
  const auto stamp = std::chrono::system_clock::now();
  out += std::to_string(stamp.time_since_epoch().count());
  out += "]";
  out += std::to_string(total);
  return out;
}

}  // namespace eacache
