// Negative control for eacheck's architecture-DAG pass (DESIGN.md §16).
//
// NEVER compiled or linked. The eacheck_dag_negative ctest runs
//   eacheck.py --pass dag --fixture <this file> --fixture-module core
// which analyzes this file as if it lived in src/core/. Both planted
// violations below must be reported for the test to pass:
//
//  * core -> sim is not a declared edge in layering.toml, and because
//    sim -> core IS declared, the planted include closes a module cycle
//    (core -> sim -> core) — the pass must report the undeclared edge AND
//    the cycle it introduces.
//  * core -> event is the layering rule PR 5's project_lint rule 6 used to
//    police textually; the DAG pass must keep convicting it.
//
// If the DAG pass ever stops firing on this file, the negative-control
// ctest fails — the analyzer cannot silently rot.

#include "sim/sweep.h"          // planted: undeclared core -> sim, closes a cycle
#include "event/event_queue.h"  // planted: undeclared core -> event

namespace eacache {

// A believable-looking consumer so the fixture reads like real code.
inline int fixture_touch_sim_layer() { return 0; }

}  // namespace eacache
