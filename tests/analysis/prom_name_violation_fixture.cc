// Negative control for project_lint.py's prom-names-documented rule
// (DESIGN.md §13): a hypothetical exporter that invents a Prometheus family
// no documentation mentions. The `project_lint_prom_negative` ctest runs the
// lint in --prom-fixture mode against this file and PASSES only if the rule
// flags the literal below. Never compiled; the .cc suffix keeps it out of
// every build glob and out of the lint's own src/ scan.
#include <string>

namespace eacache {

// VIOLATION: this family name appears in no DESIGN.md exposition table.
inline std::string undocumented_family() {
  return "eacache_undocumented_bogus_family_total";
}

}  // namespace eacache
