// Negative-control fixture for project_lint rule 9 (scenario-tests-exist).
// NEVER compiled — project_lint.py reads it as text via --scenario-fixture
// and must flag the dangling validation test below; the negative-control
// ctest FAILS if the rule ever stops firing.
//
// Mirrors the registration style of src/trace/scenarios.cpp: a pack.name
// assignment paired with a pack.validation_test naming a test that does not
// exist anywhere under tests/.
#include "trace/scenarios.h"

namespace eacache {

std::vector<ScenarioPack> fixture_scenarios() {
  std::vector<ScenarioPack> packs;
  ScenarioPack pack;
  pack.name = "dangling-scenario";
  pack.summary = "a scenario whose validation test was never written";
  pack.validation_test = "NoSuchSuite.NoSuchValidationTest";
  packs.push_back(pack);
  return packs;
}

}  // namespace eacache
