// Correct twin of thread_safety_violation.cpp.
//
// Same shape — a counter guarded by an annotated eacache::Mutex — but every
// access takes the lock, so Clang's -Wthread-safety accepts it. The negative
// control (tests/tools/check_thread_safety_negative.sh) compiles this file
// first to prove the include paths and flags are sound before asserting that
// the violation twin fails; tier-1 builds also compile it (see
// tests/CMakeLists.txt) so the fixture can never rot out of sync with the
// annotation macros.
#include "common/thread_annotations.h"

namespace eacache::analysis_fixture {

class GuardedCounter {
 public:
  void bump() EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++count_;
  }

  [[nodiscard]] int read() const EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return count_;
  }

 private:
  mutable Mutex mutex_;
  int count_ EACACHE_GUARDED_BY(mutex_) = 0;
};

int clean_fixture_probe() {
  GuardedCounter counter;
  counter.bump();
  return counter.read();
}

}  // namespace eacache::analysis_fixture
