#include "analysis/che_approximation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

CheModel zipf_model(std::size_t n, double alpha) {
  CheModel model;
  model.popularity = zipf_popularity(n, alpha);
  return model;
}

TEST(ZipfPopularityTest, SumsToOneAndDecreases) {
  const auto p = zipf_popularity(1000, 0.8);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += p[i];
    if (i > 0) {
      EXPECT_LT(p[i], p[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_THROW((void)zipf_popularity(0, 1.0), std::invalid_argument);
}

TEST(CheTest, RejectsBadInputs) {
  const CheModel model = zipf_model(100, 0.8);
  EXPECT_THROW((void)che_lru(CheModel{}, 10), std::invalid_argument);
  EXPECT_THROW((void)che_lru(model, 0.0), std::invalid_argument);
  CheModel bad = model;
  bad.total_rate = 0.0;
  EXPECT_THROW((void)che_lru(bad, 10), std::invalid_argument);
  bad = model;
  bad.popularity[0] += 0.5;  // no longer sums to 1
  EXPECT_THROW((void)che_lru(bad, 10), std::invalid_argument);
}

TEST(CheTest, OccupancyConstraintSatisfied) {
  const CheModel model = zipf_model(2000, 0.9);
  for (const double capacity : {10.0, 100.0, 500.0, 1500.0}) {
    const CheResult result = che_lru(model, capacity);
    EXPECT_NEAR(result.expected_occupancy, capacity, 1e-6 * capacity);
    EXPECT_GT(result.characteristic_time, 0.0);
  }
}

TEST(CheTest, HitRateMonotoneInCapacity) {
  const CheModel model = zipf_model(2000, 0.9);
  double previous = 0.0;
  for (const double capacity : {5.0, 20.0, 80.0, 320.0, 1280.0}) {
    const double h = che_lru(model, capacity).hit_rate;
    EXPECT_GT(h, previous);
    EXPECT_LT(h, 1.0);
    previous = h;
  }
}

TEST(CheTest, FullCapacityHitsEverything) {
  const CheModel model = zipf_model(100, 1.0);
  const CheResult result = che_lru(model, 100.0);
  EXPECT_DOUBLE_EQ(result.hit_rate, 1.0);
  EXPECT_TRUE(std::isinf(result.characteristic_time));
}

TEST(CheTest, HitRateInvariantToRateScale) {
  CheModel model = zipf_model(500, 0.8);
  const double h1 = che_lru(model, 50).hit_rate;
  model.total_rate = 1e6;
  const double h2 = che_lru(model, 50).hit_rate;
  EXPECT_NEAR(h1, h2, 1e-9);
}

TEST(CheTest, SteeperZipfCachesBetter) {
  const double flat = che_lru(zipf_model(2000, 0.6), 100).hit_rate;
  const double steep = che_lru(zipf_model(2000, 1.2), 100).hit_rate;
  EXPECT_GT(steep, flat);
}

TEST(CheGroupTest, ReplicationDeflatesEffectiveCapacity) {
  const CheModel model = zipf_model(2000, 0.9);
  const double dedup = che_group(model, 400, 1.0).hit_rate;
  const double replicated = che_group(model, 400, 2.0).hit_rate;
  EXPECT_GT(dedup, replicated);
  EXPECT_THROW((void)che_group(model, 400, 0.5), std::invalid_argument);
}

// The headline validation: the analytic model must predict the SIMULATED
// single-cache LRU hit rate on a stationary Zipf workload. (One cache, no
// cooperation, uniform sizes: exactly the IRM setting Che models.)
TEST(CheValidationTest, PredictsSimulatedLruHitRate) {
  constexpr std::size_t kDocs = 2000;
  constexpr double kAlpha = 0.9;

  SyntheticTraceConfig workload;
  workload.num_requests = 200'000;
  workload.num_documents = kDocs;
  workload.num_users = 16;
  workload.span = hours(48);
  workload.zipf_alpha = kAlpha;
  workload.repeat_probability = 0.0;  // IRM: stationary, independent draws
  // Uniform sizes: make the byte capacity translate exactly to object count.
  workload.size_sigma = 0.01;
  workload.pareto_tail_probability = 0.0;
  const Trace trace = generate_synthetic_trace(workload);

  const CheModel model = zipf_model(kDocs, kAlpha);
  for (const double capacity_objects : {50.0, 200.0, 800.0}) {
    GroupConfig config;
    config.num_proxies = 1;
    config.aggregate_capacity =
        static_cast<Bytes>(capacity_objects * 4096.0 * 1.005);  // sizes ~4096
    config.placement = PlacementKind::kAdHoc;
    const SimulationResult sim = run_simulation(trace, config);
    const CheResult analytic = che_lru(model, capacity_objects);
    // The simulation includes compulsory (cold) misses that the stationary
    // model does not; with 200k requests over 2k docs the cold mass is
    // ~1%. Allow 3% absolute.
    EXPECT_NEAR(sim.metrics.hit_rate(), analytic.hit_rate, 0.03)
        << "capacity " << capacity_objects;
  }
}

}  // namespace
}  // namespace eacache
