// Deliberate thread-safety violation — the annotation layer's negative
// control. NOT part of any build target.
//
// tests/tools/check_thread_safety_negative.sh compiles this file with
// clang++ -Wthread-safety -Werror=thread-safety and requires the compile to
// FAIL with a thread-safety diagnostic. If it ever compiles cleanly, the
// annotation macros have silently degraded to no-ops under Clang and the
// whole tier-1 analysis (DESIGN.md §11) is vacuous — which is exactly the
// failure mode this fixture exists to catch.
#include "common/thread_annotations.h"

namespace eacache::analysis_fixture {

class LeakyCounter {
 public:
  void bump() EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++count_;
  }

  // BUG (intentional): reads the guarded member without holding mutex_.
  // Clang must reject this with -Werror=thread-safety.
  [[nodiscard]] int read_without_lock() const { return count_; }

 private:
  mutable Mutex mutex_;
  int count_ EACACHE_GUARDED_BY(mutex_) = 0;
};

int violation_fixture_probe() {
  LeakyCounter counter;
  counter.bump();
  return counter.read_without_lock();
}

}  // namespace eacache::analysis_fixture
