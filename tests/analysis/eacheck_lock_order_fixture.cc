// Negative control for eacheck's static deadlock pass (DESIGN.md §16).
//
// NEVER compiled or linked. The eacheck_locks_negative ctest runs
//   eacheck.py --pass locks --fixture <this file>
// and passes iff the planted AB/BA lock-order cycle below is reported with
// both acquisition stacks. Thread one takes ledger_mutex_ then index_mutex_;
// thread two takes them in the opposite order — the classic deadlock the
// lock-order graph exists to catch before a scheduler ever interleaves it.

#include "common/thread_annotations.h"

namespace eacache {

class ShardLedger {
 public:
  // Thread one's path: ledger first, then the index.
  void checkpoint() {
    MutexLock ledger(ledger_mutex_);
    MutexLock index(index_mutex_);  // planted: A -> B while holding A
    ++checkpoints_;
  }

  // Thread two's path: index first, then the ledger — the BA half.
  void rebuild_index() {
    MutexLock index(index_mutex_);
    MutexLock ledger(ledger_mutex_);  // planted: B -> A while holding B
    ++rebuilds_;
  }

 private:
  Mutex ledger_mutex_;
  Mutex index_mutex_;
  unsigned long checkpoints_ EACACHE_GUARDED_BY(ledger_mutex_) = 0;
  unsigned long rebuilds_ EACACHE_GUARDED_BY(index_mutex_) = 0;
};

}  // namespace eacache
