// Negative control for project_lint.py's sim-no-daemon-includes rule
// (DESIGN.md §12): a hypothetical simulator source that borrows the daemon's
// wall-clock machinery. The `project_lint_sim_negative` ctest runs the lint
// in --sim-fixture mode against this file and PASSES only if the rule flags
// both includes below. Never compiled; the .cc suffix keeps it out of every
// build glob and out of the lint's own src/ scan.
#include "daemon/daemon.h"  // VIOLATION: the simulator must not depend on the daemon
#include "daemon/telemetry.h"  // VIOLATION: nor sample its telemetry plane

namespace eacache {

inline double shard_helper_peeking_at_daemon(const Trace& trace, const RunSpec& spec) {
  return run_daemon(trace, spec).metrics.hit_rate();
}

}  // namespace eacache
