// Deliberate data race — the TSan pipeline's negative control.
//
// Two threads increment a plain int with no synchronization. A healthy
// ThreadSanitizer build MUST flag this; tests/run_tsan_pipeline.sh runs it
// first with TSAN_OPTIONS=exitcode=66 and treats a clean exit as proof that
// the sanitizer is not actually armed (wrong build tree, stripped
// instrumentation), failing the whole pipeline rather than reporting a
// meaningless green. Never wired into the tier-1 suite.
#include <cstdio>
#include <thread>

namespace {

int unguarded_counter = 0;  // intentionally not atomic, not mutex-protected

void hammer() {
  for (int i = 0; i < 100000; ++i) ++unguarded_counter;
}

}  // namespace

int main() {
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();
  // The printed value is typically < 200000 — the lost updates are the race.
  std::printf("tsan_race_fixture: counter=%d\n", unguarded_counter);
  return 0;
}
