// Negative control for project_lint.py's core-no-sim-includes rule
// (DESIGN.md §12): a hypothetical libeacache-core source that reaches back
// into the simulator layer. The `project_lint_negative` ctest runs the lint
// in --layering-fixture mode against this file and PASSES only if the rule
// flags both includes below. Never compiled; the .cc suffix keeps it out of
// every build glob and out of the lint's own src/ scan.
#include "sim/simulator.h"  // VIOLATION: core must not depend on the simulator
#include "event/event_queue.h"  // VIOLATION: nor on the event loop driving it

namespace eacache {

inline double core_helper_peeking_at_sim(const Trace& trace, const GroupConfig& config) {
  return run_simulation(trace, config).metrics.hit_rate();
}

}  // namespace eacache
