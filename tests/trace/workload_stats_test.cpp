// The statistical generator battery (DESIGN.md §15): every shipped scenario
// pack names one of these tests as its validation (lint rule 9 enforces the
// pairing), so a scenario cannot ship without a measurement that its
// generated traffic matches what the spec promised:
//
//   * stationary    — chi-squared goodness-of-fit of rank popularity
//                     against the spec's Zipf exponent, at three seeds,
//                     conditioning on the KNOWN rank permutation;
//   * flash-crowd   — plateau traffic share within ±5 points of flash.peak;
//   * hot-set-drift — the trace follows the replayed churn schedule: late
//                     traffic concentrates on the CURRENT hot set, the
//                     initial one decays, epoch-to-epoch overlap matches
//                     churn.fraction;
//   * metro-users   — measured session-affinity ratio well above the
//                     incidental-recurrence baseline, metro-scale distinct
//                     users;
//   * flash-crowd-outage — the composed FaultPlan's outage window sits
//                     inside the elevated flash-share window.
//
// Plus the analytic cross-checks: Che's approximation predicts the
// simulated stationary hit rate, and the Wilson-Hilferty critical values
// match tabulated chi-squared quantiles.
#include "trace/workload_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/che_approximation.h"
#include "core/workload_faults.h"
#include "sim/simulator.h"
#include "trace/scenarios.h"
#include "trace/workload.h"

namespace eacache {
namespace {

constexpr std::uint64_t kSeeds[] = {42, 1337, 20'260'808};

WorkloadSpec seeded(const ScenarioPack& pack, std::uint64_t requests, std::uint64_t seed) {
  WorkloadSpec spec = scaled_spec(pack, requests);
  spec.seed = seed;
  return spec;
}

/// Fraction of requests inside [from, to) whose document is in `set`.
double mass_on(const Trace& trace, const std::vector<DocumentId>& set, TimePoint from,
               TimePoint to) {
  const std::set<DocumentId> members(set.begin(), set.end());
  std::uint64_t inside = 0;
  std::uint64_t total = 0;
  for (const Request& request : trace.requests) {
    if (request.at < from || request.at >= to) continue;
    ++total;
    if (members.count(request.document) != 0) ++inside;
  }
  return total == 0 ? 0.0 : static_cast<double>(inside) / static_cast<double>(total);
}

// ---- Scenario validation: stationary --------------------------------------

// Validation test for the "stationary" scenario pack (lint rule 9).
TEST(WorkloadStatsTest, StationaryZipfFitMatchesAlpha) {
  const ScenarioPack* pack = find_scenario("stationary");
  ASSERT_NE(pack, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadSpec spec = seeded(*pack, 60'000, seed);
    const Trace trace = generate_workload_trace(spec);

    // Condition on the generator's own rank permutation (no churn, so epoch
    // 0 is the permutation for the whole trace) — an unbiased fit.
    const std::vector<DocumentId> ranks = workload_hot_documents(spec, 0, 200);
    const std::vector<std::uint64_t> counts = count_by_rank(trace, ranks, 200);
    const ZipfFit fit = zipf_chi_squared(counts, spec.zipf_alpha, spec.num_documents, 0.999);
    EXPECT_TRUE(fit.accepted) << "seed " << seed << ": chi^2 " << fit.chi_squared << " > "
                              << fit.critical << " (dof " << fit.dof << ")";

    // Power check: the same counts must REJECT a clearly wrong exponent,
    // otherwise acceptance above is vacuous.
    const ZipfFit wrong = zipf_chi_squared(counts, 1.4, spec.num_documents, 0.999);
    EXPECT_FALSE(wrong.accepted) << "seed " << seed << ": fit has no power";
  }
}

// ---- Scenario validation: flash-crowd -------------------------------------

// Validation test for the "flash-crowd" scenario pack (lint rule 9).
TEST(WorkloadStatsTest, FlashCrowdSpikeMassMatchesPeak) {
  const ScenarioPack* pack = find_scenario("flash-crowd");
  ASSERT_NE(pack, nullptr);
  for (const std::uint64_t seed : kSeeds) {
    const WorkloadSpec spec = seeded(*pack, 60'000, seed);
    const Trace trace = generate_workload_trace(spec);

    const TimePoint plateau_start = kSimEpoch + spec.flash.start + spec.flash.ramp;
    const TimePoint plateau_end = plateau_start + spec.flash.hold;
    const double plateau = spike_mass(trace, workload_flash_document(), plateau_start,
                                      plateau_end);
    EXPECT_NEAR(plateau, spec.flash.peak, 0.05) << "seed " << seed;

    // Before the spike the reserved document carries no traffic at all.
    const double before =
        spike_mass(trace, workload_flash_document(), kSimEpoch, kSimEpoch + hours(4));
    EXPECT_LT(before, 0.005) << "seed " << seed;
  }
}

// ---- Scenario validation: hot-set-drift -----------------------------------

// Validation test for the "hot-set-drift" scenario pack (lint rule 9).
TEST(WorkloadStatsTest, HotSetDriftFollowsChurnSchedule) {
  const ScenarioPack* pack = find_scenario("hot-set-drift");
  ASSERT_NE(pack, nullptr);
  const WorkloadSpec spec = pack->spec;
  const Trace trace = generate_workload_trace(spec);
  const std::uint64_t k = spec.churn_hot_window();

  const std::vector<DocumentId> initial = workload_hot_documents(spec, 0, k);
  EXPECT_DOUBLE_EQ(hot_set_overlap(initial, initial), 1.0);

  // Epoch-to-epoch overlap reflects churn.fraction: ~25% of the hot window
  // swaps per interval (swap targets are occasionally hot themselves, so
  // the bound is loose on both sides).
  const double step = hot_set_overlap(workload_hot_documents(spec, 10, k),
                                      workload_hot_documents(spec, 11, k));
  EXPECT_GT(step, 0.5);
  EXPECT_LT(step, 0.995);

  // After 40 intervals the original hot set has almost fully washed out.
  const std::vector<DocumentId> late = workload_hot_documents(spec, 40, k);
  EXPECT_LT(hot_set_overlap(initial, late), 0.5);

  // The GENERATOR follows the same schedule: traffic inside epoch 40's
  // window concentrates on the epoch-40 hot set, not the initial one.
  const TimePoint window_start = kSimEpoch + spec.churn.interval * 40;
  const TimePoint window_end = window_start + spec.churn.interval;
  const double current_mass = mass_on(trace, late, window_start, window_end);
  const double initial_mass = mass_on(trace, initial, window_start, window_end);
  EXPECT_GT(current_mass, 0.2);   // top-k Zipf(0.75) mass is ~0.3
  EXPECT_LT(initial_mass, 0.1);   // relegated to uniform ranks
  EXPECT_GT(current_mass, initial_mass + 0.1);
}

// ---- Scenario validation: metro-users -------------------------------------

// Validation test for the "metro-users" scenario pack (lint rule 9).
TEST(WorkloadStatsTest, MetroUsersSessionAffinity) {
  const ScenarioPack* metro = find_scenario("metro-users");
  const ScenarioPack* stationary = find_scenario("stationary");
  ASSERT_NE(metro, nullptr);
  ASSERT_NE(stationary, nullptr);

  const WorkloadSpec spec = metro->spec;
  const Trace trace = generate_workload_trace(spec);
  const double affine = session_affinity_ratio(trace, spec.sessions.window);

  // Baseline: the same measurement on session-free traffic picks up only
  // incidental recurrence of globally popular documents.
  const Trace control = generate_workload_trace(scaled_spec(*stationary, 60'000));
  const double incidental = session_affinity_ratio(control, spec.sessions.window);

  EXPECT_GT(affine, 0.12);
  EXPECT_LT(incidental, 0.05);
  EXPECT_GT(affine, incidental + 0.1)
      << "affinity " << affine << " vs incidental " << incidental;

  // Metro scale: the 150k requests fan out over many thousands of distinct
  // users drawn from the 2M population.
  std::set<UserId> users;
  for (const Request& request : trace.requests) users.insert(request.user);
  EXPECT_GT(users.size(), 5'000u);
}

// ---- Scenario validation: flash-crowd-outage ------------------------------

// Validation test for the "flash-crowd-outage" scenario pack (lint rule 9).
TEST(WorkloadFaultsTest, OutageLandsMidFlashCrowd) {
  const ScenarioPack* pack = find_scenario("flash-crowd-outage");
  ASSERT_NE(pack, nullptr);
  const WorkloadSpec& spec = pack->spec;

  const FaultPlan plan = flash_crowd_outage_plan(spec, /*victim=*/2);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_TRUE(plan.flushes.empty());
  const PeerOutage& outage = plan.outages[0];
  EXPECT_EQ(outage.proxy, 2u);
  EXPECT_EQ(outage.start, kSimEpoch + spec.flash.start + spec.flash.ramp / 2);
  EXPECT_EQ(outage.end, kSimEpoch + spec.flash.start + spec.flash.ramp + spec.flash.hold +
                            spec.flash.ramp / 2);

  // The whole window sits inside elevated flash share, and it covers the
  // plateau (the document's hottest stretch).
  EXPECT_GT(workload_flash_share(spec, outage.start - kSimEpoch), 0.0);
  EXPECT_GT(workload_flash_share(spec, outage.end - kSimEpoch), 0.0);
  const Duration plateau_mid = spec.flash.start + spec.flash.ramp + spec.flash.hold / 2;
  EXPECT_LE(outage.start - kSimEpoch, plateau_mid);
  EXPECT_GE(outage.end - kSimEpoch, plateau_mid);
  EXPECT_DOUBLE_EQ(workload_flash_share(spec, plateau_mid), spec.flash.peak);

  WorkloadSpec no_flash;
  EXPECT_THROW((void)flash_crowd_outage_plan(no_flash, 0), std::invalid_argument);
}

// ---- Analytic cross-checks ------------------------------------------------

TEST(WorkloadStatsTest, CheApproximationPredictsStationaryHitRate) {
  // Degenerate the size model to fixed 4 KiB objects so aggregate_capacity
  // maps exactly onto Che's capacity-in-objects, then compare the simulated
  // single-LRU hit rate against the fixed point.
  WorkloadSpec spec;
  spec.name = "che-stationary";
  spec.num_requests = 150'000;
  spec.num_documents = 3'000;
  spec.num_users = 64;
  spec.span = hours(4);
  spec.zipf_alpha = 0.75;
  spec.size.mean_size = 4 * kKiB;
  spec.size.sigma = 0.0;
  spec.size.pareto_probability = 0.0;
  spec.size.min_size = 4 * kKiB;
  spec.size.max_size = 4 * kKiB;
  const Trace trace = generate_workload_trace(spec);

  constexpr double kCapacityObjects = 600.0;
  GroupConfig config;
  config.num_proxies = 1;  // a single LRU — exactly Che's model
  config.aggregate_capacity = static_cast<Bytes>(kCapacityObjects) * 4 * kKiB;
  config.placement = PlacementKind::kAdHoc;
  config.replacement = PolicyKind::kLru;
  const SimulationResult result = run_simulation(trace, config);

  CheModel model;
  model.popularity = zipf_popularity(spec.num_documents, spec.zipf_alpha);
  const CheResult che = che_lru(model, kCapacityObjects);

  EXPECT_NEAR(result.metrics.hit_rate(), che.hit_rate, 0.05)
      << "simulated " << result.metrics.hit_rate() << " vs Che " << che.hit_rate
      << " (T_C " << che.characteristic_time << ")";
}

TEST(WorkloadStatsTest, WilsonHilfertyMatchesTabulatedQuantiles) {
  // Tabulated upper quantiles of the chi-squared distribution.
  EXPECT_NEAR(chi_squared_critical(10, 0.95), 18.307, 0.15);
  EXPECT_NEAR(chi_squared_critical(60, 0.99), 88.379, 0.5);
  EXPECT_NEAR(chi_squared_critical(100, 0.999), 149.449, 0.8);
  EXPECT_THROW((void)chi_squared_critical(10, 0.5), std::invalid_argument);
}

TEST(WorkloadStatsTest, CountByRankResolvesChunksAndIgnoresFlash) {
  Trace trace;
  const std::vector<DocumentId> doc_of_rank = {7, 3, 9};
  const auto push = [&trace](DocumentId document) {
    Request request;
    request.at = kSimEpoch + msec(static_cast<std::int64_t>(trace.requests.size()));
    request.document = document;
    request.size = 1;
    trace.requests.push_back(request);
  };
  push(7);
  push(workload_chunk_document(7, 2));  // counts toward rank 0
  push(3);
  push(workload_flash_document());  // ignored
  push(9);
  push(11);  // outside the top ranks

  const std::vector<std::uint64_t> counts = count_by_rank(trace, doc_of_rank, 3);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);

  EXPECT_DOUBLE_EQ(spike_mass(trace, 7, kSimEpoch, kSimEpoch), 0.0);  // empty window
  const double share = spike_mass(trace, 7, kSimEpoch, kSimEpoch + hours(1));
  EXPECT_DOUBLE_EQ(share, 2.0 / 6.0);  // base + its chunk
}

}  // namespace
}  // namespace eacache
