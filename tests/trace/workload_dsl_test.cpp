// Workload-DSL mechanics (trace/workload.h): spec text round-trips, error
// aggregation, the reserved id spaces, chunk-train structure, seeded
// determinism (including across threads — the TSan leg replays this file),
// and the sharded-engine acceptance pin: result JSON for a DSL trace is
// byte-identical at shards=1 and shards=4.
#include "trace/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/run_result_json.h"
#include "sim/shard_engine.h"
#include "trace/scenarios.h"

namespace eacache {
namespace {

bool same_request(const Request& a, const Request& b) {
  return a.at == b.at && a.user == b.user && a.document == b.document && a.size == b.size;
}

bool same_trace(const Trace& a, const Trace& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    if (!same_request(a.requests[i], b.requests[i])) return false;
  }
  return true;
}

/// A small everything-on spec over a short span (the shard engine's
/// conservative windows scale with span / lookahead, so tests keep spans in
/// minutes, not days).
WorkloadSpec everything_spec() {
  WorkloadSpec spec;
  spec.name = "dsl-e2e";
  spec.num_requests = 4000;
  spec.num_documents = 500;
  spec.num_users = 400;
  spec.span = minutes(1);
  spec.diurnal.amplitude = 0.4;
  spec.diurnal.period = sec(30);
  spec.churn.interval = sec(15);
  spec.churn.fraction = 0.2;
  spec.flash.peak = 0.25;
  spec.flash.start = sec(10);
  spec.flash.ramp = sec(5);
  spec.flash.hold = sec(20);
  spec.segments.fraction = 0.1;
  spec.segments.chunk_bytes = 16 * kKiB;
  spec.segments.min_chunks = 2;
  spec.segments.max_chunks = 4;
  spec.segments.gap = msec(100);
  spec.sessions.affinity = 0.3;
  spec.sessions.window = 4;
  spec.sessions.active = 64;
  spec.sessions.mean_lifetime = sec(20);
  return spec;
}

// ---- Spec text format -----------------------------------------------------

TEST(WorkloadDslTest, CanonicalFormatRoundTripsEveryScenario) {
  for (const ScenarioPack& pack : workload_scenarios()) {
    const std::string canonical = format_workload_spec(pack.spec);
    const WorkloadSpec reparsed = parse_workload_spec(canonical);
    EXPECT_EQ(format_workload_spec(reparsed), canonical) << pack.name;
  }
  const std::string canonical = format_workload_spec(everything_spec());
  EXPECT_EQ(format_workload_spec(parse_workload_spec(canonical)), canonical);
}

TEST(WorkloadDslTest, ParsesMultiLineSpecWithComments) {
  const WorkloadSpec spec = parse_workload_spec(
      "# flash crowd over a small universe\n"
      "name = spike-demo\n"
      "requests = 9000; documents = 300\n"
      "span = 2h\n"
      "zipf.alpha = 0.9\n"
      "flash.peak = 0.4  # plateau share\n"
      "flash.start = 30m; flash.ramp = 90s; flash.hold = 15m\n"
      "size.mean = 8KiB\n"
      "segments.gap = 250\n");  // bare number = milliseconds
  EXPECT_EQ(spec.name, "spike-demo");
  EXPECT_EQ(spec.num_requests, 9000u);
  EXPECT_EQ(spec.num_documents, 300u);
  EXPECT_EQ(spec.span, hours(2));
  EXPECT_DOUBLE_EQ(spec.zipf_alpha, 0.9);
  EXPECT_DOUBLE_EQ(spec.flash.peak, 0.4);
  EXPECT_EQ(spec.flash.start, minutes(30));
  EXPECT_EQ(spec.flash.ramp, sec(90));
  EXPECT_EQ(spec.flash.hold, minutes(15));
  EXPECT_EQ(spec.size.mean_size, 8 * kKiB);
  EXPECT_EQ(spec.segments.gap, msec(250));
  EXPECT_TRUE(spec.validate().empty());
}

TEST(WorkloadDslTest, ParserAggregatesEveryError) {
  try {
    (void)parse_workload_spec(
        "bogus.key = 1\n"
        "zipf.alpha = not-a-number\n"
        "span = 90q\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bogus.key"), std::string::npos) << what;
    EXPECT_NE(what.find("zipf.alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("span"), std::string::npos) << what;
  }
}

TEST(WorkloadDslTest, ValidateAggregatesEveryViolation) {
  WorkloadSpec spec;
  spec.num_documents = 0;
  spec.flash.peak = 1.5;
  spec.segments.fraction = 0.5;
  spec.segments.min_chunks = 8;
  spec.segments.max_chunks = 2;
  const std::vector<std::string> violations = spec.validate();
  EXPECT_GE(violations.size(), 3u);
  EXPECT_THROW(spec.validate_or_throw(), std::invalid_argument);
  EXPECT_THROW(WorkloadSource{spec}, std::invalid_argument);
}

// ---- Reserved id spaces ---------------------------------------------------

TEST(WorkloadDslTest, ReservedIdSpacesAreDisjoint) {
  const DocumentId flash = workload_flash_document();
  EXPECT_TRUE(is_flash_document(flash));
  EXPECT_FALSE(is_chunk_document(flash));

  for (const DocumentId base : {DocumentId{0}, DocumentId{12'345},
                                (DocumentId{1} << 40) - 1}) {
    EXPECT_FALSE(is_flash_document(base));
    EXPECT_FALSE(is_chunk_document(base));
    for (const std::uint32_t index : {0u, 1u, (1u << 20) - 1}) {
      const DocumentId chunk = workload_chunk_document(base, index);
      EXPECT_TRUE(is_chunk_document(chunk));
      EXPECT_FALSE(is_flash_document(chunk));
      EXPECT_EQ(chunk_base_document(chunk), base);
    }
  }
}

// ---- Determinism ----------------------------------------------------------

TEST(WorkloadDslTest, SeededStreamsAreDeterministic) {
  const WorkloadSpec spec = everything_spec();
  const Trace first = generate_workload_trace(spec);
  const Trace second = generate_workload_trace(spec);
  EXPECT_TRUE(same_trace(first, second));

  WorkloadSpec reseeded = spec;
  reseeded.seed = spec.seed + 1;
  EXPECT_FALSE(same_trace(first, generate_workload_trace(reseeded)));
}

TEST(WorkloadDslTest, GenerationIsDeterministicAcrossThreads) {
  const WorkloadSpec spec = everything_spec();
  const Trace baseline = generate_workload_trace(spec);

  std::vector<Trace> traces(4);
  std::vector<std::thread> threads;
  threads.reserve(traces.size());
  for (Trace& slot : traces) {
    threads.emplace_back([&spec, &slot] { slot = generate_workload_trace(spec); });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Trace& trace : traces) EXPECT_TRUE(same_trace(trace, baseline));
}

// ---- Segmented objects ----------------------------------------------------

// Validation test for the "segmented-media" scenario pack (lint rule 9).
TEST(WorkloadDslTest, SegmentedMediaChunkTrains) {
  const ScenarioPack* pack = find_scenario("segmented-media");
  ASSERT_NE(pack, nullptr);
  const WorkloadSpec spec = scaled_spec(*pack, 40'000);
  const Trace trace = generate_workload_trace(spec);

  std::uint64_t chunk_requests = 0;
  // Per (base document, user): the last chunk index seen and its timestamp,
  // to check in-train ordering and spacing.
  std::map<std::pair<DocumentId, UserId>, std::pair<std::uint32_t, TimePoint>> last_chunk;
  std::map<DocumentId, std::uint32_t> max_index_seen;

  for (const Request& request : trace.requests) {
    if (!is_chunk_document(request.document)) {
      // A segmented document must never surface under its bare id — every
      // reference expands into its train.
      EXPECT_FALSE(workload_document_segmented(spec, request.document))
          << "bare reference to segmented document " << request.document;
      continue;
    }
    ++chunk_requests;
    EXPECT_EQ(request.size, spec.segments.chunk_bytes);

    const DocumentId base = chunk_base_document(request.document);
    EXPECT_TRUE(workload_document_segmented(spec, base));
    const auto index = static_cast<std::uint32_t>(request.document & ((1u << 20) - 1));
    EXPECT_LT(index, spec.segments.max_chunks);
    auto& top = max_index_seen[base];
    top = std::max(top, index);

    // Chunks 1..K-1 follow their predecessor by exactly `gap` (trains of
    // the same document by the same user cannot interleave ambiguously at
    // 200 ms spacing over this trace's arrival rate).
    if (index > 0) {
      const auto it = last_chunk.find({base, request.user});
      ASSERT_NE(it, last_chunk.end()) << "chunk " << index << " without predecessor";
      if (it->second.first == index - 1) {
        EXPECT_EQ(request.at - it->second.second, spec.segments.gap);
      }
    }
    last_chunk[{base, request.user}] = {index, request.at};
  }

  EXPECT_GT(chunk_requests, 0u);
  // Train lengths land inside [min_chunks, max_chunks]: every base that got
  // a full train shows a top index of K-1 with K in range.
  std::uint64_t full_trains = 0;
  for (const auto& [base, top] : max_index_seen) {
    EXPECT_LT(top, spec.segments.max_chunks) << "base " << base;
    if (top + 1 >= spec.segments.min_chunks) ++full_trains;
  }
  EXPECT_GT(full_trains, 0u);
}

TEST(WorkloadDslTest, DocumentSizesAreStablePerDocument) {
  const WorkloadSpec spec = everything_spec();
  const Trace trace = generate_workload_trace(spec);
  for (const Request& request : trace.requests) {
    EXPECT_EQ(request.size, workload_document_size(spec, request.document));
    if (!is_chunk_document(request.document) && !is_flash_document(request.document)) {
      EXPECT_GE(request.size, spec.size.min_size);
      EXPECT_LE(request.size, spec.size.max_size);
    }
  }
}

// ---- Flash-crowd share curve ---------------------------------------------

TEST(WorkloadDslTest, FlashShareFollowsTrapezoid) {
  const ScenarioPack* pack = find_scenario("flash-crowd");
  ASSERT_NE(pack, nullptr);
  const WorkloadSpec& spec = pack->spec;
  const Duration start = spec.flash.start;
  const Duration ramp = spec.flash.ramp;
  const Duration hold = spec.flash.hold;

  EXPECT_DOUBLE_EQ(workload_flash_share(spec, start - msec(1)), 0.0);
  EXPECT_NEAR(workload_flash_share(spec, start + ramp / 2), spec.flash.peak / 2, 1e-9);
  EXPECT_NEAR(workload_flash_share(spec, start + ramp), spec.flash.peak, 1e-9);
  EXPECT_NEAR(workload_flash_share(spec, start + ramp + hold / 2), spec.flash.peak, 1e-9);
  EXPECT_DOUBLE_EQ(workload_flash_share(spec, start + ramp + hold + ramp + msec(1)), 0.0);

  // Strictly increasing along the ramp, strictly decreasing down the far side.
  EXPECT_LT(workload_flash_share(spec, start + ramp / 4),
            workload_flash_share(spec, start + ramp / 2));
  EXPECT_GT(workload_flash_share(spec, start + ramp + hold + ramp / 4),
            workload_flash_share(spec, start + ramp + hold + ramp / 2));

  WorkloadSpec plain;
  EXPECT_DOUBLE_EQ(workload_flash_share(plain, hours(1)), 0.0);
}

// ---- Sharded engine acceptance -------------------------------------------

TEST(WorkloadDslTest, ShardCountInvariantOnDslTrace) {
  const Trace trace = generate_workload_trace(everything_spec());

  GroupConfig group;
  group.num_proxies = 8;
  group.aggregate_capacity = 2 * kMiB;
  group.placement = PlacementKind::kEa;

  RunSpec spec;
  spec.group = group;
  spec.exec.shards = 1;
  const std::string baseline =
      simulation_result_to_json(run_sharded_simulation(trace, spec));

  spec.exec.shards = 4;
  EXPECT_EQ(simulation_result_to_json(run_sharded_simulation(trace, spec)), baseline)
      << "shards=4 diverged from shards=1 on a DSL trace";
}

}  // namespace
}  // namespace eacache
