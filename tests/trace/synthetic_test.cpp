#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace eacache {
namespace {

SyntheticTraceConfig small_config() {
  SyntheticTraceConfig config;
  config.num_requests = 20000;
  config.num_documents = 2000;
  config.num_users = 50;
  config.span = hours(24);
  return config;
}

TEST(SyntheticTraceTest, GeneratesRequestedCount) {
  const Trace trace = generate_synthetic_trace(small_config());
  EXPECT_EQ(trace.size(), 20000u);
}

TEST(SyntheticTraceTest, TimeOrderedByConstruction) {
  const Trace trace = generate_synthetic_trace(small_config());
  EXPECT_TRUE(is_time_ordered(trace.requests));
}

TEST(SyntheticTraceTest, DeterministicForSameSeed) {
  const Trace a = generate_synthetic_trace(small_config());
  const Trace b = generate_synthetic_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.requests[i].at, b.requests[i].at);
    EXPECT_EQ(a.requests[i].user, b.requests[i].user);
    EXPECT_EQ(a.requests[i].document, b.requests[i].document);
    EXPECT_EQ(a.requests[i].size, b.requests[i].size);
  }
}

TEST(SyntheticTraceTest, DifferentSeedsDiffer) {
  SyntheticTraceConfig config = small_config();
  const Trace a = generate_synthetic_trace(config);
  config.seed = 777;
  const Trace b = generate_synthetic_trace(config);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.requests[i].document != b.requests[i].document) ++differing;
  }
  EXPECT_GT(differing, 1000);
}

TEST(SyntheticTraceTest, IdsWithinUniverse) {
  const SyntheticTraceConfig config = small_config();
  const Trace trace = generate_synthetic_trace(config);
  for (const Request& r : trace.requests) {
    EXPECT_LT(r.document, config.num_documents);
    EXPECT_LT(r.user, config.num_users);
  }
}

TEST(SyntheticTraceTest, SizesAreStablePerDocument) {
  const SyntheticTraceConfig config = small_config();
  const Trace trace = generate_synthetic_trace(config);
  std::map<DocumentId, Bytes> sizes;
  for (const Request& r : trace.requests) {
    const auto [it, inserted] = sizes.emplace(r.document, r.size);
    if (!inserted) {
      EXPECT_EQ(it->second, r.size) << "document " << r.document;
    }
    EXPECT_EQ(r.size, synthetic_document_size(config, r.document));
  }
}

TEST(SyntheticTraceTest, SizesRespectBounds) {
  const SyntheticTraceConfig config = small_config();
  for (std::uint64_t d = 0; d < 2000; ++d) {
    const Bytes size = synthetic_document_size(config, d);
    EXPECT_GE(size, config.min_size);
    EXPECT_LE(size, config.max_size);
  }
}

TEST(SyntheticTraceTest, MeanSizeNearConfigured) {
  const SyntheticTraceConfig config = small_config();
  double sum = 0.0;
  constexpr std::uint64_t kDocs = 20000;
  for (std::uint64_t d = 0; d < kDocs; ++d) {
    sum += static_cast<double>(synthetic_document_size(config, d));
  }
  const double mean = sum / static_cast<double>(kDocs);
  // Log-normal body at 4KiB mean plus a 1% Pareto tail: allow a wide but
  // meaningful band.
  EXPECT_GT(mean, 3000.0);
  EXPECT_LT(mean, 9000.0);
}

TEST(SyntheticTraceTest, PopularityIsSkewed) {
  const Trace trace = generate_synthetic_trace(small_config());
  std::map<DocumentId, int> counts;
  for (const Request& r : trace.requests) ++counts[r.document];
  int max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  const double uniform_share = 20000.0 / 2000.0;  // 10 requests/doc if uniform
  EXPECT_GT(max_count, 5 * uniform_share) << "popularity should be Zipf-skewed";
}

TEST(SyntheticTraceTest, SpanRoughlyRespected) {
  const SyntheticTraceConfig config = small_config();
  const Trace trace = generate_synthetic_trace(config);
  const TraceStats stats = compute_stats(trace.requests);
  // Poisson arrivals: total span concentrates near the configured value.
  EXPECT_GT(stats.span(), config.span / 2);
  EXPECT_LT(stats.span(), config.span * 2);
}

TEST(SyntheticTraceTest, TemporalLocalityBoostsRepeats) {
  SyntheticTraceConfig base = small_config();
  base.num_documents = 20000;  // large universe so stationary repeats are rare
  const Trace without = generate_synthetic_trace(base);
  base.repeat_probability = 0.5;
  const Trace with = generate_synthetic_trace(base);

  const auto repeat_fraction = [](const Trace& trace) {
    std::map<DocumentId, int> seen;
    int repeats = 0;
    for (const Request& r : trace.requests) {
      if (seen[r.document]++ > 0) ++repeats;
    }
    return static_cast<double>(repeats) / static_cast<double>(trace.size());
  };
  // Stationary Zipf over this universe already repeats ~55% of requests;
  // a 0.5 repeat probability must add a clear margin on top.
  EXPECT_GT(repeat_fraction(with), repeat_fraction(without) + 0.1);
}

TEST(SyntheticTraceTest, BuCalibratedPresetMatchesPaperNumbers) {
  const SyntheticTraceConfig config = SyntheticTraceConfig::bu_calibrated();
  EXPECT_EQ(config.num_requests, 575'775u);
  EXPECT_EQ(config.num_documents, 46'830u);
  EXPECT_EQ(config.num_users, 591u);
}

TEST(SyntheticTraceTest, InvalidConfigsThrow) {
  SyntheticTraceConfig config = small_config();
  config.num_documents = 0;
  EXPECT_THROW((void)generate_synthetic_trace(config), std::invalid_argument);
  config = small_config();
  config.num_users = 0;
  EXPECT_THROW((void)generate_synthetic_trace(config), std::invalid_argument);
  config = small_config();
  config.span = Duration::zero();
  EXPECT_THROW((void)generate_synthetic_trace(config), std::invalid_argument);
  config = small_config();
  config.repeat_probability = 1.0;
  EXPECT_THROW((void)generate_synthetic_trace(config), std::invalid_argument);
}

TEST(SyntheticTraceTest, ZeroRequestsYieldsEmptyTrace) {
  SyntheticTraceConfig config = small_config();
  config.num_requests = 0;
  EXPECT_TRUE(generate_synthetic_trace(config).empty());
}

}  // namespace
}  // namespace eacache
