#include "trace/bu_parser.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/hash.h"

namespace eacache {
namespace {

TEST(BuParserTest, ParsesWellFormedLines) {
  std::istringstream in(
      "100.0 alice http://a/x 2048\n"
      "101.5 bob http://b/y 512 321\n");
  const BuParseResult result = parse_bu_log(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.lines_read, 2u);
  EXPECT_EQ(result.lines_skipped, 0u);

  const Request& first = result.trace.requests[0];
  EXPECT_EQ(first.at, kSimEpoch);  // normalised to t=0
  EXPECT_EQ(first.size, 2048u);
  EXPECT_EQ(first.document, fnv1a64("http://a/x"));

  const Request& second = result.trace.requests[1];
  EXPECT_EQ(second.at, kSimEpoch + msec(1500));
  EXPECT_EQ(second.size, 512u);
}

TEST(BuParserTest, ZeroSizeCoercedToPaperDefault) {
  std::istringstream in("5 u http://z 0\n");
  const BuParseResult result = parse_bu_log(in);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.requests[0].size, 4 * kKiB);
  EXPECT_EQ(result.zero_sizes_coerced, 1u);
}

TEST(BuParserTest, CustomDefaultSize) {
  std::istringstream in("5 u http://z 0\n");
  BuParseOptions options;
  options.default_size = 999;
  const BuParseResult result = parse_bu_log(in, options);
  EXPECT_EQ(result.trace.requests[0].size, 999u);
}

TEST(BuParserTest, SkipsCommentsBlanksAndGarbage) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "   \n"
      "not enough fields\n"
      "-5 u http://x 10\n"      // negative timestamp
      "5 u http://x nonsense\n" // bad size
      "7 u http://ok 10\n");
  const BuParseResult result = parse_bu_log(in);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.lines_skipped, 6u);
  EXPECT_EQ(result.trace.requests[0].size, 10u);
}

TEST(BuParserTest, SortsOutOfOrderLogs) {
  std::istringstream in(
      "50 u http://late 1\n"
      "10 u http://early 1\n");
  const BuParseResult result = parse_bu_log(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_TRUE(is_time_ordered(result.trace.requests));
  EXPECT_EQ(result.trace.requests[0].document, fnv1a64("http://early"));
}

TEST(BuParserTest, NormalizationOptional) {
  std::istringstream in("100 u http://x 1\n");
  BuParseOptions options;
  options.normalize_time = false;
  const BuParseResult result = parse_bu_log(in, options);
  EXPECT_EQ(result.trace.requests[0].at, kSimEpoch + sec(100));
}

TEST(BuParserTest, SameUserSameUrlStableIds) {
  std::istringstream in(
      "1 carol http://x 10\n"
      "2 carol http://x 10\n");
  const BuParseResult result = parse_bu_log(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.requests[0].user, result.trace.requests[1].user);
  EXPECT_EQ(result.trace.requests[0].document, result.trace.requests[1].document);
}

TEST(BuParserTest, RejectsNonFiniteTimestamps) {
  std::istringstream in(
      "NaN u http://x 10\n"
      "inf u http://y 10\n"
      "5 u http://ok 10\n");
  const BuParseResult result = parse_bu_log(in);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.lines_skipped, 2u);
}

TEST(BuParserTest, MissingFileThrows) {
  EXPECT_THROW((void)parse_bu_log_file("/nonexistent/trace.log"), std::runtime_error);
}

TEST(BuParserTest, EmptyStreamYieldsEmptyTrace) {
  std::istringstream in("");
  const BuParseResult result = parse_bu_log(in);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.lines_read, 0u);
}

}  // namespace
}  // namespace eacache
