#include "trace/bu_writer.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "trace/bu_parser.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

TEST(BuWriterTest, WritesOneLinePerRequestPlusHeader) {
  const std::vector<Request> requests{
      {kSimEpoch + msec(1500), 7, 42, 2048},
      {kSimEpoch + sec(10), 8, 43, 512},
  };
  std::ostringstream out;
  write_bu_log(out, requests);
  const std::string text = out.str();
  EXPECT_NE(text.find("# eacache trace export"), std::string::npos);
  EXPECT_NE(text.find("1.500 u7 doc42 2048"), std::string::npos);
  EXPECT_NE(text.find("10.000 u8 doc43 512"), std::string::npos);
}

TEST(BuWriterTest, HeaderOptional) {
  BuWriteOptions options;
  options.write_header_comment = false;
  std::ostringstream out;
  write_bu_log(out, {}, options);
  EXPECT_TRUE(out.str().empty());
}

TEST(BuWriterTest, RoundTripPreservesStructure) {
  SyntheticTraceConfig config;
  config.num_requests = 5000;
  config.num_documents = 400;
  config.num_users = 20;
  config.span = hours(1);
  const Trace original = generate_synthetic_trace(config);

  std::stringstream buffer;
  write_bu_log(buffer, original.requests);
  BuParseOptions parse_options;
  parse_options.normalize_time = false;
  const BuParseResult parsed = parse_bu_log(buffer, parse_options);

  ASSERT_EQ(parsed.trace.size(), original.size());
  EXPECT_EQ(parsed.lines_skipped, 1u);  // only the header comment

  // Timestamps and sizes survive exactly (millisecond resolution both ways);
  // ids are re-hashed, so check the equality structure instead.
  std::map<DocumentId, DocumentId> doc_map;
  std::map<UserId, UserId> user_map;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Request& a = original.requests[i];
    const Request& b = parsed.trace.requests[i];
    EXPECT_EQ(a.at, b.at) << "request " << i;
    EXPECT_EQ(a.size, b.size) << "request " << i;
    const auto [doc_it, doc_new] = doc_map.emplace(a.document, b.document);
    if (!doc_new) {
      EXPECT_EQ(doc_it->second, b.document) << "doc mapping broken at " << i;
    }
    const auto [user_it, user_new] = user_map.emplace(a.user, b.user);
    if (!user_new) {
      EXPECT_EQ(user_it->second, b.user) << "user mapping broken at " << i;
    }
  }
  // Injective both ways: distinct originals stay distinct.
  std::map<DocumentId, DocumentId> reverse;
  for (const auto& [from, to] : doc_map) {
    const auto [it, inserted] = reverse.emplace(to, from);
    EXPECT_TRUE(inserted) << "two documents collided after round trip";
  }
}

TEST(BuWriterTest, RoundTripStatsMatch) {
  SyntheticTraceConfig config;
  config.num_requests = 3000;
  config.num_documents = 300;
  config.num_users = 10;
  config.span = minutes(30);
  const Trace original = generate_synthetic_trace(config);
  const TraceStats original_stats = compute_stats(original.requests);

  std::stringstream buffer;
  write_bu_log(buffer, original.requests);
  BuParseOptions options;
  options.normalize_time = false;
  const BuParseResult parsed = parse_bu_log(buffer, options);
  const TraceStats round_stats = compute_stats(parsed.trace.requests);

  EXPECT_EQ(round_stats.total_requests, original_stats.total_requests);
  EXPECT_EQ(round_stats.unique_documents, original_stats.unique_documents);
  EXPECT_EQ(round_stats.unique_users, original_stats.unique_users);
  EXPECT_EQ(round_stats.total_bytes, original_stats.total_bytes);
  EXPECT_EQ(round_stats.unique_bytes, original_stats.unique_bytes);
  EXPECT_EQ(round_stats.span(), original_stats.span());
}

TEST(BuWriterTest, FileRoundTrip) {
  const std::vector<Request> requests{{kSimEpoch + sec(1), 1, 2, 333}};
  const std::string path = ::testing::TempDir() + "/eacache_writer_test.log";
  write_bu_log_file(path, requests);
  const BuParseResult parsed = parse_bu_log_file(path);
  ASSERT_EQ(parsed.trace.size(), 1u);
  EXPECT_EQ(parsed.trace.requests[0].size, 333u);
}

TEST(BuWriterTest, UnwritablePathThrows) {
  EXPECT_THROW(write_bu_log_file("/nonexistent/dir/x.log", {}), std::runtime_error);
}

}  // namespace
}  // namespace eacache
