// Statistical property tests for the legacy synthetic generator
// (trace/synthetic.h) — the same battery the workload DSL gets, applied to
// the paper-calibrated generator every bench replays: Zipf exponent
// recovery via chi-squared on the KNOWN rank permutation, size-model
// moments, and generation determinism under concurrency.
#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "trace/workload_stats.h"

namespace eacache {
namespace {

SyntheticTraceConfig battery_config(std::uint64_t seed) {
  SyntheticTraceConfig config;
  config.seed = seed;
  config.num_requests = 60'000;
  config.num_documents = 12'000;
  config.num_users = 160;
  config.span = hours(24);
  return config;
}

bool same_trace(const Trace& a, const Trace& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const Request& x = a.requests[i];
    const Request& y = b.requests[i];
    if (x.at != y.at || x.user != y.user || x.document != y.document || x.size != y.size) {
      return false;
    }
  }
  return true;
}

TEST(SyntheticStatsTest, RankOrderMatchesGeneratorSampling) {
  // The exposed permutation is exactly the one the generator samples
  // through: rank-0 must be the most-referenced document (with 60k draws
  // over Zipf(0.75), rank 0's expected count is ~4x rank 20's).
  const SyntheticTraceConfig config = battery_config(42);
  const Trace trace = generate_synthetic_trace(config);
  const std::vector<std::uint64_t> doc_of_rank = synthetic_rank_order(config);
  ASSERT_EQ(doc_of_rank.size(), config.num_documents);

  const std::vector<std::uint64_t> counts = count_by_rank(trace, doc_of_rank, 50);
  // Top ranks dominate deep ranks — the permutation lines up with observed
  // popularity, so it is the generator's own mapping, not just any shuffle.
  EXPECT_GT(counts[0], counts[40]);
  std::uint64_t top_ten = 0;
  for (std::size_t r = 0; r < 10; ++r) top_ten += counts[r];
  EXPECT_GT(top_ten, counts[40] * 10);
}

TEST(SyntheticStatsTest, ZipfExponentRecovery) {
  for (const std::uint64_t seed : {42ull, 7ull, 20'260'808ull}) {
    const SyntheticTraceConfig config = battery_config(seed);
    const Trace trace = generate_synthetic_trace(config);
    const std::vector<std::uint64_t> doc_of_rank = synthetic_rank_order(config);

    const std::vector<std::uint64_t> counts = count_by_rank(trace, doc_of_rank, 200);
    const ZipfFit fit = zipf_chi_squared(counts, config.zipf_alpha, config.num_documents,
                                         0.999);
    EXPECT_TRUE(fit.accepted) << "seed " << seed << ": chi^2 " << fit.chi_squared << " > "
                              << fit.critical << " (dof " << fit.dof << ")";

    const ZipfFit wrong = zipf_chi_squared(counts, 1.4, config.num_documents, 0.999);
    EXPECT_FALSE(wrong.accepted) << "seed " << seed << ": fit has no power";
  }
}

TEST(SyntheticStatsTest, SizeModelMomentsMatchConfiguration) {
  const SyntheticTraceConfig config = battery_config(42);
  std::vector<Bytes> sizes;
  sizes.reserve(config.num_documents);
  double total = 0.0;
  for (std::uint64_t doc = 0; doc < config.num_documents; ++doc) {
    const Bytes size = synthetic_document_size(config, doc);
    ASSERT_GE(size, config.min_size);
    ASSERT_LE(size, config.max_size);
    sizes.push_back(size);
    total += static_cast<double>(size);
  }

  // Log-normal body calibrated to mean 4 KiB plus the 1% Pareto tail: the
  // sample mean lands a little above 4 KiB (tail mass), the median near
  // exp(mu) = 4096 * exp(-sigma^2/2) ~ 2.4 KiB.
  const double mean = total / static_cast<double>(config.num_documents);
  EXPECT_GT(mean, 4'000.0);
  EXPECT_LT(mean, 7'500.0);

  std::nth_element(sizes.begin(),
                   sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2),
                   sizes.end());
  const double median = static_cast<double>(sizes[sizes.size() / 2]);
  EXPECT_GT(median, 1'900.0);
  EXPECT_LT(median, 3'200.0);
}

TEST(SyntheticStatsTest, SizesAreStablePerDocument) {
  const SyntheticTraceConfig config = battery_config(7);
  const Trace trace = generate_synthetic_trace(config);
  for (const Request& request : trace.requests) {
    EXPECT_EQ(request.size, synthetic_document_size(config, request.document));
  }
}

TEST(SyntheticStatsTest, GenerationDeterministicUnderConcurrency) {
  SyntheticTraceConfig config = battery_config(42);
  config.num_requests = 20'000;  // keep the 5-way generation cheap
  config.repeat_probability = 0.2;  // exercise the recency-window path too
  const Trace baseline = generate_synthetic_trace(config);

  std::vector<Trace> traces(4);
  std::vector<std::thread> threads;
  threads.reserve(traces.size());
  for (Trace& slot : traces) {
    threads.emplace_back([&config, &slot] { slot = generate_synthetic_trace(config); });
  }
  for (std::thread& thread : threads) thread.join();
  for (const Trace& trace : traces) EXPECT_TRUE(same_trace(trace, baseline));
}

}  // namespace
}  // namespace eacache
