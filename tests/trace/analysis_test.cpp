#include "trace/analysis.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

Request req(std::int64_t t_s, DocumentId doc, Bytes size = 100) {
  return Request{kSimEpoch + sec(t_s), 0, doc, size};
}

TEST(TraceProfileTest, EmptyTrace) {
  const TraceProfile profile = profile_trace({});
  EXPECT_EQ(profile.total_requests, 0u);
  EXPECT_EQ(profile.unique_documents, 0u);
}

TEST(TraceProfileTest, CountsAndOneTimers) {
  const std::vector<Request> requests{req(0, 1), req(1, 1), req(2, 2), req(3, 3),
                                      req(4, 1)};
  const TraceProfile profile = profile_trace(requests);
  EXPECT_EQ(profile.total_requests, 5u);
  EXPECT_EQ(profile.unique_documents, 3u);
  EXPECT_EQ(profile.one_timers, 2u);  // docs 2 and 3
  EXPECT_DOUBLE_EQ(profile.one_timer_fraction, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(profile.compulsory_miss_fraction, 3.0 / 5.0);
}

TEST(TraceProfileTest, SizeStatistics) {
  const std::vector<Request> requests{req(0, 1, 100), req(1, 2, 200), req(2, 3, 900)};
  const TraceProfile profile = profile_trace(requests);
  EXPECT_EQ(profile.mean_size, 400u);
  EXPECT_EQ(profile.median_size, 200u);
  EXPECT_EQ(profile.max_size, 900u);
}

TEST(TraceProfileTest, ZipfFitRecoversGeneratorExponent) {
  for (const double alpha : {0.7, 1.0}) {
    SyntheticTraceConfig config;
    config.num_requests = 100'000;
    config.num_documents = 5'000;
    config.num_users = 16;
    config.span = hours(10);
    config.zipf_alpha = alpha;
    config.repeat_probability = 0.0;
    const Trace trace = generate_synthetic_trace(config);
    const TraceProfile profile = profile_trace(trace.requests);
    // Rank-frequency regression over the full range is biased by the
    // sampled tail (many ties at count 1), so accept a generous band; the
    // ORDER between exponents is what matters and is asserted below.
    EXPECT_NEAR(profile.zipf_alpha, alpha, 0.30) << "alpha " << alpha;
  }
}

TEST(TraceProfileTest, SteeperWorkloadFitsSteeper) {
  const auto fit = [](double alpha) {
    SyntheticTraceConfig config;
    config.num_requests = 60'000;
    config.num_documents = 4'000;
    config.num_users = 16;
    config.span = hours(6);
    config.zipf_alpha = alpha;
    config.repeat_probability = 0.0;
    return profile_trace(generate_synthetic_trace(config).requests).zipf_alpha;
  };
  EXPECT_GT(fit(1.1), fit(0.6));
}

TEST(StackDistanceTest, HandComputedDistances) {
  // Trace: A B A C B A
  //   A@2: distinct since A@0 = {B} + itself -> 2
  //   B@4: distinct since B@1 = {A, C} + itself -> 3
  //   A@5: distinct since A@2 = {C, B} + itself -> 3
  const std::vector<Request> requests{req(0, 'A'), req(1, 'B'), req(2, 'A'),
                                      req(3, 'C'), req(4, 'B'), req(5, 'A')};
  const StackDistanceHistogram histogram = compute_stack_distances(requests);
  EXPECT_EQ(histogram.cold, 3u);
  ASSERT_GE(histogram.distances.size(), 4u);
  EXPECT_EQ(histogram.distances[1], 0u);
  EXPECT_EQ(histogram.distances[2], 1u);
  EXPECT_EQ(histogram.distances[3], 2u);
}

TEST(StackDistanceTest, ImmediateRepeatIsDistanceOne) {
  const std::vector<Request> requests{req(0, 1), req(1, 1), req(2, 1)};
  const StackDistanceHistogram histogram = compute_stack_distances(requests);
  EXPECT_EQ(histogram.cold, 1u);
  EXPECT_EQ(histogram.distances[1], 2u);
  EXPECT_DOUBLE_EQ(histogram.hit_rate_at(1), 2.0 / 3.0);
}

TEST(StackDistanceTest, HitRateMonotoneInCapacity) {
  SyntheticTraceConfig config;
  config.num_requests = 20'000;
  config.num_documents = 1'500;
  config.num_users = 16;
  config.span = hours(4);
  const Trace trace = generate_synthetic_trace(config);
  const StackDistanceHistogram histogram = compute_stack_distances(trace.requests);
  double previous = -1.0;
  for (const std::uint64_t capacity : {1u, 10u, 100u, 500u, 1500u}) {
    const double rate = histogram.hit_rate_at(capacity);
    EXPECT_GE(rate, previous);
    previous = rate;
  }
  // Infinite capacity hits everything except cold misses.
  EXPECT_NEAR(histogram.hit_rate_at(1u << 30),
              1.0 - static_cast<double>(histogram.cold) /
                        static_cast<double>(histogram.total),
              1e-12);
}

// The headline cross-validation: Mattson's curve must predict the SIMULATED
// single-cache LRU hit rate exactly (unit-size documents make byte capacity
// equal document capacity).
TEST(StackDistanceTest, MattsonMatchesSimulatedLruExactly) {
  SyntheticTraceConfig workload;
  workload.num_requests = 30'000;
  workload.num_documents = 2'000;
  workload.num_users = 16;
  workload.span = hours(6);
  workload.min_size = 1024;
  workload.max_size = 1024;  // force uniform 1 KiB bodies
  const Trace trace = generate_synthetic_trace(workload);
  const StackDistanceHistogram histogram = compute_stack_distances(trace.requests);

  for (const std::uint64_t capacity_docs : {50u, 300u, 1000u}) {
    GroupConfig config;
    config.num_proxies = 1;
    config.aggregate_capacity = capacity_docs * 1024;
    config.placement = PlacementKind::kAdHoc;
    const SimulationResult sim = run_simulation(trace, config);
    EXPECT_DOUBLE_EQ(sim.metrics.hit_rate(), histogram.hit_rate_at(capacity_docs))
        << "capacity " << capacity_docs;
  }
}

}  // namespace
}  // namespace eacache
