#include "trace/trace.h"

#include <gtest/gtest.h>

namespace eacache {
namespace {

Request req(std::int64_t t_s, UserId user, DocumentId doc, Bytes size) {
  return Request{kSimEpoch + sec(t_s), user, doc, size};
}

TEST(TraceStatsTest, EmptyTrace) {
  const TraceStats stats = compute_stats({});
  EXPECT_EQ(stats.total_requests, 0u);
  EXPECT_EQ(stats.unique_documents, 0u);
  EXPECT_EQ(stats.unique_users, 0u);
  EXPECT_EQ(stats.total_bytes, 0u);
}

TEST(TraceStatsTest, CountsUniquesAndBytes) {
  const std::vector<Request> requests{
      req(0, 1, 100, 4096),
      req(1, 1, 100, 4096),
      req(2, 2, 200, 1000),
      req(3, 3, 100, 4096),
  };
  const TraceStats stats = compute_stats(requests);
  EXPECT_EQ(stats.total_requests, 4u);
  EXPECT_EQ(stats.unique_documents, 2u);
  EXPECT_EQ(stats.unique_users, 3u);
  EXPECT_EQ(stats.total_bytes, 4096u * 3 + 1000u);
  EXPECT_EQ(stats.unique_bytes, 4096u + 1000u);
  EXPECT_EQ(stats.first_request, kSimEpoch);
  EXPECT_EQ(stats.last_request, kSimEpoch + sec(3));
  EXPECT_EQ(stats.span(), sec(3));
}

TEST(TraceOrderTest, DetectsDisorder) {
  std::vector<Request> ordered{req(0, 1, 1, 1), req(5, 1, 2, 1), req(5, 1, 3, 1)};
  EXPECT_TRUE(is_time_ordered(ordered));
  std::vector<Request> disordered{req(5, 1, 1, 1), req(0, 1, 2, 1)};
  EXPECT_FALSE(is_time_ordered(disordered));
}

TEST(TraceOrderTest, SortIsStableForTies) {
  Trace trace;
  trace.requests = {req(5, 1, 10, 1), req(0, 2, 20, 1), req(5, 3, 30, 1)};
  sort_by_time(trace);
  ASSERT_TRUE(is_time_ordered(trace.requests));
  EXPECT_EQ(trace.requests[0].document, 20u);
  // The two t=5 requests keep their relative order (10 before 30).
  EXPECT_EQ(trace.requests[1].document, 10u);
  EXPECT_EQ(trace.requests[2].document, 30u);
}

}  // namespace
}  // namespace eacache
