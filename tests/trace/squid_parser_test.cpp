#include "trace/squid_parser.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/hash.h"

namespace eacache {
namespace {

constexpr const char* kSampleLog =
    "847087401.234  95 10.0.0.17 TCP_MISS/200 4218 GET http://www.bu.edu/ - "
    "DIRECT/128.197.1.1 text/html\n"
    "847087402.100 12 10.0.0.18 TCP_HIT/200 1024 GET http://www.bu.edu/cs - "
    "NONE/- text/html\n";

TEST(SquidParserTest, ParsesWellFormedLines) {
  std::istringstream in(kSampleLog);
  const SquidParseResult result = parse_squid_log(in);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_EQ(result.lines_skipped, 0u);
  EXPECT_EQ(result.lines_filtered, 0u);

  const Request& first = result.trace.requests[0];
  EXPECT_EQ(first.at, kSimEpoch);  // normalized
  EXPECT_EQ(first.size, 4218u);
  EXPECT_EQ(first.document, fnv1a64("http://www.bu.edu/"));

  const Request& second = result.trace.requests[1];
  EXPECT_EQ(second.at, kSimEpoch + msec(866));  // 402.100 - 401.234
  EXPECT_NE(second.user, first.user);
}

TEST(SquidParserTest, FiltersNonCacheableTraffic) {
  std::istringstream in(
      "847087401.0 5 10.0.0.1 TCP_MISS/200 100 POST http://a/form - DIRECT/1.1.1.1 -\n"
      "847087402.0 5 10.0.0.1 TCP_MISS/404 100 GET http://a/missing - DIRECT/1.1.1.1 -\n"
      "847087403.0 5 10.0.0.1 TCP_TUNNEL/200 0 CONNECT ssl.example.com:443 - DIRECT/2.2.2.2 -\n"
      "847087404.0 5 10.0.0.1 TCP_MISS/200 100 GET http://a/ok - DIRECT/1.1.1.1 -\n");
  const SquidParseResult result = parse_squid_log(in);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.lines_filtered, 3u);
  EXPECT_EQ(result.trace.requests[0].document, fnv1a64("http://a/ok"));
}

TEST(SquidParserTest, FilteringCanBeDisabled) {
  std::istringstream in(
      "847087401.0 5 10.0.0.1 TCP_MISS/200 100 POST http://a/form - DIRECT/1.1.1.1 -\n");
  SquidParseOptions options;
  options.only_cacheable = false;
  const SquidParseResult result = parse_squid_log(in, options);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.lines_filtered, 0u);
}

TEST(SquidParserTest, ZeroBytesCoerced) {
  std::istringstream in(
      "847087401.0 5 10.0.0.1 TCP_MISS/304 0 GET http://a/x - DIRECT/1.1.1.1 -\n");
  const SquidParseResult result = parse_squid_log(in);
  ASSERT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace.requests[0].size, 4 * kKiB);
  EXPECT_EQ(result.zero_sizes_coerced, 1u);
}

TEST(SquidParserTest, SkipsCommentsAndGarbage) {
  std::istringstream in(
      "# squid log\n"
      "\n"
      "garbage line without enough fields\n"
      "NaN 5 host TCP_MISS/200 100 GET http://x - D/- -\n"        // bad timestamp
      "847087401.0 5 host TCP_MISS 100 GET http://x - D/- -\n"    // no /status
      "847087401.0 5 host TCP_MISS/abc 100 GET http://x - D/- -\n"  // bad status
      "847087401.0 5 host TCP_MISS/200 -5 GET http://x - D/- -\n"   // negative bytes
      "847087401.0 5 host TCP_MISS/200 100 GET http://ok - D/- -\n");
  const SquidParseResult result = parse_squid_log(in);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.lines_skipped, 7u);
}

TEST(SquidParserTest, SortsOutOfOrderAndKeepsRawTimesWhenAsked) {
  std::istringstream in(
      "847087402.0 5 b TCP_MISS/200 10 GET http://late - D/- -\n"
      "847087401.0 5 a TCP_MISS/200 10 GET http://early - D/- -\n");
  SquidParseOptions options;
  options.normalize_time = false;
  const SquidParseResult result = parse_squid_log(in, options);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_TRUE(is_time_ordered(result.trace.requests));
  EXPECT_EQ(result.trace.requests[0].document, fnv1a64("http://early"));
  EXPECT_EQ(result.trace.requests[0].at, kSimEpoch + msec(847087401000));
}

TEST(SquidParserTest, MissingFileThrows) {
  EXPECT_THROW((void)parse_squid_log_file("/nonexistent/access.log"), std::runtime_error);
}

}  // namespace
}  // namespace eacache
