// The TraceSource contract (trace/trace_source.h), held against every
// implementation in the repo:
//
//   1. exactly-once  — the stream delivers each request through exactly one
//      successful next(); after the end it keeps returning false and leaves
//      `out` untouched.
//   2. monotone time — timestamps never regress across next() calls.
//   3. bounded state — streaming memory is a function of the workload's
//      universe, never of how many requests were pulled. Pinned with a
//      binary-wide allocation-counting operator new/delete (compiled out
//      under ASan/TSan, whose runtimes own the allocator there — the
//      sanitizer pipelines filter these tests by name as well).
//
// reset() must replay the identical sequence — every source here is a pure
// function of its construction inputs (WorkloadSource of its spec, the log
// sources of their seekable streams).
#include "trace/trace_source.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <vector>

#include "trace/bu_parser.h"
#include "trace/scenarios.h"
#include "trace/squid_parser.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

// ---- Allocation-counting fixture ------------------------------------------
// Global live/peak byte counters fed by replacement operator new/delete. A
// 16-byte header in front of every block records its size (16 keeps
// malloc's max_align_t alignment); over-aligned allocations go through the
// unreplaced aligned operators, which pair with the matching aligned
// deletes, so the plain pair below never sees them.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EACACHE_ALLOC_TRACKING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EACACHE_ALLOC_TRACKING 0
#else
#define EACACHE_ALLOC_TRACKING 1
#endif
#else
#define EACACHE_ALLOC_TRACKING 1
#endif

namespace {

std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_bytes{0};

#if EACACHE_ALLOC_TRACKING
constexpr std::size_t kAllocHeader = 16;

void* tracked_alloc(std::size_t size) {
  void* raw = std::malloc(size + kAllocHeader);
  if (raw == nullptr) throw std::bad_alloc{};
  *static_cast<std::size_t*>(raw) = size;
  const std::int64_t live =
      g_live_bytes.fetch_add(static_cast<std::int64_t>(size), std::memory_order_relaxed) +
      static_cast<std::int64_t>(size);
  std::int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  return static_cast<char*>(raw) + kAllocHeader;
}

void tracked_free(void* pointer) noexcept {
  if (pointer == nullptr) return;
  void* raw = static_cast<char*>(pointer) - kAllocHeader;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(*static_cast<std::size_t*>(raw)),
                         std::memory_order_relaxed);
  std::free(raw);
}
#endif  // EACACHE_ALLOC_TRACKING

}  // namespace

#if EACACHE_ALLOC_TRACKING
void* operator new(std::size_t size) { return tracked_alloc(size); }
void* operator new[](std::size_t size) { return tracked_alloc(size); }
void operator delete(void* pointer) noexcept { tracked_free(pointer); }
void operator delete[](void* pointer) noexcept { tracked_free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept { tracked_free(pointer); }
void operator delete[](void* pointer, std::size_t) noexcept { tracked_free(pointer); }
#endif  // EACACHE_ALLOC_TRACKING

namespace eacache {
namespace {

bool same_request(const Request& a, const Request& b) {
  return a.at == b.at && a.user == b.user && a.document == b.document && a.size == b.size;
}

/// Drain `source` and assert all three contract clauses plus reset replay.
/// `first` receives the initial drain so callers can make source-specific
/// assertions (out-parameter because ASSERT_* needs a void function).
void expect_contract(TraceSource& source, std::vector<Request>& first) {
  first.clear();
  Request request;
  while (source.next(request)) first.push_back(request);

  // Exhausted means exhausted, and `out` is untouched on false.
  Request sentinel;
  sentinel.at = kSimEpoch + hours(12345);
  sentinel.user = 0xabcdef;
  sentinel.document = 0xfeedbeef;
  sentinel.size = 4242;
  Request untouched = sentinel;
  EXPECT_FALSE(source.next(untouched));
  EXPECT_FALSE(source.next(untouched));
  EXPECT_TRUE(same_request(untouched, sentinel));

  for (std::size_t i = 1; i < first.size(); ++i) {
    ASSERT_GE(first[i].at.time_since_epoch().count(), first[i - 1].at.time_since_epoch().count())
        << "timestamp regressed at position " << i;
  }

  // reset() replays the identical sequence, element for element.
  source.reset();
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(source.next(request)) << "replay ended early at position " << i;
    ASSERT_TRUE(same_request(request, first[i])) << "replay diverged at position " << i;
  }
  EXPECT_FALSE(source.next(request));
}

TEST(TraceSourceTest, VectorSourceHonoursContract) {
  SyntheticTraceConfig config;
  config.num_requests = 500;
  config.num_documents = 64;
  config.num_users = 8;
  config.span = minutes(10);
  const Trace trace = generate_synthetic_trace(config);

  VectorTraceSource source(trace);
  std::vector<Request> seen;
  expect_contract(source, seen);
  ASSERT_EQ(seen.size(), trace.requests.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(same_request(seen[i], trace.requests[i]));
  }
}

TEST(TraceSourceTest, EveryScenarioPackHonoursContract) {
  for (const ScenarioPack& pack : workload_scenarios()) {
    WorkloadSource source(scaled_spec(pack, 4000));
    std::vector<Request> seen;
    expect_contract(source, seen);
    EXPECT_EQ(seen.size(), 4000u) << pack.name;
    EXPECT_EQ(source.emitted(), 4000u) << pack.name;
  }
}

TEST(TraceSourceTest, MaterializeMatchesStreamingPulls) {
  const ScenarioPack* pack = find_scenario("segmented-media");
  ASSERT_NE(pack, nullptr);
  const WorkloadSpec spec = scaled_spec(*pack, 3000);

  WorkloadSource pulled(spec);
  std::vector<Request> by_hand;
  Request request;
  while (pulled.next(request)) by_hand.push_back(request);

  WorkloadSource fresh(spec);
  const Trace collected = materialize(fresh);
  ASSERT_EQ(collected.requests.size(), by_hand.size());
  for (std::size_t i = 0; i < by_hand.size(); ++i) {
    EXPECT_TRUE(same_request(collected.requests[i], by_hand[i])) << "position " << i;
  }
}

TEST(TraceSourceTest, MaterializeHonoursLimit) {
  const ScenarioPack* pack = find_scenario("stationary");
  ASSERT_NE(pack, nullptr);
  WorkloadSource source(scaled_spec(*pack, 5000));
  const Trace prefix = materialize(source, 100);
  EXPECT_EQ(prefix.requests.size(), 100u);
  // The source keeps streaming after the bounded collection.
  Request request;
  EXPECT_TRUE(source.next(request));
}

TEST(TraceSourceTest, MaterializeThrowsOnTimestampRegression) {
  class RegressingSource final : public TraceSource {
   public:
    bool next(Request& out) override {
      if (index_ >= 2) return false;
      out.at = kSimEpoch + (index_ == 0 ? sec(10) : sec(5));
      out.document = index_;
      out.size = 1;
      ++index_;
      return true;
    }
    void reset() override { index_ = 0; }

   private:
    std::uint64_t index_ = 0;
  };

  RegressingSource source;
  EXPECT_THROW((void)materialize(source), std::invalid_argument);
}

TEST(TraceSourceTest, BuLogSourceMatchesBatchParser) {
  const std::string log =
      "# comment line\n"
      "790358517.00 bugs_17 http://cs.bu.edu/ 2048\n"
      "790358518.50 bugs_17 http://cs.bu.edu/faculty 0 120\n"
      "not a parseable line\n"
      "790358520.25 daffy_3 http://www.bu.edu/ 512\n";

  std::istringstream batch_in(log);
  const BuParseResult batch = parse_bu_log(batch_in);

  std::istringstream stream_in(log);
  BuLogSource source(stream_in);
  std::vector<Request> streamed;
  expect_contract(source, streamed);

  ASSERT_EQ(streamed.size(), batch.trace.requests.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(same_request(streamed[i], batch.trace.requests[i])) << "position " << i;
  }
  EXPECT_EQ(source.lines_read(), batch.lines_read);
  EXPECT_EQ(source.lines_skipped(), batch.lines_skipped);
  EXPECT_EQ(source.zero_sizes_coerced(), batch.zero_sizes_coerced);
  EXPECT_EQ(source.clamped_timestamps(), 0u);
}

TEST(TraceSourceTest, BuLogSourceClampsRegressions) {
  // The batch parser sorts; the stream cannot, so the documented divergence
  // is a forward clamp (counted) that keeps the monotone clause intact.
  const std::string log =
      "790358520.00 a http://x/1 100\n"
      "790358515.00 a http://x/2 100\n"
      "790358521.00 a http://x/3 100\n";
  std::istringstream in(log);
  BuLogSource source(in);
  std::vector<Request> streamed;
  expect_contract(source, streamed);
  ASSERT_EQ(streamed.size(), 3u);
  EXPECT_EQ(streamed[1].at, streamed[0].at);  // clamped forward, not reordered
  EXPECT_EQ(source.clamped_timestamps(), 1u);
}

TEST(TraceSourceTest, SquidLogSourceMatchesBatchParser) {
  const std::string log =
      "847087401.234  95 10.0.0.17 TCP_MISS/200 4218 GET http://www.bu.edu/ - "
      "DIRECT/128.197.1.1 text/html\n"
      "847087402.000 5 10.0.0.1 TCP_MISS/200 100 POST http://a/form - DIRECT/1.1.1.1 -\n"
      "847087402.100 12 10.0.0.18 TCP_HIT/200 1024 GET http://www.bu.edu/cs - "
      "NONE/- text/html\n";

  std::istringstream batch_in(log);
  const SquidParseResult batch = parse_squid_log(batch_in);

  std::istringstream stream_in(log);
  SquidLogSource source(stream_in);
  std::vector<Request> streamed;
  expect_contract(source, streamed);

  ASSERT_EQ(streamed.size(), batch.trace.requests.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(same_request(streamed[i], batch.trace.requests[i])) << "position " << i;
  }
  EXPECT_EQ(source.lines_filtered(), batch.lines_filtered);
  EXPECT_EQ(source.clamped_timestamps(), 0u);
}

TEST(TraceSourceTest, StreamingMemoryBoundedByUniverse) {
#if !EACACHE_ALLOC_TRACKING
  GTEST_SKIP() << "allocation tracking is compiled out under sanitizers";
#else
  // 2M requests through the segmented-media pack (chunk trains keep the
  // pending heap live the whole run). After a short warmup that lets every
  // universe-sized structure (rank permutation, session table, heap
  // capacity) reach steady state, pulling the remaining ~2M requests must
  // not move the peak by more than scratch-allocation noise. A materialized
  // run of the same stream would need ~60 MiB.
  const ScenarioPack* pack = find_scenario("segmented-media");
  ASSERT_NE(pack, nullptr);
  constexpr std::uint64_t kRequests = 2'000'000;
  WorkloadSource source(scaled_spec(*pack, kRequests));

  Request request;
  for (int i = 0; i < 10'000; ++i) ASSERT_TRUE(source.next(request));
  const std::int64_t peak_after_warmup = g_peak_bytes.load(std::memory_order_relaxed);

  while (source.next(request)) {
  }
  EXPECT_EQ(source.emitted(), kRequests);

  const std::int64_t growth =
      g_peak_bytes.load(std::memory_order_relaxed) - peak_after_warmup;
  EXPECT_LT(growth, std::int64_t{1} << 20)
      << "streaming 2M requests grew peak heap by " << growth
      << " bytes — state is scaling with the request count";
#endif
}

}  // namespace
}  // namespace eacache
