#include "storage/size_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

constexpr TimePoint kT0 = kSimEpoch;

TEST(SizePolicyTest, VictimIsLargest) {
  SizePolicy policy;
  policy.on_admit(1, 100, kT0);
  policy.on_admit(2, 5000, kT0);
  policy.on_admit(3, 300, kT0);
  EXPECT_EQ(policy.victim(), 2u);
}

TEST(SizePolicyTest, TieBreaksStalest) {
  SizePolicy policy;
  policy.on_admit(1, 100, kT0);
  policy.on_admit(2, 100, kT0);
  EXPECT_EQ(policy.victim(), 1u);
  policy.on_hit(1, kT0);  // refresh 1; now 2 is stalest among equals
  EXPECT_EQ(policy.victim(), 2u);
}

TEST(SizePolicyTest, SilentHitKeepsStaleness) {
  SizePolicy policy;
  policy.on_admit(1, 100, kT0);
  policy.on_admit(2, 100, kT0);
  policy.on_silent_hit(1, kT0);
  EXPECT_EQ(policy.victim(), 1u);
}

TEST(SizePolicyTest, RemoveUpdatesOrder) {
  SizePolicy policy;
  policy.on_admit(1, 10, kT0);
  policy.on_admit(2, 20, kT0);
  policy.on_admit(3, 30, kT0);
  policy.on_remove(3);
  EXPECT_EQ(policy.victim(), 2u);
  EXPECT_EQ(policy.size(), 2u);
}

TEST(SizePolicyTest, ContractViolationsThrow) {
  SizePolicy policy;
  EXPECT_THROW((void)policy.victim(), std::logic_error);
  EXPECT_THROW(policy.on_hit(1, kT0), std::logic_error);
  EXPECT_THROW(policy.on_remove(1), std::logic_error);
  policy.on_admit(1, 1, kT0);
  EXPECT_THROW(policy.on_admit(1, 1, kT0), std::logic_error);
}

TEST(SizePolicyTest, Name) { EXPECT_EQ(SizePolicy{}.name(), "size"); }

}  // namespace
}  // namespace eacache
