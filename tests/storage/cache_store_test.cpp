#include "storage/cache_store.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "storage/lru_policy.h"

namespace eacache {
namespace {

constexpr TimePoint at(std::int64_t s) { return kSimEpoch + sec(s); }

CacheStore make_lru_store(Bytes capacity) {
  return CacheStore(capacity, std::make_unique<LruPolicy>());
}

class RecordingObserver final : public EvictionObserver {
 public:
  void on_eviction(const EvictionRecord& record) override { records.push_back(record); }
  std::vector<EvictionRecord> records;
};

TEST(CacheStoreTest, NullPolicyThrows) {
  EXPECT_THROW(CacheStore(100, nullptr), std::invalid_argument);
}

TEST(CacheStoreTest, AdmitAndLookup) {
  auto store = make_lru_store(1000);
  EXPECT_TRUE(store.admit({1, 400}, at(0)).has_value());
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.resident_bytes(), 400u);
  EXPECT_EQ(store.resident_count(), 1u);
  const auto entry = store.peek(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->size, 400u);
  EXPECT_EQ(entry->hit_count, 1u);  // paper convention
  EXPECT_EQ(entry->entry_time, at(0));
  EXPECT_EQ(entry->last_hit_time, at(0));
}

TEST(CacheStoreTest, PeekHasNoSideEffects) {
  auto store = make_lru_store(1000);
  store.admit({1, 100}, at(0));
  (void)store.peek(1);
  (void)store.contains(1);
  const auto entry = store.peek(1);
  EXPECT_EQ(entry->hit_count, 1u);
  EXPECT_EQ(entry->last_hit_time, at(0));
  EXPECT_EQ(store.stats().lookups, 0u);
}

TEST(CacheStoreTest, TouchPromotesAndStamps) {
  auto store = make_lru_store(1000);
  store.admit({1, 100}, at(0));
  const auto entry = store.touch(1, at(5));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->hit_count, 2u);
  EXPECT_EQ(entry->last_hit_time, at(5));
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(CacheStoreTest, TouchMissReturnsNullopt) {
  auto store = make_lru_store(1000);
  EXPECT_FALSE(store.touch(42, at(0)).has_value());
  EXPECT_EQ(store.stats().lookups, 1u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(CacheStoreTest, SilentTouchLeavesMetadataAlone) {
  auto store = make_lru_store(1000);
  store.admit({1, 100}, at(0));
  const auto entry = store.touch_without_promote(1, at(5));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->hit_count, 1u);
  EXPECT_EQ(entry->last_hit_time, at(0));
  EXPECT_EQ(store.stats().silent_hits, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(CacheStoreTest, CapacityEvictionInLruOrder) {
  auto store = make_lru_store(300);
  store.admit({1, 100}, at(0));
  store.admit({2, 100}, at(1));
  store.admit({3, 100}, at(2));
  const auto evicted = store.admit({4, 150}, at(3));
  ASSERT_TRUE(evicted.has_value());
  // Needs 150 free: evicts 1 (100 freed, still 50 short), then 2.
  ASSERT_EQ(evicted->size(), 2u);
  EXPECT_EQ((*evicted)[0].id, 1u);
  EXPECT_EQ((*evicted)[1].id, 2u);
  EXPECT_LE(store.resident_bytes(), 300u);
  EXPECT_FALSE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_TRUE(store.contains(3));
  EXPECT_TRUE(store.contains(4));
}

TEST(CacheStoreTest, EvictionRecordFieldsAreFaithful) {
  auto store = make_lru_store(200);
  RecordingObserver observer;
  store.add_eviction_observer(&observer);
  store.admit({1, 150}, at(0));
  store.touch(1, at(4));
  store.touch(1, at(7));
  store.admit({2, 100}, at(10));  // evicts 1
  ASSERT_EQ(observer.records.size(), 1u);
  const EvictionRecord& r = observer.records[0];
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.size, 150u);
  EXPECT_EQ(r.entry_time, at(0));
  EXPECT_EQ(r.last_hit_time, at(7));
  EXPECT_EQ(r.hit_count, 3u);
  EXPECT_EQ(r.evict_time, at(10));
  EXPECT_EQ(r.cause, EvictionCause::kCapacity);
}

TEST(CacheStoreTest, OversizedDocumentRejected) {
  auto store = make_lru_store(100);
  store.admit({1, 50}, at(0));
  const auto result = store.admit({2, 101}, at(1));
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(store.contains(1));  // nothing was evicted for a lost cause
  EXPECT_EQ(store.stats().rejections, 1u);
}

TEST(CacheStoreTest, DocumentExactlyAtCapacityFits) {
  auto store = make_lru_store(100);
  const auto result = store.admit({1, 100}, at(0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(store.resident_bytes(), 100u);
}

TEST(CacheStoreTest, DuplicateAdmitThrows) {
  auto store = make_lru_store(100);
  store.admit({1, 10}, at(0));
  EXPECT_THROW(store.admit({1, 10}, at(1)), std::logic_error);
}

TEST(CacheStoreTest, ExplicitRemoveEmitsRecord) {
  auto store = make_lru_store(100);
  RecordingObserver observer;
  store.add_eviction_observer(&observer);
  store.admit({1, 10}, at(0));
  EXPECT_TRUE(store.remove(1, at(3)));
  EXPECT_FALSE(store.remove(1, at(4)));
  ASSERT_EQ(observer.records.size(), 1u);
  EXPECT_EQ(observer.records[0].cause, EvictionCause::kExplicit);
  EXPECT_EQ(store.stats().explicit_removals, 1u);
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(CacheStoreTest, MultipleObserversAllNotified) {
  auto store = make_lru_store(100);
  RecordingObserver a, b;
  store.add_eviction_observer(&a);
  store.add_eviction_observer(&b);
  store.admit({1, 100}, at(0));
  store.admit({2, 100}, at(1));
  EXPECT_EQ(a.records.size(), 1u);
  EXPECT_EQ(b.records.size(), 1u);
}

TEST(CacheStoreTest, NullObserverThrows) {
  auto store = make_lru_store(100);
  EXPECT_THROW(store.add_eviction_observer(nullptr), std::invalid_argument);
}

TEST(CacheStoreTest, StatsAccounting) {
  auto store = make_lru_store(250);
  store.admit({1, 100}, at(0));
  store.admit({2, 100}, at(1));
  store.touch(1, at(2));
  store.admit({3, 100}, at(3));  // evicts 2 (1 was just touched)
  EXPECT_FALSE(store.contains(2));
  const CacheStoreStats& s = store.stats();
  EXPECT_EQ(s.admissions, 3u);
  EXPECT_EQ(s.capacity_evictions, 1u);
  EXPECT_EQ(s.bytes_admitted, 300u);
  EXPECT_EQ(s.bytes_evicted, 100u);
}

TEST(CacheStoreTest, ResidentIdsMatchesContents) {
  auto store = make_lru_store(1000);
  store.admit({1, 10}, at(0));
  store.admit({2, 10}, at(0));
  store.admit({3, 10}, at(0));
  auto ids = store.resident_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<DocumentId>{1, 2, 3}));
}

// Regression pin for the eacheck determinism finding: resident_ids() used
// to return hash order, which escaped into the flush path (removal order
// drives eviction-observer callbacks) and result collection. The contract
// is now sorted order, stable across stdlib hash implementations.
TEST(CacheStoreTest, ResidentIdsAreSorted) {
  auto store = make_lru_store(100000);
  // Insertion order deliberately scrambled; ids chosen to collide-and-
  // spread differently under typical unordered_map bucket counts.
  for (const DocumentId id : {97u, 3u, 1024u, 7u, 511u, 2u, 65537u, 12u}) {
    store.admit({id, 10}, at(0));
  }
  const auto ids = store.resident_ids();
  ASSERT_EQ(ids.size(), 8u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(ids.front(), 2u);
  EXPECT_EQ(ids.back(), 65537u);
}

TEST(CacheStoreTest, ZeroByteDocumentIsAdmissible) {
  auto store = make_lru_store(10);
  EXPECT_TRUE(store.admit({1, 0}, at(0)).has_value());
  EXPECT_TRUE(store.contains(1));
}

}  // namespace
}  // namespace eacache
