// Property-style tests run against EVERY replacement policy through the
// common interface: random operation sequences must never violate the
// CacheStore invariants, whatever the eviction order.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "storage/cache_store.h"
#include "storage/replacement_policy.h"

namespace eacache {
namespace {

class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPropertyTest, CapacityNeverExceededUnderRandomWorkload) {
  constexpr Bytes kCapacity = 10 * kKiB;
  CacheStore store(kCapacity, make_policy(GetParam()));
  Rng rng(0xabcdef);
  TimePoint now = kSimEpoch;
  for (int i = 0; i < 20000; ++i) {
    now += msec(static_cast<std::int64_t>(rng.next_below(500)));
    const DocumentId id = rng.next_below(300);
    const auto op = rng.next_below(10);
    if (op < 6) {
      if (!store.touch(id, now).has_value()) {
        const Bytes size = 16 + rng.next_below(2 * kKiB);
        store.admit({id, size}, now);
      }
    } else if (op < 8) {
      store.touch_without_promote(id, now);
    } else if (op < 9) {
      store.remove(id, now);
    } else {
      (void)store.peek(id);
    }
    ASSERT_LE(store.resident_bytes(), kCapacity);
  }
}

TEST_P(PolicyPropertyTest, PolicySizeTracksStoreSize) {
  CacheStore store(4 * kKiB, make_policy(GetParam()));
  Rng rng(99);
  TimePoint now = kSimEpoch;
  for (int i = 0; i < 5000; ++i) {
    now += msec(1);
    const DocumentId id = rng.next_below(100);
    if (!store.contains(id)) {
      store.admit({id, 64 + rng.next_below(512)}, now);
    } else if (rng.next_bool(0.3)) {
      store.remove(id, now);
    } else {
      store.touch(id, now);
    }
    ASSERT_EQ(store.policy().size(), store.resident_count());
  }
}

TEST_P(PolicyPropertyTest, ResidentBytesMatchesSumOfEntries) {
  CacheStore store(8 * kKiB, make_policy(GetParam()));
  Rng rng(7);
  TimePoint now = kSimEpoch;
  for (int i = 0; i < 3000; ++i) {
    now += msec(10);
    const DocumentId id = rng.next_below(200);
    if (!store.contains(id)) store.admit({id, 32 + rng.next_below(1024)}, now);
    if (i % 100 == 0) {
      Bytes sum = 0;
      for (const DocumentId resident : store.resident_ids()) {
        sum += store.peek(resident)->size;
      }
      ASSERT_EQ(sum, store.resident_bytes());
    }
  }
}

TEST_P(PolicyPropertyTest, EvictionRecordsAreConsistent) {
  class Checker final : public EvictionObserver {
   public:
    void on_eviction(const EvictionRecord& r) override {
      EXPECT_GE(r.evict_time, r.last_hit_time);
      EXPECT_GE(r.last_hit_time, r.entry_time);
      EXPECT_GE(r.hit_count, 1u);
      ++count;
    }
    int count = 0;
  };
  CacheStore store(2 * kKiB, make_policy(GetParam()));
  Checker checker;
  store.add_eviction_observer(&checker);
  Rng rng(13);
  TimePoint now = kSimEpoch;
  for (int i = 0; i < 5000; ++i) {
    now += msec(static_cast<std::int64_t>(rng.next_below(100)));
    const DocumentId id = rng.next_below(500);
    if (store.contains(id)) {
      store.touch(id, now);
    } else {
      store.admit({id, 64 + rng.next_below(256)}, now);
    }
  }
  EXPECT_GT(checker.count, 0);  // the workload must actually stress capacity
}

TEST_P(PolicyPropertyTest, EveryEvictionVictimWasResident) {
  class Tracker final : public EvictionObserver {
   public:
    explicit Tracker(std::set<DocumentId>& live) : live_(live) {}
    void on_eviction(const EvictionRecord& r) override {
      EXPECT_TRUE(live_.count(r.id)) << "evicted non-resident " << r.id;
      live_.erase(r.id);
    }

   private:
    std::set<DocumentId>& live_;
  };
  std::set<DocumentId> live;
  CacheStore store(1 * kKiB, make_policy(GetParam()));
  Tracker tracker(live);
  store.add_eviction_observer(&tracker);
  Rng rng(21);
  TimePoint now = kSimEpoch;
  for (int i = 0; i < 3000; ++i) {
    now += msec(5);
    const DocumentId id = rng.next_below(400);
    if (!store.contains(id)) {
      if (store.admit({id, 32 + rng.next_below(128)}, now).has_value()) live.insert(id);
    }
    // Shadow set must exactly match the store at all times.
    if (i % 250 == 0) {
      auto ids = store.resident_ids();
      ASSERT_EQ(std::set<DocumentId>(ids.begin(), ids.end()), live);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kLfu,
                                           PolicyKind::kLfuAging,
                                           PolicyKind::kSizeBiggestFirst,
                                           PolicyKind::kGreedyDualSize),
                         [](const ::testing::TestParamInfo<PolicyKind>& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PolicyFactoryTest, RoundTripsNames) {
  for (const PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kLfu, PolicyKind::kLfuAging,
        PolicyKind::kSizeBiggestFirst, PolicyKind::kGreedyDualSize}) {
    EXPECT_EQ(policy_kind_from_string(to_string(kind)), kind);
    EXPECT_EQ(make_policy(kind)->name(), to_string(kind));
  }
}

TEST(PolicyFactoryTest, UnknownNameThrows) {
  EXPECT_THROW((void)policy_kind_from_string("fifo"), std::invalid_argument);
}

}  // namespace
}  // namespace eacache
