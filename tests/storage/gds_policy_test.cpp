#include "storage/gds_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

constexpr TimePoint kT0 = kSimEpoch;

TEST(GdsPolicyTest, UniformCostPrefersEvictingLargeDocs) {
  GdsPolicy gds;  // cost 1 => H = L + 1/size: big docs get small credit
  gds.on_admit(1, 100, kT0);
  gds.on_admit(2, 10000, kT0);
  gds.on_admit(3, 1000, kT0);
  EXPECT_EQ(gds.victim(), 2u);
}

TEST(GdsPolicyTest, HitReinflatesCredit) {
  GdsPolicy gds;
  gds.on_admit(1, 100, kT0);
  gds.on_admit(2, 100, kT0);
  const double before = gds.credit(1);
  // Evict 2 so inflation L rises, then hit 1: its credit recomputes at the
  // higher floor.
  gds.on_remove(2);
  gds.on_hit(1, kT0);
  EXPECT_GE(gds.credit(1), before);
}

TEST(GdsPolicyTest, InflationRisesOnVictimEviction) {
  GdsPolicy gds;
  gds.on_admit(1, 10, kT0);     // H = 0.1
  gds.on_admit(2, 1000, kT0);   // H = 0.001  (victim)
  EXPECT_EQ(gds.victim(), 2u);
  gds.on_remove(2);             // L rises to 0.001
  gds.on_admit(3, 1000, kT0);   // H = 0.001 + 0.001 = 0.002
  EXPECT_GT(gds.credit(3), 0.001);
}

TEST(GdsPolicyTest, SilentHitKeepsCredit) {
  GdsPolicy gds;
  gds.on_admit(1, 100, kT0);
  const double before = gds.credit(1);
  gds.on_silent_hit(1, kT0);
  EXPECT_DOUBLE_EQ(gds.credit(1), before);
}

TEST(GdsPolicyTest, CustomCostFunction) {
  // cost = size makes every credit L + 1: ties broken by admission order
  // (LRU-like behaviour, as Cao & Irani note).
  GdsPolicy gds([](DocumentId, Bytes size) { return static_cast<double>(size); });
  gds.on_admit(1, 100, kT0);
  gds.on_admit(2, 99999, kT0);
  EXPECT_EQ(gds.victim(), 1u);
}

TEST(GdsPolicyTest, NullCostThrows) {
  EXPECT_THROW(GdsPolicy(GdsPolicy::CostFn{}), std::invalid_argument);
}

TEST(GdsPolicyTest, ContractViolationsThrow) {
  GdsPolicy gds;
  EXPECT_THROW((void)gds.victim(), std::logic_error);
  EXPECT_THROW(gds.on_hit(1, kT0), std::logic_error);
  EXPECT_THROW(gds.on_remove(1), std::logic_error);
  EXPECT_THROW((void)gds.credit(1), std::logic_error);
  gds.on_admit(1, 1, kT0);
  EXPECT_THROW(gds.on_admit(1, 1, kT0), std::logic_error);
}

TEST(GdsPolicyTest, ZeroSizeDocumentDoesNotDivideByZero) {
  GdsPolicy gds;
  gds.on_admit(1, 0, kT0);
  EXPECT_EQ(gds.victim(), 1u);
  EXPECT_GT(gds.credit(1), 0.0);
}

TEST(GdsPolicyTest, Name) { EXPECT_EQ(GdsPolicy{}.name(), "gds"); }

}  // namespace
}  // namespace eacache
