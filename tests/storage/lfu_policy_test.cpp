#include "storage/lfu_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

constexpr TimePoint kT0 = kSimEpoch;

TEST(LfuPolicyTest, AdmissionStartsAtFrequencyOne) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  EXPECT_EQ(lfu.frequency(1), 1u);
}

TEST(LfuPolicyTest, HitIncrementsFrequency) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  lfu.on_hit(1, kT0);
  lfu.on_hit(1, kT0);
  EXPECT_EQ(lfu.frequency(1), 3u);
}

TEST(LfuPolicyTest, SilentHitDoesNotIncrement) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  lfu.on_silent_hit(1, kT0);
  EXPECT_EQ(lfu.frequency(1), 1u);
}

TEST(LfuPolicyTest, VictimIsLowestFrequency) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  lfu.on_admit(2, 10, kT0);
  lfu.on_hit(1, kT0);
  EXPECT_EQ(lfu.victim(), 2u);
}

TEST(LfuPolicyTest, TieBreaksLeastRecentlyUsed) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  lfu.on_admit(2, 10, kT0);
  lfu.on_admit(3, 10, kT0);
  // All at frequency 1; 1 was admitted first -> victim.
  EXPECT_EQ(lfu.victim(), 1u);
  // Promote 1 and 2 to freq 2; victim becomes 3 (only freq-1 entry).
  lfu.on_hit(1, kT0);
  lfu.on_hit(2, kT0);
  EXPECT_EQ(lfu.victim(), 3u);
  lfu.on_remove(3);
  // Among {1, 2} at freq 2, 1 was promoted before 2 -> victim is 1.
  EXPECT_EQ(lfu.victim(), 1u);
}

TEST(LfuPolicyTest, RemoveDetaches) {
  LfuPolicy lfu;
  lfu.on_admit(1, 10, kT0);
  lfu.on_admit(2, 10, kT0);
  lfu.on_remove(1);
  EXPECT_EQ(lfu.size(), 1u);
  EXPECT_EQ(lfu.victim(), 2u);
  EXPECT_THROW((void)lfu.frequency(1), std::logic_error);
}

TEST(LfuPolicyTest, ContractViolationsThrow) {
  LfuPolicy lfu;
  EXPECT_THROW((void)lfu.victim(), std::logic_error);
  EXPECT_THROW(lfu.on_hit(9, kT0), std::logic_error);
  EXPECT_THROW(lfu.on_remove(9), std::logic_error);
  lfu.on_admit(9, 1, kT0);
  EXPECT_THROW(lfu.on_admit(9, 1, kT0), std::logic_error);
}

TEST(LfuPolicyTest, NameReflectsAging) {
  EXPECT_EQ(LfuPolicy{}.name(), "lfu");
  EXPECT_EQ(LfuPolicy{100}.name(), "lfu-aging");
}

TEST(LfuPolicyAgingTest, CountersHalveAfterInterval) {
  LfuPolicy lfu(4);  // age after every 4 promotions
  lfu.on_admit(1, 10, kT0);
  lfu.on_admit(2, 10, kT0);
  for (int i = 0; i < 4; ++i) lfu.on_hit(1, kT0);
  // 1 reached frequency 5, then aging halves: 1 -> 2, 2 -> 1.
  EXPECT_EQ(lfu.frequency(1), 2u);
  EXPECT_EQ(lfu.frequency(2), 1u);
  EXPECT_EQ(lfu.victim(), 2u);
}

TEST(LfuPolicyAgingTest, AgingFloorsAtOne) {
  LfuPolicy lfu(2);
  lfu.on_admit(1, 10, kT0);
  lfu.on_admit(2, 10, kT0);
  lfu.on_hit(1, kT0);
  lfu.on_hit(1, kT0);  // triggers aging: 1: 3->1, 2: 1->1
  EXPECT_EQ(lfu.frequency(1), 1u);
  EXPECT_EQ(lfu.frequency(2), 1u);
}

TEST(LfuPolicyAgingTest, AgingPreservesResidentSet) {
  LfuPolicy lfu(3);
  for (DocumentId id = 1; id <= 10; ++id) lfu.on_admit(id, 1, kT0);
  for (int round = 0; round < 5; ++round) {
    lfu.on_hit(5, kT0);
    lfu.on_hit(6, kT0);
    lfu.on_hit(7, kT0);
  }
  EXPECT_EQ(lfu.size(), 10u);
  for (DocumentId id = 1; id <= 10; ++id) EXPECT_GE(lfu.frequency(id), 1u);
}

TEST(LfuPolicyTest, VictimStableUnderInterleavedOps) {
  LfuPolicy lfu;
  lfu.on_admit(1, 1, kT0);
  lfu.on_admit(2, 1, kT0);
  lfu.on_admit(3, 1, kT0);
  lfu.on_hit(1, kT0);
  lfu.on_hit(1, kT0);
  lfu.on_hit(2, kT0);
  // freqs: 1->3, 2->2, 3->1
  EXPECT_EQ(lfu.victim(), 3u);
  lfu.on_hit(3, kT0);
  lfu.on_hit(3, kT0);
  lfu.on_hit(3, kT0);
  // freqs: 1->3, 2->2, 3->4
  EXPECT_EQ(lfu.victim(), 2u);
}

}  // namespace
}  // namespace eacache
