#include "storage/lru_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacache {
namespace {

constexpr TimePoint kT0 = kSimEpoch;

TEST(LruPolicyTest, VictimIsLeastRecentlyAdmitted) {
  LruPolicy lru;
  lru.on_admit(1, 100, kT0);
  lru.on_admit(2, 100, kT0);
  lru.on_admit(3, 100, kT0);
  EXPECT_EQ(lru.victim(), 1u);
}

TEST(LruPolicyTest, HitPromotesToHead) {
  LruPolicy lru;
  lru.on_admit(1, 100, kT0);
  lru.on_admit(2, 100, kT0);
  lru.on_hit(1, kT0);
  EXPECT_EQ(lru.victim(), 2u);
}

TEST(LruPolicyTest, SilentHitDoesNotPromote) {
  LruPolicy lru;
  lru.on_admit(1, 100, kT0);
  lru.on_admit(2, 100, kT0);
  lru.on_silent_hit(1, kT0);
  EXPECT_EQ(lru.victim(), 1u);  // still the victim: no fresh lease of life
}

TEST(LruPolicyTest, RemoveVictimExposesNext) {
  LruPolicy lru;
  lru.on_admit(1, 100, kT0);
  lru.on_admit(2, 100, kT0);
  lru.on_admit(3, 100, kT0);
  lru.on_remove(1);
  EXPECT_EQ(lru.victim(), 2u);
  lru.on_remove(2);
  EXPECT_EQ(lru.victim(), 3u);
}

TEST(LruPolicyTest, RemoveMiddleKeepsOrder) {
  LruPolicy lru;
  lru.on_admit(1, 100, kT0);
  lru.on_admit(2, 100, kT0);
  lru.on_admit(3, 100, kT0);
  lru.on_remove(2);
  EXPECT_EQ(lru.victim(), 1u);
  EXPECT_EQ(lru.size(), 2u);
}

TEST(LruPolicyTest, SizeTracksResidents) {
  LruPolicy lru;
  EXPECT_EQ(lru.size(), 0u);
  lru.on_admit(1, 1, kT0);
  lru.on_admit(2, 1, kT0);
  EXPECT_EQ(lru.size(), 2u);
  lru.on_remove(1);
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruPolicyTest, ContractViolationsThrow) {
  LruPolicy lru;
  EXPECT_THROW((void)lru.victim(), std::logic_error);
  EXPECT_THROW(lru.on_hit(1, kT0), std::logic_error);
  EXPECT_THROW(lru.on_silent_hit(1, kT0), std::logic_error);
  EXPECT_THROW(lru.on_remove(1), std::logic_error);
  lru.on_admit(1, 1, kT0);
  EXPECT_THROW(lru.on_admit(1, 1, kT0), std::logic_error);
}

TEST(LruPolicyTest, Name) {
  LruPolicy lru;
  EXPECT_EQ(lru.name(), "lru");
}

TEST(LruPolicyTest, ComplexSequence) {
  LruPolicy lru;
  for (DocumentId id = 1; id <= 5; ++id) lru.on_admit(id, 1, kT0);
  // Order (MRU..LRU): 5 4 3 2 1
  lru.on_hit(2, kT0);  // 2 5 4 3 1
  lru.on_hit(1, kT0);  // 1 2 5 4 3
  EXPECT_EQ(lru.victim(), 3u);
  lru.on_remove(3);  // 1 2 5 4
  EXPECT_EQ(lru.victim(), 4u);
  lru.on_hit(4, kT0);  // 4 1 2 5
  EXPECT_EQ(lru.victim(), 5u);
}

}  // namespace
}  // namespace eacache
