// Experiment runner: the library's experiment harness as a config-driven
// command-line tool.
//
//   $ ./experiment_runner                          # built-in demo configuration
//   $ ./experiment_runner my_sweep.conf            # custom sweep
//   $ ./experiment_runner my_sweep.conf out.csv
//   $ ./experiment_runner --jobs 8 my_sweep.conf   # 8 sweep workers
//
// The capacity x scheme cross product is fanned out through SweepRunner
// (sim/sweep.h); results are deterministic regardless of the worker count.
//
// Config keys (key = value; all optional):
//   # workload — synthetic (default) or a BU-style log file
//   trace_file   = path/to/log          # if set, everything below is ignored
//   requests     = 100000
//   documents    = 8000
//   users        = 64
//   span         = 24h
//   seed         = 7
//   zipf         = 0.9
//   repeat       = 0.4                  # temporal-locality probability
//
//   # group
//   proxies      = 4
//   replacement  = lru|lfu|lfu-aging|size|gds
//   topology     = distributed|hierarchical
//   discovery    = icp|digest
//
//   # sweep
//   capacities   = 100KiB,1MiB,10MiB,100MiB
//   schemes      = ad-hoc,ea,ea-hysteresis
//   jobs         = 4                    # workers (--jobs and EACACHE_JOBS win)
//
// An output file ending in ".json" receives a JSON array of per-run rows
// (label, wall-clock, config summary, full result — see sim/result_json.h);
// any other name receives the CSV table.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/config.h"
#include "metrics/json.h"
#include "metrics/table.h"
#include "sim/result_json.h"
#include "sim/sweep.h"
#include "trace/bu_parser.h"
#include "trace/synthetic.h"

using namespace eacache;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto begin = item.find_first_not_of(" \t");
    const auto end = item.find_last_not_of(" \t");
    if (begin != std::string::npos) items.push_back(item.substr(begin, end - begin + 1));
  }
  return items;
}

Trace load_trace(const Config& cfg) {
  if (const auto path = cfg.get("trace_file")) {
    const BuParseResult parsed = parse_bu_log_file(*path);
    std::printf("loaded %s: %zu requests (%llu lines skipped)\n", path->c_str(),
                parsed.trace.size(), static_cast<unsigned long long>(parsed.lines_skipped));
    return parsed.trace;
  }
  SyntheticTraceConfig workload;
  workload.num_requests = static_cast<std::uint64_t>(cfg.get_int("requests", 100'000));
  workload.num_documents = static_cast<std::uint64_t>(cfg.get_int("documents", 8'000));
  workload.num_users = static_cast<UserId>(cfg.get_int("users", 64));
  workload.span = cfg.get_duration("span", hours(24));
  workload.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  workload.zipf_alpha = cfg.get_double("zipf", 0.9);
  workload.repeat_probability = cfg.get_double("repeat", 0.4);
  return generate_synthetic_trace(workload);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::size_t jobs_flag = 0;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--jobs" && i + 1 < argc) {
        jobs_flag = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (arg.rfind("--jobs=", 0) == 0) {
        jobs_flag = static_cast<std::size_t>(std::strtoul(arg.c_str() + 7, nullptr, 10));
      } else {
        positional.push_back(arg);
      }
    }

    Config cfg;
    if (!positional.empty()) cfg = Config::load(positional[0]);

    const Trace trace = load_trace(cfg);
    const TraceStats stats = compute_stats(trace.requests);
    std::printf("workload: %llu requests, %llu documents, %s unique bytes\n\n",
                static_cast<unsigned long long>(stats.total_requests),
                static_cast<unsigned long long>(stats.unique_documents),
                format_bytes(stats.unique_bytes).c_str());

    GroupConfig base;
    base.num_proxies = static_cast<std::size_t>(cfg.get_int("proxies", 4));
    base.replacement = policy_kind_from_string(cfg.get_string("replacement", "lru"));
    const std::string topology = cfg.get_string("topology", "distributed");
    base.topology = topology == "hierarchical" ? TopologyKind::kHierarchical
                                               : TopologyKind::kDistributed;
    const std::string discovery = cfg.get_string("discovery", "icp");
    base.discovery = discovery == "digest" ? DiscoveryMode::kDigest : DiscoveryMode::kIcp;

    const auto capacity_labels =
        split_list(cfg.get_string("capacities", "100KiB,1MiB,10MiB,100MiB"));
    const auto scheme_labels = split_list(cfg.get_string("schemes", "ad-hoc,ea"));
    const LatencyModel model = LatencyModel::paper_defaults();

    // --jobs beats the config's `jobs =` key; EACACHE_JOBS and the
    // hardware fill in when neither is given.
    SweepOptions sweep;
    sweep.jobs = resolve_job_count(
        jobs_flag > 0 ? jobs_flag
                      : static_cast<std::size_t>(cfg.get_int("jobs", 0)));

    struct RowMeta {
      std::string capacity;
      std::string scheme;
    };
    std::vector<RowMeta> rows;
    SweepRunner runner{sweep};
    const TraceRef shared = borrow_trace(trace);
    for (const std::string& capacity_label : capacity_labels) {
      const auto capacity = Config::parse_bytes(capacity_label);
      if (!capacity) throw std::runtime_error("bad capacity: " + capacity_label);
      for (const std::string& scheme : scheme_labels) {
        GroupConfig config = base;
        config.aggregate_capacity = *capacity;
        config.placement = placement_kind_from_string(scheme);
        RunSpec spec;
        spec.group = config;
        runner.add(scheme + "@" + capacity_label, std::move(spec), shared);
        rows.push_back({capacity_label, scheme});
      }
    }
    const std::vector<SweepRunResult> runs = runner.run();

    TextTable table({"capacity", "scheme", "hit rate", "byte hit rate", "local", "remote",
                     "latency (ms)", "replication", "avg exp age (s)", "wall (ms)"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const SimulationResult& result = runs[i].result;
      table.add_row(
          {rows[i].capacity, rows[i].scheme, fmt_percent(result.metrics.hit_rate()),
           fmt_percent(result.metrics.byte_hit_rate()),
           fmt_percent(result.metrics.local_hit_rate()),
           fmt_percent(result.metrics.remote_hit_rate()),
           fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
           fmt_double(result.replication_factor, 3),
           result.average_cache_expiration_age.is_infinite()
               ? "inf"
               : fmt_double(result.average_cache_expiration_age.seconds(), 1),
           fmt_double(runs[i].wall_ms, 1)});
    }
    table.print(std::cout);

    if (positional.size() > 1) {
      const std::string path = positional[1];
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot open " + path);
      if (path.size() > 5 && path.substr(path.size() - 5) == ".json") {
        JsonWriter json(out);
        json.begin_array();
        for (const SweepRunResult& run : runs) {
          append_sweep_run(json, run);
        }
        json.end_array();
      } else {
        table.print_csv(out);
      }
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
