// Hierarchy demo: the EA scheme's parent/child algorithm (paper §3.3) in a
// two-level cache tree, traced step by step on a handful of requests so the
// placement decisions are visible, then measured on a larger workload.
//
//   $ ./hierarchy_demo
#include <cstdio>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

namespace {

void narrate(const CacheGroup& group, const Request& request, RequestOutcome outcome) {
  std::printf("t=%5llds user=%2u doc=%4llu -> %-10s | resident copies:",
              static_cast<long long>((request.at - kSimEpoch).count() / 1000),
              request.user, static_cast<unsigned long long>(request.document),
              std::string(to_string(outcome)).c_str());
  for (ProxyId p = 0; p < group.num_proxies(); ++p) {
    if (group.proxy(p).store().contains(request.document)) {
      const bool is_root = !group.topology().parent_of(p).has_value();
      std::printf(" %s%u", is_root ? "root" : "leaf", p);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Part 1: step-by-step EA decisions in a 2-leaf + root hierarchy ==\n\n");
  GroupConfig config;
  config.num_proxies = 2;  // leaves; the topology adds a root (id 2)
  config.aggregate_capacity = 12 * kKiB;
  config.placement = PlacementKind::kEa;
  config.topology = TopologyKind::kHierarchical;
  CacheGroup group(config);

  // Find one user per leaf.
  UserId leaf_user[2] = {0, 0};
  for (UserId u = 0, found = 0; found < 2 && u < 1000; ++u) {
    const ProxyId home = group.home_proxy(u);
    if (home < 2 && leaf_user[home] == 0) {
      leaf_user[home] = u;
      ++found;
    }
  }

  std::int64_t t = 0;
  const auto send = [&](UserId user, DocumentId doc) {
    const Request request{kSimEpoch + sec(++t), user, doc, 2 * kKiB};
    narrate(group, request, group.serve(request));
  };

  std::printf("A cold group behaves like ad-hoc: ties in expiration age mean the\n"
              "requester keeps the copy and the root declines (strict rule).\n\n");
  send(leaf_user[0], 100);  // miss via parent; leaf 0 stores, root declines
  send(leaf_user[1], 100);  // remote hit from leaf 0 (sibling ICP)
  send(leaf_user[0], 101);
  send(leaf_user[0], 102);
  send(leaf_user[0], 103);  // leaf 0 now churns -> finite expiration age
  send(leaf_user[0], 104);
  send(leaf_user[1], 104);  // sibling remote hit; requester may decline now
  std::printf("\n");

  std::printf("== Part 2: EA vs ad-hoc across topologies on a real-sized workload ==\n\n");
  SyntheticTraceConfig workload;
  workload.num_requests = 80'000;
  workload.num_documents = 6'000;
  workload.num_users = 64;
  workload.span = hours(12);
  const Trace trace = generate_synthetic_trace(workload);

  std::printf("%-13s %-8s %9s %9s %9s\n", "topology", "scheme", "hit rate", "miss rate",
              "latency");
  for (const TopologyKind topology :
       {TopologyKind::kDistributed, TopologyKind::kHierarchical}) {
    for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
      GroupConfig run_config;
      run_config.num_proxies = 4;
      run_config.aggregate_capacity = 2 * kMiB;
      run_config.topology = topology;
      run_config.placement = placement;
      RunSpec spec;
      spec.group = run_config;
      const SimulationResult result = run(trace, spec);
      std::printf("%-13s %-8s %8.2f%% %8.2f%% %7.1fms\n",
                  topology == TopologyKind::kDistributed ? "distributed" : "hierarchical",
                  std::string(to_string(placement)).c_str(),
                  100.0 * result.metrics.hit_rate(), 100.0 * result.metrics.miss_rate(),
                  result.metrics.estimated_average_latency_ms(LatencyModel::paper_defaults()));
    }
  }
  return 0;
}
