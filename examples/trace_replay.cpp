// Trace replay: run a real (BU-style) proxy log through the simulator.
//
//   $ ./trace_replay <trace-file> [config-file]
//
// Trace line format (whitespace separated; '#' comments allowed):
//   <timestamp-seconds> <user> <url> <size-bytes> [<retrieval-ms>]
// Zero sizes are coerced to 4 KB, exactly as the paper did with the BU logs.
//
// The optional config file (key = value) understands:
//   format             bu|squid                      (default bu)
//   proxies            number of caches              (default 4)
//   aggregate_capacity group-wide byte budget        (default 10MiB)
//   replacement        lru|lfu|lfu-aging|size|gds    (default lru)
//   placement          ea|ad-hoc                     (default ea)
//   topology           distributed|hierarchical      (default distributed)
//
// With no arguments, a bundled miniature example log is replayed so the
// binary is runnable out of the box.
#include <cstdio>
#include <sstream>
#include <string>

#include "common/config.h"
#include "sim/simulator.h"
#include "trace/bu_parser.h"
#include "trace/squid_parser.h"

using namespace eacache;

namespace {

// A tiny, hand-written log in the documented format: three users on two
// sites with obvious re-reference patterns.
constexpr const char* kBundledLog = R"(# miniature BU-style log
0.0   alice http://cnn.com/front      12000
1.2   bob   http://cnn.com/front      12000
2.0   carol http://gatech.edu/cs      0
3.1   alice http://cnn.com/sports     8000
4.0   bob   http://cnn.com/front      12000
5.5   carol http://cnn.com/front      12000
6.0   alice http://gatech.edu/cs      0
7.2   bob   http://cnn.com/sports     8000
8.9   carol http://gatech.edu/admit   4096
9.1   alice http://cnn.com/front      12000
)";

GroupConfig group_from_config(const Config& cfg) {
  GroupConfig config;
  config.num_proxies = static_cast<std::size_t>(cfg.get_int("proxies", 4));
  config.aggregate_capacity = cfg.get_bytes("aggregate_capacity", 10 * kMiB);
  config.replacement = policy_kind_from_string(cfg.get_string("replacement", "lru"));
  config.placement = placement_kind_from_string(cfg.get_string("placement", "ea"));
  const std::string topology = cfg.get_string("topology", "distributed");
  if (topology == "hierarchical") {
    config.topology = TopologyKind::kHierarchical;
  } else if (topology != "distributed") {
    throw std::runtime_error("unknown topology: " + topology);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Config cfg;
    if (argc > 2) cfg = Config::load(argv[2]);

    BuParseResult parsed;
    if (argc > 1) {
      if (cfg.get_string("format", "bu") == "squid") {
        const SquidParseResult squid = parse_squid_log_file(argv[1]);
        parsed.trace = squid.trace;
        parsed.lines_read = squid.lines_read;
        parsed.lines_skipped = squid.lines_skipped + squid.lines_filtered;
        parsed.zero_sizes_coerced = squid.zero_sizes_coerced;
      } else {
        parsed = parse_bu_log_file(argv[1]);
      }
      std::printf("parsed %s: %llu lines, %llu skipped, %llu zero sizes coerced\n", argv[1],
                  static_cast<unsigned long long>(parsed.lines_read),
                  static_cast<unsigned long long>(parsed.lines_skipped),
                  static_cast<unsigned long long>(parsed.zero_sizes_coerced));
    } else {
      std::istringstream bundled(kBundledLog);
      parsed = parse_bu_log(bundled);
      std::printf("no trace given; replaying the bundled %zu-request example log\n",
                  parsed.trace.size());
    }
    const GroupConfig config = group_from_config(cfg);

    const TraceStats stats = compute_stats(parsed.trace.requests);
    std::printf("trace: %llu requests, %llu documents, %llu users, span %s\n",
                static_cast<unsigned long long>(stats.total_requests),
                static_cast<unsigned long long>(stats.unique_documents),
                static_cast<unsigned long long>(stats.unique_users),
                format_duration(stats.span()).c_str());

    RunSpec spec;
    spec.group = config;
    const SimulationResult result = run(parsed.trace, spec);
    const LatencyModel latency = LatencyModel::paper_defaults();
    std::printf("\nscheme=%s proxies=%zu capacity=%s replacement=%s\n",
                std::string(to_string(config.placement)).c_str(), config.num_proxies,
                format_bytes(config.aggregate_capacity).c_str(),
                std::string(to_string(config.replacement)).c_str());
    std::printf("  hit rate        %6.2f%% (local %5.2f%%, remote %5.2f%%)\n",
                100.0 * result.metrics.hit_rate(), 100.0 * result.metrics.local_hit_rate(),
                100.0 * result.metrics.remote_hit_rate());
    std::printf("  byte hit rate   %6.2f%%\n", 100.0 * result.metrics.byte_hit_rate());
    std::printf("  est. latency    %7.1f ms (Eq. 6, paper constants)\n",
                result.metrics.estimated_average_latency_ms(latency));
    std::printf("  messages        %llu ICP, %llu HTTP, %llu origin fetches\n",
                static_cast<unsigned long long>(result.transport.icp_queries +
                                                result.transport.icp_replies),
                static_cast<unsigned long long>(result.transport.http_requests +
                                                result.transport.http_responses),
                static_cast<unsigned long long>(result.transport.origin_fetches));
    if (!result.average_cache_expiration_age.is_infinite()) {
      std::printf("  avg cache expiration age %.1f s\n",
                  result.average_cache_expiration_age.seconds());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
