// Curve plotter: the paper's Figure 1 and Figure 3 as terminal ASCII
// charts — hit rate and estimated latency vs aggregate cache size for the
// ad-hoc scheme, the EA scheme and the consistent-hashing baseline.
//
//   $ ./plot_curves
#include <cstdio>
#include <iostream>

#include "metrics/ascii_chart.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

int main() {
  SyntheticTraceConfig workload;
  workload.num_requests = 120'000;
  workload.num_documents = 10'000;
  workload.num_users = 96;
  workload.span = hours(24);
  workload.zipf_alpha = 1.0;
  workload.repeat_probability = 0.4;
  const Trace trace = generate_synthetic_trace(workload);

  const Bytes capacities[] = {128 * kKiB, 512 * kKiB, 2 * kMiB, 8 * kMiB, 32 * kMiB};
  const LatencyModel model = LatencyModel::paper_defaults();

  std::vector<double> adhoc_hits, ea_hits, hash_hits;
  std::vector<double> adhoc_lat, ea_lat, hash_lat;
  std::vector<std::string> labels;
  for (const Bytes capacity : capacities) {
    labels.push_back(format_bytes(capacity));
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = capacity;

    RunSpec spec;
    config.placement = PlacementKind::kAdHoc;
    spec.group = config;
    SimulationResult r = run(trace, spec);
    adhoc_hits.push_back(r.metrics.hit_rate());
    adhoc_lat.push_back(r.metrics.estimated_average_latency_ms(model));

    config.placement = PlacementKind::kEa;
    spec.group = config;
    r = run(trace, spec);
    ea_hits.push_back(r.metrics.hit_rate());
    ea_lat.push_back(r.metrics.estimated_average_latency_ms(model));

    config.placement = PlacementKind::kAdHoc;
    config.routing = RoutingMode::kHashPartition;
    spec.group = config;
    r = run(trace, spec);
    hash_hits.push_back(r.metrics.hit_rate());
    hash_lat.push_back(r.metrics.estimated_average_latency_ms(model));
  }

  std::printf("== Figure 1: cumulative hit rate vs aggregate cache size ==\n\n");
  AsciiChart hit_chart(60, 14);
  hit_chart.add_series("ad-hoc", adhoc_hits, 'a');
  hit_chart.add_series("EA", ea_hits, 'e');
  hit_chart.add_series("hash", hash_hits, 'h');
  hit_chart.set_x_labels(labels);
  std::cout << hit_chart.render() << '\n';

  std::printf("== Figure 3: estimated average latency (ms, Eq. 6) ==\n\n");
  AsciiChart lat_chart(60, 14);
  lat_chart.add_series("ad-hoc", adhoc_lat, 'a');
  lat_chart.add_series("EA", ea_lat, 'e');
  lat_chart.add_series("hash", hash_lat, 'h');
  lat_chart.set_x_labels(labels);
  std::cout << lat_chart.render() << '\n';

  std::printf("Where markers overlap the later series wins the cell; consult the\n"
              "bench binaries for exact numbers.\n");
  return 0;
}
