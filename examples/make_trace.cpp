// Trace maker: generate a calibrated synthetic workload and export it in
// the BU-style log format, ready for trace_replay, experiment_runner
// (trace_file=...), or any external tool.
//
//   $ ./make_trace out.log [config-file]
//
// Config keys (key = value; all optional):
//   requests  = 575775      documents = 46830     users = 591
//   span      = 2520h       seed      = 1994
//   zipf      = 1.0         repeat    = 0.5       mean_size = 4KiB
#include <cstdio>
#include <stdexcept>

#include "common/config.h"
#include "trace/bu_writer.h"
#include "trace/synthetic.h"

using namespace eacache;

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::fprintf(stderr, "usage: %s <output.log> [config-file]\n", argv[0]);
      return 2;
    }
    Config cfg;
    if (argc > 2) cfg = Config::load(argv[2]);

    SyntheticTraceConfig workload = SyntheticTraceConfig::bu_calibrated();
    workload.num_requests = static_cast<std::uint64_t>(
        cfg.get_int("requests", static_cast<std::int64_t>(workload.num_requests)));
    workload.num_documents = static_cast<std::uint64_t>(
        cfg.get_int("documents", static_cast<std::int64_t>(workload.num_documents)));
    workload.num_users = static_cast<UserId>(cfg.get_int("users", workload.num_users));
    workload.span = cfg.get_duration("span", workload.span);
    workload.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1994));
    workload.zipf_alpha = cfg.get_double("zipf", 1.0);
    workload.repeat_probability = cfg.get_double("repeat", 0.5);
    workload.mean_size = cfg.get_bytes("mean_size", workload.mean_size);

    const Trace trace = generate_synthetic_trace(workload);
    write_bu_log_file(argv[1], trace.requests);

    const TraceStats stats = compute_stats(trace.requests);
    std::printf("wrote %s: %llu requests, %llu documents, %llu users, %s unique bytes, "
                "span %.1f days\n",
                argv[1], static_cast<unsigned long long>(stats.total_requests),
                static_cast<unsigned long long>(stats.unique_documents),
                static_cast<unsigned long long>(stats.unique_users),
                format_bytes(stats.unique_bytes).c_str(),
                to_seconds(stats.span()) / 86400.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
