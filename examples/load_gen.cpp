// load_gen: drive a live multi-threaded daemon group from a proxy log at a
// configurable wall-clock rate (the daemon-mode counterpart of trace_replay).
//
//   $ ./load_gen <trace-file> [config-file]
//   $ ./load_gen scenario:<pack> [config-file]
//
// Trace format is BU-style by default (see trace_replay); `format = squid`
// switches parsers. With no arguments a bundled synthetic workload is
// replayed so the binary is runnable out of the box. A `scenario:` argument
// selects a workload-DSL scenario pack (trace/scenarios.h — DESIGN.md §15)
// and STREAMS it through the daemon: requests are pulled from the generator
// one at a time, so a 100M-request soak never materializes its trace. The
// `requests` config key rescales the pack (0 = the pack's default).
//
// The optional config file (key = value) understands:
//   format             bu|squid                      (default bu)
//   requests           rescale a scenario: pack      (default 0 = pack size)
//   proxies            number of proxy worker threads (default 4)
//   aggregate_capacity group-wide byte budget        (default 10MiB)
//   replacement        lru|lfu|lfu-aging|size|gds    (default lru)
//   placement          ea|ad-hoc                     (default ea)
//   mode               wall|smoke                    (default wall)
//   pacing             speedup|rate                  (default speedup)
//   speedup            trace-time compression factor (default 3600)
//   requests_per_second fixed-rate pacing target     (used when pacing=rate)
//   max_in_flight      admission window              (default 32)
//   json               path to write the result JSON (same schema as the
//                      simulator's result_json; omit to skip)
//   stats_out          per-tick stats snapshot path  (atomic rename; omit
//                      to skip)
//   stats_format       json|prom for stats_out       (default json)
//   stats_port         loopback HTTP stats endpoint  (default -1 = off;
//                      0 = ephemeral, printed at startup)
//   stats_period_ms    poller tick period            (default 1000)
//   flight_capacity    per-worker span ring size     (default 0 = off)
//   flight_out         flight-dump path, armed on admission-window
//                      saturation (wall mode)
//   obs                on|off — "off" disables the whole telemetry plane
//                      including the per-tick stderr summary (default on)
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "common/config.h"
#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "trace/bu_parser.h"
#include "trace/scenarios.h"
#include "trace/squid_parser.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

using namespace eacache;

namespace {

Trace load_trace(int argc, char** argv, const Config& cfg) {
  // "-" (or an empty argument) selects the bundled workload, so a config
  // file can still be passed in the second position without a trace file.
  if (argc > 1 && argv[1][0] != '\0' && std::string(argv[1]) != "-") {
    if (cfg.get_string("format", "bu") == "squid") {
      return parse_squid_log_file(argv[1]).trace;
    }
    return parse_bu_log_file(argv[1]).trace;
  }
  SyntheticTraceConfig workload;
  workload.num_requests = 50'000;
  workload.num_documents = 5'000;
  workload.num_users = 64;
  workload.span = hours(12);
  workload.seed = 11;
  std::printf("no trace given; replaying a bundled %llu-request synthetic workload\n",
              static_cast<unsigned long long>(workload.num_requests));
  return generate_synthetic_trace(workload);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Config cfg;
    if (argc > 2) cfg = Config::load(argv[2]);

    // A scenario: argument streams a workload-DSL pack instead of
    // materializing a trace; `requests` in the config rescales it.
    std::optional<WorkloadSpec> workload;
    Trace trace;
    const std::string trace_arg = argc > 1 ? argv[1] : "";
    if (trace_arg.rfind("scenario:", 0) == 0) {
      const std::string name = trace_arg.substr(9);
      const ScenarioPack* pack = find_scenario(name);
      if (pack == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s (see trace/scenarios.h)\n",
                     name.c_str());
        return 2;
      }
      const auto requests = static_cast<std::uint64_t>(cfg.get_int("requests", 0));
      workload = requests > 0 ? scaled_spec(*pack, requests) : pack->spec;
      std::printf("scenario %s — %s\n", pack->name.c_str(), pack->summary.c_str());
      std::printf("streaming %llu requests over %s (never materialized)\n",
                  static_cast<unsigned long long>(workload->num_requests),
                  format_duration(workload->span).c_str());
    } else {
      trace = load_trace(argc, argv, cfg);
      const TraceStats stats = compute_stats(trace.requests);
      std::printf("trace: %llu requests, %llu documents, %llu users, span %s\n",
                  static_cast<unsigned long long>(stats.total_requests),
                  static_cast<unsigned long long>(stats.unique_documents),
                  static_cast<unsigned long long>(stats.unique_users),
                  format_duration(stats.span()).c_str());
    }

    GroupConfig config;
    config.num_proxies = static_cast<std::size_t>(cfg.get_int("proxies", 4));
    config.aggregate_capacity = cfg.get_bytes("aggregate_capacity", 10 * kMiB);
    config.replacement = policy_kind_from_string(cfg.get_string("replacement", "lru"));
    config.placement = placement_kind_from_string(cfg.get_string("placement", "ea"));
    config.obs.series_points = 0;  // no mid-run sampling hook in daemon mode

    DaemonOptions options;
    options.mode = cfg.get_string("mode", "wall") == "smoke" ? DaemonMode::kSmokeReplay
                                                             : DaemonMode::kWallClock;
    options.load.pacing = cfg.get_string("pacing", "speedup") == "rate"
                              ? PacingMode::kFixedRate
                              : PacingMode::kTraceSpeedup;
    options.load.speedup = cfg.get_double("speedup", 3'600.0);
    options.load.requests_per_second = cfg.get_double("requests_per_second", 0.0);
    options.load.max_in_flight =
        static_cast<std::uint64_t>(cfg.get_int("max_in_flight", 32));

    // Live telemetry plane (DESIGN.md §13) — wall-clock mode only; the
    // validator rejects live exporters for smoke replays.
    std::uint16_t bound_port = 0;
    const bool obs_on = cfg.get_string("obs", "on") != "off";
    if (obs_on && options.mode == DaemonMode::kWallClock) {
      options.telemetry.flight_capacity =
          static_cast<std::size_t>(cfg.get_int("flight_capacity", 0));
      options.telemetry.stats_period =
          msec(cfg.get_int("stats_period_ms", 1000));
      options.telemetry.stats_out = cfg.get_string("stats_out", "");
      options.telemetry.stats_format = cfg.get_string("stats_format", "json");
      options.telemetry.stats_port = static_cast<int>(cfg.get_int("stats_port", -1));
      options.telemetry.flight_out = cfg.get_string("flight_out", "");
      options.telemetry.bound_port = &bound_port;
      const bool announce = options.telemetry.stats_port >= 0;
      options.telemetry.on_sample = [&bound_port, announce](const TelemetrySnapshot& s) {
        if (announce && s.tick == 1) {
          std::fprintf(stderr, "stats: serving http://127.0.0.1:%u/metrics\n",
                       static_cast<unsigned>(bound_port));
        }
        std::fprintf(stderr,
                     "stats: tick %llu  %8.0f req/s  hit %6.2f%%  in-flight %llu\n",
                     static_cast<unsigned long long>(s.tick), s.requests_per_second,
                     100.0 * s.hit_rate, static_cast<unsigned long long>(s.in_flight));
      };
    }

    std::printf("driving %zu proxy threads (%s placement, %s mode)...\n",
                config.num_proxies, std::string(to_string(config.placement)).c_str(),
                options.mode == DaemonMode::kSmokeReplay ? "smoke-replay" : "wall-clock");

    RunSpec spec;
    spec.group = config;
    LoadGenReport report;
    RunResult result;
    if (workload) {
      WorkloadSource source(*workload);
      result = run_daemon(source, spec, options, &report);
    } else {
      result = run_daemon(trace, spec, options, &report);
    }

    std::printf("\n  completed       %llu/%llu (%llu flushes injected)\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.submitted),
                static_cast<unsigned long long>(report.flushes_injected));
    std::printf("  wall time       %.2f s (%.0f req/s)\n", report.wall_seconds,
                static_cast<double>(report.completed) / report.wall_seconds);
    std::printf("  hit rate        %6.2f%% (local %5.2f%%, remote %5.2f%%)\n",
                100.0 * result.metrics.hit_rate(), 100.0 * result.metrics.local_hit_rate(),
                100.0 * result.metrics.remote_hit_rate());
    std::printf("  byte hit rate   %6.2f%%\n", 100.0 * result.metrics.byte_hit_rate());
    std::printf("  messages        %llu ICP, %llu HTTP, %llu origin fetches\n",
                static_cast<unsigned long long>(result.transport.icp_queries +
                                                result.transport.icp_replies),
                static_cast<unsigned long long>(result.transport.http_requests +
                                                result.transport.http_responses),
                static_cast<unsigned long long>(result.transport.origin_fetches));
    if (!result.average_cache_expiration_age.is_infinite()) {
      std::printf("  avg cache expiration age %.1f s\n",
                  result.average_cache_expiration_age.seconds());
    }

    const std::string json_path = cfg.get_string("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << run_result_to_json(result) << '\n';
      std::printf("  wrote result JSON to %s\n", json_path.c_str());
    }
    return report.completed == report.submitted ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
