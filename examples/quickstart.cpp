// Quickstart: build a 4-proxy cooperative cache group, replay a synthetic
// workload through the EA and ad-hoc placement schemes, and compare the
// headline metrics.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API:
//   trace   = generate_synthetic_trace(SyntheticTraceConfig)
//   spec    = RunSpec{.group = GroupConfig{...}}
//   result  = run(trace, spec)
// RunSpec (core/run_spec.h) is the one description of a run: the cache
// group, the per-run knobs (faults, invariant checking) and the execution
// policy — set spec.exec.shards >= 1 to run the same simulation on the
// sharded parallel engine with a byte-identical result.
#include <cstdio>

#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

int main() {
  // 1. A workload: 100k requests over 8k documents from 64 users.
  SyntheticTraceConfig workload;
  workload.num_requests = 100'000;
  workload.num_documents = 8'000;
  workload.num_users = 64;
  workload.span = hours(24);
  workload.seed = 7;
  const Trace trace = generate_synthetic_trace(workload);
  const TraceStats stats = compute_stats(trace.requests);
  std::printf("workload: %llu requests, %llu unique documents (%s unique bytes)\n\n",
              static_cast<unsigned long long>(stats.total_requests),
              static_cast<unsigned long long>(stats.unique_documents),
              format_bytes(stats.unique_bytes).c_str());

  // 2. A cache group: 4 peer proxies sharing 4 MiB of disk, LRU replacement.
  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 4 * kMiB;
  config.replacement = PolicyKind::kLru;

  // 3. Run both placement schemes on the identical trace.
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    config.placement = placement;
    RunSpec spec;
    spec.group = config;
    const SimulationResult result = run(trace, spec);
    const LatencyModel latency = LatencyModel::paper_defaults();
    std::printf("scheme %-6s  hit rate %6.2f%%  byte hit rate %6.2f%%  "
                "est. latency %7.1f ms  replication %.3f\n",
                std::string(to_string(placement)).c_str(),
                100.0 * result.metrics.hit_rate(),
                100.0 * result.metrics.byte_hit_rate(),
                result.metrics.estimated_average_latency_ms(latency),
                result.replication_factor);
  }

  std::printf("\nThe EA scheme holds more UNIQUE documents in the same disk budget by\n"
              "declining to replicate documents whose existing copy will live longer\n"
              "(paper: Ramaswamy & Liu, ICDCS 2002).\n");
  return 0;
}
