// Policy lab: explore how the EA placement scheme composes with different
// replacement policies and expiration-age windows — the two knobs the paper
// leaves open (§3.2 "we believe it is possible to define the same for other
// replacement policies too"; Eq. 5's unspecified window).
//
//   $ ./policy_lab
#include <cstdio>

#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

int main() {
  SyntheticTraceConfig workload;
  workload.num_requests = 60'000;
  workload.num_documents = 5'000;
  workload.num_users = 64;
  workload.span = hours(8);
  workload.seed = 11;
  const Trace trace = generate_synthetic_trace(workload);

  std::printf("== Replacement policy x placement scheme (4 caches, 2MiB aggregate) ==\n\n");
  std::printf("%-10s %14s %14s %10s\n", "policy", "ad-hoc hit", "EA hit", "EA gain");
  for (const PolicyKind policy :
       {PolicyKind::kLru, PolicyKind::kLfu, PolicyKind::kLfuAging,
        PolicyKind::kSizeBiggestFirst, PolicyKind::kGreedyDualSize}) {
    double rates[2] = {0, 0};
    for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
      GroupConfig config;
      config.num_proxies = 4;
      config.aggregate_capacity = 2 * kMiB;
      config.replacement = policy;
      config.placement = placement;
      RunSpec spec;
      spec.group = config;
      rates[placement == PlacementKind::kEa ? 1 : 0] = run(trace, spec).metrics.hit_rate();
    }
    std::printf("%-10s %13.2f%% %13.2f%% %+9.2f%%\n", std::string(to_string(policy)).c_str(),
                100.0 * rates[0], 100.0 * rates[1], 100.0 * (rates[1] - rates[0]));
  }

  std::printf("\n== Expiration-age estimator windows (LRU, EA scheme) ==\n\n");
  struct Option {
    const char* label;
    WindowConfig window;
  };
  const Option options[] = {
      {"cumulative", WindowConfig::cumulative()},
      {"victims-32", WindowConfig::victims(32)},
      {"victims-256", WindowConfig::victims(256)},
      {"time-1h", WindowConfig::time(hours(1))},
      {"time-8h", WindowConfig::time(hours(8))},
  };
  std::printf("%-12s %10s %14s %12s\n", "window", "EA hit", "replication", "avg age (s)");
  for (const Option& option : options) {
    GroupConfig config;
    config.num_proxies = 4;
    config.aggregate_capacity = 2 * kMiB;
    config.placement = PlacementKind::kEa;
    config.window = option.window;
    RunSpec spec;
    spec.group = config;
    const SimulationResult result = run(trace, spec);
    std::printf("%-12s %9.2f%% %14.3f %12.1f\n", option.label,
                100.0 * result.metrics.hit_rate(), result.replication_factor,
                result.average_cache_expiration_age.is_infinite()
                    ? -1.0
                    : result.average_cache_expiration_age.seconds());
  }

  std::printf("\nTakeaway: the EA rule only needs (a) an eviction stream and (b) a\n"
              "comparable contention number per cache — it composes with any\n"
              "replacement policy that can provide them.\n");
  return 0;
}
