// Daemon demo: the same EA cache core that powers the simulator, run LIVE —
// N in-process proxy instances, one worker thread each, cooperating over the
// lock-based in-memory wire while a load generator replays a synthetic trace
// at a configurable wall-clock compression.
//
//   $ ./daemon_demo [requests] [proxies] [speedup] [json-path]
//
// Defaults: 100000 requests, 4 proxies, speedup 86400 (a day of trace per
// wall-clock second). The demo then runs the *simulator* on the identical
// workload and compares: the EA hit rate of the live run must land within
// two points of the simulated one (the paper-level acceptance bound for the
// libeacache extraction). Exit status 0 iff the bound holds, so the demo
// doubles as an end-to-end check under sanitizers.
//
// With a json-path, the live run's result is written in the exact schema
// `run_simulation` emits (core/run_result_json.h) — same keys, same layout.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

int main(int argc, char** argv) {
  try {
    const std::uint64_t requests =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
    const std::size_t proxies =
        argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10)) : 4;
    const double speedup = argc > 3 ? std::strtod(argv[3], nullptr) : 86'400.0;

    SyntheticTraceConfig workload;
    workload.num_requests = requests;
    workload.num_documents = requests / 10;
    workload.num_users = 64;
    workload.span = hours(24);
    workload.seed = 7;
    const Trace trace = generate_synthetic_trace(workload);

    GroupConfig config;
    config.num_proxies = proxies;
    config.aggregate_capacity = (requests / 10) * kKiB;  // ~capacity pressure
    config.placement = PlacementKind::kEa;
    config.obs.series_points = 0;  // the daemon has no mid-run sampling hook

    std::printf("daemon_demo: %llu requests over %zu proxy threads, "
                "trace compressed %.0fx\n",
                static_cast<unsigned long long>(trace.size()), proxies, speedup);

    DaemonOptions options;
    options.mode = DaemonMode::kWallClock;
    options.load.speedup = speedup;
    LoadGenReport report;
    const RunResult live = run_daemon(trace, config, options, &report);
    std::printf("  live: %llu/%llu completed in %.2f s (%.0f req/s), "
                "hit rate %6.2f%%, byte hit rate %6.2f%%\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.submitted), report.wall_seconds,
                static_cast<double>(report.completed) / report.wall_seconds,
                100.0 * live.metrics.hit_rate(), 100.0 * live.metrics.byte_hit_rate());

    const RunResult simulated = run_simulation(trace, config);
    std::printf("  sim:  hit rate %6.2f%%, byte hit rate %6.2f%%\n",
                100.0 * simulated.metrics.hit_rate(),
                100.0 * simulated.metrics.byte_hit_rate());

    if (argc > 4) {
      std::ofstream out(argv[4]);
      out << run_result_to_json(live) << '\n';
      std::printf("  wrote live result JSON to %s\n", argv[4]);
    }

    const double delta = std::abs(live.metrics.hit_rate() - simulated.metrics.hit_rate());
    const bool complete = report.completed == trace.size();
    std::printf("  hit-rate delta %.4f (bound 0.02) — %s\n", delta,
                delta < 0.02 && complete ? "OK" : "FAIL");
    return delta < 0.02 && complete ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
