// Daemon demo: the same EA cache core that powers the simulator, run LIVE —
// N in-process proxy instances, one worker thread each, cooperating over the
// lock-based in-memory wire while a load generator replays a synthetic trace
// at a configurable wall-clock compression.
//
//   $ ./daemon_demo [requests] [proxies] [speedup] [json-path] [flags]
//
// Defaults: 100000 requests, 4 proxies, speedup 86400 (a day of trace per
// wall-clock second). The demo then runs the *simulator* on the identical
// workload and compares: the EA hit rate of the live run must land within
// two points of the simulated one (the paper-level acceptance bound for the
// libeacache extraction). Exit status 0 iff the bound holds, so the demo
// doubles as an end-to-end check under sanitizers.
//
// Telemetry flags (DESIGN.md §13; may be interleaved with the positionals):
//   --stats-out=PATH       write a fresh stats snapshot each poller tick
//                          (atomic rename; JSON unless --stats-format=prom)
//   --stats-format=FMT     json|prom for --stats-out
//   --stats-port=N         serve /metrics + /stats.json on 127.0.0.1:N
//                          (0 picks an ephemeral port, printed at startup)
//   --stats-period-ms=N    poller tick period (default 1000)
//   --flight-capacity=N    per-worker flight-recorder ring size (default 256)
//   --flight-out=PATH      flight-dump target, armed on admission-window
//                          saturation
//   --no-obs               disable the whole telemetry plane (poller, spans,
//                          exporters) — the baseline arm of the obs-overhead
//                          bench
//
// While the run is live a one-line summary lands on stderr each tick:
// req/s over the window, cumulative hit %, requests in flight.
//
// With a json-path, the live run's result is written in the exact schema
// `run_simulation` emits (core/run_result_json.h) — same keys, same layout.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/run_result_json.h"
#include "daemon/daemon.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

using namespace eacache;

int main(int argc, char** argv) {
  try {
    std::vector<std::string> positional;
    std::string stats_out;
    std::string stats_format = "json";
    std::string flight_out;
    long stats_port = -1;
    long stats_period_ms = 1000;
    std::size_t flight_capacity = 256;
    bool no_obs = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto after = [&arg](std::size_t prefix) {
        return arg.substr(prefix);
      };
      if (arg == "--no-obs") {
        no_obs = true;
      } else if (arg.rfind("--stats-out=", 0) == 0) {
        stats_out = after(12);
      } else if (arg.rfind("--stats-format=", 0) == 0) {
        stats_format = after(15);
      } else if (arg.rfind("--stats-port=", 0) == 0) {
        stats_port = std::strtol(after(13).c_str(), nullptr, 10);
      } else if (arg.rfind("--stats-period-ms=", 0) == 0) {
        stats_period_ms = std::strtol(after(18).c_str(), nullptr, 10);
      } else if (arg.rfind("--flight-capacity=", 0) == 0) {
        flight_capacity =
            static_cast<std::size_t>(std::strtoull(after(18).c_str(), nullptr, 10));
      } else if (arg.rfind("--flight-out=", 0) == 0) {
        flight_out = after(13);
      } else if (arg.rfind("--", 0) == 0) {
        std::fprintf(stderr, "daemon_demo: unknown flag %s\n", arg.c_str());
        return 2;
      } else {
        positional.push_back(arg);
      }
    }

    const std::uint64_t requests =
        positional.size() > 0 ? std::strtoull(positional[0].c_str(), nullptr, 10)
                              : 100'000;
    const std::size_t proxies =
        positional.size() > 1
            ? static_cast<std::size_t>(std::strtoull(positional[1].c_str(), nullptr, 10))
            : 4;
    const double speedup =
        positional.size() > 2 ? std::strtod(positional[2].c_str(), nullptr) : 86'400.0;

    SyntheticTraceConfig workload;
    workload.num_requests = requests;
    workload.num_documents = requests / 10;
    workload.num_users = 64;
    workload.span = hours(24);
    workload.seed = 7;
    const Trace trace = generate_synthetic_trace(workload);

    GroupConfig config;
    config.num_proxies = proxies;
    config.aggregate_capacity = (requests / 10) * kKiB;  // ~capacity pressure
    config.placement = PlacementKind::kEa;
    config.obs.series_points = 0;  // the daemon has no mid-run sampling hook

    std::printf("daemon_demo: %llu requests over %zu proxy threads, "
                "trace compressed %.0fx%s\n",
                static_cast<unsigned long long>(trace.size()), proxies, speedup,
                no_obs ? " (telemetry off)" : "");

    DaemonOptions options;
    options.mode = DaemonMode::kWallClock;
    options.load.speedup = speedup;
    std::uint16_t bound_port = 0;
    if (!no_obs) {
      options.telemetry.flight_capacity = flight_capacity;
      options.telemetry.stats_period = msec(stats_period_ms);
      options.telemetry.stats_out = stats_out;
      options.telemetry.stats_format = stats_format;
      options.telemetry.stats_port = static_cast<int>(stats_port);
      options.telemetry.flight_out = flight_out;
      options.telemetry.bound_port = &bound_port;
      const bool announce = stats_port >= 0;
      options.telemetry.on_sample = [&bound_port, announce](const TelemetrySnapshot& s) {
        if (announce && s.tick == 1) {
          std::fprintf(stderr, "stats: serving http://127.0.0.1:%u/metrics\n",
                       static_cast<unsigned>(bound_port));
        }
        std::fprintf(stderr,
                     "stats: tick %llu  %8.0f req/s  hit %6.2f%%  in-flight %llu\n",
                     static_cast<unsigned long long>(s.tick), s.requests_per_second,
                     100.0 * s.hit_rate, static_cast<unsigned long long>(s.in_flight));
      };
    }

    RunSpec spec;
    spec.group = config;
    LoadGenReport report;
    const RunResult live = run_daemon(trace, spec, options, &report);
    std::printf("  live: %llu/%llu completed in %.2f s (%.0f req/s), "
                "hit rate %6.2f%%, byte hit rate %6.2f%%\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.submitted), report.wall_seconds,
                static_cast<double>(report.completed) / report.wall_seconds,
                100.0 * live.metrics.hit_rate(), 100.0 * live.metrics.byte_hit_rate());
    // Machine-parsable throughput for the obs-overhead bench arm.
    std::printf("  throughput_rps=%.1f\n",
                static_cast<double>(report.completed) / report.wall_seconds);

    const RunResult simulated = run(trace, spec);
    std::printf("  sim:  hit rate %6.2f%%, byte hit rate %6.2f%%\n",
                100.0 * simulated.metrics.hit_rate(),
                100.0 * simulated.metrics.byte_hit_rate());

    if (positional.size() > 3) {
      std::ofstream out(positional[3]);
      out << run_result_to_json(live) << '\n';
      std::printf("  wrote live result JSON to %s\n", positional[3].c_str());
    }

    const double delta = std::abs(live.metrics.hit_rate() - simulated.metrics.hit_rate());
    const bool complete = report.completed == trace.size();
    std::printf("  hit-rate delta %.4f (bound 0.02) — %s\n", delta,
                delta < 0.02 && complete ? "OK" : "FAIL");
    return delta < 0.02 && complete ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
