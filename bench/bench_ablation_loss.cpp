// ABL-LOSS — ICP over lossy UDP. The paper's §1 notes cooperative caching's
// benefit is bounded by inter-cache communication; this ablation quantifies
// what happens when that communication silently FAILS: lost exchanges turn
// would-be remote hits into duplicate origin fetches.
//
// Expected shape: group hit rate decays toward the local-only hit rate as
// loss climbs; the EA scheme is hit HARDER than ad-hoc because it
// deliberately relies on remote copies (fewer local replicas).
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-LOSS", "ICP packet loss: remote hits turn into origin fetches");
  const LatencyModel model = LatencyModel::paper_defaults();
  const double losses[] = {0.0, 0.05, 0.15, 0.3, 0.6, 1.0};
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    double loss;
    PlacementKind placement;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const double loss : losses) {
    for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = 10 * kMiB;
      config.placement = placement;
      config.icp_loss_probability = loss;
      runner.add(std::string(to_string(placement)) + "@loss-" + fmt_percent(loss, 0),
                 bench::make_spec(config), trace);
      rows.push_back({loss, placement});
    }
  }
  const auto runs = runner.run();

  TextTable table({"ICP loss", "scheme", "hit rate", "remote", "lost exchanges",
                   "latency (ms)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    table.add_row({fmt_percent(rows[i].loss, 0), std::string(to_string(rows[i].placement)),
                   fmt_percent(result.metrics.hit_rate()),
                   fmt_percent(result.metrics.remote_hit_rate()),
                   std::to_string(result.transport.icp_losses),
                   fmt_double(result.metrics.estimated_average_latency_ms(model), 1)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
