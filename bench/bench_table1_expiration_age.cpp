// TAB1 — Paper Table 1: average cache expiration age (seconds) for the
// 4-cache group at 100KB-100MB aggregate memory, conventional (ad-hoc) vs
// EA scheme.
//
// Expected shape (paper §4.2): "with EA scheme the documents stay for much
// longer as compared with the Ad-hoc scheme" — the EA column exceeds the
// conventional column at every size, demonstrating reduced disk-space
// contention. (The paper's table stops at 100MB; at 1GB neither scheme
// evicts enough for the metric to be meaningful, so we print it last and
// expect near-equal or undefined values.)
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("TAB1", "Average cache expiration age (seconds), 4-cache group");
  const auto points =
      compare_schemes_over_capacities(*bench::paper_trace(), bench::paper_group(4),
                                      paper_capacity_ladder(), bench::sweep_options(opts));

  TextTable table({"aggregate memory", "conventional scheme (s)", "EA scheme (s)", "ratio"});
  for (const SchemeComparison& point : points) {
    const ExpAge adhoc_age = point.adhoc.average_cache_expiration_age;
    const ExpAge ea_age = point.ea.average_cache_expiration_age;
    std::string ratio = "-";
    if (!adhoc_age.is_infinite() && !ea_age.is_infinite() && adhoc_age.millis() > 0.0) {
      ratio = fmt_double(ea_age.millis() / adhoc_age.millis(), 2) + "x";
    }
    table.add_row({bench::capacity_label(point.aggregate_capacity),
                   adhoc_age.is_infinite() ? "inf" : fmt_double(adhoc_age.seconds(), 1),
                   ea_age.is_infinite() ? "inf" : fmt_double(ea_age.seconds(), 1), ratio});
  }
  bench::print_table_and_csv(table);
  return 0;
}
