#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/config.h"

namespace eacache::bench {

namespace {

const char* g_argv0 = "bench";

// Pipeline knobs captured by the last parse_args() call; paper_group() folds
// them into every config it hands out so `--pipeline` flips a whole bench.
PipelineConfig g_cli_pipeline;

// Execution policy captured the same way; make_spec() folds it into every
// RunSpec so `--shards N` moves a whole bench onto the sharded engine.
std::size_t g_cli_shards = 0;

/// Parser scratch: the options being built plus enough bookkeeping to
/// diagnose flag combinations after the loop.
struct ParseState {
  BenchOptions options;
  bool saw_pipeline_knob = false;  // --icp-*/--coalesce given
};

/// One CLI flag. The whole surface — parsing, usage line, and the --help
/// text — is generated from the kFlags table below; adding a flag is one
/// entry, never a second switch statement.
struct FlagSpec {
  const char* name;        // without the leading "--"
  const char* value_name;  // metavar for value flags; nullptr = boolean switch
  const char* help;
  void (*apply)(ParseState&, const char* value);  // value null for switches
};

void print_usage(std::FILE* out);

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", g_argv0, message.c_str());
  print_usage(stderr);
  std::exit(2);
}

/// Strict base-10 parse; rejects trailing junk and negatives.
long non_negative_long(const char* text, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed < 0) {
    fail(std::string("bad value for --") + flag + ": " + text);
  }
  return parsed;
}

constexpr FlagSpec kFlags[] = {
    {"jobs", "N",
     "sweep worker threads (default: EACACHE_JOBS env, then hardware)",
     [](ParseState& state, const char* value) {
       const long jobs = non_negative_long(value, "jobs");
       if (jobs == 0) fail("--jobs must be at least 1");
       state.options.jobs = static_cast<std::size_t>(jobs);
     }},
    {"json", nullptr, "stream one JSON row per completed run",
     [](ParseState& state, const char*) { state.options.stream_json = true; }},
    {"trace-out", "FILE",
     "trace request lifecycles; append span events to FILE as JSONL",
     [](ParseState& state, const char* value) { state.options.trace_out = value; }},
    {"no-obs", nullptr, "disable the metric registry and tracing",
     [](ParseState& state, const char*) { state.options.no_obs = true; }},
    {"pipeline", nullptr,
     "serve through the event-driven request pipeline (DESIGN.md §9)",
     [](ParseState& state, const char*) {
       state.options.pipeline.event_driven = true;
     }},
    {"icp-timeout-ms", "MS", "ICP probe-round timeout (requires --pipeline)",
     [](ParseState& state, const char* value) {
       state.options.pipeline.icp_timeout =
           msec(non_negative_long(value, "icp-timeout-ms"));
       state.saw_pipeline_knob = true;
     }},
    {"icp-retries", "N",
     "re-probe silent peers up to N times (requires --pipeline)",
     [](ParseState& state, const char* value) {
       state.options.pipeline.icp_retries =
           static_cast<std::uint32_t>(non_negative_long(value, "icp-retries"));
       state.saw_pipeline_knob = true;
     }},
    {"coalesce", nullptr,
     "collapse concurrent same-document misses (requires --pipeline)",
     [](ParseState& state, const char*) {
       state.options.pipeline.coalesce = true;
       state.saw_pipeline_knob = true;
     }},
    {"validate", nullptr,
     "attach the invariant checker to every run (DESIGN.md §10)",
     [](ParseState& state, const char*) { state.options.validate = true; }},
    {"shards", "N",
     "run on the sharded parallel engine with N shards (0 = classic driver)",
     [](ParseState& state, const char* value) {
       state.options.shards = static_cast<std::size_t>(non_negative_long(value, "shards"));
     }},
    {"scenario", "NAME",
     "restrict workload benches to one scenario pack (DESIGN.md §15)",
     [](ParseState& state, const char* value) { state.options.scenario = value; }},
    {"scenario-requests", "N",
     "requests per scenario trace (0 = bench default)",
     [](ParseState& state, const char* value) {
       state.options.scenario_requests =
           static_cast<std::uint64_t>(non_negative_long(value, "scenario-requests"));
     }},
    {"stream-requests", "N",
     "streaming-only profiling arm over N requests (no materialization)",
     [](ParseState& state, const char* value) {
       state.options.stream_requests =
           static_cast<std::uint64_t>(non_negative_long(value, "stream-requests"));
     }},
    {"help", nullptr, "print this message and exit", nullptr},
};

void print_usage(std::FILE* out) {
  std::string line = std::string("usage: ") + g_argv0;
  for (const FlagSpec& flag : kFlags) {
    line += " [--";
    line += flag.name;
    if (flag.value_name) {
      line += ' ';
      line += flag.value_name;
    }
    line += ']';
  }
  std::fprintf(out, "%s\n", line.c_str());
  for (const FlagSpec& flag : kFlags) {
    std::string left = std::string("--") + flag.name;
    if (flag.value_name) {
      left += ' ';
      left += flag.value_name;
    }
    std::fprintf(out, "  %-20s %s\n", left.c_str(), flag.help);
  }
}

}  // namespace

BenchOptions parse_args(int argc, char** argv) {
  g_argv0 = argv[0];
  ParseState state;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) fail("unknown argument: " + arg);
    arg.erase(0, 2);

    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      has_inline = true;
      arg.erase(eq);
    }
    if (arg == "help") {
      print_usage(stdout);
      std::exit(0);
    }

    const FlagSpec* spec = nullptr;
    for (const FlagSpec& flag : kFlags) {
      if (arg == flag.name) {
        spec = &flag;
        break;
      }
    }
    if (spec == nullptr) fail("unknown flag: --" + arg);

    const char* value = nullptr;
    if (spec->value_name != nullptr) {
      if (has_inline) {
        value = inline_value.c_str();
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        fail("--" + arg + " needs a value");
      }
    } else if (has_inline) {
      fail("--" + arg + " takes no value");
    }
    spec->apply(state, value);
  }

  if (state.options.no_obs && !state.options.trace_out.empty()) {
    fail("--no-obs and --trace-out are mutually exclusive");
  }
  if (state.saw_pipeline_knob && !state.options.pipeline.event_driven) {
    fail("--icp-timeout-ms/--icp-retries/--coalesce require --pipeline");
  }
  if (state.options.pipeline.event_driven) {
    // Reject bad knob values here with a usage error rather than letting
    // GroupConfig::validate_or_throw() abort a sweep worker thread later.
    GroupConfig probe;
    probe.latency = LatencyModel::paper_defaults();
    probe.pipeline = state.options.pipeline;
    std::string joined;
    for (const std::string& error : probe.validate()) {
      if (!joined.empty()) joined += "; ";
      joined += error;
    }
    if (!joined.empty()) fail(joined);
  }
  if (state.options.shards >= 1 &&
      (state.options.pipeline.event_driven || state.options.validate)) {
    fail("--shards is incompatible with --pipeline and --validate "
         "(the sharded engine is its own driver; see RunSpec::validate)");
  }
  g_cli_pipeline = state.options.pipeline;
  g_cli_shards = state.options.shards;
  return state.options;
}

SweepOptions sweep_options(const BenchOptions& options) {
  SweepOptions sweep;
  sweep.jobs = options.jobs;
  sweep.validate = options.validate;
  if (options.no_obs) {
    sweep.obs_override = ObsConfig::disabled();
  } else if (!options.trace_out.empty()) {
    sweep.obs_override = ObsConfig::with_tracing();
  }

  // The trace stream is owned by the sink closure; the sink runs on the
  // caller's thread in submission order, so writes need no locking and runs
  // appear in the file in a deterministic order.
  std::shared_ptr<std::ofstream> trace_stream;
  if (!options.trace_out.empty()) {
    trace_stream = std::make_shared<std::ofstream>(options.trace_out, std::ios::trunc);
    if (!*trace_stream) {
      std::fprintf(stderr, "cannot open trace output file: %s\n", options.trace_out.c_str());
      std::exit(2);
    }
  }

  if (options.stream_json || trace_stream) {
    const bool stream_json = options.stream_json;
    sweep.sink = [stream_json, trace_stream](const SweepRunResult& run) {
      if (stream_json) std::cout << "json," << sweep_run_to_json(run) << '\n';
      if (trace_stream) {
        run.result.trace_log.write_jsonl(*trace_stream, run.label);
        trace_stream->flush();
      }
    };
  }
  return sweep;
}

SweepRunner make_runner(const BenchOptions& options) {
  return SweepRunner(sweep_options(options));
}

SyntheticTraceConfig paper_workload_config() {
  SyntheticTraceConfig config = SyntheticTraceConfig::bu_calibrated();
  config.seed = 1994;  // the BU traces' vintage
  // Calibration against the paper's published curve shape (§4.2): a
  // steeper popularity skew plus session-level temporal locality are needed
  // to reproduce the BU traces' concentration (their Figure 1 jumps ~20%
  // from 100KB to 1MB but only ~3% from 100MB to 1GB, i.e. the hot set is
  // small relative to the 187MB of unique bytes).
  config.zipf_alpha = 1.0;
  config.repeat_probability = 0.5;
  config.repeat_window = 256;
  return config;
}

namespace {
void print_trace_stats(const char* name, const Trace& trace) {
  const TraceStats stats = compute_stats(trace.requests);
  std::printf("workload %s: %llu requests, %llu unique documents, %llu users, "
              "%s total / %s unique bytes, span %.1f days\n",
              name, static_cast<unsigned long long>(stats.total_requests),
              static_cast<unsigned long long>(stats.unique_documents),
              static_cast<unsigned long long>(stats.unique_users),
              format_bytes(stats.total_bytes).c_str(),
              format_bytes(stats.unique_bytes).c_str(),
              to_seconds(stats.span()) / 86400.0);
}
}  // namespace

TraceRef paper_trace() {
  return TraceCache::global().get_or_create("bu-calibrated", [] {
    Trace t = generate_synthetic_trace(paper_workload_config());
    print_trace_stats("bu-calibrated", t);
    return t;
  });
}

TraceRef small_trace() {
  return TraceCache::global().get_or_create("bu-calibrated/8", [] {
    SyntheticTraceConfig config = paper_workload_config();
    config.num_requests /= 8;
    config.num_documents /= 8;
    config.num_users /= 4;
    config.span = config.span / 8;
    Trace t = generate_synthetic_trace(config);
    print_trace_stats("bu-calibrated/8", t);
    return t;
  });
}

GroupConfig paper_group(std::size_t num_proxies) {
  GroupConfig config;
  config.num_proxies = num_proxies;
  config.replacement = PolicyKind::kLru;
  config.topology = TopologyKind::kDistributed;
  config.latency = LatencyModel::paper_defaults();
  config.pipeline = g_cli_pipeline;
  return config;
}

RunSpec make_spec(GroupConfig config, FaultPlan faults) {
  RunSpec spec;
  spec.group = std::move(config);
  spec.faults = std::move(faults);
  spec.exec.shards = g_cli_shards;
  return spec;
}

void print_banner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("Ramaswamy & Liu, \"A New Document Placement Scheme for\n"
              "Cooperative Caching on the Internet\", ICDCS 2002\n");
  std::printf("================================================================\n");
}

void print_table_and_csv(const TextTable& table) {
  table.print(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

std::string capacity_label(Bytes capacity) { return format_bytes(capacity); }

}  // namespace eacache::bench
