#include "bench_common.h"

#include <cstdio>
#include <iostream>

namespace eacache::bench {

SyntheticTraceConfig paper_workload_config() {
  SyntheticTraceConfig config = SyntheticTraceConfig::bu_calibrated();
  config.seed = 1994;  // the BU traces' vintage
  // Calibration against the paper's published curve shape (§4.2): a
  // steeper popularity skew plus session-level temporal locality are needed
  // to reproduce the BU traces' concentration (their Figure 1 jumps ~20%
  // from 100KB to 1MB but only ~3% from 100MB to 1GB, i.e. the hot set is
  // small relative to the 187MB of unique bytes).
  config.zipf_alpha = 1.0;
  config.repeat_probability = 0.5;
  config.repeat_window = 256;
  return config;
}

namespace {
void print_trace_stats(const char* name, const Trace& trace) {
  const TraceStats stats = compute_stats(trace.requests);
  std::printf("workload %s: %llu requests, %llu unique documents, %llu users, "
              "%s total / %s unique bytes, span %.1f days\n",
              name, static_cast<unsigned long long>(stats.total_requests),
              static_cast<unsigned long long>(stats.unique_documents),
              static_cast<unsigned long long>(stats.unique_users),
              format_bytes(stats.total_bytes).c_str(),
              format_bytes(stats.unique_bytes).c_str(),
              to_seconds(stats.span()) / 86400.0);
}
}  // namespace

const Trace& paper_trace() {
  static const Trace trace = [] {
    Trace t = generate_synthetic_trace(paper_workload_config());
    print_trace_stats("bu-calibrated", t);
    return t;
  }();
  return trace;
}

const Trace& small_trace() {
  static const Trace trace = [] {
    SyntheticTraceConfig config = paper_workload_config();
    config.num_requests /= 8;
    config.num_documents /= 8;
    config.num_users /= 4;
    config.span = config.span / 8;
    Trace t = generate_synthetic_trace(config);
    print_trace_stats("bu-calibrated/8", t);
    return t;
  }();
  return trace;
}

GroupConfig paper_group(std::size_t num_proxies) {
  GroupConfig config;
  config.num_proxies = num_proxies;
  config.replacement = PolicyKind::kLru;
  config.topology = TopologyKind::kDistributed;
  config.latency = LatencyModel::paper_defaults();
  return config;
}

void print_banner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("Ramaswamy & Liu, \"A New Document Placement Scheme for\n"
              "Cooperative Caching on the Internet\", ICDCS 2002\n");
  std::printf("================================================================\n");
}

void print_table_and_csv(const TextTable& table) {
  table.print(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

std::string capacity_label(Bytes capacity) { return format_bytes(capacity); }

}  // namespace eacache::bench
