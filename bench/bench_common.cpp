#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/config.h"

namespace eacache::bench {

namespace {

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--json] [--trace-out FILE] [--no-obs]\n"
               "  --jobs N          sweep worker threads (default: EACACHE_JOBS env,\n"
               "                    then hardware concurrency)\n"
               "  --json            stream one JSON row per completed run\n"
               "  --trace-out FILE  trace request lifecycles on every run; append\n"
               "                    span events to FILE as JSONL (run-labelled)\n"
               "  --no-obs          disable the metric registry and tracing\n",
               argv0);
  std::exit(2);
}

}  // namespace

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.stream_json = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed <= 0) usage_and_exit(argv[0]);
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const long parsed = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (parsed <= 0) usage_and_exit(argv[0]);
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      options.trace_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg == "--no-obs") {
      options.no_obs = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (options.no_obs && !options.trace_out.empty()) {
    std::fprintf(stderr, "%s: --no-obs and --trace-out are mutually exclusive\n", argv[0]);
    std::exit(2);
  }
  return options;
}

SweepOptions sweep_options(const BenchOptions& options) {
  SweepOptions sweep;
  sweep.jobs = options.jobs;
  if (options.no_obs) {
    sweep.obs_override = ObsConfig::disabled();
  } else if (!options.trace_out.empty()) {
    sweep.obs_override = ObsConfig::with_tracing();
  }

  // The trace stream is owned by the sink closure; the sink runs on the
  // caller's thread in submission order, so writes need no locking and runs
  // appear in the file in a deterministic order.
  std::shared_ptr<std::ofstream> trace_stream;
  if (!options.trace_out.empty()) {
    trace_stream = std::make_shared<std::ofstream>(options.trace_out, std::ios::trunc);
    if (!*trace_stream) {
      std::fprintf(stderr, "cannot open trace output file: %s\n", options.trace_out.c_str());
      std::exit(2);
    }
  }

  if (options.stream_json || trace_stream) {
    const bool stream_json = options.stream_json;
    sweep.sink = [stream_json, trace_stream](const SweepRunResult& run) {
      if (stream_json) std::cout << "json," << sweep_run_to_json(run) << '\n';
      if (trace_stream) {
        run.result.trace_log.write_jsonl(*trace_stream, run.label);
        trace_stream->flush();
      }
    };
  }
  return sweep;
}

SweepRunner make_runner(const BenchOptions& options) {
  return SweepRunner(sweep_options(options));
}

SyntheticTraceConfig paper_workload_config() {
  SyntheticTraceConfig config = SyntheticTraceConfig::bu_calibrated();
  config.seed = 1994;  // the BU traces' vintage
  // Calibration against the paper's published curve shape (§4.2): a
  // steeper popularity skew plus session-level temporal locality are needed
  // to reproduce the BU traces' concentration (their Figure 1 jumps ~20%
  // from 100KB to 1MB but only ~3% from 100MB to 1GB, i.e. the hot set is
  // small relative to the 187MB of unique bytes).
  config.zipf_alpha = 1.0;
  config.repeat_probability = 0.5;
  config.repeat_window = 256;
  return config;
}

namespace {
void print_trace_stats(const char* name, const Trace& trace) {
  const TraceStats stats = compute_stats(trace.requests);
  std::printf("workload %s: %llu requests, %llu unique documents, %llu users, "
              "%s total / %s unique bytes, span %.1f days\n",
              name, static_cast<unsigned long long>(stats.total_requests),
              static_cast<unsigned long long>(stats.unique_documents),
              static_cast<unsigned long long>(stats.unique_users),
              format_bytes(stats.total_bytes).c_str(),
              format_bytes(stats.unique_bytes).c_str(),
              to_seconds(stats.span()) / 86400.0);
}
}  // namespace

TraceRef paper_trace() {
  return TraceCache::global().get_or_create("bu-calibrated", [] {
    Trace t = generate_synthetic_trace(paper_workload_config());
    print_trace_stats("bu-calibrated", t);
    return t;
  });
}

TraceRef small_trace() {
  return TraceCache::global().get_or_create("bu-calibrated/8", [] {
    SyntheticTraceConfig config = paper_workload_config();
    config.num_requests /= 8;
    config.num_documents /= 8;
    config.num_users /= 4;
    config.span = config.span / 8;
    Trace t = generate_synthetic_trace(config);
    print_trace_stats("bu-calibrated/8", t);
    return t;
  });
}

GroupConfig paper_group(std::size_t num_proxies) {
  GroupConfig config;
  config.num_proxies = num_proxies;
  config.replacement = PolicyKind::kLru;
  config.topology = TopologyKind::kDistributed;
  config.latency = LatencyModel::paper_defaults();
  return config;
}

void print_banner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("Ramaswamy & Liu, \"A New Document Placement Scheme for\n"
              "Cooperative Caching on the Internet\", ICDCS 2002\n");
  std::printf("================================================================\n");
}

void print_table_and_csv(const TextTable& table) {
  table.print(std::cout);
  std::cout << "-- csv --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

std::string capacity_label(Bytes capacity) { return format_bytes(capacity); }

}  // namespace eacache::bench
