// ABL-FAIL — fault tolerance: inject faults from a FaultPlan and measure
// the damage per scheme. Two fault shapes:
//   * crash  — one proxy loses its whole disk at the trace midpoint and
//              rejoins cold;
//   * outage — the same proxy stays up but answers no ICP probes for the
//              middle half of the trace (transient network partition).
//
// Expected shape: ad-hoc's uncontrolled replication is accidental fault
// tolerance — copies of the lost documents survive elsewhere, so its
// post-crash dip is smaller. The EA scheme trades that redundancy for
// capacity; hash partitioning (exactly one copy per document) is the most
// exposed. This quantifies the availability cost of deduplication.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-FAIL", "Hit-rate cost of proxy crashes and outages mid-trace");
  const TraceRef trace = bench::small_trace();

  FaultPlan crash_plan;
  crash_plan.flushes.push_back({trace->requests[trace->size() / 2].at, 0});

  FaultPlan outage_plan;
  outage_plan.outages.push_back(PeerOutage{
      /*proxy=*/0, trace->requests[trace->size() / 4].at,
      trace->requests[3 * trace->size() / 4].at});

  struct Scheme {
    const char* label;
    PlacementKind placement;
    RoutingMode routing;
  };
  const Scheme schemes[] = {
      {"ad-hoc", PlacementKind::kAdHoc, RoutingMode::kCooperative},
      {"ea", PlacementKind::kEa, RoutingMode::kCooperative},
      {"hash", PlacementKind::kAdHoc, RoutingMode::kHashPartition},
  };

  struct RowMeta {
    Bytes capacity;
    const char* scheme;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB, 100 * kMiB}) {
    for (const Scheme& scheme : schemes) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = capacity;
      config.placement = scheme.placement;
      config.routing = scheme.routing;
      const std::string point =
          std::string(scheme.label) + "@" + bench::capacity_label(capacity);
      runner.add(point + "/clean", bench::make_spec(config), trace);
      runner.add(point + "/crash", bench::make_spec(config, crash_plan), trace);
      runner.add(point + "/outage", bench::make_spec(config, outage_plan), trace);
      rows.push_back({capacity, scheme.label});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "scheme", "hit rate (clean)", "hit rate (crash)",
                   "crash damage", "hit rate (outage)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& clean = runs[3 * i].result;
    const SimulationResult& crash = runs[3 * i + 1].result;
    const SimulationResult& outage = runs[3 * i + 2].result;
    table.add_row({bench::capacity_label(rows[i].capacity), rows[i].scheme,
                   fmt_percent(clean.metrics.hit_rate()),
                   fmt_percent(crash.metrics.hit_rate()),
                   fmt_percent(clean.metrics.hit_rate() - crash.metrics.hit_rate()),
                   fmt_percent(outage.metrics.hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
