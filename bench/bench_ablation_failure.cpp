// ABL-FAIL — failure tolerance: crash-restart one proxy (losing its disk)
// at the midpoint of the trace and measure the damage per scheme.
//
// Expected shape: ad-hoc's uncontrolled replication is accidental fault
// tolerance — copies of the lost documents survive elsewhere, so its
// post-crash dip is smaller. The EA scheme trades that redundancy for
// capacity; hash partitioning (exactly one copy per document) is the most
// exposed. This quantifies the availability cost of deduplication.
#include "bench_common.h"

using namespace eacache;

namespace {

SimulationResult run_with_midpoint_crash(const Trace& trace, const GroupConfig& config) {
  SimulationOptions options;
  options.flush_events.push_back({trace.requests[trace.size() / 2].at, 0});
  return run_simulation(trace, config, options);
}

}  // namespace

int main() {
  bench::print_banner("ABL-FAIL", "Hit-rate cost of losing one proxy's disk mid-trace");
  const Trace& trace = bench::small_trace();

  TextTable table({"aggregate memory", "scheme", "hit rate (clean)", "hit rate (crash)",
                   "damage"});
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB, 100 * kMiB}) {
    struct Scheme {
      const char* label;
      PlacementKind placement;
      RoutingMode routing;
    };
    const Scheme schemes[] = {
        {"ad-hoc", PlacementKind::kAdHoc, RoutingMode::kCooperative},
        {"ea", PlacementKind::kEa, RoutingMode::kCooperative},
        {"hash", PlacementKind::kAdHoc, RoutingMode::kHashPartition},
    };
    for (const Scheme& scheme : schemes) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = capacity;
      config.placement = scheme.placement;
      config.routing = scheme.routing;
      const SimulationResult clean = run_simulation(trace, config);
      const SimulationResult crash = run_with_midpoint_crash(trace, config);
      table.add_row({bench::capacity_label(capacity), scheme.label,
                     fmt_percent(clean.metrics.hit_rate()),
                     fmt_percent(crash.metrics.hit_rate()),
                     fmt_percent(clean.metrics.hit_rate() - crash.metrics.hit_rate())});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
