// ABL-HETERO — heterogeneous cache sizes. The paper splits the aggregate
// disk equally ("disk space available at each cache is X/N bytes"); real
// deployments mix big and small proxies. The EA scheme should exploit the
// asymmetry naturally: the big cache's lower contention (higher expiration
// age) makes it the group's preferred keeper of shared documents.
#include <numeric>

#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-HETERO", "Equal vs skewed capacity splits (same aggregate)");
  const LatencyModel model = LatencyModel::paper_defaults();

  struct Split {
    const char* label;
    std::vector<double> weights;
  };
  const Split splits[] = {
      {"equal 1:1:1:1", {}},
      {"mild 2:1:1:1", {2, 1, 1, 1}},
      {"skewed 4:2:1:1", {4, 2, 1, 1}},
      {"extreme 13:1:1:1", {13, 1, 1, 1}},
  };

  TextTable table({"aggregate memory", "split", "scheme", "hit rate", "latency (ms)",
                   "big-cache share of copies"});
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB}) {
    for (const Split& split : splits) {
      for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
        GroupConfig config = bench::paper_group(4);
        config.aggregate_capacity = capacity;
        config.capacity_weights = split.weights;
        config.placement = placement;
        const SimulationResult result = run_simulation(bench::small_trace(), config);
        const std::size_t total = result.total_resident_copies;
        // Proxy 0 holds the largest share under every skewed split.
        double big_share = 0.0;
        if (total > 0) {
          big_share = static_cast<double>(result.proxy_stats[0].copies_stored) /
                      static_cast<double>(std::max<std::uint64_t>(
                          1, std::accumulate(result.proxy_stats.begin(),
                                             result.proxy_stats.end(), std::uint64_t{0},
                                             [](std::uint64_t acc, const ProxyStats& stats) {
                                               return acc + stats.copies_stored;
                                             })));
        }
        table.add_row({bench::capacity_label(capacity), split.label,
                       std::string(to_string(placement)),
                       fmt_percent(result.metrics.hit_rate()),
                       fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                       fmt_percent(big_share)});
      }
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
