// ABL-HETERO — heterogeneous cache sizes. The paper splits the aggregate
// disk equally ("disk space available at each cache is X/N bytes"); real
// deployments mix big and small proxies. The EA scheme should exploit the
// asymmetry naturally: the big cache's lower contention (higher expiration
// age) makes it the group's preferred keeper of shared documents.
#include <numeric>
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-HETERO", "Equal vs skewed capacity splits (same aggregate)");
  const LatencyModel model = LatencyModel::paper_defaults();
  const TraceRef trace = bench::small_trace();

  struct Split {
    const char* label;
    std::vector<double> weights;
  };
  const Split splits[] = {
      {"equal 1:1:1:1", {}},
      {"mild 2:1:1:1", {2, 1, 1, 1}},
      {"skewed 4:2:1:1", {4, 2, 1, 1}},
      {"extreme 13:1:1:1", {13, 1, 1, 1}},
  };

  struct RowMeta {
    Bytes capacity;
    const char* split;
    PlacementKind placement;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB}) {
    for (const Split& split : splits) {
      for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
        GroupConfig config = bench::paper_group(4);
        config.aggregate_capacity = capacity;
        config.capacity_weights = split.weights;
        config.placement = placement;
        runner.add(std::string(to_string(placement)) + "@" + split.label + "/" +
                       bench::capacity_label(capacity),
                   bench::make_spec(config), trace);
        rows.push_back({capacity, split.label, placement});
      }
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "split", "scheme", "hit rate", "latency (ms)",
                   "big-cache share of copies"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    const std::size_t total = result.total_resident_copies;
    // Proxy 0 holds the largest share under every skewed split.
    double big_share = 0.0;
    if (total > 0) {
      big_share = static_cast<double>(result.proxy_stats[0].copies_stored) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, std::accumulate(result.proxy_stats.begin(),
                                         result.proxy_stats.end(), std::uint64_t{0},
                                         [](std::uint64_t acc, const ProxyStats& stats) {
                                           return acc + stats.copies_stored;
                                         })));
    }
    table.add_row({bench::capacity_label(rows[i].capacity), rows[i].split,
                   std::string(to_string(rows[i].placement)),
                   fmt_percent(result.metrics.hit_rate()),
                   fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                   fmt_percent(big_share)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
