// TAB2 — Paper Table 2: local hit %, remote hit % and estimated latency for
// both schemes across the capacity ladder, 4-cache group.
//
// Expected shape (paper §4.2): EA trades local hits for remote hits (its
// remote-hit column is consistently higher — at 1GB the paper measured
// 32.02% vs 11.06%) while cutting the miss rate at small sizes; the latency
// columns follow Figure 3.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("TAB2", "Ad-hoc vs EA hit split for 4-cache group");
  const LatencyModel model = LatencyModel::paper_defaults();
  const auto points =
      compare_schemes_over_capacities(*bench::paper_trace(), bench::paper_group(4),
                                      paper_capacity_ladder(), bench::sweep_options(opts));

  TextTable table({"aggregate memory", "adhoc local", "adhoc remote", "adhoc latency (ms)",
                   "EA local", "EA remote", "EA latency (ms)"});
  for (const SchemeComparison& point : points) {
    table.add_row(
        {bench::capacity_label(point.aggregate_capacity),
         fmt_percent(point.adhoc.metrics.local_hit_rate()),
         fmt_percent(point.adhoc.metrics.remote_hit_rate()),
         fmt_double(point.adhoc.metrics.estimated_average_latency_ms(model), 1),
         fmt_percent(point.ea.metrics.local_hit_rate()),
         fmt_percent(point.ea.metrics.remote_hit_rate()),
         fmt_double(point.ea.metrics.estimated_average_latency_ms(model), 1)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
