// ABL-DISCOVERY — ICP vs Summary-Cache digests (the paper's §5 names
// Summary Cache [6] as the main alternative to per-miss ICP queries).
//
// Question: does the EA placement scheme survive an APPROXIMATE discovery
// mechanism? Digest snapshots go stale, so some remote hits are missed
// (false negatives) and some probes are wasted (false positives) — but the
// message count drops by orders of magnitude. The table reports, per
// discovery mode and scheme: hit rate, inter-proxy messages, total wire
// bytes and wasted probes.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-DISCOVERY",
                      "ICP vs Summary-Cache digest discovery, ad-hoc and EA schemes");

  const Bytes capacities[] = {1 * kMiB, 10 * kMiB};
  TextTable table({"aggregate memory", "discovery", "scheme", "hit rate", "messages",
                   "wire bytes", "failed probes"});

  for (const Bytes capacity : capacities) {
    for (const DiscoveryMode discovery : {DiscoveryMode::kIcp, DiscoveryMode::kDigest}) {
      GroupConfig base = bench::paper_group(4);
      base.discovery = discovery;
      // Summary-Cache-realistic sizing: the filter covers the per-cache
      // directory (~capacity / mean size) with headroom; snapshots go out
      // hourly (Fan et al. propose update-on-1%-churn; hourly is the same
      // order for this workload).
      base.digest.expected_items = 4096;
      base.digest.refresh_period = hours(1);
      const Bytes ladder[] = {capacity};
      const auto points = compare_schemes_over_capacities(bench::small_trace(), base, ladder);
      const SchemeComparison& point = points[0];
      const auto add = [&](const char* scheme, const SimulationResult& result) {
        table.add_row({bench::capacity_label(capacity),
                       discovery == DiscoveryMode::kIcp ? "icp" : "digest", scheme,
                       fmt_percent(result.metrics.hit_rate()),
                       std::to_string(result.transport.total_messages()),
                       format_bytes(result.transport.total_bytes()),
                       std::to_string(result.transport.failed_probes)});
      };
      add("ad-hoc", point.adhoc);
      add("ea", point.ea);
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
