// ABL-DISCOVERY — ICP vs Summary-Cache digests (the paper's §5 names
// Summary Cache [6] as the main alternative to per-miss ICP queries).
//
// Question: does the EA placement scheme survive an APPROXIMATE discovery
// mechanism? Digest snapshots go stale, so some remote hits are missed
// (false negatives) and some probes are wasted (false positives) — but the
// message count drops by orders of magnitude. The table reports, per
// discovery mode and scheme: hit rate, inter-proxy messages, total wire
// bytes and wasted probes.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-DISCOVERY",
                      "ICP vs Summary-Cache digest discovery, ad-hoc and EA schemes");

  const Bytes capacities[] = {1 * kMiB, 10 * kMiB};
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    Bytes capacity;
    DiscoveryMode discovery;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : capacities) {
    for (const DiscoveryMode discovery : {DiscoveryMode::kIcp, DiscoveryMode::kDigest}) {
      GroupConfig config = bench::paper_group(4);
      config.discovery = discovery;
      config.aggregate_capacity = capacity;
      // Summary-Cache-realistic sizing: the filter covers the per-cache
      // directory (~capacity / mean size) with headroom; snapshots go out
      // hourly (Fan et al. propose update-on-1%-churn; hourly is the same
      // order for this workload).
      config.digest.expected_items = 4096;
      config.digest.refresh_period = hours(1);
      const std::string point = bench::capacity_label(capacity) +
                                (discovery == DiscoveryMode::kIcp ? "/icp" : "/digest");
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, bench::make_spec(config), trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, bench::make_spec(config), trace);
      rows.push_back({capacity, discovery});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "discovery", "scheme", "hit rate", "messages",
                   "wire bytes", "failed probes"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto add = [&](const char* scheme, const SimulationResult& result) {
      table.add_row({bench::capacity_label(rows[i].capacity),
                     rows[i].discovery == DiscoveryMode::kIcp ? "icp" : "digest", scheme,
                     fmt_percent(result.metrics.hit_rate()),
                     std::to_string(result.transport.total_messages()),
                     format_bytes(result.transport.total_bytes()),
                     std::to_string(result.transport.failed_probes)});
    };
    add("ad-hoc", runs[2 * i].result);
    add("ea", runs[2 * i + 1].result);
  }
  bench::print_table_and_csv(table);
  return 0;
}
