// SCALE — Paper §4.1/§4.2 (2, 4 and 8 cache groups): how group size affects
// the EA scheme's advantage. The paper reports the hit-rate gain growing
// with group size at small aggregate sizes (~6.5% for 8 caches at 100KB).
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("SCALE", "EA advantage vs group size (2, 4, 8 caches)");
  const std::size_t group_sizes[] = {2, 4, 8};

  TextTable table({"aggregate memory", "caches", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "ad-hoc byte HR", "EA byte HR"});
  for (const Bytes capacity : paper_capacity_ladder()) {
    GroupConfig base = bench::paper_group();
    base.aggregate_capacity = capacity;
    const auto points =
        compare_schemes_over_group_sizes(bench::paper_trace(), base, group_sizes);
    for (const GroupSizePoint& point : points) {
      table.add_row({bench::capacity_label(capacity), std::to_string(point.num_proxies),
                     fmt_percent(point.adhoc.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate() - point.adhoc.metrics.hit_rate()),
                     fmt_percent(point.adhoc.metrics.byte_hit_rate()),
                     fmt_percent(point.ea.metrics.byte_hit_rate())});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
