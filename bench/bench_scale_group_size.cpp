// SCALE — Paper §4.1/§4.2 (2, 4 and 8 cache groups): how group size affects
// the EA scheme's advantage. The paper reports the hit-rate gain growing
// with group size at small aggregate sizes (~6.5% for 8 caches at 100KB).
//
// The full cross product (5 capacities x 3 group sizes x 2 schemes = 30
// runs) is enqueued as ONE sweep, so `--jobs N` parallelises across every
// dimension at once.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("SCALE", "EA advantage vs group size (2, 4, 8 caches)");
  const std::size_t group_sizes[] = {2, 4, 8};
  const TraceRef trace = bench::paper_trace();

  struct RowMeta {
    Bytes capacity;
    std::size_t caches;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : paper_capacity_ladder()) {
    for (const std::size_t n : group_sizes) {
      GroupConfig config = bench::paper_group(n);
      config.aggregate_capacity = capacity;
      const std::string point = bench::capacity_label(capacity) + "/" + std::to_string(n);
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, config, trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, config, trace);
      rows.push_back({capacity, n});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "caches", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "ad-hoc byte HR", "EA byte HR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& adhoc = runs[2 * i].result;
    const SimulationResult& ea = runs[2 * i + 1].result;
    table.add_row({bench::capacity_label(rows[i].capacity), std::to_string(rows[i].caches),
                   fmt_percent(adhoc.metrics.hit_rate()), fmt_percent(ea.metrics.hit_rate()),
                   fmt_percent(ea.metrics.hit_rate() - adhoc.metrics.hit_rate()),
                   fmt_percent(adhoc.metrics.byte_hit_rate()),
                   fmt_percent(ea.metrics.byte_hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
