// SCALE — Paper §4.1/§4.2 (2, 4 and 8 cache groups): how group size affects
// the EA scheme's advantage. The paper reports the hit-rate gain growing
// with group size at small aggregate sizes (~6.5% for 8 caches at 100KB).
//
// The full cross product (5 capacities x 3 group sizes x 2 schemes = 30
// runs) is enqueued as ONE sweep, so `--jobs N` parallelises across every
// dimension at once.
//
// `--shard-scaling` switches to the metro-scale arm instead: ONE simulation
// of a 1024-leaf three-level hierarchy on the sharded engine (DESIGN.md
// §14) at 1, 2, 4 and 8 shards, printing one machine-readable
// "SHARD_SCALING shards=K ..." line per point. check_bench_regression.py
// records the rates in BENCH_baseline.json and, on machines with >= 8
// CPUs, gates the 8-shard speedup at 3x over 1 shard.
#include <cstdio>

#include "bench_common.h"

using namespace eacache;

namespace {

/// The metro-scale hierarchy the ROADMAP targets: 1024 client-facing leaves
/// in clusters of 16 under 64 mid caches under one root (1089 caches).
GroupConfig metro_group() {
  GroupConfig config;
  std::vector<std::optional<ProxyId>> parents(1089);
  for (ProxyId leaf = 0; leaf < 1024; ++leaf) parents[leaf] = static_cast<ProxyId>(1024 + leaf / 16);
  for (ProxyId mid = 1024; mid < 1088; ++mid) parents[mid] = 1088;
  parents[1088] = std::nullopt;
  config.topology = TopologyKind::kHierarchical;
  config.custom_parents = std::move(parents);
  config.aggregate_capacity = 64 * kMiB;
  config.replacement = PolicyKind::kLru;
  config.placement = PlacementKind::kEa;
  config.latency = LatencyModel::paper_defaults();
  return config;
}

int run_shard_scaling() {
  bench::print_banner("SCALE-SHARDS",
                      "Sharded-engine throughput, 1024-leaf hierarchy (1089 caches)");
  // Dense short-span workload: the conservative-window count is span /
  // lookahead, so a compact burst measures engine throughput instead of
  // barrier spinning over empty simulated months.
  SyntheticTraceConfig workload;
  workload.seed = 1024;
  workload.num_requests = 60'000;
  workload.num_documents = 6'000;
  workload.num_users = 4'096;
  workload.span = minutes(2);
  const Trace trace = generate_synthetic_trace(workload);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    RunSpec spec;
    spec.group = metro_group();
    spec.exec.shards = shards;
    PhaseTimings timings;
    const SimulationResult result = run(trace, spec, &timings);
    const double rps =
        timings.sim_ms > 0 ? 1000.0 * static_cast<double>(trace.size()) / timings.sim_ms : 0.0;
    std::printf("SHARD_SCALING shards=%zu requests=%llu hit_rate=%.4f sim_ms=%.1f rps=%.0f\n",
                shards, static_cast<unsigned long long>(result.metrics.total_requests()),
                result.metrics.hit_rate(), timings.sim_ms, rps);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the arm selector before the shared declarative parser sees it.
  bool shard_scaling = false;
  std::vector<char*> forwarded;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--shard-scaling") {
      shard_scaling = true;
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  const bench::BenchOptions opts =
      bench::parse_args(static_cast<int>(forwarded.size()), forwarded.data());
  if (shard_scaling) return run_shard_scaling();
  bench::print_banner("SCALE", "EA advantage vs group size (2, 4, 8 caches)");
  const std::size_t group_sizes[] = {2, 4, 8};
  const TraceRef trace = bench::paper_trace();

  struct RowMeta {
    Bytes capacity;
    std::size_t caches;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : paper_capacity_ladder()) {
    for (const std::size_t n : group_sizes) {
      GroupConfig config = bench::paper_group(n);
      config.aggregate_capacity = capacity;
      const std::string point = bench::capacity_label(capacity) + "/" + std::to_string(n);
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, bench::make_spec(config), trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, bench::make_spec(config), trace);
      rows.push_back({capacity, n});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "caches", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "ad-hoc byte HR", "EA byte HR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& adhoc = runs[2 * i].result;
    const SimulationResult& ea = runs[2 * i + 1].result;
    table.add_row({bench::capacity_label(rows[i].capacity), std::to_string(rows[i].caches),
                   fmt_percent(adhoc.metrics.hit_rate()), fmt_percent(ea.metrics.hit_rate()),
                   fmt_percent(ea.metrics.hit_rate() - adhoc.metrics.hit_rate()),
                   fmt_percent(adhoc.metrics.byte_hit_rate()),
                   fmt_percent(ea.metrics.byte_hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
