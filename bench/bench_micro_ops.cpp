// MICRO — google-benchmark microbenchmarks for the hot paths: cache-store
// operations under each replacement policy, Zipf sampling, synthetic trace
// generation and whole-group request serving. These guard the simulator's
// throughput (the full BU-scale sweeps replay ~11.5M requests per bench
// binary) rather than reproducing a paper artifact.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/zipf.h"
#include "digest/counting_bloom.h"
#include "group/cache_group.h"
#include "net/icp_codec.h"
#include "storage/cache_store.h"
#include "trace/analysis.h"
#include "trace/synthetic.h"

namespace eacache {
namespace {

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 0.75);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(46830)->Arg(1000000);

void BM_CacheStoreChurn(benchmark::State& state) {
  const PolicyKind kind = static_cast<PolicyKind>(state.range(0));
  CacheStore store(64 * kKiB, make_policy(kind));
  Rng rng(2);
  TimePoint now = kSimEpoch;
  for (auto _ : state) {
    now += msec(1);
    const DocumentId id = rng.next_below(4096);
    if (!store.touch(id, now).has_value()) {
      store.admit({id, 1 * kKiB}, now);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheStoreChurn)
    ->Arg(static_cast<int>(PolicyKind::kLru))
    ->Arg(static_cast<int>(PolicyKind::kLfu))
    ->Arg(static_cast<int>(PolicyKind::kSizeBiggestFirst))
    ->Arg(static_cast<int>(PolicyKind::kGreedyDualSize));

void BM_SyntheticTraceGeneration(benchmark::State& state) {
  SyntheticTraceConfig config;
  config.num_requests = static_cast<std::uint64_t>(state.range(0));
  config.num_documents = config.num_requests / 12;
  config.num_users = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_synthetic_trace(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticTraceGeneration)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_GroupServe(benchmark::State& state) {
  const auto placement = static_cast<PlacementKind>(state.range(0));
  SyntheticTraceConfig trace_config;
  trace_config.num_requests = 50000;
  trace_config.num_documents = 5000;
  trace_config.num_users = 64;
  const Trace trace = generate_synthetic_trace(trace_config);

  GroupConfig config;
  config.num_proxies = 4;
  config.aggregate_capacity = 2 * kMiB;
  config.placement = placement;
  for (auto _ : state) {
    CacheGroup group(config);
    for (const Request& request : trace.requests) {
      group.serve(request);
    }
    benchmark::DoNotOptimize(group.metrics().hit_rate());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_GroupServe)
    ->Arg(static_cast<int>(PlacementKind::kAdHoc))
    ->Arg(static_cast<int>(PlacementKind::kEa))
    ->Unit(benchmark::kMillisecond);

void BM_CountingBloomChurn(benchmark::State& state) {
  CountingBloomFilter filter(1 << 16, 7);
  Rng rng(3);
  std::vector<DocumentId> resident;
  for (auto _ : state) {
    const DocumentId id = rng.next();
    filter.insert(id);
    resident.push_back(id);
    if (resident.size() > 4096) {
      filter.remove(resident.front());
      resident.erase(resident.begin());
    }
    benchmark::DoNotOptimize(filter.maybe_contains(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountingBloomChurn);

void BM_IcpCodecRoundTrip(benchmark::State& state) {
  IcpPacket packet;
  packet.opcode = IcpOpcode::kQuery;
  packet.request_number = 7;
  packet.sender_address = 1;
  packet.requester_address = 2;
  packet.url = "http://www.cs.bu.edu/students/grads/index.html";
  for (auto _ : state) {
    const auto bytes = icp_encode(packet);
    benchmark::DoNotOptimize(icp_decode(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IcpCodecRoundTrip);

void BM_StackDistances(benchmark::State& state) {
  SyntheticTraceConfig config;
  config.num_requests = static_cast<std::uint64_t>(state.range(0));
  config.num_documents = config.num_requests / 10;
  config.num_users = 32;
  const Trace trace = generate_synthetic_trace(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_stack_distances(trace.requests));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StackDistances)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eacache

BENCHMARK_MAIN();
