// FIG2 — Paper Figure 2: cumulative byte hit rate vs aggregate cache size,
// ad-hoc vs EA, 4-cache distributed group.
//
// Expected shape (paper §4.2): "byte hit rate patterns are similar to those
// of document hit rates" — EA higher everywhere, gap largest at small sizes
// (~4% at 100KB, ~1.5% at 100MB for 8 caches).
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("FIG2", "Byte hit rates for 4-cache group");
  const auto points =
      compare_schemes_over_capacities(*bench::paper_trace(), bench::paper_group(4),
                                      paper_capacity_ladder(), bench::sweep_options(opts));

  TextTable table(
      {"aggregate memory", "ad-hoc byte hit rate", "EA byte hit rate", "EA - ad-hoc"});
  for (const SchemeComparison& point : points) {
    table.add_row(
        {bench::capacity_label(point.aggregate_capacity),
         fmt_percent(point.adhoc.metrics.byte_hit_rate()),
         fmt_percent(point.ea.metrics.byte_hit_rate()),
         fmt_percent(point.ea.metrics.byte_hit_rate() - point.adhoc.metrics.byte_hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
