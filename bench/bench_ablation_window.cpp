// ABL-WINDOW — Paper Eq. 5 defines CacheExpAge over "a finite time
// duration" without fixing the window. This ablation sweeps the estimator:
// cumulative, last-N-victims (N in {16, 64, 256, 1024}) and sliding time
// windows (1h, 6h, 24h), measuring how sensitive the EA scheme's gains are
// to the choice.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-WINDOW", "Sensitivity of EA gains to the expiration-age window");

  struct Option {
    std::string label;
    WindowConfig window;
  };
  const std::vector<Option> options = {
      {"cumulative", WindowConfig::cumulative()},
      {"victims-16", WindowConfig::victims(16)},
      {"victims-64", WindowConfig::victims(64)},
      {"victims-256", WindowConfig::victims(256)},
      {"victims-1024", WindowConfig::victims(1024)},
      {"time-1h", WindowConfig::time(hours(1))},
      {"time-6h", WindowConfig::time(hours(6))},
      {"time-24h", WindowConfig::time(hours(24))},
  };
  const Bytes capacities[] = {1 * kMiB, 10 * kMiB};
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    std::string label;
    Bytes capacity;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Option& option : options) {
    for (const Bytes capacity : capacities) {
      GroupConfig config = bench::paper_group(4);
      config.window = option.window;
      config.aggregate_capacity = capacity;
      const std::string point = option.label + "/" + bench::capacity_label(capacity);
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, bench::make_spec(config), trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, bench::make_spec(config), trace);
      rows.push_back({option.label, capacity});
    }
  }
  const auto runs = runner.run();

  TextTable table({"window", "aggregate memory", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "EA replication"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& adhoc = runs[2 * i].result;
    const SimulationResult& ea = runs[2 * i + 1].result;
    table.add_row({rows[i].label, bench::capacity_label(rows[i].capacity),
                   fmt_percent(adhoc.metrics.hit_rate()), fmt_percent(ea.metrics.hit_rate()),
                   fmt_percent(ea.metrics.hit_rate() - adhoc.metrics.hit_rate()),
                   fmt_double(ea.replication_factor, 3)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
