// ABL-WINDOW — Paper Eq. 5 defines CacheExpAge over "a finite time
// duration" without fixing the window. This ablation sweeps the estimator:
// cumulative, last-N-victims (N in {16, 64, 256, 1024}) and sliding time
// windows (1h, 6h, 24h), measuring how sensitive the EA scheme's gains are
// to the choice.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-WINDOW", "Sensitivity of EA gains to the expiration-age window");

  struct Option {
    std::string label;
    WindowConfig window;
  };
  const std::vector<Option> options = {
      {"cumulative", WindowConfig::cumulative()},
      {"victims-16", WindowConfig::victims(16)},
      {"victims-64", WindowConfig::victims(64)},
      {"victims-256", WindowConfig::victims(256)},
      {"victims-1024", WindowConfig::victims(1024)},
      {"time-1h", WindowConfig::time(hours(1))},
      {"time-6h", WindowConfig::time(hours(6))},
      {"time-24h", WindowConfig::time(hours(24))},
  };
  const Bytes capacities[] = {1 * kMiB, 10 * kMiB};

  TextTable table({"window", "aggregate memory", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "EA replication"});
  for (const Option& option : options) {
    GroupConfig base = bench::paper_group(4);
    base.window = option.window;
    const auto points = compare_schemes_over_capacities(bench::small_trace(), base, capacities);
    for (const SchemeComparison& point : points) {
      table.add_row({option.label, bench::capacity_label(point.aggregate_capacity),
                     fmt_percent(point.adhoc.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate() - point.adhoc.metrics.hit_rate()),
                     fmt_double(point.ea.replication_factor, 3)});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
