// BASE-HASH — placement-scheme head-to-head the paper's introduction
// motivates: conventional ad-hoc replication, the EA scheme, and the
// consistent-hashing partition baseline (paper refs. [8], [16]).
//
// Expected shape: hash partitioning maximises unique documents (zero
// replication) so its HIT RATE can exceed both replicating schemes under
// contention — but nearly every hit is remote, so its LATENCY loses badly
// whenever remote hits are much slower than local ones. The EA scheme sits
// between: controlled replication keeps latency low while recovering much
// of the dedup benefit.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("BASE-HASH",
                      "Ad-hoc vs EA vs consistent-hash partitioning (4-cache group)");
  const LatencyModel model = LatencyModel::paper_defaults();

  TextTable table({"aggregate memory", "scheme", "hit rate", "local", "remote",
                   "latency (ms)", "replication"});
  for (const Bytes capacity : paper_capacity_ladder()) {
    GroupConfig base = bench::paper_group(4);
    base.aggregate_capacity = capacity;

    const auto add = [&](const char* label, const SimulationResult& result) {
      table.add_row({bench::capacity_label(capacity), label,
                     fmt_percent(result.metrics.hit_rate()),
                     fmt_percent(result.metrics.local_hit_rate()),
                     fmt_percent(result.metrics.remote_hit_rate()),
                     fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                     fmt_double(result.replication_factor, 3)});
    };

    base.placement = PlacementKind::kAdHoc;
    add("ad-hoc", run_simulation(bench::paper_trace(), base));
    base.placement = PlacementKind::kEa;
    add("ea", run_simulation(bench::paper_trace(), base));
    base.placement = PlacementKind::kAdHoc;
    base.routing = RoutingMode::kHashPartition;
    add("hash", run_simulation(bench::paper_trace(), base));
  }
  bench::print_table_and_csv(table);
  return 0;
}
