// BASE-HASH — placement-scheme head-to-head the paper's introduction
// motivates: conventional ad-hoc replication, the EA scheme, and the
// consistent-hashing partition baseline (paper refs. [8], [16]).
//
// Expected shape: hash partitioning maximises unique documents (zero
// replication) so its HIT RATE can exceed both replicating schemes under
// contention — but nearly every hit is remote, so its LATENCY loses badly
// whenever remote hits are much slower than local ones. The EA scheme sits
// between: controlled replication keeps latency low while recovering much
// of the dedup benefit.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("BASE-HASH",
                      "Ad-hoc vs EA vs consistent-hash partitioning (4-cache group)");
  const LatencyModel model = LatencyModel::paper_defaults();
  const TraceRef trace = bench::paper_trace();

  struct RowMeta {
    Bytes capacity;
    const char* scheme;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : paper_capacity_ladder()) {
    GroupConfig base = bench::paper_group(4);
    base.aggregate_capacity = capacity;

    base.placement = PlacementKind::kAdHoc;
    runner.add("adhoc@" + bench::capacity_label(capacity), bench::make_spec(base), trace);
    rows.push_back({capacity, "ad-hoc"});
    base.placement = PlacementKind::kEa;
    runner.add("ea@" + bench::capacity_label(capacity), bench::make_spec(base), trace);
    rows.push_back({capacity, "ea"});
    base.placement = PlacementKind::kAdHoc;
    base.routing = RoutingMode::kHashPartition;
    runner.add("hash@" + bench::capacity_label(capacity), bench::make_spec(base), trace);
    rows.push_back({capacity, "hash"});
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "scheme", "hit rate", "local", "remote",
                   "latency (ms)", "replication"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    table.add_row({bench::capacity_label(rows[i].capacity), rows[i].scheme,
                   fmt_percent(result.metrics.hit_rate()),
                   fmt_percent(result.metrics.local_hit_rate()),
                   fmt_percent(result.metrics.remote_hit_rate()),
                   fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                   fmt_double(result.replication_factor, 3)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
