// FIG1 — Paper Figure 1: cumulative document hit rate vs aggregate cache
// size, ad-hoc vs EA, 4-cache distributed group, LRU replacement.
//
// Expected shape (paper §4.2): EA's hit rate is higher everywhere, with the
// largest gap at small cache sizes, shrinking as the aggregate cache grows
// (the paper quotes ~6.5% at 100KB down to ~2.5% at 100MB for 8 caches).
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("FIG1", "Document hit rates for 4-cache group");
  const auto points =
      compare_schemes_over_capacities(*bench::paper_trace(), bench::paper_group(4),
                                      paper_capacity_ladder(), bench::sweep_options(opts));

  TextTable table({"aggregate memory", "ad-hoc hit rate", "EA hit rate", "EA - ad-hoc"});
  for (const SchemeComparison& point : points) {
    table.add_row({bench::capacity_label(point.aggregate_capacity),
                   fmt_percent(point.adhoc.metrics.hit_rate()),
                   fmt_percent(point.ea.metrics.hit_rate()),
                   fmt_percent(point.ea.metrics.hit_rate() - point.adhoc.metrics.hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
