// ABL-RATIO — Paper §1 asks "how does the document placement scheme relate
// to the ratio of the inter-proxy communication time to server fetch time?"
// This ablation answers it: sweep RHL/ML while holding the hit-rate split
// fixed (one simulation per scheme per capacity; Eq. 6 re-evaluated under
// each ratio) and report where the EA-vs-ad-hoc latency sign flips.
//
// Expectation: EA wins whenever misses are much more expensive than remote
// hits (small ratio); as remote hits approach miss cost, EA's extra remote
// traffic erodes the advantage — the crossover moves earlier at large cache
// sizes where the miss-rate gap is small.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-RATIO",
                      "EA latency advantage vs remote-hit/miss latency ratio (Eq. 6 sweep)");

  const double ratios[] = {0.05, 0.123, 0.25, 0.5, 0.75, 1.0};
  const Bytes capacities[] = {1 * kMiB, 10 * kMiB, 100 * kMiB};
  const auto points =
      compare_schemes_over_capacities(*bench::small_trace(), bench::paper_group(4),
                                      capacities, bench::sweep_options(opts));

  TextTable table({"aggregate memory", "RHL/ML ratio", "RHL (ms)", "ad-hoc latency (ms)",
                   "EA latency (ms)", "EA - ad-hoc (ms)", "EA wins"});
  for (const SchemeComparison& point : points) {
    for (const double ratio : ratios) {
      const LatencyModel model = LatencyModel::with_remote_to_miss_ratio(ratio);
      const double adhoc_ms = point.adhoc.metrics.estimated_average_latency_ms(model);
      const double ea_ms = point.ea.metrics.estimated_average_latency_ms(model);
      table.add_row({bench::capacity_label(point.aggregate_capacity), fmt_double(ratio, 3),
                     fmt_double(static_cast<double>(model.remote_hit.count()), 0),
                     fmt_double(adhoc_ms, 1), fmt_double(ea_ms, 1),
                     fmt_double(ea_ms - adhoc_ms, 1), ea_ms < adhoc_ms ? "yes" : "no"});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
