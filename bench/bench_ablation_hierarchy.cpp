// ABL-HIER — Paper §3.3 describes the EA algorithm for the hierarchical
// architecture but evaluates only the distributed one. This ablation runs
// both topologies head-to-head: 4 client-facing caches, with the
// hierarchical variant adding a parent cache that shares the same aggregate
// budget (5 equal shares instead of 4).
//
// Expectation: EA beats ad-hoc under BOTH architectures (the scheme is
// architecture-independent); the hierarchy's extra level trades some leaf
// capacity for a shared parent.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-HIER", "EA vs ad-hoc under distributed and hierarchical topologies");

  TextTable table({"aggregate memory", "topology", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "ad-hoc miss", "EA miss"});
  for (const Bytes capacity : paper_capacity_ladder()) {
    for (const TopologyKind topology :
         {TopologyKind::kDistributed, TopologyKind::kHierarchical}) {
      GroupConfig base = bench::paper_group(4);
      base.topology = topology;
      const Bytes capacities[] = {capacity};
      const auto points =
          compare_schemes_over_capacities(bench::small_trace(), base, capacities);
      const SchemeComparison& point = points[0];
      table.add_row(
          {bench::capacity_label(capacity),
           topology == TopologyKind::kDistributed ? "distributed" : "hierarchical",
           fmt_percent(point.adhoc.metrics.hit_rate()),
           fmt_percent(point.ea.metrics.hit_rate()),
           fmt_percent(point.ea.metrics.hit_rate() - point.adhoc.metrics.hit_rate()),
           fmt_percent(point.adhoc.metrics.miss_rate()),
           fmt_percent(point.ea.metrics.miss_rate())});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
