// ABL-HIER — Paper §3.3 describes the EA algorithm for the hierarchical
// architecture but evaluates only the distributed one. This ablation runs
// both topologies head-to-head: 4 client-facing caches, with the
// hierarchical variant adding a parent cache that shares the same aggregate
// budget (5 equal shares instead of 4).
//
// Expectation: EA beats ad-hoc under BOTH architectures (the scheme is
// architecture-independent); the hierarchy's extra level trades some leaf
// capacity for a shared parent.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-HIER", "EA vs ad-hoc under distributed and hierarchical topologies");
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    Bytes capacity;
    TopologyKind topology;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : paper_capacity_ladder()) {
    for (const TopologyKind topology :
         {TopologyKind::kDistributed, TopologyKind::kHierarchical}) {
      GroupConfig config = bench::paper_group(4);
      config.topology = topology;
      config.aggregate_capacity = capacity;
      const std::string point =
          bench::capacity_label(capacity) +
          (topology == TopologyKind::kDistributed ? "/dist" : "/hier");
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, bench::make_spec(config), trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, bench::make_spec(config), trace);
      rows.push_back({capacity, topology});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "topology", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc", "ad-hoc miss", "EA miss"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& adhoc = runs[2 * i].result;
    const SimulationResult& ea = runs[2 * i + 1].result;
    table.add_row(
        {bench::capacity_label(rows[i].capacity),
         rows[i].topology == TopologyKind::kDistributed ? "distributed" : "hierarchical",
         fmt_percent(adhoc.metrics.hit_rate()), fmt_percent(ea.metrics.hit_rate()),
         fmt_percent(ea.metrics.hit_rate() - adhoc.metrics.hit_rate()),
         fmt_percent(adhoc.metrics.miss_rate()), fmt_percent(ea.metrics.miss_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
