// ABL-COHERENCE — the paper evaluates placement with immutable documents;
// its related-work section points at cache coherence as the neighbouring
// problem. This ablation runs TTL + If-Modified-Since coherence on top of
// both placement schemes and sweeps the freshness TTL.
//
// Expected shape: a short TTL buys freshness (near-zero stale serves) at
// the cost of validation traffic; a long TTL inverts the trade. The EA
// scheme's hit-rate advantage must survive coherence — placement and
// freshness are orthogonal concerns.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-COHERENCE",
                      "Placement schemes under TTL + If-Modified-Since coherence");
  const TraceRef trace = bench::small_trace();

  struct Rule {
    std::string label;
    CoherenceConfig coherence;
  };
  std::vector<Rule> rules;
  // Fixed-TTL sweep (the classic freshness trade)...
  for (const Duration ttl : {minutes(15), hours(1), hours(6), hours(24), hours(24 * 7)}) {
    CoherenceConfig coherence;
    coherence.rule = FreshnessRule::kFixedTtl;
    coherence.fresh_ttl = ttl;
    rules.push_back({"ttl " + format_duration(ttl), coherence});
  }
  // ...and Squid's adaptive LM-factor rule, which should dominate any
  // single fixed TTL on the validations-vs-staleness frontier.
  for (const double factor : {0.05, 0.1, 0.2, 0.5}) {
    CoherenceConfig coherence;
    coherence.rule = FreshnessRule::kLmFactor;
    coherence.lm_factor = factor;
    rules.push_back({"lm-factor " + fmt_double(factor, 2), coherence});
  }

  SweepRunner runner = bench::make_runner(opts);
  for (const Rule& rule : rules) {
    GroupConfig config = bench::paper_group(4);
    config.coherence = rule.coherence;
    config.coherence.enabled = true;
    config.origin.min_update_interval = hours(12);
    config.origin.max_update_interval = hours(24 * 60);
    config.aggregate_capacity = 10 * kMiB;
    config.placement = PlacementKind::kAdHoc;
    runner.add("adhoc@" + rule.label, bench::make_spec(config), trace);
    config.placement = PlacementKind::kEa;
    runner.add("ea@" + rule.label, bench::make_spec(config), trace);
  }
  const auto runs = runner.run();

  TextTable table({"freshness rule", "scheme", "hit rate", "validations", "304 share",
                   "stale served", "latency (ms)"});
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const auto add = [&](const char* scheme, const SimulationResult& result) {
      const double share =
          result.coherence.validations > 0
              ? static_cast<double>(result.coherence.validated_304) /
                    static_cast<double>(result.coherence.validations)
              : 0.0;
      table.add_row({rules[i].label, scheme, fmt_percent(result.metrics.hit_rate()),
                     std::to_string(result.coherence.validations), fmt_percent(share),
                     std::to_string(result.coherence.stale_served),
                     fmt_double(result.metrics.estimated_average_latency_ms(LatencyModel{}), 1)});
    };
    add("ad-hoc", runs[2 * i].result);
    add("ea", runs[2 * i + 1].result);
  }
  bench::print_table_and_csv(table);
  return 0;
}
