// ABL-COHERENCE — the paper evaluates placement with immutable documents;
// its related-work section points at cache coherence as the neighbouring
// problem. This ablation runs TTL + If-Modified-Since coherence on top of
// both placement schemes and sweeps the freshness TTL.
//
// Expected shape: a short TTL buys freshness (near-zero stale serves) at
// the cost of validation traffic; a long TTL inverts the trade. The EA
// scheme's hit-rate advantage must survive coherence — placement and
// freshness are orthogonal concerns.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-COHERENCE",
                      "Placement schemes under TTL + If-Modified-Since coherence");

  TextTable table({"freshness rule", "scheme", "hit rate", "validations", "304 share",
                   "stale served", "latency (ms)"});

  const auto run_point = [&](const std::string& label, const CoherenceConfig& coherence) {
    GroupConfig base = bench::paper_group(4);
    base.coherence = coherence;
    base.coherence.enabled = true;
    base.origin.min_update_interval = hours(12);
    base.origin.max_update_interval = hours(24 * 60);
    const Bytes ladder[] = {10 * kMiB};
    const auto points = compare_schemes_over_capacities(bench::small_trace(), base, ladder);
    const SchemeComparison& point = points[0];

    const auto add = [&](const char* scheme, const SimulationResult& result) {
      const double share =
          result.coherence.validations > 0
              ? static_cast<double>(result.coherence.validated_304) /
                    static_cast<double>(result.coherence.validations)
              : 0.0;
      table.add_row({label, scheme, fmt_percent(result.metrics.hit_rate()),
                     std::to_string(result.coherence.validations), fmt_percent(share),
                     std::to_string(result.coherence.stale_served),
                     fmt_double(result.metrics.estimated_average_latency_ms(LatencyModel{}), 1)});
    };
    add("ad-hoc", point.adhoc);
    add("ea", point.ea);
  };

  // Fixed-TTL sweep (the classic freshness trade)...
  for (const Duration ttl : {minutes(15), hours(1), hours(6), hours(24), hours(24 * 7)}) {
    CoherenceConfig coherence;
    coherence.rule = FreshnessRule::kFixedTtl;
    coherence.fresh_ttl = ttl;
    run_point("ttl " + format_duration(ttl), coherence);
  }
  // ...and Squid's adaptive LM-factor rule, which should dominate any
  // single fixed TTL on the validations-vs-staleness frontier.
  for (const double factor : {0.05, 0.1, 0.2, 0.5}) {
    CoherenceConfig coherence;
    coherence.rule = FreshnessRule::kLmFactor;
    coherence.lm_factor = factor;
    run_point("lm-factor " + fmt_double(factor, 2), coherence);
  }
  bench::print_table_and_csv(table);
  return 0;
}
