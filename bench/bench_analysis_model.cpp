// ANALYSIS — the paper's §4 defers a mathematical analysis ("the EA scheme
// utilizes the aggregate memory available in the group more effectively")
// to an unavailable technical report [11]. This bench substantiates the
// claim with the standard analytic LRU model (Che's approximation):
//
//   a cooperative group with steady-state replication factor r behaves
//   like ONE LRU cache of aggregate/r unique slots.
//
// For each scheme we feed the group's MEASURED replication factor into the
// model and compare the predicted hit rate with the simulated one. If the
// effective-capacity story is right, the model should track both schemes —
// and it does, which reduces the EA advantage to a single number: how much
// r it shaves off.
//
// (Stationary Zipf workload, uniform sizes: the IRM setting the model
// assumes. See tests/analysis for the single-cache validation.)
#include <vector>

#include "analysis/che_approximation.h"
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ANALYSIS",
                      "Effective-capacity model (Che) vs simulated group hit rates");

  constexpr std::size_t kDocs = 8000;
  constexpr double kAlpha = 0.9;
  constexpr double kMeanSize = 4096.0;

  const TraceRef trace = TraceCache::global().get_or_create("analysis-irm", [] {
    SyntheticTraceConfig workload;
    workload.num_requests = 300'000;
    workload.num_documents = kDocs;
    workload.num_users = 128;
    workload.span = hours(72);
    workload.zipf_alpha = kAlpha;
    workload.repeat_probability = 0.0;  // IRM
    workload.size_sigma = 0.01;         // uniform ~4 KiB bodies
    workload.pareto_tail_probability = 0.0;
    return generate_synthetic_trace(workload);
  });

  CheModel model;
  model.popularity = zipf_popularity(kDocs, kAlpha);

  struct RowMeta {
    Bytes capacity;
    PlacementKind placement;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : {2 * kMiB, 8 * kMiB, 24 * kMiB}) {
    for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
      GroupConfig config;
      config.num_proxies = 4;
      config.aggregate_capacity = capacity;
      config.placement = placement;
      runner.add(std::string(to_string(placement)) + "@" + bench::capacity_label(capacity),
                 bench::make_spec(config), trace);
      rows.push_back({capacity, placement});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "scheme", "replication r", "simulated hit rate",
                   "model (agg/r)", "model error"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& sim = runs[i].result;
    const double aggregate_objects = static_cast<double>(rows[i].capacity) / kMeanSize;
    const double r = sim.replication_factor > 1.0 ? sim.replication_factor : 1.0;
    const CheResult analytic = che_group(model, aggregate_objects, r);

    table.add_row({bench::capacity_label(rows[i].capacity),
                   std::string(to_string(rows[i].placement)), fmt_double(r, 3),
                   fmt_percent(sim.metrics.hit_rate()), fmt_percent(analytic.hit_rate),
                   fmt_percent(analytic.hit_rate - sim.metrics.hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
