// FIG3 — Paper Figure 3: estimated average document latency (paper Eq. 6)
// vs aggregate cache size, ad-hoc vs EA, 4-cache distributed group, using
// the paper's measured constants LHL=146ms, RHL=342ms, ML=2784ms.
//
// Expected shape (paper §4.2): EA clearly better at 100KB-10MB (miss
// latency dominates and EA cuts misses); approximately equal at 100MB; at
// 1GB ad-hoc can edge ahead because EA serves far more REMOTE hits (the
// paper measured EA 32.02% vs ad-hoc 11.06% remote hits at 1GB with only a
// 0.6% miss-rate gap).
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("FIG3", "Estimated average latency for 4-cache group (Eq. 6)");
  const LatencyModel model = LatencyModel::paper_defaults();
  const auto points =
      compare_schemes_over_capacities(*bench::paper_trace(), bench::paper_group(4),
                                      paper_capacity_ladder(), bench::sweep_options(opts));

  TextTable table({"aggregate memory", "ad-hoc latency (ms)", "EA latency (ms)",
                   "EA - ad-hoc (ms)", "ad-hoc p75/p90", "EA p75/p90"});
  for (const SchemeComparison& point : points) {
    const double adhoc_ms = point.adhoc.metrics.estimated_average_latency_ms(model);
    const double ea_ms = point.ea.metrics.estimated_average_latency_ms(model);
    const auto tail = [](const GroupMetrics& metrics) {
      return fmt_double(metrics.latency_percentile_ms(0.75), 0) + "/" +
             fmt_double(metrics.latency_percentile_ms(0.90), 0);
    };
    table.add_row({bench::capacity_label(point.aggregate_capacity), fmt_double(adhoc_ms, 1),
                   fmt_double(ea_ms, 1), fmt_double(ea_ms - adhoc_ms, 1),
                   tail(point.adhoc.metrics), tail(point.ea.metrics)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
