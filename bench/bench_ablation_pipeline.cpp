// ABL-PIPE — event-driven pipeline ablation: the legacy synchronous driver
// vs the staged pipeline (DESIGN.md §9) with its knobs toggled one at a
// time, swept over ICP loss rates.
//
// Expected shape: with no loss the pipeline's measured latency matches the
// legacy charged latency (same stage delays, no contention on this
// single-stream trace). Under loss the pipeline pays real discovery
// timeouts, so latency climbs steeply; retries convert a slice of those
// timeouts back into remote hits (recoveries) at the cost of extra probe
// rounds; coalescing collapses concurrent same-document misses and shows up
// as joins. Hit rates barely move — the knobs trade latency and origin
// traffic, not cache contents.
#include <string>
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-PIPE",
                      "Legacy driver vs staged pipeline under ICP loss");
  const TraceRef trace = bench::small_trace();

  struct Arm {
    const char* label;
    bool event_driven;
    std::uint32_t retries;
    bool coalesce;
  };
  const Arm arms[] = {
      {"legacy", false, 0, false},
      {"pipeline", true, 0, false},
      {"pipeline+retry2", true, 2, false},
      {"pipeline+coalesce", true, 0, true},
  };
  const double loss_rates[] = {0.0, 0.1, 0.3};

  SweepRunner runner = bench::make_runner(opts);
  for (const double loss : loss_rates) {
    for (const Arm& arm : arms) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = 10 * kMiB;
      config.icp_loss_probability = loss;
      config.pipeline.event_driven = arm.event_driven;
      config.pipeline.icp_retries = arm.retries;
      config.pipeline.coalesce = arm.coalesce;
      runner.add(std::string(arm.label) + "@loss=" + fmt_percent(loss), bench::make_spec(config), trace);
    }
  }
  const auto runs = runner.run();

  TextTable table({"icp loss", "driver", "hit rate", "avg latency (ms)",
                   "timeouts", "retries", "recoveries", "joins", "max in-flight"});
  std::size_t i = 0;
  for (const double loss : loss_rates) {
    for (const Arm& arm : arms) {
      const SimulationResult& result = runs[i++].result;
      const PipelineStats& pipe = result.pipeline;
      table.add_row({fmt_percent(loss), arm.label,
                     fmt_percent(result.metrics.hit_rate()),
                     fmt_double(to_seconds(result.metrics.measured_average_latency()) * 1000.0, 1),
                     std::to_string(pipe.icp_timeouts), std::to_string(pipe.icp_retries),
                     std::to_string(pipe.icp_recoveries), std::to_string(pipe.coalesced_joins),
                     pipe.enabled ? std::to_string(pipe.max_in_flight) : "-"});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
