// SMOKE — tiny end-to-end sweep through SweepRunner, registered as a ctest
// target so the thread pool, trace cache and JSON sink are exercised by
// tier-1 (and under ASan/UBSan when EACACHE_ASAN / EACACHE_UBSAN are on).
// Also re-checks the engine's core guarantee on every CI run: a parallel
// sweep's results are byte-identical to a serial one.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("SMOKE", "Tiny sweep through the parallel experiment engine");

  const TraceRef trace = TraceCache::global().get_or_create("smoke", [] {
    SyntheticTraceConfig config;
    config.num_requests = 6000;
    config.num_documents = 600;
    config.num_users = 24;
    config.span = hours(2);
    return generate_synthetic_trace(config);
  });

  const auto enqueue = [&](SweepRunner& runner) {
    for (const Bytes capacity : {64 * kKiB, 256 * kKiB, 1 * kMiB}) {
      for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
        GroupConfig config = bench::paper_group(4);
        config.aggregate_capacity = capacity;
        config.placement = placement;
        runner.add(std::string(to_string(placement)) + "@" + bench::capacity_label(capacity),
                   bench::make_spec(config), trace);
      }
    }
  };

  // Parallel sweep (the CLI's --jobs wins; defaults to 4 workers here so
  // the pool is exercised even on EACACHE_JOBS=1 machines)...
  SweepOptions parallel_options = bench::sweep_options(opts);
  if (parallel_options.jobs == 0) parallel_options.jobs = 4;
  std::size_t streamed = 0;
  const auto user_sink = parallel_options.sink;
  parallel_options.sink = [&](const SweepRunResult& run) {
    ++streamed;
    if (user_sink) user_sink(run);
  };
  SweepRunner parallel_runner(parallel_options);
  enqueue(parallel_runner);
  const auto parallel_runs = parallel_runner.run();

  // ...checked byte-for-byte against a serial reference sweep. The serial
  // arm inherits the CLI's obs override: result JSON embeds the registry
  // and trace-ring summary, so both arms must observe identically.
  SweepOptions serial_options;
  serial_options.jobs = 1;
  serial_options.obs_override = parallel_options.obs_override;
  serial_options.validate = parallel_options.validate;
  SweepRunner serial_runner(serial_options);
  enqueue(serial_runner);
  const auto serial_runs = serial_runner.run();

  if (streamed != parallel_runs.size()) {
    std::fprintf(stderr, "FAIL: sink saw %zu of %zu runs\n", streamed, parallel_runs.size());
    return 1;
  }
  TextTable table({"run", "hit rate", "wall (ms)"});
  for (std::size_t i = 0; i < parallel_runs.size(); ++i) {
    if (parallel_runs[i].label != serial_runs[i].label ||
        simulation_result_to_json(parallel_runs[i].result) !=
            simulation_result_to_json(serial_runs[i].result)) {
      std::fprintf(stderr, "FAIL: run %zu (%s) differs between jobs=4 and jobs=1\n", i,
                   parallel_runs[i].label.c_str());
      return 1;
    }
    table.add_row({parallel_runs[i].label,
                   fmt_percent(parallel_runs[i].result.metrics.hit_rate()),
                   fmt_double(parallel_runs[i].wall_ms, 1)});
  }
  bench::print_table_and_csv(table);
  std::printf("smoke ok: %zu runs, parallel == serial\n", parallel_runs.size());
  return 0;
}
