// Shared workload, configuration and rendering for the experiment benches.
//
// Every bench binary replays the same BU-calibrated synthetic trace (see
// DESIGN.md §3 for the substitution rationale) through both placement
// schemes and prints (a) a human-readable table mirroring the paper's
// figure/table, and (b) a machine-readable CSV block for EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>

#include "group/cache_group.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace eacache::bench {

/// The paper's trace, reconstructed: 575,775 requests, 46,830 documents,
/// 591 users, ~3.5 months, 4 KB mean size, Zipf(0.75) popularity, with
/// session-level temporal locality.
[[nodiscard]] SyntheticTraceConfig paper_workload_config();

/// Memoized full-size trace (generating it takes ~a second; every bench
/// reuses one copy). Prints the trace statistics the first time.
[[nodiscard]] const Trace& paper_trace();

/// A scaled-down trace (1/8 the requests) for quick shape checks; used by
/// benches that sweep many dimensions.
[[nodiscard]] const Trace& small_trace();

/// The paper's experimental group: distributed architecture, LRU
/// replacement, N caches with equal shares of the aggregate budget.
[[nodiscard]] GroupConfig paper_group(std::size_t num_proxies = 4);

/// Pretty banner: experiment id + description + workload summary.
void print_banner(const std::string& experiment_id, const std::string& title);

/// Print a table twice: boxed text and CSV (prefixed with "csv,").
void print_table_and_csv(const TextTable& table);

/// Convenience: "100KiB"-style labels for the capacity ladder.
[[nodiscard]] std::string capacity_label(Bytes capacity);

}  // namespace eacache::bench
