// Shared workload, configuration and rendering for the experiment benches.
//
// Every bench binary replays the same BU-calibrated synthetic trace (see
// DESIGN.md §3 for the substitution rationale) through both placement
// schemes and prints (a) a human-readable table mirroring the paper's
// figure/table, and (b) a machine-readable CSV block for EXPERIMENTS.md.
//
// All benches fan their simulations out through SweepRunner (sim/sweep.h).
// The CLI is declarative: every flag lives in one spec table in
// bench_common.cpp, which also generates `--help`, so all ~20 binaries
// accept the identical surface:
//   --jobs N            worker threads (default: EACACHE_JOBS env, then hardware)
//   --json              additionally stream one JSON row per completed run
//   --trace-out FILE    enable request-lifecycle tracing on every run and
//                       append each run's span events to FILE as JSONL, one
//                       "run"-labelled line per event, in submission order
//   --no-obs            disable the metric registry (and tracing) entirely —
//                       the control arm of the observability-is-free guarantee
//   --pipeline          serve through the event-driven request pipeline
//                       (DESIGN.md §9) instead of the legacy synchronous driver
//   --icp-timeout-ms MS ICP probe-round timeout (requires --pipeline)
//   --icp-retries N     re-probe silent peers up to N times (requires --pipeline)
//   --coalesce          collapse concurrent same-document misses (requires
//                       --pipeline)
//   --validate          attach the invariant checker to every run and embed
//                       its report under "validation" in the result JSON
//                       (DESIGN.md §10)
//   --shards N          run every simulation on the sharded parallel engine
//                       with N shards (DESIGN.md §14; default 0 = the classic
//                       single-queue driver)
//
// The pipeline flags flow into every GroupConfig built by paper_group(), and
// the execution policy flows into every RunSpec built by make_spec(), so any
// figure/ablation bench can be re-run under the event-driven driver or the
// sharded engine without per-bench plumbing.
#pragma once

#include <cstddef>
#include <string>

#include "core/run_spec.h"
#include "group/cache_group.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "sim/result_json.h"
#include "sim/sweep.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace eacache::bench {

/// Parsed bench CLI (see header comment). Unknown flags abort with the
/// generated usage text; `--help` prints it and exits 0.
struct BenchOptions {
  std::size_t jobs = 0;      // 0 = resolve_job_count() (env, then hardware)
  bool stream_json = false;  // --json: per-run JSON rows on stdout
  std::string trace_out;     // --trace-out FILE; empty = tracing off
  bool no_obs = false;       // --no-obs: registry + tracing disabled
  PipelineConfig pipeline;   // --pipeline/--icp-*/--coalesce; default = legacy
  bool validate = false;     // --validate: invariant checker on every run
  std::size_t shards = 0;    // --shards: sharded engine; 0 = classic driver

  // Workload-DSL knobs (consumed by bench_workload_characterization):
  std::string scenario;                 // --scenario NAME: run one pack only
  std::uint64_t scenario_requests = 0;  // --scenario-requests N: per-scenario
                                        // trace size (0 = bench default)
  std::uint64_t stream_requests = 0;    // --stream-requests N: streaming-only
                                        // profiling arm over N requests (no
                                        // materialization, no simulations)
};

[[nodiscard]] BenchOptions parse_args(int argc, char** argv);

/// SweepOptions wired from the CLI: worker count plus, under --json, a sink
/// that streams one "json,"-prefixed row per completed run to stdout.
[[nodiscard]] SweepOptions sweep_options(const BenchOptions& options);

/// A runner configured from the CLI; benches enqueue jobs and call run().
[[nodiscard]] SweepRunner make_runner(const BenchOptions& options);

/// The paper's trace, reconstructed: 575,775 requests, 46,830 documents,
/// 591 users, ~3.5 months, 4 KB mean size, Zipf(0.75) popularity, with
/// session-level temporal locality.
[[nodiscard]] SyntheticTraceConfig paper_workload_config();

/// Full-size trace, synthesized once per process through TraceCache::global()
/// and shared immutably across sweep workers. Prints the trace statistics
/// the first time.
[[nodiscard]] TraceRef paper_trace();

/// A scaled-down trace (1/8 the requests) for quick shape checks; used by
/// benches that sweep many dimensions.
[[nodiscard]] TraceRef small_trace();

/// The paper's experimental group: distributed architecture, LRU
/// replacement, N caches with equal shares of the aggregate budget. Carries
/// the pipeline knobs from the most recent parse_args() call, so `--pipeline`
/// switches every bench onto the event-driven driver.
[[nodiscard]] GroupConfig paper_group(std::size_t num_proxies = 4);

/// The RunSpec a bench enqueues for one run: `config` plus the execution
/// policy from the most recent parse_args() call (`--shards`) and an
/// optional per-run fault plan. Canonical job-construction path — every
/// bench goes through here so one CLI flag re-runs a whole figure on the
/// sharded engine.
[[nodiscard]] RunSpec make_spec(GroupConfig config, FaultPlan faults = {});

/// Pretty banner: experiment id + description + workload summary.
void print_banner(const std::string& experiment_id, const std::string& title);

/// Print a table twice: boxed text and CSV (prefixed with "csv,").
void print_table_and_csv(const TextTable& table);

/// Convenience: "100KiB"-style labels for the capacity ladder.
[[nodiscard]] std::string capacity_label(Bytes capacity);

}  // namespace eacache::bench
