// ABL-LFU — Paper §3.2.2 defines the LFU form of document expiration age
// ((TR - T0) / HIT_COUNTER) but all published experiments use LRU. This
// ablation runs the EA scheme with every replacement policy the library
// ships, using the matching DocExpAge form (LFU form for lfu/lfu-aging,
// LRU form otherwise), validating the paper's claim that the placement
// scheme is replacement-policy independent.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-LFU", "EA vs ad-hoc across replacement policies");

  const PolicyKind policies[] = {PolicyKind::kLru, PolicyKind::kLfu, PolicyKind::kLfuAging,
                                 PolicyKind::kSizeBiggestFirst, PolicyKind::kGreedyDualSize};
  const Bytes capacities[] = {1 * kMiB, 10 * kMiB, 100 * kMiB};

  TextTable table({"replacement", "aggregate memory", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc"});
  for (const PolicyKind policy : policies) {
    GroupConfig base = bench::paper_group(4);
    base.replacement = policy;
    const auto points = compare_schemes_over_capacities(bench::small_trace(), base, capacities);
    for (const SchemeComparison& point : points) {
      table.add_row({std::string(to_string(policy)),
                     bench::capacity_label(point.aggregate_capacity),
                     fmt_percent(point.adhoc.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate()),
                     fmt_percent(point.ea.metrics.hit_rate() - point.adhoc.metrics.hit_rate())});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
