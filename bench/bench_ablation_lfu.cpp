// ABL-LFU — Paper §3.2.2 defines the LFU form of document expiration age
// ((TR - T0) / HIT_COUNTER) but all published experiments use LRU. This
// ablation runs the EA scheme with every replacement policy the library
// ships, using the matching DocExpAge form (LFU form for lfu/lfu-aging,
// LRU form otherwise), validating the paper's claim that the placement
// scheme is replacement-policy independent.
#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-LFU", "EA vs ad-hoc across replacement policies");

  const PolicyKind policies[] = {PolicyKind::kLru, PolicyKind::kLfu, PolicyKind::kLfuAging,
                                 PolicyKind::kSizeBiggestFirst, PolicyKind::kGreedyDualSize};
  const Bytes capacities[] = {1 * kMiB, 10 * kMiB, 100 * kMiB};
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    PolicyKind policy;
    Bytes capacity;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const PolicyKind policy : policies) {
    for (const Bytes capacity : capacities) {
      GroupConfig config = bench::paper_group(4);
      config.replacement = policy;
      config.aggregate_capacity = capacity;
      const std::string point =
          std::string(to_string(policy)) + "/" + bench::capacity_label(capacity);
      config.placement = PlacementKind::kAdHoc;
      runner.add("adhoc@" + point, bench::make_spec(config), trace);
      config.placement = PlacementKind::kEa;
      runner.add("ea@" + point, bench::make_spec(config), trace);
      rows.push_back({policy, capacity});
    }
  }
  const auto runs = runner.run();

  TextTable table({"replacement", "aggregate memory", "ad-hoc hit rate", "EA hit rate",
                   "EA - ad-hoc"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& adhoc = runs[2 * i].result;
    const SimulationResult& ea = runs[2 * i + 1].result;
    table.add_row({std::string(to_string(rows[i].policy)),
                   bench::capacity_label(rows[i].capacity),
                   fmt_percent(adhoc.metrics.hit_rate()), fmt_percent(ea.metrics.hit_rate()),
                   fmt_percent(ea.metrics.hit_rate() - adhoc.metrics.hit_rate())});
  }
  bench::print_table_and_csv(table);
  return 0;
}
