// WORKLOAD — characterizes the BU-calibrated synthetic trace the way the
// workload-measurement literature characterized the real BU logs, and
// prints the EXACT single-cache LRU hit curve (Mattson stack distances)
// alongside the Che-model prediction: three independent ways of computing
// the same quantity (exact, analytic, simulated elsewhere) that must agree.
//
// (Pure trace analytics — no simulations, so there is no sweep to fan out;
// the bench still accepts the common CLI and shares the cached trace.)
#include "analysis/che_approximation.h"
#include "bench_common.h"
#include "trace/analysis.h"

using namespace eacache;

int main(int argc, char** argv) {
  (void)bench::parse_args(argc, argv);
  bench::print_banner("WORKLOAD", "Trace characterization + exact LRU hit curve");

  const TraceRef trace = bench::paper_trace();
  const TraceProfile profile = profile_trace(trace->requests);

  TextTable profile_table({"metric", "value"});
  profile_table.add_row({"requests", std::to_string(profile.total_requests)});
  profile_table.add_row({"unique documents", std::to_string(profile.unique_documents)});
  profile_table.add_row({"one-timers", fmt_percent(profile.one_timer_fraction) +
                                           " of uniques"});
  profile_table.add_row({"compulsory misses", fmt_percent(profile.compulsory_miss_fraction)});
  profile_table.add_row({"fitted Zipf alpha", fmt_double(profile.zipf_alpha, 3)});
  profile_table.add_row({"mean / median / max size",
                         format_bytes(profile.mean_size) + " / " +
                             format_bytes(profile.median_size) + " / " +
                             format_bytes(profile.max_size)});
  bench::print_table_and_csv(profile_table);

  const StackDistanceHistogram histogram = compute_stack_distances(trace->requests);
  CheModel model;
  model.popularity = zipf_popularity(profile.unique_documents, profile.zipf_alpha);

  TextTable curve({"cache size (docs)", "exact LRU hit rate (Mattson)",
                   "Che model (fitted alpha)", "difference"});
  for (const std::uint64_t capacity : {64u, 256u, 1024u, 4096u, 16384u}) {
    const double exact = histogram.hit_rate_at(capacity);
    const double analytic = che_lru(model, static_cast<double>(capacity)).hit_rate;
    curve.add_row({std::to_string(capacity), fmt_percent(exact), fmt_percent(analytic),
                   fmt_percent(analytic - exact)});
  }
  bench::print_table_and_csv(curve);
  return 0;
}
