// WORKLOAD — characterizes every shipped workload-DSL scenario pack and
// runs the EA-vs-AdHoc head-to-head on each, reporting the capacity ladder
// and where (if anywhere) the schemes cross over. One result-JSON row per
// (scenario, capacity, scheme) run under --json, each echoing its canonical
// scenario spec in the config summary ("workload" field).
//
// Arms:
//   default               — every scenario pack (or just --scenario NAME),
//                           scaled to --scenario-requests (default 60k):
//                           trace profile table + EA/AdHoc sweep + crossover.
//   --stream-requests N   — streaming-only profiling of one scenario
//                           (default flash-crowd): the N-request stream is
//                           pulled through StreamProfile without ever
//                           materializing, so N = 100M runs under a fixed
//                           RSS ceiling. No simulations.
//
// The flash-crowd-outage pack composes the existing FaultPlan machinery:
// its sweep runs with flash_crowd_outage_plan(), a peer outage landing
// mid-plateau.
#include <cinttypes>
#include <cstdio>

#include "bench_common.h"
#include "core/workload_faults.h"
#include "trace/analysis.h"
#include "trace/scenarios.h"
#include "trace/workload.h"
#include "trace/workload_stats.h"

using namespace eacache;

namespace {

constexpr std::uint64_t kDefaultScenarioRequests = 60'000;

int run_stream_arm(const bench::BenchOptions& options) {
  const std::string name = options.scenario.empty() ? "flash-crowd" : options.scenario;
  const ScenarioPack* pack = find_scenario(name);
  if (pack == nullptr) {
    std::fprintf(stderr, "unknown scenario: %s\n", name.c_str());
    return 2;
  }
  const WorkloadSpec spec = scaled_spec(*pack, options.stream_requests);
  std::printf("streaming %s: %" PRIu64 " requests (never materialized)\n",
              pack->name.c_str(), options.stream_requests);
  WorkloadSource source(spec);
  const StreamProfile profile = profile_stream(source);

  TextTable table({"metric", "value"});
  table.add_row({"scenario", pack->name});
  table.add_row({"requests", std::to_string(profile.requests)});
  table.add_row({"distinct ids", std::to_string(profile.distinct_documents)});
  table.add_row({"chunk requests", std::to_string(profile.chunk_requests)});
  table.add_row({"flash requests", std::to_string(profile.flash_requests)});
  table.add_row({"total bytes", format_bytes(profile.total_bytes)});
  table.add_row({"span (days)",
                 fmt_double(to_seconds(profile.last - profile.first) / 86400.0, 2)});
  table.add_row({"monotone", profile.monotone ? "yes" : "NO (contract violation)"});
  bench::print_table_and_csv(table);
  return profile.monotone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::print_banner("WORKLOAD",
                      "Workload-DSL scenarios: characterization + EA-vs-AdHoc crossover");

  if (options.stream_requests > 0) return run_stream_arm(options);

  const std::uint64_t requests = options.scenario_requests != 0
                                     ? options.scenario_requests
                                     : kDefaultScenarioRequests;
  bool matched = false;
  for (const ScenarioPack& pack : workload_scenarios()) {
    if (!options.scenario.empty() && pack.name != options.scenario) continue;
    matched = true;

    const WorkloadSpec spec = scaled_spec(pack, requests);
    const std::string canonical = format_workload_spec(spec);
    const TraceRef trace = get_or_create_workload(TraceCache::global(), spec);
    std::printf("\nscenario %s — %s\n  validated by %s\n", pack.name.c_str(),
                pack.summary.c_str(), pack.validation_test.c_str());

    const TraceProfile profile = profile_trace(trace->requests);
    TextTable profile_table({"metric", "value"});
    profile_table.add_row({"requests", std::to_string(profile.total_requests)});
    profile_table.add_row({"unique documents", std::to_string(profile.unique_documents)});
    profile_table.add_row(
        {"one-timers", fmt_percent(profile.one_timer_fraction) + " of uniques"});
    profile_table.add_row(
        {"compulsory misses", fmt_percent(profile.compulsory_miss_fraction)});
    profile_table.add_row({"fitted Zipf alpha", fmt_double(profile.zipf_alpha, 3)});
    profile_table.add_row({"mean / median / max size",
                           format_bytes(profile.mean_size) + " / " +
                               format_bytes(profile.median_size) + " / " +
                               format_bytes(profile.max_size)});
    bench::print_table_and_csv(profile_table);

    // EA vs AdHoc over the paper's capacity ladder, both schemes sharing
    // the one immutable scenario trace. The outage pack additionally runs
    // under its mid-flash-crowd peer outage.
    FaultPlan faults;
    if (pack.name == "flash-crowd-outage") {
      faults = flash_crowd_outage_plan(spec, /*victim=*/1);
    }
    SweepRunner runner = bench::make_runner(options);
    for (const Bytes capacity : paper_capacity_ladder()) {
      for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
        GroupConfig config = bench::paper_group(4);
        config.aggregate_capacity = capacity;
        config.placement = placement;
        RunSpec run_spec = bench::make_spec(config, faults);
        run_spec.workload = canonical;
        runner.add(pack.name + "/" + bench::capacity_label(capacity) +
                       (placement == PlacementKind::kEa ? "/ea" : "/adhoc"),
                   std::move(run_spec), trace);
      }
    }
    const std::vector<SweepRunResult> runs = runner.run();

    TextTable curve({"aggregate memory", "ad-hoc hit rate", "EA hit rate", "EA - ad-hoc"});
    std::string crossover = "none (EA ahead nowhere)";
    bool ea_ahead_somewhere = false;
    for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
      const SimulationResult& adhoc = runs[i].result;
      const SimulationResult& ea = runs[i + 1].result;
      const double delta = ea.metrics.hit_rate() - adhoc.metrics.hit_rate();
      curve.add_row({bench::capacity_label(runs[i].config.aggregate_capacity),
                     fmt_percent(adhoc.metrics.hit_rate()),
                     fmt_percent(ea.metrics.hit_rate()), fmt_percent(delta)});
      if (!ea_ahead_somewhere && delta > 0.0) {
        ea_ahead_somewhere = true;
        crossover = "EA ahead from " +
                    bench::capacity_label(runs[i].config.aggregate_capacity);
      }
    }
    bench::print_table_and_csv(curve);
    std::printf("crossover: %s\n", crossover.c_str());
  }

  if (!matched) {
    std::fprintf(stderr, "unknown scenario: %s\n", options.scenario.c_str());
    return 2;
  }
  return 0;
}
