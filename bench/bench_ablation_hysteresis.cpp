// ABL-HYST — replication-threshold sweep for the EA-hysteresis extension:
// the requester replicates only when its copy would survive `factor` times
// longer than the responder's. factor = 1 is the paper's EA scheme.
//
// Expected shape: replication falls monotonically with the factor; the hit
// rate first holds (dedup still pays) and eventually sags as useful
// replicas stop being made and remote-hit latency dominates.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-HYST", "EA replication-threshold (hysteresis) sweep");
  const LatencyModel model = LatencyModel::paper_defaults();
  const double factors[] = {1.0, 1.5, 2.0, 4.0, 8.0, 16.0};

  TextTable table({"aggregate memory", "scheme", "hit rate", "remote",
                   "latency (ms)", "replication"});
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB}) {
    GroupConfig base = bench::paper_group(4);
    base.aggregate_capacity = capacity;

    base.placement = PlacementKind::kAdHoc;
    const SimulationResult adhoc = run_simulation(bench::small_trace(), base);
    table.add_row({bench::capacity_label(capacity), "ad-hoc",
                   fmt_percent(adhoc.metrics.hit_rate()),
                   fmt_percent(adhoc.metrics.remote_hit_rate()),
                   fmt_double(adhoc.metrics.estimated_average_latency_ms(model), 1),
                   fmt_double(adhoc.replication_factor, 3)});

    for (const double factor : factors) {
      base.placement =
          factor == 1.0 ? PlacementKind::kEa : PlacementKind::kEaHysteresis;
      base.ea_hysteresis = factor;
      const SimulationResult result = run_simulation(bench::small_trace(), base);
      table.add_row({bench::capacity_label(capacity),
                     factor == 1.0 ? "ea (x1)" : ("ea-hyst x" + fmt_double(factor, 1)),
                     fmt_percent(result.metrics.hit_rate()),
                     fmt_percent(result.metrics.remote_hit_rate()),
                     fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                     fmt_double(result.replication_factor, 3)});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
