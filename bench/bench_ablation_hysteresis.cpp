// ABL-HYST — replication-threshold sweep for the EA-hysteresis extension:
// the requester replicates only when its copy would survive `factor` times
// longer than the responder's. factor = 1 is the paper's EA scheme.
//
// Expected shape: replication falls monotonically with the factor; the hit
// rate first holds (dedup still pays) and eventually sags as useful
// replicas stop being made and remote-hit latency dominates.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-HYST", "EA replication-threshold (hysteresis) sweep");
  const LatencyModel model = LatencyModel::paper_defaults();
  const double factors[] = {1.0, 1.5, 2.0, 4.0, 8.0, 16.0};
  const TraceRef trace = bench::small_trace();

  struct RowMeta {
    Bytes capacity;
    std::string scheme;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const Bytes capacity : {1 * kMiB, 10 * kMiB}) {
    GroupConfig base = bench::paper_group(4);
    base.aggregate_capacity = capacity;

    base.placement = PlacementKind::kAdHoc;
    runner.add("adhoc@" + bench::capacity_label(capacity), bench::make_spec(base), trace);
    rows.push_back({capacity, "ad-hoc"});

    for (const double factor : factors) {
      base.placement =
          factor == 1.0 ? PlacementKind::kEa : PlacementKind::kEaHysteresis;
      base.ea_hysteresis = factor;
      const std::string scheme =
          factor == 1.0 ? "ea (x1)" : ("ea-hyst x" + fmt_double(factor, 1));
      runner.add(scheme + "@" + bench::capacity_label(capacity), bench::make_spec(base), trace);
      rows.push_back({capacity, scheme});
    }
  }
  const auto runs = runner.run();

  TextTable table({"aggregate memory", "scheme", "hit rate", "remote",
                   "latency (ms)", "replication"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    table.add_row({bench::capacity_label(rows[i].capacity), rows[i].scheme,
                   fmt_percent(result.metrics.hit_rate()),
                   fmt_percent(result.metrics.remote_hit_rate()),
                   fmt_double(result.metrics.estimated_average_latency_ms(model), 1),
                   fmt_double(result.replication_factor, 3)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
