// ABL-PREFETCH — lazy vs eager placement (paper §5's two placement modes):
// first-order Markov prefetching layered on both schemes, sweeping the
// confidence threshold. Reports the classic prefetching trade: hit-rate
// gain vs wasted origin traffic.
#include "bench_common.h"

using namespace eacache;

int main() {
  bench::print_banner("ABL-PREFETCH",
                      "Lazy vs eager (Markov-prefetch) placement, both schemes");

  TextTable table({"scheme", "prefetch", "hit rate", "issued", "useful", "wasted",
                   "extra traffic", "latency (ms)"});
  const LatencyModel model = LatencyModel::paper_defaults();
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    struct Mode {
      const char* label;
      bool enabled;
      double confidence;
    };
    const Mode modes[] = {
        {"off", false, 0.0},
        {"conf>=0.5", true, 0.5},
        {"conf>=0.25", true, 0.25},
        {"conf>=0.1", true, 0.1},
    };
    for (const Mode& mode : modes) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = 10 * kMiB;
      config.placement = placement;
      config.prefetch.enabled = mode.enabled;
      config.prefetch.min_confidence = mode.confidence;
      config.prefetch.min_observations = 3;
      const SimulationResult result = run_simulation(bench::small_trace(), config);
      table.add_row({std::string(to_string(placement)), mode.label,
                     fmt_percent(result.metrics.hit_rate()),
                     std::to_string(result.prefetch.issued),
                     std::to_string(result.prefetch.useful),
                     std::to_string(result.prefetch.wasted()),
                     format_bytes(result.prefetch.bytes_prefetched),
                     fmt_double(result.metrics.estimated_average_latency_ms(model), 1)});
    }
  }
  bench::print_table_and_csv(table);
  return 0;
}
