// ABL-PREFETCH — lazy vs eager placement (paper §5's two placement modes):
// first-order Markov prefetching layered on both schemes, sweeping the
// confidence threshold. Reports the classic prefetching trade: hit-rate
// gain vs wasted origin traffic.
#include <vector>

#include "bench_common.h"

using namespace eacache;

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_banner("ABL-PREFETCH",
                      "Lazy vs eager (Markov-prefetch) placement, both schemes");
  const LatencyModel model = LatencyModel::paper_defaults();
  const TraceRef trace = bench::small_trace();

  struct Mode {
    const char* label;
    bool enabled;
    double confidence;
  };
  const Mode modes[] = {
      {"off", false, 0.0},
      {"conf>=0.5", true, 0.5},
      {"conf>=0.25", true, 0.25},
      {"conf>=0.1", true, 0.1},
  };

  struct RowMeta {
    PlacementKind placement;
    const char* mode;
  };
  std::vector<RowMeta> rows;
  SweepRunner runner = bench::make_runner(opts);
  for (const PlacementKind placement : {PlacementKind::kAdHoc, PlacementKind::kEa}) {
    for (const Mode& mode : modes) {
      GroupConfig config = bench::paper_group(4);
      config.aggregate_capacity = 10 * kMiB;
      config.placement = placement;
      config.prefetch.enabled = mode.enabled;
      config.prefetch.min_confidence = mode.confidence;
      config.prefetch.min_observations = 3;
      runner.add(std::string(to_string(placement)) + "@" + mode.label, bench::make_spec(config), trace);
      rows.push_back({placement, mode.label});
    }
  }
  const auto runs = runner.run();

  TextTable table({"scheme", "prefetch", "hit rate", "issued", "useful", "wasted",
                   "extra traffic", "latency (ms)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimulationResult& result = runs[i].result;
    table.add_row({std::string(to_string(rows[i].placement)), rows[i].mode,
                   fmt_percent(result.metrics.hit_rate()),
                   std::to_string(result.prefetch.issued),
                   std::to_string(result.prefetch.useful),
                   std::to_string(result.prefetch.wasted()),
                   format_bytes(result.prefetch.bytes_prefetched),
                   fmt_double(result.metrics.estimated_average_latency_ms(model), 1)});
  }
  bench::print_table_and_csv(table);
  return 0;
}
