#!/usr/bin/env python3
"""eacheck pass 3: determinism audit (DESIGN.md §16).

Three rules, all serving the same invariant — a run is a pure function of
(config, seed, trace), byte-identical across jobs=1..N and shards=1..N:

1. **unordered-iteration-into-results** — iterating an
   ``std::unordered_map``/``unordered_set`` inside any function from which
   ``result_json`` / ``run_result_json`` / ``MetricRegistry::snapshot`` is
   reachable (callee-wise) is flagged: hash-order escapes into exported
   results. Order-independent reductions (pure counting, commutative
   integer sums) are suppressed with ``// eacheck:allow(determinism):
   <why order cannot escape>``.
2. **wall-clock-outside-the-seam** — ``system_clock``, ``steady_clock``,
   ``high_resolution_clock``, ``time()``, ``gettimeofday``/``clock_gettime``
   anywhere except the Clock seam (src/core/clock.*, src/core/wall_timer.h)
   and src/daemon/ (the daemon *is* the wall-clock domain).
3. **float-accumulation-in-unordered-order** — ``double += …`` inside an
   iteration that resolves to an unordered container: float addition is
   not associative, so hash-order accumulation differs across platforms
   and shard counts even when the iterated *set* is identical. Flagged
   unconditionally (a nondeterministic float sum is never right), not
   just on sink paths — the registry merge path is the motivating case.

Rule 1 fires on two kinds of escape: the iterating function transitively
*calls* a sink, or the loop *materializes* iteration order (push_back /
emplace_back / insert into another container inside the loop) — the order
then escapes to every caller, the way ``CacheStore::resident_ids`` leaked
hash order into the flush path and result collection.
"""

from __future__ import annotations

import re
from collections import defaultdict
from types import SimpleNamespace
from pathlib import Path

from frontend import COMMON_METHOD_NAMES

PASS = "determinism"

SINK_BARE_NAMES = {"result_json", "run_result_json"}
SINK_QNAMES = {"MetricRegistry::snapshot"}

#: Calls that freeze iteration order into another container.
MATERIALIZE_NAMES = {"push_back", "emplace_back", "insert", "append",
                     "push_front", "emplace_front"}

#: Files where wall-clock access is legal: the Clock seam itself plus the
#: daemon (which exists to run against real time).
CLOCK_SEAM_FILES = (
    "src/core/clock.h",
    "src/core/clock.cpp",
    "src/core/wall_timer.h",
)
CLOCK_SEAM_PREFIXES = ("src/daemon/",)


def _peel_type(type_str: str, subscripts: int) -> str:
    """Peel one container layer per subscript; return the top-level name.

    ``vector<unordered_set<Id>>`` with one subscript -> ``unordered_set``;
    ``unordered_map<K, vector<V>>`` with one subscript -> ``vector``.
    """
    current = type_str.strip()
    for _ in range(subscripts):
        match = re.match(r"(?:std\s*::\s*)?([A-Za-z_][A-Za-z0-9_]*)\s*<(.*)>\s*$",
                         current)
        if not match:
            return ""
        outer, inner = match.group(1), match.group(2)
        # split top-level template args on commas
        depth = 0
        args: list[str] = []
        buf = ""
        for char in inner:
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
            if char == "," and depth == 0:
                args.append(buf)
                buf = ""
            else:
                buf += char
        if buf.strip():
            args.append(buf)
        if outer in ("unordered_map", "map", "unordered_multimap", "multimap"):
            current = args[-1].strip() if args else ""
        else:
            current = args[0].strip() if args else ""
    match = re.match(r"(?:std\s*::\s*)?([A-Za-z_][A-Za-z0-9_]*)", current)
    return match.group(1) if match else ""


def _resolve_unordered(site, tus_by_rel, unordered_by_name, fn_class) -> bool:
    """Is the iterated expression hash-ordered?"""
    candidates = unordered_by_name.get(site.base, [])
    if not candidates:
        return False
    # Prefer same-file decls, then same-class members, then unique global.
    picked = [d for d in candidates if d.file == site.file]
    if not picked:
        picked = [d for d in candidates
                  if d.owner is not None and d.owner == fn_class]
    if not picked:
        stem = Path(site.file).stem
        picked = [d for d in candidates if Path(d.file).stem == stem]
    if not picked and len(candidates) == 1:
        picked = candidates
    if not picked:
        return False
    decl = picked[0]
    top = _peel_type(decl.type_str, site.subscripts) if site.subscripts \
        else re.match(r"([A-Za-z_][A-Za-z0-9_]*)", decl.type_str).group(1)
    return top.startswith("unordered_")


def _reaching_sinks(tus) -> set[str]:
    """Functions from which a sink is reachable through the call graph."""
    callers_of: dict[str, set[str]] = defaultdict(set)
    bare_to_qnames: dict[str, set[str]] = defaultdict(set)
    functions: set[str] = set()
    for tu in tus:
        for call in tu.calls:
            functions.add(call.function)
            bare_to_qnames[call.function.split("::")[-1]].add(call.function)
        for acq in tu.acquisitions:
            functions.add(acq.function)
    for tu in tus:
        for call in tu.calls:
            # candidate callees by name (same conservative rules as locks)
            names: set[str] = set()
            if call.qualifier is not None:
                names.add(f"{call.qualifier}::{call.name}")
            elif call.receiver is None and call.enclosing_class:
                names.add(f"{call.enclosing_class}::{call.name}")
                names |= bare_to_qnames.get(call.name, set())
            elif call.name not in COMMON_METHOD_NAMES:
                names |= bare_to_qnames.get(call.name, set())
            names.add(call.name)  # free functions keyed by bare name too
            for name in names:
                callers_of[name].add(call.function)

    # seed with sink functions; walk callers backwards
    frontier: list[str] = []
    for fn in list(functions) + list(callers_of):
        bare = fn.split("::")[-1]
        if bare in SINK_BARE_NAMES or fn in SINK_QNAMES:
            frontier.append(fn)
    frontier.extend(SINK_BARE_NAMES | SINK_QNAMES)
    reaches: set[str] = set(frontier)
    while frontier:
        fn = frontier.pop()
        for caller in callers_of.get(fn, ()):
            if caller not in reaches:
                reaches.add(caller)
                frontier.append(caller)
        bare = fn.split("::")[-1]
        if bare != fn:
            for caller in callers_of.get(bare, ()):
                if caller not in reaches:
                    reaches.add(caller)
                    frontier.append(caller)
    return reaches


def run(tus, *, fixture: bool = False, out=print) -> dict:
    tus_by_rel = {tu.rel: tu for tu in tus}
    unordered_by_name: dict[str, list] = defaultdict(list)
    for tu in tus:
        for decl in tu.unordered_decls:
            unordered_by_name[decl.name].append(decl)

    reaches = _reaching_sinks(tus)

    def fn_reaches_sink(fn: str) -> bool:
        if fixture:
            return True  # fixture files are judged without cross-TU context
        return fn in reaches or fn.split("::")[-1] in SINK_BARE_NAMES \
            or fn in SINK_QNAMES

    violations: list[str] = []
    suppressed = 0
    unordered_hits = 0
    clock_hits = 0
    accum_hits = 0

    for tu in tus:
        materialized = {id(c.during): c for c in tu.calls
                        if c.during is not None and c.name in MATERIALIZE_NAMES}
        for site in tu.iterations:
            fn_class = site.function.split("::")[0] if "::" in site.function else None
            if not _resolve_unordered(site, tus_by_rel, unordered_by_name, fn_class):
                continue
            escape = None
            if fn_reaches_sink(site.function):
                escape = ("reaches result_json/run_result_json/"
                          "MetricRegistry::snapshot")
            elif id(site) in materialized:
                call = materialized[id(site)]
                escape = (f"materializes hash order via {call.name}() at "
                          f"line {call.line}, which escapes to every caller")
            if escape is None:
                continue
            if tu.allowed(PASS, site.line):
                suppressed += 1
                continue
            unordered_hits += 1
            violations.append(
                f"{tu.rel}:{site.line}: hash-ordered iteration over "
                f"'{site.chain}' in {site.function} {escape} — iterate a "
                f"sorted view, restructure, or justify with "
                f"// eacheck:allow(determinism): <why order cannot escape>"
            )

        seam = tu.rel in CLOCK_SEAM_FILES or \
            any(tu.rel.startswith(p) for p in CLOCK_SEAM_PREFIXES)
        if not seam:
            for use in tu.clock_uses:
                if tu.allowed(PASS, use.line):
                    suppressed += 1
                    continue
                clock_hits += 1
                where = f" in {use.function}" if use.function else ""
                violations.append(
                    f"{tu.rel}:{use.line}: wall-clock use '{use.token}'{where} "
                    f"outside the Clock seam (src/core/clock.*, "
                    f"src/core/wall_timer.h) and src/daemon/ — route timing "
                    f"through core/wall_timer.h or the Clock interface"
                )

        for accum in tu.float_accums:
            fn_class = accum.function.split("::")[0] \
                if "::" in accum.function else None
            probe = SimpleNamespace(base=accum.base, subscripts=accum.subscripts,
                                    file=accum.file)
            if not accum.base or not _resolve_unordered(
                    probe, tus_by_rel, unordered_by_name, fn_class):
                if not fixture:
                    continue
                if not accum.base:
                    continue
                # fixtures are judged standalone; fall through when the
                # base at least names a known unordered decl in the file
                if not any(d.file == accum.file
                           for d in unordered_by_name.get(accum.base, [])):
                    continue
            if tu.allowed(PASS, accum.line):
                suppressed += 1
                continue
            accum_hits += 1
            violations.append(
                f"{tu.rel}:{accum.line}: float accumulation '{accum.var} += …' "
                f"inside hash-ordered iteration over '{accum.iterated}' in "
                f"{accum.function} — float addition is not associative, so "
                f"the sum differs by shard count; accumulate in a "
                f"deterministic order or use integer arithmetic"
            )

    # allows without justification are findings in their own right
    for tu in tus:
        for allows in tu.allows.values():
            for allow in allows:
                if PASS in allow.passes and not allow.justification:
                    violations.append(
                        f"{tu.rel}:{allow.line}: eacheck:allow(determinism) "
                        f"without justification text — write why the order "
                        f"cannot escape (the colon and reason are required)"
                    )

    out(f"eacheck[determinism]: {unordered_hits} unordered-iteration, "
        f"{clock_hits} wall-clock, {accum_hits} float-accumulation "
        f"finding(s); {suppressed} suppressed")
    for violation in violations:
        out("  VIOLATION: " + violation)

    return {"violations": violations,
            "counts": {"unordered": unordered_hits, "clock": clock_hits,
                       "accum": accum_hits, "suppressed": suppressed}}
