#!/usr/bin/env python3
"""eacheck — semantic analyzer for the eacache codebase (DESIGN.md §16).

Three passes over the src/ tree, driven by the build's
compile_commands.json (discovered through tools/eacheck/compdb.py):

    dag          architecture DAG vs tools/eacheck/layering.toml
    locks        static deadlock detection over MutexLock/CondVar wrappers
    determinism  unordered-iteration / wall-clock / float-accumulation audit

Usage:
    python3 tools/eacheck/eacheck.py --pass all
    python3 tools/eacheck/eacheck.py --pass dag --fixture f.cc --fixture-module core
    python3 tools/eacheck/eacheck.py --pass locks --frontend lex

Exit codes: 0 clean (or, with --fixture, planted violation caught);
1 violations found (or fixture NOT caught); 2 usage/internal error.

Frontends: ``--frontend clang`` requires clang.cindex + libclang;
``--frontend lex`` is the dependency-free lexical reference; ``auto``
(default) prefers clang and falls back to lex with a printed notice.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOL_DIR))

import arch_dag                      # noqa: E402
import determinism                   # noqa: E402
import lock_order                    # noqa: E402
from compdb import CompDbError, find_compile_commands, src_translation_units  # noqa: E402
from frontend import make_frontend   # noqa: E402

REPO_ROOT = TOOL_DIR.parent.parent

PASSES = ("dag", "locks", "determinism")


def discover_sources(repo_root: Path) -> tuple[list[Path], str]:
    """src/ TUs from the compilation database plus every src/ header.

    Headers are parsed as standalone TUs so member declarations (mutexes,
    unordered containers) are visible to the passes. Falls back to a glob
    with a notice when no build tree has been configured yet.
    """
    notice = ""
    try:
        cpps = src_translation_units(repo_root)
    except CompDbError as err:
        notice = f"note: {err}; falling back to glob over src/"
        cpps = sorted((repo_root / "src").rglob("*.cpp"))
    headers = sorted((repo_root / "src").rglob("*.h"))
    return cpps + headers, notice


def parse_all(frontend, files: list[Path]):
    tus = []
    for path in files:
        try:
            tus.append(frontend.parse(path))
        except (OSError, UnicodeDecodeError) as err:
            print(f"eacheck: skipping unreadable {path}: {err}")
    return tus


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="eacheck", description=__doc__.splitlines()[0])
    parser.add_argument("--pass", dest="passes", default="all",
                        choices=PASSES + ("all",),
                        help="which pass to run (default: all)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "lex"),
                        help="libclang, lexical, or auto-fallback (default)")
    parser.add_argument("--fixture", type=Path, default=None,
                        help="negative-control mode: analyze ONLY this file; "
                             "exit 0 iff the planted violation is reported")
    parser.add_argument("--fixture-module", default="core",
                        help="module the DAG-pass fixture pretends to live in "
                             "(default: core)")
    parser.add_argument("--repo-root", type=Path, default=REPO_ROOT)
    args = parser.parse_args()

    repo_root = args.repo_root.resolve()
    selected = PASSES if args.passes == "all" else (args.passes,)

    compdb_dir: Path | None = None
    try:
        compdb_dir = find_compile_commands(repo_root).parent
    except CompDbError:
        pass  # frontends cope; discover_sources prints the reason

    try:
        frontend, fallback_notice = make_frontend(args.frontend, repo_root,
                                                  compdb_dir)
    except RuntimeError as err:
        # --frontend clang demanded libclang and it is absent: this is the
        # actionable SKIP path for callers that insist on the clang frontend.
        print(f"eacheck: SKIP: {err}")
        return 77
    if fallback_notice:
        print(f"eacheck: {fallback_notice}")

    layering = arch_dag.load_layering(TOOL_DIR / "layering.toml")

    if args.fixture is not None:
        fixture_path = args.fixture.resolve()
        if not fixture_path.is_file():
            print(f"eacheck: fixture not found: {fixture_path}")
            return 2
        # Fixtures live outside the repo's src/; parse them standalone and
        # pin the module they claim to belong to.
        from frontend import LexFrontend
        lex = LexFrontend(fixture_path.parent)
        tu = lex.parse(fixture_path)
        tu.rel = str(fixture_path.name)
        tu.module = args.fixture_module
        caught = True
        for pass_name in selected:
            print(f"--- fixture check: {pass_name} on {fixture_path.name} "
                  f"(as module '{tu.module}') ---")
            if pass_name == "dag":
                result = arch_dag.run([tu], layering,
                                      fixture_module=tu.module)
                ok = bool(result["violations"]) and bool(result["cycles"])
                if not result["cycles"]:
                    print("  fixture NOT caught: no module cycle reported")
            elif pass_name == "locks":
                result = lock_order.run([tu], fixture=True)
                ok = bool(result["cycles"])
            else:
                result = determinism.run([tu], fixture=True)
                counts = result["counts"]
                ok = counts["unordered"] > 0 and counts["clock"] > 0 \
                    and counts["accum"] > 0
                if not ok:
                    print(f"  fixture NOT caught: need all three finding "
                          f"kinds, got {counts}")
            caught = caught and ok
            print(f"  fixture violation {'CAUGHT' if ok else 'MISSED'}")
        return 0 if caught else 1

    files, notice = discover_sources(repo_root)
    if notice:
        print(f"eacheck: {notice}")
    tus = parse_all(frontend, files)
    print(f"eacheck: parsed {len(tus)} TUs with the {frontend.name} frontend"
          + (f" (compile_commands: {compdb_dir})" if compdb_dir else ""))

    failed = False
    for pass_name in selected:
        if pass_name == "dag":
            result = arch_dag.run(tus, layering)
        elif pass_name == "locks":
            result = lock_order.run(tus)
        else:
            result = determinism.run(tus)
        if result["violations"]:
            failed = True

    if failed:
        print("eacheck: FAIL (violations above)")
        return 1
    print("eacheck: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
