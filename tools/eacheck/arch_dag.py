#!/usr/bin/env python3
"""eacheck pass 1: architecture DAG (DESIGN.md §16).

Extracts the module-level include graph for every module under src/ and
checks it against the declared DAG in tools/eacheck/layering.toml:

* every observed edge must be declared (or carry a file-scoped
  ``[[exception]]`` entry, or an ``// eacheck:allow(dag): why`` on the
  include line);
* the declared graph itself must be acyclic (topological order printed);
* the observed graph must be acyclic — a cycle is reported with the
  include chain that closes it;
* declared-but-never-observed edges are reported as *unused* (warning) so
  the declaration cannot drift above reality.

This subsumes project_lint rules 6 (core-no-sim-includes) and 8
(sim-no-daemon-includes): those are simply absent edges in the table.
"""

from __future__ import annotations

import tomllib
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

PASS = "dag"


@dataclass
class Layering:
    dag: dict[str, set[str]]              # module -> allowed targets
    exceptions: dict[tuple[str, str], str]  # (file, target) -> why


def load_layering(path: Path) -> Layering:
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    dag = {mod: set(deps) for mod, deps in data.get("dag", {}).items()}
    exceptions = {}
    for entry in data.get("exception", []):
        exceptions[(entry["file"], entry["target"])] = entry.get("why", "")
    return Layering(dag, exceptions)


def topo_order(dag: dict[str, set[str]]) -> tuple[list[str] | None, list[str]]:
    """Kahn's algorithm over dependency edges (module depends-on targets).

    Returns (order lowest-layer-first, leftover-cycle-members). Order is
    None when the declared graph has a cycle.
    """
    indeg = {m: 0 for m in dag}
    rdeps: dict[str, set[str]] = defaultdict(set)
    for mod, deps in dag.items():
        for dep in deps:
            if dep in dag:
                indeg[mod] += 1
                rdeps[dep].add(mod)
    ready = sorted(m for m, d in indeg.items() if d == 0)
    order: list[str] = []
    while ready:
        mod = ready.pop(0)
        order.append(mod)
        for up in sorted(rdeps[mod]):
            indeg[up] -= 1
            if indeg[up] == 0:
                ready.append(up)
        ready.sort()
    if len(order) != len(dag):
        return None, sorted(m for m, d in indeg.items() if d > 0)
    return order, []


def find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """One directed cycle as [a, b, ..., a], or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        color[node] = GREY
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            if color.get(nxt, WHITE) == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE and nxt in edges:
                found = dfs(nxt)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = dfs(node)
            if found:
                return found
    return None


def observed_edges(tus, modules: set[str]):
    """(src_module -> {target_module: [(tu, Include), ...]}) over src/ TUs."""
    edges: dict[str, dict[str, list]] = defaultdict(lambda: defaultdict(list))
    for tu in tus:
        if tu.module is None:
            continue
        for inc in tu.includes:
            target = inc.target.split("/", 1)[0]
            if "/" not in inc.target or target not in modules:
                continue
            if target == tu.module:
                continue
            edges[tu.module][target].append((tu, inc))
    return edges


def run(tus, layering: Layering, *, fixture_module: str | None = None,
        out=print) -> dict:
    """Run the pass; returns a summary dict with 'violations' and 'cycles'."""
    modules = set(layering.dag)
    violations: list[str] = []
    suppressed = 0

    order, cyclic = topo_order(layering.dag)
    if order is None:
        violations.append(
            f"declared DAG in layering.toml is cyclic (involving: {', '.join(cyclic)})"
        )
        order = sorted(layering.dag)

    edges = observed_edges(tus, modules)

    # Per-edge check
    edge_set: dict[str, set[str]] = defaultdict(set)
    for src_mod, targets in sorted(edges.items()):
        for target, sites in sorted(targets.items()):
            kept_sites = []
            for tu, inc in sites:
                allow = tu.allowed(PASS, inc.line)
                if allow is not None:
                    suppressed += 1
                    continue
                if (tu.rel, target) in layering.exceptions:
                    continue
                kept_sites.append((tu, inc))
            if not kept_sites:
                continue
            edge_set[src_mod].add(target)
            if target not in layering.dag.get(src_mod, set()):
                for tu, inc in kept_sites:
                    violations.append(
                        f"{tu.rel}:{inc.line}: undeclared edge {src_mod} -> {target} "
                        f'(#include "{inc.target}"); declare it in layering.toml '
                        f"or add an [[exception]] with justification"
                    )

    # Observed-graph cycle check (includes undeclared edges: a cycle through
    # a violation is reported as both). In fixture mode the declared edges
    # join the graph so a planted edge can close a cycle against the real
    # architecture (one fixture file cannot form a module cycle alone).
    for mod in modules:
        edge_set.setdefault(mod, set())
    if fixture_module is not None:
        for mod, deps in layering.dag.items():
            edge_set[mod] = edge_set[mod] | (deps & modules)
    cycle = find_cycle(edge_set)
    cycles: list[list[str]] = []
    if cycle:
        cycles.append(cycle)
        violations.append(
            "include cycle between modules: " + " -> ".join(cycle)
        )

    # Unused-edge report (warnings; meaningless when only a fixture is parsed)
    unused: list[str] = []
    for src_mod in sorted(layering.dag) if fixture_module is None else ():
        for target in sorted(layering.dag[src_mod]):
            if target not in edge_set.get(src_mod, set()):
                unused.append(f"{src_mod} -> {target}")

    known_files = {tu.rel for tu in tus}
    stale_exceptions = [
        f"{file} -> {target}" for (file, target) in sorted(layering.exceptions)
        if fixture_module is None and file not in known_files
    ]

    out(f"eacheck[dag]: {len(modules)} modules, "
        f"{sum(len(t) for t in edge_set.values())} observed edges, "
        f"{len(violations)} violation(s), {suppressed} suppressed")
    if order:
        out("  layering (low -> high): " + " < ".join(order))
    for violation in violations:
        out(f"  VIOLATION: {violation}")
    for edge in unused:
        out(f"  warning: declared edge never observed: {edge}")
    for exc in stale_exceptions:
        out(f"  warning: [[exception]] references unknown file: {exc}")

    return {"violations": violations, "cycles": cycles, "unused": unused,
            "edges": {k: sorted(v) for k, v in edge_set.items()}}
