#!/usr/bin/env python3
"""eacheck pass 2: static deadlock detection (DESIGN.md §16).

Builds the lock-order graph from the PR 5 annotated wrappers: every scoped
``MutexLock guard(expr);`` acquisition is canonicalized to its declared
``Mutex`` member (``Class::member``), nesting produces direct edges, and
calls made while holding a lock propagate the callee's transitive
acquisitions interprocedurally (fixpoint over per-function summaries).
A cycle in the resulting graph is a potential deadlock; it is reported with
*both* acquisition stacks (file:line of the held lock and of the nested
acquisition, plus the call chain when the edge is interprocedural).

Resolution is deliberately conservative where the receiver's type is
unknown: calls through an object are matched by method name against every
class that defines it, except for names on the COMMON_METHOD_NAMES
blocklist (``size``, ``find``, …) which would otherwise alias STL
containers onto project classes.

The pass also verifies coverage: acquisition sites must be found in the
sweep, daemon_group, telemetry, logging and shard_engine translation units
(the concurrency surface this repo actually has) so a frontend regression
cannot silently turn the pass into a no-op.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from frontend import Acquisition, CallSite, COMMON_METHOD_NAMES

PASS = "locks"

#: Files that must contribute at least one acquisition site for the pass to
#: trust its own coverage (repo mode only).
REQUIRED_COVERAGE = (
    "src/sim/sweep.cpp",
    "src/daemon/daemon_group.cpp",
    "src/daemon/telemetry.cpp",
    "src/common/logging.cpp",
    "src/sim/shard_engine.cpp",
)


@dataclass
class Edge:
    src: str
    dst: str
    held_at: Acquisition       # where the held lock was taken
    acquired_at: Acquisition   # the nested acquisition
    call_chain: tuple[str, ...] = ()  # interprocedural path, may be empty

    def describe(self) -> str:
        chain = ""
        if self.call_chain:
            chain = "  via " + " -> ".join(self.call_chain)
        return (f"{self.src} -> {self.dst}\n"
                f"      holds   {self.src} since {self.held_at.file}:"
                f"{self.held_at.line} in {self.held_at.function}\n"
                f"      acquires {self.dst} at {self.acquired_at.file}:"
                f"{self.acquired_at.line} in {self.acquired_at.function}"
                + (f"\n    {chain}" if chain else ""))


@dataclass
class FunctionSummary:
    qname: str
    bare: str
    cls: str | None
    file: str
    direct: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    # transitive: canonical -> (acquisition, call chain that reaches it)
    transitive: dict[str, tuple[Acquisition, tuple[str, ...]]] = field(
        default_factory=dict)


def canonicalize(acq: Acquisition, decls, tu_module: str | None) -> str:
    """Map an acquisition expression to ``Owner::member``.

    Preference order: declaring class == enclosing class of the acquiring
    function (bare ``mutex_`` accesses), then same-file declaration, then
    same-module, then a globally unique declaration; otherwise the name is
    qualified with the acquiring file's stem and marked ambiguous.
    """
    candidates = decls.get(acq.tail, [])
    bare_access = "." not in acq.expr and "->" not in acq.expr

    def label(decl) -> str:
        owner = decl.owner or Path(decl.file).stem
        return f"{owner}::{decl.name}"

    if candidates:
        if bare_access:
            same_cls = [d for d in candidates if d.owner == acq.enclosing_class
                        and d.owner is not None]
            if len(same_cls) == 1:
                return label(same_cls[0])
        same_file = [d for d in candidates if d.file == acq.file]
        if len(same_file) == 1:
            return label(same_file[0])
        header_twin = [d for d in candidates
                       if Path(d.file).stem == Path(acq.file).stem]
        if len(header_twin) == 1:
            return label(header_twin[0])
        if tu_module is not None:
            same_mod = [d for d in candidates
                        if d.file.startswith(f"src/{tu_module}/")]
            if len(same_mod) == 1:
                return label(same_mod[0])
        if len(candidates) == 1:
            return label(candidates[0])
    return f"{Path(acq.file).stem}::{acq.tail}(unresolved)"


def build_summaries(tus, decls) -> dict[str, FunctionSummary]:
    summaries: dict[str, FunctionSummary] = {}
    for tu in tus:
        for acq in tu.acquisitions:
            acq.canonical = canonicalize(acq, decls, tu.module)
            summary = summaries.setdefault(
                acq.function,
                FunctionSummary(acq.function, acq.function.split("::")[-1],
                                acq.enclosing_class, tu.rel))
            summary.direct.append(acq)
        for call in tu.calls:
            summary = summaries.setdefault(
                call.function,
                FunctionSummary(call.function, call.function.split("::")[-1],
                                call.enclosing_class, tu.rel))
            summary.calls.append(call)
    return summaries


def resolve_call(call: CallSite, summaries, by_bare) -> list[FunctionSummary]:
    """Candidate callee summaries for a call site."""
    if call.qualifier is not None:
        exact = summaries.get(f"{call.qualifier}::{call.name}")
        return [exact] if exact else []
    if call.receiver is None:
        # free call or implicit this->: prefer the caller's own class
        if call.enclosing_class:
            own = summaries.get(f"{call.enclosing_class}::{call.name}")
            if own:
                return [own]
        candidates = by_bare.get(call.name, [])
        return candidates if len(candidates) == 1 else []
    # receiver of unknown type: conservative name match minus STL-alike names
    if call.name in COMMON_METHOD_NAMES:
        return []
    return [s for s in by_bare.get(call.name, []) if s.cls is not None]


def propagate(summaries: dict[str, FunctionSummary]) -> None:
    """Fixpoint: fold callees' transitive acquisitions into callers."""
    by_bare: dict[str, list[FunctionSummary]] = defaultdict(list)
    for summary in summaries.values():
        by_bare[summary.bare].append(summary)

    for summary in summaries.values():
        for acq in summary.direct:
            summary.transitive.setdefault(acq.canonical, (acq, ()))

    changed = True
    rounds = 0
    while changed and rounds < 32:
        changed = False
        rounds += 1
        for summary in summaries.values():
            for call in summary.calls:
                for callee in resolve_call(call, summaries, by_bare):
                    if callee is summary:
                        continue
                    for canon, (acq, chain) in callee.transitive.items():
                        if canon in summary.transitive:
                            continue
                        if len(chain) >= 6:
                            continue
                        step = (f"{call.name}() at {call.file}:{call.line}",)
                        summary.transitive[canon] = (acq, step + chain)
                        changed = True


def collect_edges(tus, summaries) -> list[Edge]:
    by_bare: dict[str, list[FunctionSummary]] = defaultdict(list)
    for summary in summaries.values():
        by_bare[summary.bare].append(summary)

    edges: list[Edge] = []
    seen: set[tuple] = set()

    def add(src_acq: Acquisition, dst_acq: Acquisition, chain=()):
        if src_acq.canonical == dst_acq.canonical and not chain:
            # re-entrant same-scope double lock: report as a self-edge
            pass
        key = (src_acq.canonical, dst_acq.canonical, dst_acq.file,
               dst_acq.line, chain)
        if key in seen:
            return
        seen.add(key)
        edges.append(Edge(src_acq.canonical, dst_acq.canonical, src_acq,
                          dst_acq, chain))

    # direct nesting
    for tu in tus:
        for acq in tu.acquisitions:
            for held in acq.held_before:
                add(held, acq)

    # interprocedural: calls made while holding
    for tu in tus:
        for call in tu.calls:
            if not call.held:
                continue
            for callee in resolve_call(call, summaries, by_bare):
                for canon, (acq, chain) in callee.transitive.items():
                    for held in call.held:
                        if held.canonical == canon:
                            continue  # relock through self-call chain: skip
                        step = (f"{call.name}() at {call.file}:{call.line}",)
                        add(held, acq, step + chain)
    return edges


def find_cycles(edges: list[Edge]) -> list[list[Edge]]:
    graph: dict[str, list[Edge]] = defaultdict(list)
    for edge in edges:
        graph[edge.src].append(edge)

    cycles: list[list[Edge]] = []
    seen_keys: set[frozenset] = set()

    def dfs(node: str, stack: list[Edge], on_stack: set[str]):
        for edge in graph.get(node, ()):
            if edge.dst in on_stack:
                idx = next(i for i, e in enumerate(stack) if e.src == edge.dst)
                cycle = stack[idx:] + [edge]
                key = frozenset((e.src, e.dst) for e in cycle)
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(cycle)
                continue
            if len(stack) > 12:
                continue
            stack.append(edge)
            on_stack.add(edge.dst)
            dfs(edge.dst, stack, on_stack)
            on_stack.discard(edge.dst)
            stack.pop()

    for node in sorted(graph):
        dfs(node, [], {node})
    # self-deadlock (A -> A)
    for edge in edges:
        if edge.src == edge.dst:
            key = frozenset([(edge.src, edge.dst)])
            if key not in seen_keys:
                seen_keys.add(key)
                cycles.append([edge])
    return cycles


def run(tus, *, fixture: bool = False, out=print) -> dict:
    decls: dict[str, list] = defaultdict(list)
    for tu in tus:
        for decl in tu.mutex_decls:
            decls[decl.name].append(decl)

    summaries = build_summaries(tus, decls)
    propagate(summaries)
    edges = collect_edges(tus, summaries)

    # eacheck:allow(locks) on the nested acquisition line suppresses the edge
    suppressed = 0
    tu_by_rel = {tu.rel: tu for tu in tus}
    kept: list[Edge] = []
    for edge in edges:
        tu = tu_by_rel.get(edge.acquired_at.file)
        if tu is not None and tu.allowed(PASS, edge.acquired_at.line):
            suppressed += 1
            continue
        kept.append(edge)
    edges = kept

    cycles = find_cycles(edges)
    violations: list[str] = []
    for cycle in cycles:
        lines = ["lock-order cycle (potential deadlock):"]
        for edge in cycle:
            lines.append("    " + edge.describe())
        violations.append("\n".join(lines))

    nodes = sorted({e.src for e in edges} | {e.dst for e in edges}
                   | {a.canonical for tu in tus for a in tu.acquisitions
                      if a.canonical})
    site_files = sorted({a.file for tu in tus for a in tu.acquisitions})
    missing_coverage = []
    if not fixture:
        missing_coverage = [f for f in REQUIRED_COVERAGE if f not in site_files]
        for path in missing_coverage:
            violations.append(
                f"coverage: no MutexLock acquisition extracted from {path} — "
                f"the frontend regressed or the file moved; update "
                f"REQUIRED_COVERAGE in tools/eacheck/lock_order.py"
            )

    total_sites = sum(len(tu.acquisitions) for tu in tus)
    out(f"eacheck[locks]: {total_sites} acquisition sites across "
        f"{len(site_files)} files, {len(nodes)} locks, {len(edges)} "
        f"ordered edge(s), {len(cycles)} cycle(s), {suppressed} suppressed")
    out("  lock-order graph:")
    for node in nodes:
        outgoing = sorted({e.dst for e in edges if e.src == node})
        arrow = " -> " + ", ".join(outgoing) if outgoing else ""
        out(f"    {node}{arrow}")
    for edge in edges:
        out("  edge " + edge.describe())
    if not cycles:
        out("  no cycles: lock-order graph is deadlock-free")
    for violation in violations:
        out("  VIOLATION: " + violation)

    return {"violations": violations, "cycles": cycles, "edges": edges,
            "nodes": nodes, "site_files": site_files}
