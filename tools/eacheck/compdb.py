#!/usr/bin/env python3
"""Shared compile_commands.json discovery (DESIGN.md §16).

One source of truth for every tool that needs the build's compilation
database: `eacheck` (all three passes), `run_clang_tidy.sh` and the
`run_all_analysis.sh` umbrella all resolve the database through here, so
"which build tree is the analyzer looking at" has exactly one answer.

Resolution order (first hit wins):

1. ``EACACHE_BUILD_DIR`` — explicit override, must contain the database
   (a set-but-wrong override is an error, never a silent fallback).
2. ``<repo>/build``, ``<repo>/build-asan``, ``<repo>/build-tsan``,
   ``<repo>/build-ubsan`` — the conventional trees, default tree first
   (it matches how developers actually build).

Importable (``find_compile_commands``) and runnable::

    python3 tools/eacheck/compdb.py --print-dir    # build dir, or exit 3
    python3 tools/eacheck/compdb.py --print-path   # database path, or exit 3

Exit 3 (not found) prints the actionable reason on stdout so shell callers
can surface it verbatim in their SKIP message.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Conventional build trees, in preference order.
CANDIDATE_DIRS = ("build", "build-asan", "build-tsan", "build-ubsan")


class CompDbError(RuntimeError):
    """No usable compile_commands.json; str(err) is the actionable reason."""


def find_compile_commands(repo_root: Path = REPO_ROOT) -> Path:
    """Return the path of the discovered compile_commands.json.

    Raises CompDbError with an actionable message when none is found.
    """
    override = os.environ.get("EACACHE_BUILD_DIR")
    if override:
        path = Path(override) / "compile_commands.json"
        if path.is_file():
            return path
        raise CompDbError(
            f"EACACHE_BUILD_DIR={override} is set but {path} does not exist "
            f"(configure that tree first: cmake -B {override} -S {repo_root})"
        )
    for name in CANDIDATE_DIRS:
        path = repo_root / name / "compile_commands.json"
        if path.is_file():
            return path
    tried = ", ".join(str(repo_root / name) for name in CANDIDATE_DIRS)
    raise CompDbError(
        f"no compile_commands.json under any of [{tried}] and EACACHE_BUILD_DIR "
        f"is unset; run `cmake -B build -S {repo_root}` (the root CMakeLists "
        f"exports the database unconditionally)"
    )


def load_entries(repo_root: Path = REPO_ROOT) -> list[dict]:
    """Parsed compilation-database entries (raises CompDbError like find)."""
    path = find_compile_commands(repo_root)
    with path.open(encoding="utf-8") as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise CompDbError(f"{path}: expected a JSON array of entries")
    return entries


def src_translation_units(repo_root: Path = REPO_ROOT) -> list[Path]:
    """Absolute paths of every src/ TU listed in the database, sorted."""
    units: set[Path] = set()
    for entry in load_entries(repo_root):
        file_path = Path(entry.get("file", ""))
        if not file_path.is_absolute():
            file_path = Path(entry.get("directory", ".")) / file_path
        file_path = file_path.resolve()
        try:
            rel = file_path.relative_to(repo_root)
        except ValueError:
            continue
        if rel.parts[:1] == ("src",) and file_path.suffix == ".cpp":
            units.add(file_path)
    return sorted(units)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--print-dir", action="store_true",
                      help="print the build directory containing the database")
    mode.add_argument("--print-path", action="store_true",
                      help="print the database path itself")
    args = parser.parse_args()
    try:
        path = find_compile_commands()
    except CompDbError as err:
        print(f"compdb: {err}")
        return 3
    print(path.parent if args.print_dir else path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
