#!/usr/bin/env python3
"""eacheck frontends: source → per-TU semantic facts (DESIGN.md §16).

Two interchangeable frontends produce the same intermediate representation:

* ``ClangFrontend`` — libclang (``clang.cindex``) over the build's
  compile_commands.json. Preferred when the LLVM Python bindings are
  installed: it sees the preprocessed truth (macro expansion, real decl
  types, overload resolution at the cursor level).
* ``LexFrontend`` — a dependency-free C++ lexer/scope-walker. It tracks
  namespace/class/function nesting, RAII ``MutexLock`` scopes, range-for
  statements and declarations well enough to extract every fact the three
  passes consume. This is the reference implementation: the negative-control
  fixtures must be caught by it, so the analysis tier never self-skips just
  because libclang is missing.

The facts (the IR consumed by arch_dag / lock_order / determinism):

* includes              — project-relative ``#include "..."`` with lines
* mutex declarations    — ``Mutex name;`` with the owning class
* lock acquisitions     — ``MutexLock guard(expr);`` with held-set context
* call sites            — name + receiver chain + locks held at the call
* iteration sites       — range-for / ``.begin()`` with the iterated chain
* unordered declarations— ``std::unordered_{map,set,...}`` variables/members
* clock uses            — wall-clock tokens (system_clock, steady_clock, …)
* float accumulations   — ``double += …`` inside an iteration scope
* allows                — ``// eacheck:allow(<pass>): justification`` lines

Suppression contract: a finding on line L is suppressed when an allow for
its pass sits on line L or line L-1 *and* carries non-empty justification
text after the colon. Allows without justification are themselves findings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# IR dataclasses
# --------------------------------------------------------------------------


@dataclass
class Include:
    target: str  # as written, e.g. "sim/sweep.h"
    line: int


@dataclass
class MutexDecl:
    name: str
    owner: str | None  # enclosing class/struct, None at namespace scope
    file: str          # repo-relative
    line: int


@dataclass
class Acquisition:
    expr: str          # source expression, e.g. "entry->mutex"
    tail: str          # trailing member name, e.g. "mutex"
    line: int
    function: str      # qualified enclosing function
    enclosing_class: str | None
    file: str
    held_before: list["Acquisition"] = field(default_factory=list)
    canonical: str | None = None  # filled in by lock_order resolution


@dataclass
class CallSite:
    name: str                    # callee's final name component
    qualifier: str | None        # explicit A::b qualifier if written
    receiver: str | None         # "wire_" for wire_.send(...), None if free
    line: int
    function: str
    enclosing_class: str | None
    file: str
    held: list[Acquisition] = field(default_factory=list)
    during: "IterationSite | None" = None  # innermost iteration at the call


@dataclass
class IterationSite:
    chain: str         # iterated expression chain, e.g. "snapshots_"
    base: str          # base identifier of the chain
    subscripts: int    # number of [..] applied to the base
    line: int
    function: str
    file: str
    kind: str          # "range-for" | "begin"


@dataclass
class UnorderedDecl:
    name: str
    owner: str | None  # enclosing class, or None for locals/file scope
    type_str: str      # normalized declared type, e.g. "unordered_map<K,V>"
    file: str
    line: int


@dataclass
class ClockUse:
    token: str         # e.g. "steady_clock"
    line: int
    function: str | None
    file: str


@dataclass
class FloatAccum:
    var: str
    line: int
    function: str
    file: str
    iterated: str      # the chain being iterated around this +=
    base: str = ""     # base identifier of that chain
    subscripts: int = 0


@dataclass
class Allow:
    passes: tuple[str, ...]
    justification: str
    line: int


@dataclass
class TU:
    path: Path
    rel: str           # repo-relative path string
    module: str | None  # first component under src/, None outside src/
    includes: list[Include] = field(default_factory=list)
    mutex_decls: list[MutexDecl] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    iterations: list[IterationSite] = field(default_factory=list)
    unordered_decls: list[UnorderedDecl] = field(default_factory=list)
    clock_uses: list[ClockUse] = field(default_factory=list)
    float_accums: list[FloatAccum] = field(default_factory=list)
    allows: dict[int, list[Allow]] = field(default_factory=dict)
    frontend: str = "lex"

    def allowed(self, pass_name: str, line: int) -> Allow | None:
        """The Allow suppressing `pass_name` findings at `line`, if any."""
        for probe in (line, line - 1):
            for allow in self.allows.get(probe, ()):
                if pass_name in allow.passes and allow.justification:
                    return allow
        return None


# --------------------------------------------------------------------------
# Comment / string stripping (line-structure preserving)
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"//\s*eacheck:allow\(\s*([a-z_,\s]+?)\s*\)\s*(?::\s*(.*\S))?\s*$"
)


def strip_and_collect_allows(text: str) -> tuple[str, dict[int, list[Allow]]]:
    """Blank out comments, string and char literals; harvest allow lines.

    Newlines inside block comments and raw strings are preserved so every
    token keeps its original line number.
    """
    allows: dict[int, list[Allow]] = {}
    out: list[str] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            out.append(c)
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comment = text[i:j]
            match = ALLOW_RE.search(comment)
            if match:
                passes = tuple(p.strip() for p in match.group(1).split(",") if p.strip())
                allows.setdefault(line, []).append(
                    Allow(passes, (match.group(2) or "").strip(), line)
                )
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            out.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i > 0 and text[i - 1] == "R":
                match = re.match(r'"([^()\\ ]{0,16})\(', text[i:])
                if match:
                    delim = match.group(1)
                    end = text.find(")" + delim + '"', i)
                    end = n if end < 0 else end + len(delim) + 2
                    chunk = text[i:end]
                    out.append('""' + re.sub(r"[^\n]", " ", chunk[2:]))
                    line += chunk.count("\n")
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('""' + " " * (j - i - 2))
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("' " + " " * (j - i - 2))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out), allows


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"
    r"|\d[\w.+-]*"
    r"|::|->\*?|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|==|!=|<=|>=|&&|\|\||<<"
    r"|[{}()\[\];:,<>=.&*+\-/!?~%^|#]"
    r"|\"\"|'"
)

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "try", "catch", "return",
    "case", "default", "new", "delete", "throw", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast", "co_await",
}

#: Method names too generic to resolve across classes without a receiver
#: type — calls through an *unknown* receiver skip candidates with these
#: names so `entries_.size()` never aliases `TraceCache::size()`.
COMMON_METHOD_NAMES = {
    "size", "empty", "clear", "begin", "end", "rbegin", "rend", "count",
    "find", "erase", "insert", "emplace", "emplace_back", "push_back",
    "pop_back", "reserve", "resize", "assign", "at", "front", "back", "top",
    "pop", "push", "data", "str", "get", "reset", "release", "swap", "c_str",
    "lock", "unlock", "try_lock", "notify_one", "notify_all", "wait",
    "wait_for", "join", "joinable", "detach", "load", "store", "value",
    "has_value", "emplace_front", "contains", "length", "substr", "append",
    "add", "merge", "set", "id", "now", "stats",
}

CLOCK_TOKENS = {
    "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
    "clock_gettime", "timespec_get", "localtime", "gmtime", "mktime",
    "utc_clock", "file_clock",
}

UNORDERED_NAMES = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
}


@dataclass
class _Scope:
    kind: str                    # namespace | class | function | block
    name: str | None = None      # namespace/class name, function qname
    cls: str | None = None       # nearest class context
    fn: str | None = None        # nearest function qname
    held: list[Acquisition] = field(default_factory=list)
    iterating: IterationSite | None = None


class LexFrontend:
    """Dependency-free lexical frontend."""

    name = "lex"

    def __init__(self, repo_root: Path):
        self.repo_root = repo_root

    def parse(self, path: Path) -> TU:
        rel = str(path.relative_to(self.repo_root))
        parts = Path(rel).parts
        module = parts[1] if len(parts) > 2 and parts[0] == "src" else None
        tu = TU(path=path, rel=rel, module=module, frontend=self.name)

        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped, tu.allows = strip_and_collect_allows(raw)

        # Includes come from the raw (but comment-stripped) line structure.
        for lineno, line in enumerate(raw.splitlines(), 1):
            code = line.split("//", 1)[0]
            match = re.match(r'\s*#\s*include\s+"([^"]+)"', code)
            if match:
                tu.includes.append(Include(match.group(1), lineno))

        self._walk(tu, stripped)
        return tu

    # -- token walk -------------------------------------------------------

    def _walk(self, tu: TU, text: str) -> None:
        tokens: list[tuple[str, int]] = []
        line = 1
        pos = 0
        for match in TOKEN_RE.finditer(text):
            line += text.count("\n", pos, match.start())
            pos = match.start()
            tokens.append((match.group(0), line))

        scopes: list[_Scope] = [_Scope("namespace", name=None)]
        head: list[tuple[str, int]] = []      # tokens since last ; { }
        pending_events: list = []             # events buffered per statement
        pending_iter: IterationSite | None = None
        double_names: set[str] = set()

        def current_fn() -> str | None:
            for scope in reversed(scopes):
                if scope.fn:
                    return scope.fn
            return None

        def current_cls() -> str | None:
            for scope in reversed(scopes):
                if scope.cls:
                    return scope.cls
            return None

        def held_now() -> list[Acquisition]:
            held: list[Acquisition] = []
            for scope in scopes:
                held.extend(scope.held)
            return held

        def iterating_now() -> IterationSite | None:
            for scope in reversed(scopes):
                if scope.iterating is not None:
                    return scope.iterating
            return pending_iter

        def flush(into_function: bool) -> None:
            nonlocal pending_events
            if into_function:
                for event in pending_events:
                    self._commit(tu, event)
            pending_events = []

        i = 0
        n = len(tokens)
        while i < n:
            tok, ln = tokens[i]

            if tok == "{":
                scope = self._classify(head, scopes)
                if scope.kind == "function":
                    pending_events = []  # the head was a signature
                else:
                    flush(current_fn() is not None)
                if scope.kind == "block" and pending_iter is not None:
                    scope.iterating = pending_iter
                    pending_iter = None
                scopes.append(scope)
                head = []
                i += 1
                continue
            if tok == "}":
                flush(current_fn() is not None)
                pending_iter = None
                if len(scopes) > 1:
                    scopes.pop()
                head = []
                # Consume a trailing `;` of class definitions quietly.
                i += 1
                continue
            if tok == ";":
                in_fn = current_fn() is not None
                if pending_iter is not None and in_fn:
                    # single-statement range-for body: events in this
                    # statement count as inside the iteration
                    for event in pending_events:
                        if isinstance(event, FloatAccum) and not event.iterated:
                            event.iterated = pending_iter.chain
                            event.base = pending_iter.base
                            event.subscripts = pending_iter.subscripts
                flush(in_fn)
                pending_iter = None
                self._scan_declaration(tu, head, scopes, double_names)
                head = []
                i += 1
                continue

            # ---- event extraction (buffered until statement end) --------
            nxt = tokens[i + 1][0] if i + 1 < n else ""

            if tok == "MutexLock" and re.match(r"[A-Za-z_]", nxt or "-"):
                after = tokens[i + 2][0] if i + 2 < n else ""
                if after in ("(", "{"):
                    expr, consumed = self._capture_group(tokens, i + 2)
                    tail = self._chain_tail(expr)
                    acq = Acquisition(
                        expr=" ".join(t for t, _ in expr) or "?",
                        tail=tail,
                        line=ln,
                        function=current_fn() or "<file>",
                        enclosing_class=current_cls(),
                        file=tu.rel,
                        held_before=list(held_now()),
                    )
                    tu.acquisitions.append(acq)
                    scopes[-1].held.append(acq)
                    i = consumed
                    continue

            if tok == "for" and nxt == "(":
                group, consumed = self._capture_group(tokens, i + 1)
                site = self._range_for_site(tu, group, ln, current_fn())
                if site is not None and current_fn() is not None:
                    tu.iterations.append(site)
                    pending_iter = site
                i = consumed
                continue

            if tok in CLOCK_TOKENS:
                tu.clock_uses.append(ClockUse(tok, ln, current_fn(), tu.rel))
                i += 1
                continue
            if tok == "time" and nxt == "(":
                prev = tokens[i - 1][0] if i > 0 else ""
                if prev not in (".", "->", "::") and not re.match(r"[A-Za-z_0-9]", prev or " "):
                    tu.clock_uses.append(ClockUse("time()", ln, current_fn(), tu.rel))

            if tok in UNORDERED_NAMES and nxt == "<":
                decl, consumed = self._unordered_decl(tu, tokens, i, scopes, ln)
                if decl is not None:
                    tu.unordered_decls.append(decl)
                i = consumed
                continue

            if tok == "+=" and current_fn() is not None:
                lhs = self._lhs_chain(head)
                site = iterating_now()
                if lhs and site is not None and lhs in double_names:
                    pending_events.append(
                        FloatAccum(lhs, ln, current_fn() or "<file>", tu.rel,
                                   site.chain, site.base, site.subscripts)
                    )

            if tok == "begin" and nxt == "(" and i > 0 and tokens[i - 1][0] in (".", "->"):
                chain = self._receiver_chain(tokens, i - 1)
                if chain and current_fn() is not None:
                    base, subs = self._chain_base(chain)
                    tu.iterations.append(
                        IterationSite(chain, base, subs, ln, current_fn() or "<file>",
                                      tu.rel, "begin")
                    )

            if (re.match(r"[A-Za-z_]", tok) and nxt == "(" and tok not in CONTROL_KEYWORDS
                    and current_fn() is not None):
                prev = tokens[i - 1][0] if i > 0 else ""
                qualifier = None
                receiver = None
                if prev == "::" and i >= 2:
                    qualifier = tokens[i - 2][0]
                elif prev in (".", "->"):
                    receiver = self._receiver_chain(tokens, i - 1) or "?"
                pending_events.append(
                    CallSite(tok, qualifier, receiver, ln, current_fn() or "<file>",
                             current_cls(), tu.rel, held=list(held_now()),
                             during=iterating_now())
                )

            head.append((tok, ln))
            i += 1

        flush(current_fn() is not None)

    # -- helpers ----------------------------------------------------------

    def _commit(self, tu: TU, event) -> None:
        if isinstance(event, CallSite):
            tu.calls.append(event)
        elif isinstance(event, FloatAccum):
            tu.float_accums.append(event)

    @staticmethod
    def _capture_group(tokens, open_index) -> tuple[list[tuple[str, int]], int]:
        """Tokens inside the (…) or {…} opening at open_index; returns
        (inner tokens, index one past the closing bracket)."""
        openers = {"(": ")", "{": "}"}
        open_tok = tokens[open_index][0]
        close_tok = openers.get(open_tok)
        if close_tok is None:
            return [], open_index + 1
        depth = 0
        inner: list[tuple[str, int]] = []
        i = open_index
        while i < len(tokens):
            tok = tokens[i][0]
            if tok == open_tok:
                depth += 1
                if depth == 1:
                    i += 1
                    continue
            elif tok == close_tok:
                depth -= 1
                if depth == 0:
                    return inner, i + 1
            inner.append(tokens[i])
            i += 1
        return inner, len(tokens)

    @staticmethod
    def _chain_tail(expr_tokens) -> str:
        names = [t for t, _ in expr_tokens if re.match(r"[A-Za-z_]", t)]
        return names[-1] if names else "?"

    @staticmethod
    def _receiver_chain(tokens, sep_index) -> str:
        """Reconstruct `a.b->c` style receiver chain ending at sep_index."""
        parts: list[str] = []
        i = sep_index
        while i > 0:
            sep = tokens[i][0]
            if sep not in (".", "->"):
                break
            prev = tokens[i - 1][0]
            if prev == ")" or prev == "]":
                # call or subscript result: keep the bracket as a marker and
                # skip back over the group
                depth = 0
                j = i - 1
                open_for = {")": "(", "]": "["}[prev]
                while j >= 0:
                    if tokens[j][0] == prev:
                        depth += 1
                    elif tokens[j][0] == open_for:
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                marker = "[]" if prev == "]" else "()"
                if j > 0 and re.match(r"[A-Za-z_]", tokens[j - 1][0]):
                    parts.append(tokens[j - 1][0] + marker)
                    i = j - 2
                    continue
                break
            if not re.match(r"[A-Za-z_]", prev):
                break
            parts.append(prev)
            i -= 2
        return ".".join(reversed(parts))

    @staticmethod
    def _chain_base(chain: str) -> tuple[str, int]:
        first = chain.split(".", 1)[0]
        subs = first.count("[]")
        return first.replace("[]", "").replace("()", ""), subs

    def _range_for_site(self, tu: TU, group, line: int, fn: str | None):
        """Range-for detection: a `:` at depth 0 inside the for(...)."""
        depth = 0
        colon_at = None
        for idx, (tok, _) in enumerate(group):
            if tok in ("(", "[", "{", "<"):
                depth += 1
            elif tok in (")", "]", "}", ">"):
                depth = max(0, depth - 1)
            elif tok == ":" and depth == 0:
                prev = group[idx - 1][0] if idx > 0 else ""
                if prev != ":" and (idx + 1 >= len(group) or group[idx + 1][0] != ":"):
                    colon_at = idx
                    break
        if colon_at is None:
            return None
        expr_tokens = group[colon_at + 1:]
        names: list[str] = []
        subs = 0
        j = 0
        while j < len(expr_tokens):
            tok = expr_tokens[j][0]
            if re.match(r"[A-Za-z_]", tok):
                names.append(tok)
            elif tok == "[":
                if len(names) == 1:
                    subs += 1
                depth = 1
                j += 1
                while j < len(expr_tokens) and depth:
                    if expr_tokens[j][0] == "[":
                        depth += 1
                    elif expr_tokens[j][0] == "]":
                        depth -= 1
                    j += 1
                continue
            j += 1
        if not names:
            return None
        chain = ".".join(names)
        return IterationSite(chain, names[0], subs, line, fn or "<file>", tu.rel,
                             "range-for")

    def _unordered_decl(self, tu: TU, tokens, i, scopes, line):
        """Parse `unordered_xxx<...> [&*]* name` declarations."""
        container = tokens[i][0]
        # match the template argument list, treating >> as two closes
        depth = 0
        j = i + 1
        arg_tokens: list[str] = []
        while j < len(tokens):
            tok = tokens[j][0]
            if tok == "<":
                depth += 1
                if depth > 1:
                    arg_tokens.append(tok)
            elif tok == ">":
                depth -= 1
                if depth == 0:
                    j += 1
                    break
                arg_tokens.append(tok)
            elif tok == ">>":
                depth -= 2
                if depth <= 0:
                    j += 1
                    break
                arg_tokens.append(tok)
            else:
                arg_tokens.append(tok)
            j += 1
        # skip refs/pointers/cv
        while j < len(tokens) and tokens[j][0] in ("&", "*", "const", "&&"):
            j += 1
        name = None
        if j < len(tokens) and re.match(r"[A-Za-z_]", tokens[j][0]):
            follow = tokens[j + 1][0] if j + 1 < len(tokens) else ""
            if follow in (";", "=", "{", "(", ",") or follow.startswith("EACACHE"):
                name = tokens[j][0]
        if name is None:
            return None, j
        owner = None
        for scope in reversed(scopes):
            if scope.kind == "class":
                owner = scope.name
                break
            if scope.kind == "function":
                break
        type_str = f"{container}<{' '.join(arg_tokens)}>"
        return UnorderedDecl(name, owner, type_str, tu.rel, line), j

    @staticmethod
    def _lhs_chain(head) -> str | None:
        names = []
        for tok, _ in reversed(head):
            if re.match(r"[A-Za-z_]", tok):
                names.append(tok)
            elif tok in (".", "->", "]", "[", "::"):
                continue
            else:
                break
        return names[0] if names else None

    def _scan_declaration(self, tu: TU, head, scopes, double_names: set) -> None:
        """Statement-level declarations: Mutex members, double locals."""
        toks = [t for t, _ in head]
        for idx, tok in enumerate(toks):
            if tok == "Mutex" and idx + 1 < len(toks) and re.match(r"[A-Za-z_]", toks[idx + 1]):
                follow = toks[idx + 2] if idx + 2 < len(toks) else ";"
                if follow in (";", "=") or follow.startswith("EACACHE"):
                    owner = None
                    for scope in reversed(scopes):
                        if scope.kind == "class":
                            owner = scope.name
                            break
                        if scope.kind == "function":
                            break
                    tu.mutex_decls.append(
                        MutexDecl(toks[idx + 1], owner, tu.rel, head[idx + 1][1])
                    )
            if tok in ("double", "float") and idx + 1 < len(toks):
                if re.match(r"[A-Za-z_]", toks[idx + 1]):
                    double_names.add(toks[idx + 1])

    def _classify(self, head, scopes) -> _Scope:
        toks = [t for t, _ in head]
        # access specifiers / friend prefixes do not change scope kind
        while toks and toks[0] in ("public", "private", "protected", ":", "friend"):
            toks = toks[1:]
        cls = None
        fn = None
        for scope in reversed(scopes):
            if cls is None and scope.cls:
                cls = scope.cls
            if fn is None and scope.fn:
                fn = scope.fn
            if cls and fn:
                break

        if not toks:
            return _Scope("block", cls=cls, fn=fn)

        # strip leading template<...>
        if toks and toks[0] == "template":
            depth = 0
            for idx, tok in enumerate(toks):
                if tok == "<":
                    depth += 1
                elif tok in (">", ">>"):
                    depth -= 2 if tok == ">>" else 1
                    if depth <= 0:
                        toks = toks[idx + 1:]
                        break

        if "namespace" in toks:
            idx = toks.index("namespace")
            name = None
            if idx + 1 < len(toks) and re.match(r"[A-Za-z_]", toks[idx + 1]):
                name = toks[idx + 1]
            return _Scope("namespace", name=name, cls=cls, fn=fn)

        if toks and toks[0] in ("enum",):
            return _Scope("block", cls=cls, fn=fn)

        if toks and toks[0] in ("class", "struct", "union") or (
                len(toks) > 1 and toks[0] in ("typedef",) and toks[1] in ("struct", "union")):
            # class name: last identifier before a base-clause ':' (top
            # level) or end of head
            depth = 0
            candidates = []
            for tok in toks[1:]:
                if tok in ("(", "<", "["):
                    depth += 1
                elif tok in (")", ">", "]"):
                    depth = max(0, depth - 1)
                elif tok == ":" and depth == 0:
                    break
                elif depth == 0 and re.match(r"[A-Za-z_]", tok) and tok not in (
                        "final", "alignas", "const"):
                    candidates.append(tok)
            name = candidates[-1] if candidates else "<anon>"
            return _Scope("class", name=name, cls=name, fn=fn)

        first = toks[0]
        if first in CONTROL_KEYWORDS or first == "[":
            return _Scope("block", cls=cls, fn=fn)
        if "=" in toks and "(" not in toks[:toks.index("=")]:
            return _Scope("block", cls=cls, fn=fn)  # init-list assignment

        # function definition: first depth-0 '(' preceded by an identifier
        depth = 0
        name_idx = None
        for idx, tok in enumerate(toks):
            if tok == "(":
                if depth == 0 and idx > 0 and re.match(r"[A-Za-z_~]", toks[idx - 1]):
                    prev = toks[idx - 1]
                    if prev not in CONTROL_KEYWORDS and not (
                            prev.isupper() and len(prev) > 3 and "_" in prev and idx == 1):
                        name_idx = idx - 1
                        break
                depth += 1
            elif tok == ")":
                depth = max(0, depth - 1)
            elif tok in ("<",):
                depth += 1
            elif tok in (">", ">>"):
                depth = max(0, depth - (2 if tok == ">>" else 1))
        if name_idx is None:
            return _Scope("block", cls=cls, fn=fn)

        # collect A::B::name backwards
        parts = [toks[name_idx]]
        k = name_idx - 1
        while k >= 1 and toks[k] == "::" and re.match(r"[A-Za-z_]", toks[k - 1]):
            parts.append(toks[k - 1])
            k -= 2
        parts.reverse()
        qname = "::".join(parts)
        method_cls = parts[-2] if len(parts) >= 2 else cls
        return _Scope("function", name=qname, cls=method_cls,
                      fn=(f"{method_cls}::{parts[-1]}"
                          if method_cls and len(parts) < 2 else qname))


# --------------------------------------------------------------------------
# Clang frontend (optional; degrades to LexFrontend when unavailable)
# --------------------------------------------------------------------------


class ClangFrontend:
    """libclang-backed frontend.

    Parses each TU with the flags recorded in compile_commands.json, then
    extracts the same IR from the cursor tree. Constructing it raises
    ImportError/OSError when clang.cindex or libclang itself is missing —
    callers fall back to LexFrontend and say so.
    """

    name = "clang"

    def __init__(self, repo_root: Path, compdb_dir: Path | None):
        import clang.cindex as cindex  # noqa: F401  (raises when absent)

        self.cindex = cindex
        self.repo_root = repo_root
        self.index = cindex.Index.create()  # raises OSError without libclang
        self.compdb = None
        if compdb_dir is not None:
            try:
                self.compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
            except cindex.CompilationDatabaseError:
                self.compdb = None
        # The lexical walker still supplies allows + includes (libclang sees
        # them too, but the comment harvest is simpler on raw text).
        self._lex = LexFrontend(repo_root)

    def parse(self, path: Path) -> TU:
        tu = self._lex.parse(path)  # baseline facts incl. allows/includes
        tu.frontend = self.name
        args = ["-std=c++20", f"-I{self.repo_root / 'src'}"]
        if self.compdb is not None:
            commands = self.compdb.getCompileCommands(str(path))
            if commands:
                raw = list(commands[0].arguments)[1:-1]
                args = [a for a in raw if a != str(path)]
        try:
            unit = self.index.parse(str(path), args=args)
        except self.cindex.TranslationUnitLoadError:
            return tu  # keep the lexical facts
        self._refine_types(tu, unit.cursor, path)
        return tu

    def _refine_types(self, tu: TU, cursor, path: Path) -> None:
        """Use real decl types to re-ground unordered declarations."""
        kind = self.cindex.CursorKind
        seen: set[tuple[str, int]] = set()
        for node in cursor.walk_preorder():
            if node.location.file is None or Path(str(node.location.file)) != path:
                continue
            if node.kind in (kind.VAR_DECL, kind.FIELD_DECL):
                spelling = node.type.spelling
                if "unordered_" in spelling:
                    key = (node.spelling, node.location.line)
                    if key in seen:
                        continue
                    seen.add(key)
                    owner = None
                    parent = node.semantic_parent
                    if parent is not None and parent.kind in (
                            kind.CLASS_DECL, kind.STRUCT_DECL):
                        owner = parent.spelling
                    tu.unordered_decls.append(
                        UnorderedDecl(node.spelling, owner, spelling, tu.rel,
                                      node.location.line)
                    )


def make_frontend(kind: str, repo_root: Path, compdb_dir: Path | None):
    """Frontend factory: 'clang' | 'lex' | 'auto'.

    Returns (frontend, notice) where notice explains a fallback, if any.
    """
    if kind == "lex":
        return LexFrontend(repo_root), None
    try:
        return ClangFrontend(repo_root, compdb_dir), None
    except Exception as err:  # ImportError, OSError (libclang.so missing), …
        notice = (f"libclang unavailable ({type(err).__name__}: {err}); "
                  f"using the built-in lexical frontend")
        if kind == "clang":
            raise RuntimeError(notice) from err
        return LexFrontend(repo_root), notice
