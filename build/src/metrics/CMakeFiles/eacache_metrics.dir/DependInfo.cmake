
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/ascii_chart.cpp" "src/metrics/CMakeFiles/eacache_metrics.dir/ascii_chart.cpp.o" "gcc" "src/metrics/CMakeFiles/eacache_metrics.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/metrics/json.cpp" "src/metrics/CMakeFiles/eacache_metrics.dir/json.cpp.o" "gcc" "src/metrics/CMakeFiles/eacache_metrics.dir/json.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "src/metrics/CMakeFiles/eacache_metrics.dir/metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/eacache_metrics.dir/metrics.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/metrics/CMakeFiles/eacache_metrics.dir/table.cpp.o" "gcc" "src/metrics/CMakeFiles/eacache_metrics.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/eacache_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
