file(REMOVE_RECURSE
  "CMakeFiles/eacache_metrics.dir/ascii_chart.cpp.o"
  "CMakeFiles/eacache_metrics.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/eacache_metrics.dir/json.cpp.o"
  "CMakeFiles/eacache_metrics.dir/json.cpp.o.d"
  "CMakeFiles/eacache_metrics.dir/metrics.cpp.o"
  "CMakeFiles/eacache_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/eacache_metrics.dir/table.cpp.o"
  "CMakeFiles/eacache_metrics.dir/table.cpp.o.d"
  "libeacache_metrics.a"
  "libeacache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
