file(REMOVE_RECURSE
  "libeacache_metrics.a"
)
