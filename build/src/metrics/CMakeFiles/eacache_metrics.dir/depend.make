# Empty dependencies file for eacache_metrics.
# This may be replaced when dependencies are built.
