# Empty dependencies file for eacache_digest.
# This may be replaced when dependencies are built.
