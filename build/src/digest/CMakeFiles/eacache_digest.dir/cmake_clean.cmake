file(REMOVE_RECURSE
  "CMakeFiles/eacache_digest.dir/bloom_filter.cpp.o"
  "CMakeFiles/eacache_digest.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/eacache_digest.dir/counting_bloom.cpp.o"
  "CMakeFiles/eacache_digest.dir/counting_bloom.cpp.o.d"
  "CMakeFiles/eacache_digest.dir/digest_directory.cpp.o"
  "CMakeFiles/eacache_digest.dir/digest_directory.cpp.o.d"
  "libeacache_digest.a"
  "libeacache_digest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
