file(REMOVE_RECURSE
  "libeacache_digest.a"
)
