
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digest/bloom_filter.cpp" "src/digest/CMakeFiles/eacache_digest.dir/bloom_filter.cpp.o" "gcc" "src/digest/CMakeFiles/eacache_digest.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/digest/counting_bloom.cpp" "src/digest/CMakeFiles/eacache_digest.dir/counting_bloom.cpp.o" "gcc" "src/digest/CMakeFiles/eacache_digest.dir/counting_bloom.cpp.o.d"
  "/root/repo/src/digest/digest_directory.cpp" "src/digest/CMakeFiles/eacache_digest.dir/digest_directory.cpp.o" "gcc" "src/digest/CMakeFiles/eacache_digest.dir/digest_directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
