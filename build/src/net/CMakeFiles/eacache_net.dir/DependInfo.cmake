
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/icp_codec.cpp" "src/net/CMakeFiles/eacache_net.dir/icp_codec.cpp.o" "gcc" "src/net/CMakeFiles/eacache_net.dir/icp_codec.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/net/CMakeFiles/eacache_net.dir/latency_model.cpp.o" "gcc" "src/net/CMakeFiles/eacache_net.dir/latency_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/eacache_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
