file(REMOVE_RECURSE
  "CMakeFiles/eacache_net.dir/icp_codec.cpp.o"
  "CMakeFiles/eacache_net.dir/icp_codec.cpp.o.d"
  "CMakeFiles/eacache_net.dir/latency_model.cpp.o"
  "CMakeFiles/eacache_net.dir/latency_model.cpp.o.d"
  "libeacache_net.a"
  "libeacache_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
