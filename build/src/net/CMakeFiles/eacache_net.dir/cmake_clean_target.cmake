file(REMOVE_RECURSE
  "libeacache_net.a"
)
