# Empty dependencies file for eacache_net.
# This may be replaced when dependencies are built.
