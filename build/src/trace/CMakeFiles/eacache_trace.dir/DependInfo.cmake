
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/eacache_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/bu_parser.cpp" "src/trace/CMakeFiles/eacache_trace.dir/bu_parser.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/bu_parser.cpp.o.d"
  "/root/repo/src/trace/bu_writer.cpp" "src/trace/CMakeFiles/eacache_trace.dir/bu_writer.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/bu_writer.cpp.o.d"
  "/root/repo/src/trace/squid_parser.cpp" "src/trace/CMakeFiles/eacache_trace.dir/squid_parser.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/squid_parser.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/eacache_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/eacache_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/eacache_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
