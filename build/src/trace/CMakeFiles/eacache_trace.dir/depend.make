# Empty dependencies file for eacache_trace.
# This may be replaced when dependencies are built.
