file(REMOVE_RECURSE
  "CMakeFiles/eacache_trace.dir/analysis.cpp.o"
  "CMakeFiles/eacache_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/eacache_trace.dir/bu_parser.cpp.o"
  "CMakeFiles/eacache_trace.dir/bu_parser.cpp.o.d"
  "CMakeFiles/eacache_trace.dir/bu_writer.cpp.o"
  "CMakeFiles/eacache_trace.dir/bu_writer.cpp.o.d"
  "CMakeFiles/eacache_trace.dir/squid_parser.cpp.o"
  "CMakeFiles/eacache_trace.dir/squid_parser.cpp.o.d"
  "CMakeFiles/eacache_trace.dir/synthetic.cpp.o"
  "CMakeFiles/eacache_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/eacache_trace.dir/trace.cpp.o"
  "CMakeFiles/eacache_trace.dir/trace.cpp.o.d"
  "libeacache_trace.a"
  "libeacache_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
