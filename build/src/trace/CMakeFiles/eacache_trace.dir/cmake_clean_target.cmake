file(REMOVE_RECURSE
  "libeacache_trace.a"
)
