# Empty compiler generated dependencies file for eacache_prefetch.
# This may be replaced when dependencies are built.
