file(REMOVE_RECURSE
  "libeacache_prefetch.a"
)
