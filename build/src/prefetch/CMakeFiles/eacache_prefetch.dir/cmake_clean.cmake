file(REMOVE_RECURSE
  "CMakeFiles/eacache_prefetch.dir/markov_predictor.cpp.o"
  "CMakeFiles/eacache_prefetch.dir/markov_predictor.cpp.o.d"
  "libeacache_prefetch.a"
  "libeacache_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
