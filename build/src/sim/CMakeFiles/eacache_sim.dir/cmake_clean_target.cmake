file(REMOVE_RECURSE
  "libeacache_sim.a"
)
