file(REMOVE_RECURSE
  "CMakeFiles/eacache_sim.dir/experiment.cpp.o"
  "CMakeFiles/eacache_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/eacache_sim.dir/result_json.cpp.o"
  "CMakeFiles/eacache_sim.dir/result_json.cpp.o.d"
  "CMakeFiles/eacache_sim.dir/simulator.cpp.o"
  "CMakeFiles/eacache_sim.dir/simulator.cpp.o.d"
  "libeacache_sim.a"
  "libeacache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
