# Empty compiler generated dependencies file for eacache_sim.
# This may be replaced when dependencies are built.
