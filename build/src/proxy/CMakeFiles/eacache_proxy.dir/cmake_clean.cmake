file(REMOVE_RECURSE
  "CMakeFiles/eacache_proxy.dir/proxy_cache.cpp.o"
  "CMakeFiles/eacache_proxy.dir/proxy_cache.cpp.o.d"
  "libeacache_proxy.a"
  "libeacache_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
