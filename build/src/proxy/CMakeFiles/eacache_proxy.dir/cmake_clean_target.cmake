file(REMOVE_RECURSE
  "libeacache_proxy.a"
)
