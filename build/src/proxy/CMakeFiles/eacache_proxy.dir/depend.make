# Empty dependencies file for eacache_proxy.
# This may be replaced when dependencies are built.
