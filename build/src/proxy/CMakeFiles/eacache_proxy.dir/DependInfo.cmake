
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/proxy_cache.cpp" "src/proxy/CMakeFiles/eacache_proxy.dir/proxy_cache.cpp.o" "gcc" "src/proxy/CMakeFiles/eacache_proxy.dir/proxy_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/eacache_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/eacache_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacache_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
