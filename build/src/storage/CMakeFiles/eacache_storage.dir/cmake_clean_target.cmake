file(REMOVE_RECURSE
  "libeacache_storage.a"
)
