file(REMOVE_RECURSE
  "CMakeFiles/eacache_storage.dir/cache_store.cpp.o"
  "CMakeFiles/eacache_storage.dir/cache_store.cpp.o.d"
  "CMakeFiles/eacache_storage.dir/gds_policy.cpp.o"
  "CMakeFiles/eacache_storage.dir/gds_policy.cpp.o.d"
  "CMakeFiles/eacache_storage.dir/lfu_policy.cpp.o"
  "CMakeFiles/eacache_storage.dir/lfu_policy.cpp.o.d"
  "CMakeFiles/eacache_storage.dir/lru_policy.cpp.o"
  "CMakeFiles/eacache_storage.dir/lru_policy.cpp.o.d"
  "CMakeFiles/eacache_storage.dir/policy_factory.cpp.o"
  "CMakeFiles/eacache_storage.dir/policy_factory.cpp.o.d"
  "CMakeFiles/eacache_storage.dir/size_policy.cpp.o"
  "CMakeFiles/eacache_storage.dir/size_policy.cpp.o.d"
  "libeacache_storage.a"
  "libeacache_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
