# Empty compiler generated dependencies file for eacache_storage.
# This may be replaced when dependencies are built.
