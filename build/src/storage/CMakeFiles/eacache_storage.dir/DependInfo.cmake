
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache_store.cpp" "src/storage/CMakeFiles/eacache_storage.dir/cache_store.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/cache_store.cpp.o.d"
  "/root/repo/src/storage/gds_policy.cpp" "src/storage/CMakeFiles/eacache_storage.dir/gds_policy.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/gds_policy.cpp.o.d"
  "/root/repo/src/storage/lfu_policy.cpp" "src/storage/CMakeFiles/eacache_storage.dir/lfu_policy.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/lfu_policy.cpp.o.d"
  "/root/repo/src/storage/lru_policy.cpp" "src/storage/CMakeFiles/eacache_storage.dir/lru_policy.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/lru_policy.cpp.o.d"
  "/root/repo/src/storage/policy_factory.cpp" "src/storage/CMakeFiles/eacache_storage.dir/policy_factory.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/policy_factory.cpp.o.d"
  "/root/repo/src/storage/size_policy.cpp" "src/storage/CMakeFiles/eacache_storage.dir/size_policy.cpp.o" "gcc" "src/storage/CMakeFiles/eacache_storage.dir/size_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
