file(REMOVE_RECURSE
  "CMakeFiles/eacache_analysis.dir/che_approximation.cpp.o"
  "CMakeFiles/eacache_analysis.dir/che_approximation.cpp.o.d"
  "libeacache_analysis.a"
  "libeacache_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
