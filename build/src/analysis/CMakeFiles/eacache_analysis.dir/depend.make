# Empty dependencies file for eacache_analysis.
# This may be replaced when dependencies are built.
