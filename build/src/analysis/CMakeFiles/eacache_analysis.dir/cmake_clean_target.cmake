file(REMOVE_RECURSE
  "libeacache_analysis.a"
)
