file(REMOVE_RECURSE
  "CMakeFiles/eacache_event.dir/event_queue.cpp.o"
  "CMakeFiles/eacache_event.dir/event_queue.cpp.o.d"
  "libeacache_event.a"
  "libeacache_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
