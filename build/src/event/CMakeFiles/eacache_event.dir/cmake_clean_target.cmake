file(REMOVE_RECURSE
  "libeacache_event.a"
)
