# Empty dependencies file for eacache_event.
# This may be replaced when dependencies are built.
