file(REMOVE_RECURSE
  "CMakeFiles/eacache_origin.dir/origin_server.cpp.o"
  "CMakeFiles/eacache_origin.dir/origin_server.cpp.o.d"
  "libeacache_origin.a"
  "libeacache_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
