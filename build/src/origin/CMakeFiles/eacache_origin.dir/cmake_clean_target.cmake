file(REMOVE_RECURSE
  "libeacache_origin.a"
)
