# Empty dependencies file for eacache_origin.
# This may be replaced when dependencies are built.
