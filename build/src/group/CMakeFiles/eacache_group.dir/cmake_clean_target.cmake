file(REMOVE_RECURSE
  "libeacache_group.a"
)
