# Empty compiler generated dependencies file for eacache_group.
# This may be replaced when dependencies are built.
