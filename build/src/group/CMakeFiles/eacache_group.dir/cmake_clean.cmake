file(REMOVE_RECURSE
  "CMakeFiles/eacache_group.dir/cache_group.cpp.o"
  "CMakeFiles/eacache_group.dir/cache_group.cpp.o.d"
  "CMakeFiles/eacache_group.dir/hash_ring.cpp.o"
  "CMakeFiles/eacache_group.dir/hash_ring.cpp.o.d"
  "CMakeFiles/eacache_group.dir/topology.cpp.o"
  "CMakeFiles/eacache_group.dir/topology.cpp.o.d"
  "libeacache_group.a"
  "libeacache_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
