
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/eacache_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/eacache_common.dir/config.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/eacache_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/eacache_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/common/CMakeFiles/eacache_common.dir/types.cpp.o" "gcc" "src/common/CMakeFiles/eacache_common.dir/types.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/common/CMakeFiles/eacache_common.dir/zipf.cpp.o" "gcc" "src/common/CMakeFiles/eacache_common.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
