# Empty compiler generated dependencies file for eacache_common.
# This may be replaced when dependencies are built.
