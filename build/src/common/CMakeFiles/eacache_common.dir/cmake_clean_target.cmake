file(REMOVE_RECURSE
  "libeacache_common.a"
)
