file(REMOVE_RECURSE
  "CMakeFiles/eacache_common.dir/config.cpp.o"
  "CMakeFiles/eacache_common.dir/config.cpp.o.d"
  "CMakeFiles/eacache_common.dir/logging.cpp.o"
  "CMakeFiles/eacache_common.dir/logging.cpp.o.d"
  "CMakeFiles/eacache_common.dir/types.cpp.o"
  "CMakeFiles/eacache_common.dir/types.cpp.o.d"
  "CMakeFiles/eacache_common.dir/zipf.cpp.o"
  "CMakeFiles/eacache_common.dir/zipf.cpp.o.d"
  "libeacache_common.a"
  "libeacache_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
