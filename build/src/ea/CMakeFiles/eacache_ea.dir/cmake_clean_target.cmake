file(REMOVE_RECURSE
  "libeacache_ea.a"
)
