
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ea/contention.cpp" "src/ea/CMakeFiles/eacache_ea.dir/contention.cpp.o" "gcc" "src/ea/CMakeFiles/eacache_ea.dir/contention.cpp.o.d"
  "/root/repo/src/ea/expiration_age.cpp" "src/ea/CMakeFiles/eacache_ea.dir/expiration_age.cpp.o" "gcc" "src/ea/CMakeFiles/eacache_ea.dir/expiration_age.cpp.o.d"
  "/root/repo/src/ea/placement.cpp" "src/ea/CMakeFiles/eacache_ea.dir/placement.cpp.o" "gcc" "src/ea/CMakeFiles/eacache_ea.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
