file(REMOVE_RECURSE
  "CMakeFiles/eacache_ea.dir/contention.cpp.o"
  "CMakeFiles/eacache_ea.dir/contention.cpp.o.d"
  "CMakeFiles/eacache_ea.dir/expiration_age.cpp.o"
  "CMakeFiles/eacache_ea.dir/expiration_age.cpp.o.d"
  "CMakeFiles/eacache_ea.dir/placement.cpp.o"
  "CMakeFiles/eacache_ea.dir/placement.cpp.o.d"
  "libeacache_ea.a"
  "libeacache_ea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacache_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
