# Empty compiler generated dependencies file for eacache_ea.
# This may be replaced when dependencies are built.
