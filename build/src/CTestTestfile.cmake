# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("event")
subdirs("storage")
subdirs("digest")
subdirs("origin")
subdirs("analysis")
subdirs("prefetch")
subdirs("ea")
subdirs("net")
subdirs("trace")
subdirs("metrics")
subdirs("proxy")
subdirs("group")
subdirs("sim")
