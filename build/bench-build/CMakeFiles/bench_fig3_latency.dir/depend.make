# Empty dependencies file for bench_fig3_latency.
# This may be replaced when dependencies are built.
