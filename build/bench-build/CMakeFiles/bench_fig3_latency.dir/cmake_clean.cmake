file(REMOVE_RECURSE
  "../bench/bench_fig3_latency"
  "../bench/bench_fig3_latency.pdb"
  "CMakeFiles/bench_fig3_latency.dir/bench_fig3_latency.cpp.o"
  "CMakeFiles/bench_fig3_latency.dir/bench_fig3_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
