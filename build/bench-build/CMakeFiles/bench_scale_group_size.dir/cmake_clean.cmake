file(REMOVE_RECURSE
  "../bench/bench_scale_group_size"
  "../bench/bench_scale_group_size.pdb"
  "CMakeFiles/bench_scale_group_size.dir/bench_scale_group_size.cpp.o"
  "CMakeFiles/bench_scale_group_size.dir/bench_scale_group_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
