# Empty compiler generated dependencies file for bench_scale_group_size.
# This may be replaced when dependencies are built.
