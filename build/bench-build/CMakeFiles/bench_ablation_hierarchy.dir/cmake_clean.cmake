file(REMOVE_RECURSE
  "../bench/bench_ablation_hierarchy"
  "../bench/bench_ablation_hierarchy.pdb"
  "CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o"
  "CMakeFiles/bench_ablation_hierarchy.dir/bench_ablation_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
