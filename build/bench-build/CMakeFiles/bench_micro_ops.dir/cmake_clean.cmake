file(REMOVE_RECURSE
  "../bench/bench_micro_ops"
  "../bench/bench_micro_ops.pdb"
  "CMakeFiles/bench_micro_ops.dir/bench_micro_ops.cpp.o"
  "CMakeFiles/bench_micro_ops.dir/bench_micro_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
