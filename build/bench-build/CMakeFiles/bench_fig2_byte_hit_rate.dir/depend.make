# Empty dependencies file for bench_fig2_byte_hit_rate.
# This may be replaced when dependencies are built.
