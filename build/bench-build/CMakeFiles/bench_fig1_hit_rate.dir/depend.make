# Empty dependencies file for bench_fig1_hit_rate.
# This may be replaced when dependencies are built.
