file(REMOVE_RECURSE
  "../bench/bench_fig1_hit_rate"
  "../bench/bench_fig1_hit_rate.pdb"
  "CMakeFiles/bench_fig1_hit_rate.dir/bench_fig1_hit_rate.cpp.o"
  "CMakeFiles/bench_fig1_hit_rate.dir/bench_fig1_hit_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
