file(REMOVE_RECURSE
  "../bench/bench_ablation_loss"
  "../bench/bench_ablation_loss.pdb"
  "CMakeFiles/bench_ablation_loss.dir/bench_ablation_loss.cpp.o"
  "CMakeFiles/bench_ablation_loss.dir/bench_ablation_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
