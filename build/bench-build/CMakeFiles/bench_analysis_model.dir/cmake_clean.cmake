file(REMOVE_RECURSE
  "../bench/bench_analysis_model"
  "../bench/bench_analysis_model.pdb"
  "CMakeFiles/bench_analysis_model.dir/bench_analysis_model.cpp.o"
  "CMakeFiles/bench_analysis_model.dir/bench_analysis_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
