# Empty compiler generated dependencies file for bench_analysis_model.
# This may be replaced when dependencies are built.
