file(REMOVE_RECURSE
  "../bench/bench_ablation_hysteresis"
  "../bench/bench_ablation_hysteresis.pdb"
  "CMakeFiles/bench_ablation_hysteresis.dir/bench_ablation_hysteresis.cpp.o"
  "CMakeFiles/bench_ablation_hysteresis.dir/bench_ablation_hysteresis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
