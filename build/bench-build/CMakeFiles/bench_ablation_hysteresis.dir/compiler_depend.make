# Empty compiler generated dependencies file for bench_ablation_hysteresis.
# This may be replaced when dependencies are built.
