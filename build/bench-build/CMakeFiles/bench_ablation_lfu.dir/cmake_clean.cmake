file(REMOVE_RECURSE
  "../bench/bench_ablation_lfu"
  "../bench/bench_ablation_lfu.pdb"
  "CMakeFiles/bench_ablation_lfu.dir/bench_ablation_lfu.cpp.o"
  "CMakeFiles/bench_ablation_lfu.dir/bench_ablation_lfu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
