# Empty dependencies file for bench_ablation_lfu.
# This may be replaced when dependencies are built.
