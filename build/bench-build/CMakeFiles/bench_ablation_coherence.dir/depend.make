# Empty dependencies file for bench_ablation_coherence.
# This may be replaced when dependencies are built.
