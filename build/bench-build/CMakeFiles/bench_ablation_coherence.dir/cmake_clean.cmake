file(REMOVE_RECURSE
  "../bench/bench_ablation_coherence"
  "../bench/bench_ablation_coherence.pdb"
  "CMakeFiles/bench_ablation_coherence.dir/bench_ablation_coherence.cpp.o"
  "CMakeFiles/bench_ablation_coherence.dir/bench_ablation_coherence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
