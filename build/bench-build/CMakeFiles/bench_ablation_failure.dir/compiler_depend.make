# Empty compiler generated dependencies file for bench_ablation_failure.
# This may be replaced when dependencies are built.
