file(REMOVE_RECURSE
  "../bench/bench_ablation_failure"
  "../bench/bench_ablation_failure.pdb"
  "CMakeFiles/bench_ablation_failure.dir/bench_ablation_failure.cpp.o"
  "CMakeFiles/bench_ablation_failure.dir/bench_ablation_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
