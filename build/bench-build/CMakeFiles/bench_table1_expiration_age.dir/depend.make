# Empty dependencies file for bench_table1_expiration_age.
# This may be replaced when dependencies are built.
