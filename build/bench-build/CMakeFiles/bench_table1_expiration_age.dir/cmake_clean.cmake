file(REMOVE_RECURSE
  "../bench/bench_table1_expiration_age"
  "../bench/bench_table1_expiration_age.pdb"
  "CMakeFiles/bench_table1_expiration_age.dir/bench_table1_expiration_age.cpp.o"
  "CMakeFiles/bench_table1_expiration_age.dir/bench_table1_expiration_age.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_expiration_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
