# Empty dependencies file for bench_table2_hit_split.
# This may be replaced when dependencies are built.
