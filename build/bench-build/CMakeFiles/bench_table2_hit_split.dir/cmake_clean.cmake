file(REMOVE_RECURSE
  "../bench/bench_table2_hit_split"
  "../bench/bench_table2_hit_split.pdb"
  "CMakeFiles/bench_table2_hit_split.dir/bench_table2_hit_split.cpp.o"
  "CMakeFiles/bench_table2_hit_split.dir/bench_table2_hit_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hit_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
