file(REMOVE_RECURSE
  "../bench/bench_workload_characterization"
  "../bench/bench_workload_characterization.pdb"
  "CMakeFiles/bench_workload_characterization.dir/bench_workload_characterization.cpp.o"
  "CMakeFiles/bench_workload_characterization.dir/bench_workload_characterization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
