# Empty dependencies file for bench_workload_characterization.
# This may be replaced when dependencies are built.
