file(REMOVE_RECURSE
  "../bench/bench_ablation_hetero"
  "../bench/bench_ablation_hetero.pdb"
  "CMakeFiles/bench_ablation_hetero.dir/bench_ablation_hetero.cpp.o"
  "CMakeFiles/bench_ablation_hetero.dir/bench_ablation_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
