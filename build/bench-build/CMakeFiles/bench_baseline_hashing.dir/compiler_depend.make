# Empty compiler generated dependencies file for bench_baseline_hashing.
# This may be replaced when dependencies are built.
