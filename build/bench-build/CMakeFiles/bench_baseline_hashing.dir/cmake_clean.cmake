file(REMOVE_RECURSE
  "../bench/bench_baseline_hashing"
  "../bench/bench_baseline_hashing.pdb"
  "CMakeFiles/bench_baseline_hashing.dir/bench_baseline_hashing.cpp.o"
  "CMakeFiles/bench_baseline_hashing.dir/bench_baseline_hashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
