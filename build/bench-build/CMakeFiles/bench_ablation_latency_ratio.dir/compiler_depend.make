# Empty compiler generated dependencies file for bench_ablation_latency_ratio.
# This may be replaced when dependencies are built.
