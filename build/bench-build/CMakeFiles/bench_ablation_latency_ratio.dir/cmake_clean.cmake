file(REMOVE_RECURSE
  "../bench/bench_ablation_latency_ratio"
  "../bench/bench_ablation_latency_ratio.pdb"
  "CMakeFiles/bench_ablation_latency_ratio.dir/bench_ablation_latency_ratio.cpp.o"
  "CMakeFiles/bench_ablation_latency_ratio.dir/bench_ablation_latency_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_latency_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
