file(REMOVE_RECURSE
  "../bench/bench_ablation_discovery"
  "../bench/bench_ablation_discovery.pdb"
  "CMakeFiles/bench_ablation_discovery.dir/bench_ablation_discovery.cpp.o"
  "CMakeFiles/bench_ablation_discovery.dir/bench_ablation_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
