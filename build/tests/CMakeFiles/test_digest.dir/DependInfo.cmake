
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/digest/bloom_filter_test.cpp" "tests/CMakeFiles/test_digest.dir/digest/bloom_filter_test.cpp.o" "gcc" "tests/CMakeFiles/test_digest.dir/digest/bloom_filter_test.cpp.o.d"
  "/root/repo/tests/digest/counting_bloom_test.cpp" "tests/CMakeFiles/test_digest.dir/digest/counting_bloom_test.cpp.o" "gcc" "tests/CMakeFiles/test_digest.dir/digest/counting_bloom_test.cpp.o.d"
  "/root/repo/tests/digest/digest_directory_test.cpp" "tests/CMakeFiles/test_digest.dir/digest/digest_directory_test.cpp.o" "gcc" "tests/CMakeFiles/test_digest.dir/digest/digest_directory_test.cpp.o.d"
  "/root/repo/tests/digest/digest_discovery_test.cpp" "tests/CMakeFiles/test_digest.dir/digest/digest_discovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_digest.dir/digest/digest_discovery_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/eacache_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eacache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/eacache_event.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/eacache_group.dir/DependInfo.cmake"
  "/root/repo/build/src/origin/CMakeFiles/eacache_origin.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/eacache_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/eacache_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/eacache_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/digest/CMakeFiles/eacache_digest.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacache_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ea/CMakeFiles/eacache_ea.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eacache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eacache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
