# Empty dependencies file for test_digest.
# This may be replaced when dependencies are built.
