file(REMOVE_RECURSE
  "CMakeFiles/test_digest.dir/digest/bloom_filter_test.cpp.o"
  "CMakeFiles/test_digest.dir/digest/bloom_filter_test.cpp.o.d"
  "CMakeFiles/test_digest.dir/digest/counting_bloom_test.cpp.o"
  "CMakeFiles/test_digest.dir/digest/counting_bloom_test.cpp.o.d"
  "CMakeFiles/test_digest.dir/digest/digest_directory_test.cpp.o"
  "CMakeFiles/test_digest.dir/digest/digest_directory_test.cpp.o.d"
  "CMakeFiles/test_digest.dir/digest/digest_discovery_test.cpp.o"
  "CMakeFiles/test_digest.dir/digest/digest_discovery_test.cpp.o.d"
  "test_digest"
  "test_digest.pdb"
  "test_digest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
