# Empty compiler generated dependencies file for test_event.
# This may be replaced when dependencies are built.
