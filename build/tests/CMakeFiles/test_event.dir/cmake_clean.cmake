file(REMOVE_RECURSE
  "CMakeFiles/test_event.dir/event/event_queue_test.cpp.o"
  "CMakeFiles/test_event.dir/event/event_queue_test.cpp.o.d"
  "test_event"
  "test_event.pdb"
  "test_event[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
