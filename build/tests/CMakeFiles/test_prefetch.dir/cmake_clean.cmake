file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch.dir/prefetch/markov_predictor_test.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/markov_predictor_test.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/prefetch_integration_test.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/prefetch_integration_test.cpp.o.d"
  "test_prefetch"
  "test_prefetch.pdb"
  "test_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
