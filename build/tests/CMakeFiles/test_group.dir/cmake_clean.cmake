file(REMOVE_RECURSE
  "CMakeFiles/test_group.dir/group/cache_group_test.cpp.o"
  "CMakeFiles/test_group.dir/group/cache_group_test.cpp.o.d"
  "CMakeFiles/test_group.dir/group/deep_hierarchy_test.cpp.o"
  "CMakeFiles/test_group.dir/group/deep_hierarchy_test.cpp.o.d"
  "CMakeFiles/test_group.dir/group/hash_ring_test.cpp.o"
  "CMakeFiles/test_group.dir/group/hash_ring_test.cpp.o.d"
  "CMakeFiles/test_group.dir/group/hash_routing_test.cpp.o"
  "CMakeFiles/test_group.dir/group/hash_routing_test.cpp.o.d"
  "CMakeFiles/test_group.dir/group/icp_loss_test.cpp.o"
  "CMakeFiles/test_group.dir/group/icp_loss_test.cpp.o.d"
  "CMakeFiles/test_group.dir/group/topology_test.cpp.o"
  "CMakeFiles/test_group.dir/group/topology_test.cpp.o.d"
  "test_group"
  "test_group.pdb"
  "test_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
