# Empty dependencies file for test_group.
# This may be replaced when dependencies are built.
