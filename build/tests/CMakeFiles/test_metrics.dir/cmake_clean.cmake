file(REMOVE_RECURSE
  "CMakeFiles/test_metrics.dir/metrics/ascii_chart_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/ascii_chart_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/json_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/json_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/metrics_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/metrics_test.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/table_test.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/table_test.cpp.o.d"
  "test_metrics"
  "test_metrics.pdb"
  "test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
