file(REMOVE_RECURSE
  "CMakeFiles/test_ea.dir/ea/contention_test.cpp.o"
  "CMakeFiles/test_ea.dir/ea/contention_test.cpp.o.d"
  "CMakeFiles/test_ea.dir/ea/expiration_age_test.cpp.o"
  "CMakeFiles/test_ea.dir/ea/expiration_age_test.cpp.o.d"
  "CMakeFiles/test_ea.dir/ea/hysteresis_test.cpp.o"
  "CMakeFiles/test_ea.dir/ea/hysteresis_test.cpp.o.d"
  "CMakeFiles/test_ea.dir/ea/placement_test.cpp.o"
  "CMakeFiles/test_ea.dir/ea/placement_test.cpp.o.d"
  "test_ea"
  "test_ea.pdb"
  "test_ea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
