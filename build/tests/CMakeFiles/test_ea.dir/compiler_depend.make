# Empty compiler generated dependencies file for test_ea.
# This may be replaced when dependencies are built.
