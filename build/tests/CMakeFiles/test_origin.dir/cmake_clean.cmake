file(REMOVE_RECURSE
  "CMakeFiles/test_origin.dir/origin/coherence_test.cpp.o"
  "CMakeFiles/test_origin.dir/origin/coherence_test.cpp.o.d"
  "CMakeFiles/test_origin.dir/origin/origin_server_test.cpp.o"
  "CMakeFiles/test_origin.dir/origin/origin_server_test.cpp.o.d"
  "test_origin"
  "test_origin.pdb"
  "test_origin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
