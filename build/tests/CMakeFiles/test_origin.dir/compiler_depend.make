# Empty compiler generated dependencies file for test_origin.
# This may be replaced when dependencies are built.
