# Empty dependencies file for test_proxy.
# This may be replaced when dependencies are built.
