# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_event[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_digest[1]_include.cmake")
include("/root/repo/build/tests/test_ea[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_origin[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_group[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
