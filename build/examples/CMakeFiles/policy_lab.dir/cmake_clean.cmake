file(REMOVE_RECURSE
  "CMakeFiles/policy_lab.dir/policy_lab.cpp.o"
  "CMakeFiles/policy_lab.dir/policy_lab.cpp.o.d"
  "policy_lab"
  "policy_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
