# Empty dependencies file for policy_lab.
# This may be replaced when dependencies are built.
