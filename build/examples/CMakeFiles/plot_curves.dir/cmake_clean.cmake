file(REMOVE_RECURSE
  "CMakeFiles/plot_curves.dir/plot_curves.cpp.o"
  "CMakeFiles/plot_curves.dir/plot_curves.cpp.o.d"
  "plot_curves"
  "plot_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plot_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
