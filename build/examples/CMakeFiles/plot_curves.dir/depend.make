# Empty dependencies file for plot_curves.
# This may be replaced when dependencies are built.
