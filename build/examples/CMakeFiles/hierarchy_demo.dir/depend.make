# Empty dependencies file for hierarchy_demo.
# This may be replaced when dependencies are built.
