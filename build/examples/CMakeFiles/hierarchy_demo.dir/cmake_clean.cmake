file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_demo.dir/hierarchy_demo.cpp.o"
  "CMakeFiles/hierarchy_demo.dir/hierarchy_demo.cpp.o.d"
  "hierarchy_demo"
  "hierarchy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
