file(REMOVE_RECURSE
  "CMakeFiles/experiment_runner.dir/experiment_runner.cpp.o"
  "CMakeFiles/experiment_runner.dir/experiment_runner.cpp.o.d"
  "experiment_runner"
  "experiment_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
