# Empty dependencies file for make_trace.
# This may be replaced when dependencies are built.
