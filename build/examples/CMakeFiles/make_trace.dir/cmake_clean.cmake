file(REMOVE_RECURSE
  "CMakeFiles/make_trace.dir/make_trace.cpp.o"
  "CMakeFiles/make_trace.dir/make_trace.cpp.o.d"
  "make_trace"
  "make_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
