#include "origin/origin_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace eacache {

OriginServer::OriginServer(const OriginConfig& config) : config_(config) {
  if (config_.min_update_interval <= Duration::zero() ||
      config_.max_update_interval < config_.min_update_interval) {
    throw std::invalid_argument("OriginServer: bad update interval range");
  }
}

Duration OriginServer::update_interval(DocumentId document) const {
  const double lo = std::log(static_cast<double>(config_.min_update_interval.count()));
  const double hi = std::log(static_cast<double>(config_.max_update_interval.count()));
  // Deterministic per-document uniform in [0,1). The seed goes through a
  // full mix so that small seed changes flip high mantissa bits too.
  const double u =
      static_cast<double>(mix64(mix64(config_.seed) ^ mix64(document)) >> 11) * 0x1.0p-53;
  const double interval_ms = std::exp(lo + u * (hi - lo));
  // exp(log(x)) can land one ulp outside the range; clamp to the contract.
  const auto raw = static_cast<SimClock::rep>(interval_ms);
  return std::clamp(Duration{raw}, config_.min_update_interval, config_.max_update_interval);
}

namespace {
SimClock::rep phase_of(std::uint64_t seed, DocumentId document, Duration interval) {
  // Random phase so documents do not all change at t=0, t=interval, ...
  const double v =
      static_cast<double>(mix64(mix64(seed ^ 0xabcdULL) ^ mix64(document)) >> 11) * 0x1.0p-53;
  return static_cast<SimClock::rep>(v * static_cast<double>(interval.count()));
}
}  // namespace

std::uint64_t OriginServer::version_at(DocumentId document, TimePoint now) const {
  const Duration interval = update_interval(document);
  const SimClock::rep elapsed =
      (now - kSimEpoch).count() + phase_of(config_.seed, document, interval);
  return static_cast<std::uint64_t>(elapsed / interval.count());
}

TimePoint OriginServer::version_start(DocumentId document, std::uint64_t version) const {
  const Duration interval = update_interval(document);
  const SimClock::rep phase = phase_of(config_.seed, document, interval);
  const SimClock::rep start =
      static_cast<SimClock::rep>(version) * interval.count() - phase;
  return start > 0 ? kSimEpoch + Duration{start} : kSimEpoch;
}

}  // namespace eacache
