// Origin-server model for cache-coherence experiments.
//
// The paper's placement study assumes immutable documents; its related-work
// section (§5) points at cache coherence as the neighbouring problem. To
// exercise the placement schemes under document CHANGE we model the origin
// as a deterministic per-document update process:
//
//  * each document has an update interval drawn log-uniformly from
//    [min_update_interval, max_update_interval] (web studies consistently
//    find change rates spanning orders of magnitude), plus a random phase;
//  * version_at(doc, t) is a pure function — no state, perfectly
//    reproducible, O(1);
//  * a cached copy is STALE when its stored version differs from
//    version_at(doc, now).
//
// Proxies use TTL freshness + If-Modified-Since revalidation against this
// oracle (see group/cache_group.h's CoherenceConfig).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace eacache {

struct OriginConfig {
  std::uint64_t seed = 7;
  Duration min_update_interval = hours(6);
  Duration max_update_interval = hours(24 * 90);
};

class OriginServer {
 public:
  explicit OriginServer(const OriginConfig& config);

  /// Current version of a document: an opaque counter, monotone
  /// non-decreasing in time. Two equal versions mean identical content.
  [[nodiscard]] std::uint64_t version_at(DocumentId document, TimePoint now) const;

  /// The (deterministic) update interval of a document.
  [[nodiscard]] Duration update_interval(DocumentId document) const;

  /// When the given version's content came into existence (the document's
  /// Last-Modified time while that version is current). Clamped to the
  /// simulation epoch for versions that predate it.
  [[nodiscard]] TimePoint version_start(DocumentId document, std::uint64_t version) const;

  [[nodiscard]] const OriginConfig& config() const { return config_; }

 private:
  OriginConfig config_;
};

}  // namespace eacache
