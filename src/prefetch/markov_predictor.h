// First-order Markov request predictor — the "eager mode" document
// placement the paper's related-work section describes ("documents are
// pre-fetched and cached based on access log predictions", citing
// Padmanabhan & Mogul's predictive prefetching).
//
// The predictor learns per-user transitions: if user U's request for A is
// followed by a request for B, the A->B edge gains weight. After serving A,
// the cache may prefetch the most likely successor when it has both enough
// evidence (min_observations) and enough confidence (count / total).
//
// Memory is bounded: each antecedent keeps at most `max_successors`
// candidates; when full, the weakest is displaced only by repeat offenders
// (a Misra-Gries-flavoured rule, so one-off noise cannot evict a strong
// successor).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace eacache {

struct Prediction {
  DocumentId document = 0;
  double confidence = 0.0;       // successor count / total observations
  std::uint64_t observations = 0;  // total observations for the antecedent
};

class MarkovPredictor {
 public:
  explicit MarkovPredictor(std::size_t max_successors = 8,
                           std::size_t max_antecedents = 1 << 16);

  /// Record that `next` followed `previous` (same user's request stream).
  void observe(DocumentId previous, DocumentId next);

  /// Most likely successor of `previous`, or nullopt if never seen.
  [[nodiscard]] std::optional<Prediction> predict(DocumentId previous) const;

  [[nodiscard]] std::size_t antecedents() const { return table_.size(); }

 private:
  struct Successors {
    // Small flat map: max_successors is tiny, linear scans win.
    std::vector<std::pair<DocumentId, std::uint64_t>> counts;
    std::uint64_t total = 0;
  };

  std::size_t max_successors_;
  std::size_t max_antecedents_;
  std::unordered_map<DocumentId, Successors> table_;
};

}  // namespace eacache
