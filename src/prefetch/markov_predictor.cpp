#include "prefetch/markov_predictor.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace eacache {

MarkovPredictor::MarkovPredictor(std::size_t max_successors, std::size_t max_antecedents)
    : max_successors_(max_successors), max_antecedents_(max_antecedents) {
  if (max_successors_ == 0) {
    throw std::invalid_argument("MarkovPredictor: need at least one successor slot");
  }
  if (max_antecedents_ == 0) {
    throw std::invalid_argument("MarkovPredictor: need at least one antecedent slot");
  }
}

void MarkovPredictor::observe(DocumentId previous, DocumentId next) {
  if (previous == next) return;  // self-loops carry no prefetch signal
  auto it = table_.find(previous);
  if (it == table_.end()) {
    // Bounded table: beyond the cap, new antecedents are simply not
    // tracked (old, still-hot antecedents keep their statistics).
    if (table_.size() >= max_antecedents_) return;
    it = table_.emplace(previous, Successors{}).first;
  }
  Successors& successors = it->second;
  ++successors.total;

  for (auto& [doc, count] : successors.counts) {
    if (doc == next) {
      ++count;
      return;
    }
  }
  if (successors.counts.size() < max_successors_) {
    successors.counts.emplace_back(next, 1);
    return;
  }
  // Misra-Gries displacement: decay everyone instead of admitting the
  // newcomer; a repeat offender will find a zeroed slot next time.
  for (auto& [doc, count] : successors.counts) {
    if (count > 0) --count;
  }
  for (auto& [doc, count] : successors.counts) {
    if (count == 0) {
      doc = next;
      count = 1;
      return;
    }
  }
}

std::optional<Prediction> MarkovPredictor::predict(DocumentId previous) const {
  const auto it = table_.find(previous);
  if (it == table_.end() || it->second.counts.empty()) return std::nullopt;
  const auto best = std::max_element(
      it->second.counts.begin(), it->second.counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  if (best->second == 0) return std::nullopt;
  Prediction prediction;
  prediction.document = best->first;
  prediction.confidence =
      static_cast<double>(best->second) / static_cast<double>(it->second.total);
  prediction.observations = it->second.total;
  return prediction;
}

}  // namespace eacache
