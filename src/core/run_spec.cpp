#include "core/run_spec.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace eacache {

Duration default_lookahead(const LatencyModel& latency) {
  // The four shard-crossing hop delays the engine uses (DESIGN.md §14):
  // probe out, reply back (these two sum to icp_rtt), fetch/parent request
  // hop, and the body return (remote_transfer minus the request hop,
  // clamped to one tick). The window must not exceed any of them.
  const Duration probe = latency.icp_rtt / 2;
  const Duration reply = latency.icp_rtt - probe;
  const Duration body = std::max(latency.remote_transfer() - probe, msec(1));
  return std::max(msec(1), std::min({probe, reply, probe, body}));
}

std::vector<std::string> RunSpec::validate(RunTarget target) const {
  // Group-level rules first (the old entry points, now internal): the
  // daemon target layers its driver restrictions on top of the base set.
  std::vector<std::string> errors =
      target == RunTarget::kDaemon ? group.validate_for_daemon() : group.validate();
  const auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  if (target == RunTarget::kDaemon) {
    if (snapshot_period > Duration::zero()) {
      fail("snapshot_period is simulator machinery (virtual-clock snapshots); "
           "daemon runs must leave it zero");
    }
    if (check_invariants) {
      fail("check_invariants attaches the simulator's invariant checker; "
           "daemon runs cannot carry it");
    }
    if (exec.sharded()) {
      fail("ExecutionPolicy::shards selects the simulator's sharded engine; "
           "daemon mode has real threads already");
    }
    return errors;
  }

  if (!exec.sharded()) {
    if (exec.lookahead_override.has_value()) {
      fail("ExecutionPolicy::lookahead_override requires shards >= 1 (the "
           "classic driver has no synchronization windows)");
    }
    return errors;
  }

  // ---- Sharded-engine subset --------------------------------------------
  // The sharded engine routes every cross-proxy interaction through
  // deterministic shard-crossing messages; features whose semantics are
  // tied to the single-queue orchestrator are rejected rather than
  // silently approximated.
  if (group.coherence.enabled) {
    fail("sharded runs cannot use coherence: freshness validation consults "
         "the origin oracle synchronously");
  }
  if (group.prefetch.enabled) {
    fail("sharded runs cannot use prefetching: the Markov learner is "
         "group-global state");
  }
  if (group.discovery == DiscoveryMode::kDigest) {
    fail("sharded runs require kIcp discovery (the digest directory is "
         "group-global state)");
  }
  if (group.routing == RoutingMode::kHashPartition) {
    fail("sharded runs require kCooperative routing");
  }
  if (group.icp_loss_probability != 0.0) {
    fail("sharded runs require icp_loss_probability == 0: the seeded loss "
         "draw is consumed in single-queue serve order");
  }
  if (group.pipeline.event_driven) {
    fail("sharded runs are their own event-driven driver; "
         "pipeline.event_driven must stay off");
  }
  if (group.obs.trace_capacity > 0) {
    fail("sharded runs do not record request spans (the span ring is "
         "single-writer)");
  }
  if (snapshot_period > Duration::zero()) {
    fail("sharded runs do not support snapshot_period: group-wide hit-rate "
         "snapshots need a mid-run global merge");
  }
  if (check_invariants) {
    fail("sharded runs do not support check_invariants: the checker attaches "
         "to the single-queue drivers");
  }

  const Duration floor = default_lookahead(group.latency);
  if (group.latency.icp_rtt < msec(2)) {
    fail("sharded runs need latency.icp_rtt >= 2 ms so both ICP hop delays "
         "are at least one tick");
  }
  if (group.latency.remote_transfer() <= group.latency.icp_rtt / 2) {
    fail("sharded runs need latency.remote_transfer() > icp_rtt/2 so the "
         "body-return hop is at least one tick");
  }
  if (exec.lookahead_override.has_value()) {
    const Duration window = *exec.lookahead_override;
    if (window < msec(1) || window > floor) {
      fail("ExecutionPolicy::lookahead_override must lie in [1 ms, " +
           std::to_string(floor.count()) + " ms] (the inter-proxy message floor)");
    }
  }

  return errors;
}

void RunSpec::validate_or_throw(RunTarget target) const {
  const std::vector<std::string> errors = validate(target);
  if (errors.empty()) return;
  std::string message = "invalid RunSpec: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) message += "; ";
    message += errors[i];
  }
  throw std::invalid_argument(message);
}

}  // namespace eacache
