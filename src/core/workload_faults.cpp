#include "core/workload_faults.h"

#include <stdexcept>

namespace eacache {

FaultPlan flash_crowd_outage_plan(const WorkloadSpec& spec, ProxyId victim) {
  if (!spec.flash.enabled()) {
    throw std::invalid_argument(
        "flash_crowd_outage_plan: spec has no flash-crowd component");
  }
  const Duration half_ramp = spec.flash.ramp / 2;
  PeerOutage outage;
  outage.proxy = victim;
  outage.start = kSimEpoch + spec.flash.start + half_ramp;
  outage.end = kSimEpoch + spec.flash.start + spec.flash.ramp + spec.flash.hold + half_ramp;
  FaultPlan plan;
  plan.outages.push_back(outage);
  return plan;
}

}  // namespace eacache
