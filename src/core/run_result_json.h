// JSON serialization of RunResult — one self-describing object per run,
// consumed by plotting scripts, the experiment_runner's --json output and
// the daemon demo's result dump.
//
// Lives in the simulation-free core so BOTH drivers (discrete-event
// simulator and live daemon) emit the exact same schema; sim/result_json.h
// layers the sweep-row serialization on top. Every key literal here is
// documented in DESIGN.md §11 (enforced by project_lint.py).
#pragma once

#include <iosfwd>
#include <string>

#include "core/run_result.h"
#include "metrics/json.h"

namespace eacache {

/// Emit the result as the NEXT VALUE of an existing writer (for embedding
/// in larger documents, e.g. the experiment_runner's per-run array).
void append_simulation_result(JsonWriter& json, const SimulationResult& result);

/// Emit one MetricRegistry as the writer's next value: {"counters":{...},
/// "gauges":{...},"histograms":{...}} with per-histogram geometry, raw
/// buckets, sum and p50/p90/p99 interpolated at bucket resolution. Shared
/// between the end-of-run result dump above and the daemon's live telemetry
/// JSON exporter so both emit the same registry schema.
void append_metric_registry(JsonWriter& json, const MetricRegistry& registry);

/// Emit the result as a standalone JSON document.
void write_simulation_result_json(std::ostream& out, const SimulationResult& result);

[[nodiscard]] std::string simulation_result_to_json(const SimulationResult& result);

/// Daemon-side names for the same three entry points.
inline void append_run_result(JsonWriter& json, const RunResult& result) {
  append_simulation_result(json, result);
}
inline void write_run_result_json(std::ostream& out, const RunResult& result) {
  write_simulation_result_json(out, result);
}
[[nodiscard]] inline std::string run_result_to_json(const RunResult& result) {
  return simulation_result_to_json(result);
}

}  // namespace eacache
