#pragma once

/// Wall-clock seam extension (DESIGN.md §16): `WallTimer` and `Deadline`
/// are the only sanctioned monotonic-clock access outside src/core/clock.*
/// and src/daemon/. Everything here is observability/timeout machinery —
/// phase wall timings and blocking-wait budgets — which by construction
/// never feeds simulated time or result counters, so the determinism
/// contract (result JSON is a pure function of config/seed/trace) holds.
/// eacheck's determinism pass flags any `steady_clock`/`system_clock` use
/// that bypasses this header.

#include <chrono>

namespace eacache {

/// Monotonic stopwatch for phase timings (`PhaseTimings::sim_ms` etc.).
/// Starts at construction; `elapsed_ms()` reads without stopping.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Absolute timeout for blocking waits: fixes the deadline at construction
/// so per-lap re-derivation of the remaining budget cannot be extended by
/// spurious wakeups.
class Deadline {
 public:
  explicit Deadline(std::chrono::nanoseconds budget)
      : deadline_(std::chrono::steady_clock::now() + budget) {}

  /// Remaining budget, clamped at zero once the deadline has passed.
  [[nodiscard]] std::chrono::nanoseconds remaining() const {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return std::chrono::nanoseconds::zero();
    return deadline_ - now;
  }

  [[nodiscard]] bool expired() const {
    return remaining() == std::chrono::nanoseconds::zero();
  }

 private:
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace eacache
