// RunResult: the driver-independent outcome of replaying a workload
// through a cache group — the paper's section-4 metrics plus transport,
// coherence, prefetch, observability and validation blocks.
//
// This struct used to live inside sim/simulator.h; it moved into the
// simulation-free core (libeacache) so that BOTH request drivers can fill
// it with identical schema:
//   * the discrete-event simulator (sim/simulator.h) — synchronous or
//     event-driven replay on virtual time;
//   * the multi-threaded daemon (daemon/daemon_group.h) — live serving on
//     a Clock seam over the in-memory transport.
// core/run_result_json.h renders either one as the same result JSON, which
// is what lets AdHoc-vs-EA comparisons span simulated and live runs.
//
// The historical name `SimulationResult` is kept as the primary type name
// (every sim-side consumer and the golden suite use it); `RunResult` is the
// alias the daemon side prefers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "ea/expiration_age.h"
#include "group/cache_group.h"
#include "group/pipeline_config.h"
#include "metrics/metrics.h"
#include "net/transport.h"
#include "obs/metric_registry.h"
#include "obs/trace_log.h"
#include "proxy/proxy_cache.h"
#include "core/validation_report.h"

namespace eacache {

/// One proxy's entry in a periodic observability sample.
struct ProxySeriesSample {
  double exp_age_ms = 0.0;       // windowed CacheExpAge (only if `finite`)
  bool finite = false;           // false = infinite (no contention observed)
  Bytes resident_bytes = 0;
  std::size_t resident_docs = 0;
};

/// Periodic per-proxy CacheExpAge/occupancy sample (GroupConfig::obs
/// series_points samples spread over the trace's time span).
struct ProxySeriesPoint {
  TimePoint at{};
  std::vector<ProxySeriesSample> proxies;
};

/// Wall-clock cost of one simulation, split by phase. Reported on sweep job
/// rows (NOT inside the SimulationResult JSON, which must stay a pure
/// function of the simulated world).
struct PhaseTimings {
  double sim_ms = 0.0;     // group construction + trace replay
  double report_ms = 0.0;  // end-of-run collection into SimulationResult
};

struct SimulationResult {
  GroupMetrics metrics;
  TransportStats transport;
  CoherenceStats coherence;
  PrefetchStats prefetch;

  /// Observability: snapshot of the group's metric registry (empty when
  /// GroupConfig::obs.registry is off), the request-lifecycle span ring
  /// (empty unless obs.trace_capacity > 0) and the periodic per-proxy
  /// series (empty unless obs.series_points > 0).
  MetricRegistry registry;
  TraceLog trace_log;
  std::vector<ProxySeriesPoint> proxy_series;

  /// Table 1's metric, measured over the whole run.
  ExpAge average_cache_expiration_age = ExpAge::infinite();
  std::vector<ExpAge> per_cache_expiration_age;

  /// End-of-run occupancy diagnostics.
  std::size_t total_resident_copies = 0;
  std::size_t unique_resident_documents = 0;
  double replication_factor = 0.0;

  std::vector<ProxyStats> proxy_stats;
  std::vector<MetricsSnapshot> snapshots;

  /// Event-driven pipeline counters; `pipeline.enabled` is false (and the
  /// whole struct zero) for legacy synchronous runs, which keeps their
  /// result JSON byte-identical to pre-pipeline releases.
  PipelineStats pipeline;

  /// Invariant-checker outcome; `validation.enabled` is false (and the
  /// "validation" JSON block absent) unless SimulationOptions::validate was
  /// set, preserving byte-identity of unvalidated result JSON.
  ValidationReport validation;
};

/// What the daemon layer calls the same struct: one run's result,
/// whichever driver produced it.
using RunResult = SimulationResult;

}  // namespace eacache
