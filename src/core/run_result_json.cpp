#include "core/run_result_json.h"

#include <ostream>
#include <sstream>

#include "metrics/json.h"

namespace eacache {

void append_metric_registry(JsonWriter& json, const MetricRegistry& registry) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : registry.counters()) json.field(name, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : registry.gauges()) json.field(name, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, hist] : registry.histograms()) {
    json.key(name).begin_object();
    json.field("lo", hist.lo());
    json.field("hi", hist.hi());
    json.field("underflow", hist.underflow());
    json.field("overflow", hist.overflow());
    json.field("total", hist.total());
    // Histogram::percentile is total-count-aware: an empty histogram
    // reports lo() for every quantile (never NaN), and sum() starts at 0.
    json.field("sum", hist.sum());
    json.field("p50", hist.percentile(0.50));
    json.field("p90", hist.percentile(0.90));
    json.field("p99", hist.percentile(0.99));
    json.key("buckets").begin_array();
    for (std::size_t i = 0; i < hist.num_buckets(); ++i) json.value(hist.bucket(i));
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void append_simulation_result(JsonWriter& json, const SimulationResult& result) {
  json.begin_object();

  json.key("metrics").begin_object();
  json.field("total_requests", result.metrics.total_requests());
  json.field("hit_rate", result.metrics.hit_rate());
  json.field("byte_hit_rate", result.metrics.byte_hit_rate());
  json.field("local_hit_rate", result.metrics.local_hit_rate());
  json.field("remote_hit_rate", result.metrics.remote_hit_rate());
  json.field("miss_rate", result.metrics.miss_rate());
  json.field("bytes_requested", result.metrics.bytes_requested());
  json.field("avg_latency_ms",
             static_cast<std::int64_t>(result.metrics.measured_average_latency().count()));
  json.field("p75_latency_ms", result.metrics.latency_percentile_ms(0.75));
  json.field("p90_latency_ms", result.metrics.latency_percentile_ms(0.90));
  json.field("p99_latency_ms", result.metrics.latency_percentile_ms(0.99));
  json.end_object();

  json.key("transport").begin_object();
  json.field("icp_queries", result.transport.icp_queries);
  json.field("icp_replies", result.transport.icp_replies);
  json.field("icp_losses", result.transport.icp_losses);
  json.field("http_requests", result.transport.http_requests);
  json.field("http_responses", result.transport.http_responses);
  json.field("failed_probes", result.transport.failed_probes);
  json.field("digest_publications", result.transport.digest_publications);
  json.field("origin_fetches", result.transport.origin_fetches);
  json.field("total_messages", result.transport.total_messages());
  json.field("total_bytes", result.transport.total_bytes());
  json.field("piggyback_bytes", result.transport.piggyback_bytes);
  json.end_object();

  json.key("coherence").begin_object();
  json.field("validations", result.coherence.validations);
  json.field("validated_304", result.coherence.validated_304);
  json.field("validated_200", result.coherence.validated_200);
  json.field("stale_served", result.coherence.stale_served);
  json.end_object();

  json.key("prefetch").begin_object();
  json.field("issued", result.prefetch.issued);
  json.field("useful", result.prefetch.useful);
  json.field("wasted", result.prefetch.wasted());
  json.field("still_pending", result.prefetch.still_pending);
  json.field("bytes_prefetched", result.prefetch.bytes_prefetched);
  json.end_object();

  // Event-driven pipeline counters. Emitted ONLY for pipeline runs so that
  // legacy (synchronous) result JSON stays byte-identical to pre-pipeline
  // releases — the golden regression tests depend on this.
  if (result.pipeline.enabled) {
    json.key("pipeline").begin_object();
    json.field("started", result.pipeline.started);
    json.field("completed", result.pipeline.completed);
    json.field("coalesced_joins", result.pipeline.coalesced_joins);
    json.field("icp_timeouts", result.pipeline.icp_timeouts);
    json.field("icp_retries", result.pipeline.icp_retries);
    json.field("icp_recoveries", result.pipeline.icp_recoveries);
    json.field("max_in_flight", result.pipeline.max_in_flight);
    json.end_object();
  }

  // Invariant-checker report. Emitted ONLY for validated runs, for the same
  // byte-identity reason as the pipeline block above.
  if (result.validation.enabled) {
    json.key("validation").begin_object();
    json.field("checks", result.validation.checks);
    json.field("violations", result.validation.violations);
    json.key("first_violations").begin_array();
    for (const ValidationViolation& violation : result.validation.first_violations) {
      json.begin_object();
      json.field("law", violation.law);
      json.field("detail", violation.detail);
      json.field("at_ms", violation.at_ms);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  json.key("expiration_age").begin_object();
  if (result.average_cache_expiration_age.is_infinite()) {
    json.key("average_seconds").null();
  } else {
    json.field("average_seconds", result.average_cache_expiration_age.seconds());
  }
  json.key("per_cache_seconds").begin_array();
  for (const ExpAge age : result.per_cache_expiration_age) {
    if (age.is_infinite()) {
      json.null();
    } else {
      json.value(age.seconds());
    }
  }
  json.end_array();
  json.end_object();

  json.key("occupancy").begin_object();
  json.field("total_resident_copies", static_cast<std::uint64_t>(result.total_resident_copies));
  json.field("unique_resident_documents",
             static_cast<std::uint64_t>(result.unique_resident_documents));
  json.field("replication_factor", result.replication_factor);
  json.end_object();

  // Full metric-registry dump. Maps iterate in sorted name order, so the
  // serialization is deterministic; all three sections are empty when the
  // registry is disabled.
  json.key("registry");
  append_metric_registry(json, result.registry);

  // Span-ring occupancy summary (the events themselves go to --trace-out).
  json.key("trace").begin_object();
  json.field("capacity", static_cast<std::uint64_t>(result.trace_log.capacity()));
  json.field("recorded", result.trace_log.recorded());
  json.field("dropped", result.trace_log.dropped());
  json.end_object();

  json.key("proxies").begin_array();
  for (const ProxyStats& stats : result.proxy_stats) {
    json.begin_object();
    json.field("client_requests", stats.client_requests);
    json.field("local_hits", stats.local_hits);
    json.field("remote_fetches_served", stats.remote_fetches_served);
    json.field("copies_stored", stats.copies_stored);
    json.field("copies_declined", stats.copies_declined);
    json.field("promotions_suppressed", stats.promotions_suppressed);
    json.end_object();
  }
  json.end_array();

  json.key("snapshots").begin_array();
  for (const MetricsSnapshot& snapshot : result.snapshots) {
    json.begin_object();
    json.field("at_ms",
               static_cast<std::int64_t>((snapshot.at - kSimEpoch).count()));
    json.field("hit_rate", snapshot.hit_rate);
    json.field("byte_hit_rate", snapshot.byte_hit_rate);
    json.field("total_requests", snapshot.total_requests);
    json.end_object();
  }
  json.end_array();

  // Periodic per-proxy CacheExpAge/occupancy series (obs.series_points).
  // exp_age_ms is null while the proxy has observed no contention.
  json.key("proxy_series").begin_array();
  for (const ProxySeriesPoint& point : result.proxy_series) {
    json.begin_object();
    json.field("at_ms", static_cast<std::int64_t>((point.at - kSimEpoch).count()));
    json.key("proxies").begin_array();
    for (const ProxySeriesSample& sample : point.proxies) {
      json.begin_object();
      if (sample.finite) {
        json.field("exp_age_ms", sample.exp_age_ms);
      } else {
        json.key("exp_age_ms").null();
      }
      json.field("resident_bytes", sample.resident_bytes);
      json.field("resident_docs", static_cast<std::uint64_t>(sample.resident_docs));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.end_object();
}

void write_simulation_result_json(std::ostream& out, const SimulationResult& result) {
  JsonWriter json(out);
  append_simulation_result(json, result);
}

std::string simulation_result_to_json(const SimulationResult& result) {
  std::ostringstream out;
  write_simulation_result_json(out, result);
  return out.str();
}

}  // namespace eacache
