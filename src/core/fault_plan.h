// Declarative fault injection for a run.
//
// Generalizes the original flush-only failure injection: a FaultPlan can
// crash/restart proxies (losing their disk) and open transient PEER OUTAGE
// windows during which the affected proxy answers no ICP probes. Outages
// are visible under both simulation drivers — the serialized driver books
// the silent probes as losses; the event-driven pipeline experiences them
// as discovery timeouts (and, with retries on, possible recoveries once the
// window closes). The daemon's closed-loop replay honours flushes (the load
// generator injects them between requests at their trace instants); outages
// are simulator-only and rejected by daemon-run validation.
#pragma once

#include <vector>

#include "group/cache_group.h"

namespace eacache {

struct FaultPlan {
  /// A proxy crash/restart at `at`: the whole cache is lost (explicit
  /// removals — not contention signals); the proxy rejoins cold.
  struct Flush {
    TimePoint at{};
    ProxyId proxy = 0;
  };

  std::vector<Flush> flushes;
  std::vector<PeerOutage> outages;

  /// Daemon-only: trace instants at which the load generator triggers a
  /// flight-recorder dump (deterministic forensics points in smoke replay;
  /// the simulator ignores them — it has no flight recorder). Ordered
  /// against flushes/requests the same way flushes are: everything due at
  /// or before a request's stamp fires first.
  std::vector<TimePoint> flight_dumps;

  [[nodiscard]] bool empty() const {
    return flushes.empty() && outages.empty() && flight_dumps.empty();
  }
};

}  // namespace eacache
