// The outcome of an invariant-checked simulation run (DESIGN.md §10).
//
// Leaf header in core/ (std includes only): both core/run_result.h and the
// validate/ checker need it, and hosting it in validate/ made the core
// library depend back on its own client — the core <-> validate include
// cycle eacheck's DAG pass convicts. Living here, every RunResult can
// carry a report without dragging the checker (and its group/storage
// dependencies) into the core interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace eacache {

/// One violated law, with enough context to reproduce it.
struct ValidationViolation {
  std::string law;     // stable identifier, e.g. "placement-rule"
  std::string detail;  // human-readable expected-vs-actual
  std::int64_t at_ms = 0;  // simulated time of the check
};

/// Aggregated result of an InvariantChecker run. `checks` counts every law
/// evaluation; violations beyond kMaxRecorded are counted but not stored,
/// so a systematically-broken run cannot balloon the report.
struct ValidationReport {
  static constexpr std::size_t kMaxRecorded = 32;

  bool enabled = false;  // was SimulationOptions::validate on?
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::vector<ValidationViolation> first_violations;

  [[nodiscard]] bool ok() const { return violations == 0; }

  void add(std::string law, std::string detail, std::int64_t at_ms) {
    ++violations;
    if (first_violations.size() < kMaxRecorded) {
      first_violations.push_back({std::move(law), std::move(detail), at_ms});
    }
  }

  /// One-line digest for test failure messages and logs.
  [[nodiscard]] std::string summary() const {
    if (ok()) return "ok (" + std::to_string(checks) + " checks)";
    std::string text = std::to_string(violations) + " violation(s) in " +
                       std::to_string(checks) + " checks";
    for (const ValidationViolation& v : first_violations) {
      text += "; [" + v.law + " @" + std::to_string(v.at_ms) + "ms] " + v.detail;
    }
    return text;
  }
};

}  // namespace eacache
