// Composing FaultPlans with workload-DSL scenarios.
//
// Lives in core/ (not trace/) because FaultPlan depends on group/ while the
// trace layer sits below it — the composition point is where both are
// visible.
#pragma once

#include "core/fault_plan.h"
#include "trace/workload.h"

namespace eacache {

/// A peer-outage window centred on the flash crowd's plateau: `victim` goes
/// silent from the midpoint of the ramp-up until the midpoint of the
/// ramp-down, so the group loses a peer exactly while the spike document is
/// hottest. Requires spec.flash.enabled().
[[nodiscard]] FaultPlan flash_crowd_outage_plan(const WorkloadSpec& spec, ProxyId victim);

}  // namespace eacache
