#include "core/clock.h"

#include <stdexcept>
#include <thread>

namespace eacache {

TimePoint FakeClock::now() const {
  MutexLock lock(mutex_);
  return now_;
}

void FakeClock::sleep_until(TimePoint) {
  // Manual time: the driver advances the clock explicitly. Sleeping here
  // would block forever, so pacing against a FakeClock is a no-op.
}

TimePoint FakeClock::advance(Duration by) {
  if (by < Duration::zero()) {
    throw std::logic_error("FakeClock::advance: negative duration moves time backwards");
  }
  MutexLock lock(mutex_);
  now_ += by;
  return now_;
}

void FakeClock::set(TimePoint to) {
  MutexLock lock(mutex_);
  if (to < now_) {
    throw std::logic_error("FakeClock::set: target precedes current time");
  }
  now_ = to;
}

SteadyClock::SteadyClock(TimePoint origin)
    : anchor_(std::chrono::steady_clock::now()), origin_(origin) {}

TimePoint SteadyClock::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - anchor_;
  return origin_ + std::chrono::duration_cast<Duration>(elapsed);
}

void SteadyClock::sleep_until(TimePoint at) {
  const TimePoint current = now();
  if (at <= current) return;
  std::this_thread::sleep_for(std::chrono::duration_cast<std::chrono::nanoseconds>(at - current));
}

}  // namespace eacache
