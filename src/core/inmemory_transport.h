// The message seam between proxies when there is no event queue.
//
// The discrete-event simulator moves protocol messages by direct function
// call: the orchestrator IS the network, so delivery is implicit and the
// `Transport` class only does accounting. A live daemon has no orchestrator
// — each proxy runs on its own thread and messages must actually travel.
// This header provides that wire: a flat `WireMessage` envelope carrying
// any of the protocol payloads from net/message.h, a `MessageTransport`
// delivery interface, and an `InMemoryTransport` that connects N in-process
// endpoints through locked FIFO mailboxes.
//
// Delivery contract (what the daemon's correctness rests on, and what
// tests/core/inmemory_transport_test.cpp proves):
//   * no loss — every send() is eventually receivable exactly once;
//   * per-sender FIFO — two messages from the same sender to the same
//     receiver arrive in send order (messages from DIFFERENT senders may
//     interleave arbitrarily, like IP);
//   * receive() blocks with a deadline, so a worker can multiplex its
//     mailbox against shutdown without spinning.
//
// Wire accounting stays with the existing net/transport.h `Transport`; this
// class only moves envelopes. The daemon records costs at send sites, same
// as the simulator's orchestrator does.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/message.h"

namespace eacache {

/// One envelope on the in-memory wire. A flat tagged union (plain fields,
/// not std::variant) so the struct is trivially copyable and the daemon's
/// request-correlation code can read common fields without visitation.
struct WireMessage {
  enum class Kind : std::uint8_t {
    kClientRequest,  ///< load generator -> home proxy: serve `document`
    kIcpQuery,       ///< proxy -> peer: do you hold `document`?
    kIcpReply,       ///< peer -> proxy: hit/miss answer to a query
    kHttpRequest,    ///< proxy -> peer: transfer `document` (EA age piggybacked)
    kHttpResponse,   ///< peer -> proxy: body (or not-found) + EA age
    kFlush,          ///< driver -> proxy: drop all cached documents (fault injection)
    kShutdown,       ///< driver -> proxy: drain and exit the worker loop
    kCompletion,     ///< home proxy -> load generator: request fully resolved
    kStatsRequest,   ///< stats poller -> proxy: publish a registry snapshot
    kStatsReply,     ///< proxy -> stats poller: snapshot published (ack)
  };

  Kind kind = Kind::kClientRequest;
  ProxyId from = 0;
  ProxyId to = 0;
  DocumentId document = 0;
  /// Correlates replies/responses with the client request that caused them.
  /// Assigned by the load generator; echoed by every hop.
  std::uint64_t request_id = 0;
  /// When the client request entered the system (trace timestamp in smoke
  /// mode, clock reading in wall-clock mode). Echoed so the home proxy can
  /// charge latency against the original arrival instant.
  TimePoint stamp{};
  UserId user = 0;

  // kIcpReply / kHttpResponse payload.
  bool hit = false;
  bool found = true;
  Bytes body_size = 0;
  ResponseSource source = ResponseSource::kCache;
  std::uint64_t version = 0;
  TimePoint validated_at{};

  // EA piggyback fields (nullopt under ad-hoc placement).
  std::optional<ExpAge> requester_age;
  std::optional<ExpAge> responder_age;

  // Cross-hop trace header (DESIGN.md §13). The home proxy mints a root
  // span id at arrival and every outgoing protocol message carries it plus
  // the hop depth, so the remote side can link its spans under the root.
  // 0 means "no trace identity" (tracing disabled, or a driver message).
  std::uint64_t span_id = 0;
  std::int32_t hop = -1;

  // kStatsRequest only: also publish the recent-span flight ring (used by
  // the flight recorder; plain poller ticks leave it false — cheaper).
  bool want_spans = false;
};

/// Where envelopes go. The daemon group sends through this interface so a
/// test can substitute a recording fake; InMemoryTransport is the real one.
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;

  /// Deliver `message` to endpoint `to`'s mailbox. Never blocks the sender
  /// beyond the mailbox lock; never drops.
  virtual void send(ProxyId to, WireMessage message) = 0;
};

/// N locked FIFO mailboxes. Endpoint ids are dense [0, num_endpoints); the
/// daemon maps proxy ids directly and reserves the last endpoint for the
/// load generator's completion mailbox.
class InMemoryTransport final : public MessageTransport {
 public:
  explicit InMemoryTransport(std::size_t num_endpoints);

  InMemoryTransport(const InMemoryTransport&) = delete;
  InMemoryTransport& operator=(const InMemoryTransport&) = delete;

  void send(ProxyId to, WireMessage message) override;

  /// Block until a message is available at `at` or `timeout` elapses.
  /// Returns nullopt on timeout. FIFO per mailbox (hence per-sender FIFO,
  /// since send() enqueues under the same lock).
  [[nodiscard]] std::optional<WireMessage> receive(ProxyId at, std::chrono::nanoseconds timeout);

  /// Non-blocking drain step: returns the head of `at`'s mailbox, or
  /// nullopt if it is empty right now.
  [[nodiscard]] std::optional<WireMessage> try_receive(ProxyId at);

  [[nodiscard]] std::size_t num_endpoints() const { return mailboxes_.size(); }

  /// Messages currently queued at `at` (test/diagnostic use; the value is
  /// stale the moment it returns).
  [[nodiscard]] std::size_t pending(ProxyId at);

 private:
  struct Mailbox {
    Mutex mutex;
    CondVar ready;
    std::deque<WireMessage> queue EACACHE_GUARDED_BY(mutex);
  };

  Mailbox& mailbox_at(ProxyId at);

  // deque of Mailbox directly is impossible (Mutex is not movable), so the
  // fixed-size table is built once in the constructor.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace eacache
