// Clock: the time seam between the EA cache core and whoever drives it.
//
// Everything in libeacache is parameterized on `TimePoint` (common/types.h,
// millisecond resolution). Where those instants come from is the driver's
// business:
//   * the discrete-event simulator stamps requests with trace timestamps
//     and advances a virtual clock (sim/ owns that — the core never sees
//     an EventQueue);
//   * the daemon stamps requests with a real clock mapped onto the same
//     timeline.
// This header provides the seam: an abstract Clock, a manual FakeClock for
// tests and deterministic closed-loop replay, and a SteadyClock that maps
// std::chrono::steady_clock onto the TimePoint timeline.
//
// Monotonicity contract: now() never goes backwards. FakeClock enforces it
// by rejecting backwards set()/advance() calls; SteadyClock inherits it
// from std::chrono::steady_clock (truncation to milliseconds preserves
// monotonicity).
#pragma once

#include <chrono>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace eacache {

class Clock {
 public:
  virtual ~Clock() = default;

  /// The current instant on the shared timeline. Thread-safe.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Block the calling thread until now() >= at. Wall clocks genuinely
  /// sleep; manual clocks return immediately (their driver advances time
  /// explicitly, so sleeping would deadlock).
  virtual void sleep_until(TimePoint at) = 0;
};

/// Manual clock for tests and deterministic closed-loop replay: time moves
/// only when the driver says so. Thread-safe; rejects any attempt to move
/// time backwards (std::logic_error) so a buggy driver cannot violate the
/// monotonicity contract the cache core's window estimators rely on.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(TimePoint start = kSimEpoch) : now_(start) {}

  [[nodiscard]] TimePoint now() const override EACACHE_EXCLUDES(mutex_);
  void sleep_until(TimePoint at) override;

  /// Jump ahead by `by` (>= 0; negative throws). Returns the new now().
  TimePoint advance(Duration by) EACACHE_EXCLUDES(mutex_);
  /// Jump to the absolute instant `to` (>= now(); backwards throws).
  /// Setting to the current instant is a no-op, so replaying a trace with
  /// duplicate timestamps is legal.
  void set(TimePoint to) EACACHE_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  TimePoint now_ EACACHE_GUARDED_BY(mutex_);
};

/// Wall clock: maps std::chrono::steady_clock onto the TimePoint timeline,
/// anchored so that now() == `origin` at construction. Stateless after
/// construction, hence trivially thread-safe.
class SteadyClock final : public Clock {
 public:
  explicit SteadyClock(TimePoint origin = kSimEpoch);

  [[nodiscard]] TimePoint now() const override;
  void sleep_until(TimePoint at) override;

 private:
  std::chrono::steady_clock::time_point anchor_;
  TimePoint origin_;
};

}  // namespace eacache
