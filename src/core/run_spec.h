// RunSpec: the single description of one run, whichever driver executes it.
//
// Historically a run was configured through three overlapping structs:
//   * GroupConfig          — the cache group itself (kept, nested below);
//   * SimulationOptions    — snapshot period, invariant checker, faults;
//   * SweepOptions         — per-sweep validate/obs overrides leaking into
//                            per-run semantics.
// RunSpec collapses the per-run knobs into one aggregate with ONE
// validation entry point, `RunSpec::validate(target)`, which absorbs
// `GroupConfig::validate()` and `GroupConfig::validate_for_daemon()` (both
// remain as thin internal helpers for one release — new code should only
// ever call the RunSpec entry point). The DESIGN.md §14 table maps every
// old field to its new home.
//
// Execution placement is explicit: ExecutionPolicy selects between the
// classic single-queue discrete-event driver (shards == 0, the default —
// golden-pinned, byte-identical to every previous release) and the sharded
// conservative-lookahead engine (shards >= 1, sim/shard_engine.h). The
// sharded engine is deterministic in the shard count: result JSON for
// shards=1 equals shards=N bit for bit.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/fault_plan.h"
#include "group/cache_group.h"
#include "net/latency_model.h"

namespace eacache {

/// How a run is placed onto the machine.
///  * shards == 0 — the classic driver: one thread, one EventQueue
///    (sim/simulator.h; the event-driven pipeline rides this path too).
///  * shards >= 1 — the sharded parallel engine: the proxy topology is
///    partitioned into `shards` shards, each with its own EventQueue and
///    clock, synchronized by conservative lookahead windows
///    (sim/shard_engine.h). shards == 1 runs the same message-driven
///    semantics on one thread — the determinism baseline for N > 1.
struct ExecutionPolicy {
  std::size_t shards = 0;

  /// Conservative synchronization window. Defaults to the LatencyModel's
  /// inter-proxy message floor (see `default_lookahead`); an override must
  /// lie in [1 ms, that floor] — larger would let a message land inside the
  /// window that sent it, which breaks conservative synchronization.
  std::optional<Duration> lookahead_override;

  [[nodiscard]] bool sharded() const { return shards >= 1; }
};

/// Which driver family a RunSpec is being validated for.
enum class RunTarget { kSimulation, kDaemon };

/// The smallest delay any shard-crossing message can have under `latency`:
/// min of the probe hop, reply hop, fetch hop and body-return delays. This
/// is the widest safe lookahead window (20 ms under paper defaults:
/// icp_rtt/2).
[[nodiscard]] Duration default_lookahead(const LatencyModel& latency);

struct RunSpec {
  /// The cache group: topology, capacities, policies, protocol knobs,
  /// observability. Unchanged from the pre-RunSpec API.
  GroupConfig group;

  /// Period for hit-rate time-series snapshots; zero disables them.
  /// (Was SimulationOptions::snapshot_period.)
  Duration snapshot_period = Duration::zero();

  /// Attach the invariant checker (src/validate/invariants.h) to the run.
  /// (Was SimulationOptions::validate / SweepOptions::validate.)
  bool check_invariants = false;

  /// Declarative fault injection: flushes + peer-outage windows.
  /// (Was SimulationOptions::faults; the flush_events shim is gone.)
  FaultPlan faults;

  /// Sharding + lookahead. (New in the RunSpec API.)
  ExecutionPolicy exec;

  /// Provenance echo: the canonical workload-spec string
  /// (format_workload_spec) of the trace this run replays, when it came
  /// from the workload DSL. Purely descriptive — never read by the drivers
  /// — and surfaced as the "workload" field of result-JSON config rows so
  /// every row names the scenario that produced it. Empty for non-DSL
  /// traces.
  std::string workload;

  /// Every violated rule, in a stable order; empty means the spec is
  /// runnable by the `target` driver family. THE validation entry point:
  /// aggregates the group-level rules (GroupConfig::validate), the
  /// daemon-restriction rules (the old validate_for_daemon) and the
  /// execution-policy rules in one pass.
  [[nodiscard]] std::vector<std::string> validate(
      RunTarget target = RunTarget::kSimulation) const;

  /// Throws std::invalid_argument with every violation ("; "-joined).
  void validate_or_throw(RunTarget target = RunTarget::kSimulation) const;

  /// The lookahead window the sharded engine will actually use.
  [[nodiscard]] Duration effective_lookahead() const {
    return exec.lookahead_override.value_or(default_lookahead(group.latency));
  }
};

}  // namespace eacache
