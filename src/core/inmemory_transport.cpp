#include "core/inmemory_transport.h"

#include <stdexcept>
#include <utility>

#include "core/wall_timer.h"

namespace eacache {

InMemoryTransport::InMemoryTransport(std::size_t num_endpoints) {
  if (num_endpoints == 0) {
    throw std::invalid_argument("InMemoryTransport: need at least one endpoint");
  }
  mailboxes_.reserve(num_endpoints);
  for (std::size_t i = 0; i < num_endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

InMemoryTransport::Mailbox& InMemoryTransport::mailbox_at(ProxyId at) {
  if (at >= mailboxes_.size()) {
    throw std::out_of_range("InMemoryTransport: endpoint id out of range");
  }
  return *mailboxes_[at];
}

void InMemoryTransport::send(ProxyId to, WireMessage message) {
  Mailbox& box = mailbox_at(to);
  {
    MutexLock lock(box.mutex);
    box.queue.push_back(std::move(message));
  }
  // Notify outside the lock: the woken receiver can acquire immediately.
  box.ready.notify_one();
}

std::optional<WireMessage> InMemoryTransport::receive(ProxyId at, std::chrono::nanoseconds timeout) {
  Mailbox& box = mailbox_at(at);
  const Deadline deadline(timeout);
  MutexLock lock(box.mutex);
  while (box.queue.empty()) {
    // Re-derive the remaining budget each lap so spurious wakeups cannot
    // extend the overall deadline.
    const auto remaining = deadline.remaining();
    if (remaining == std::chrono::nanoseconds::zero()) return std::nullopt;
    box.ready.wait_for(box.mutex, remaining);
  }
  WireMessage head = std::move(box.queue.front());
  box.queue.pop_front();
  return head;
}

std::optional<WireMessage> InMemoryTransport::try_receive(ProxyId at) {
  Mailbox& box = mailbox_at(at);
  MutexLock lock(box.mutex);
  if (box.queue.empty()) return std::nullopt;
  WireMessage head = std::move(box.queue.front());
  box.queue.pop_front();
  return head;
}

std::size_t InMemoryTransport::pending(ProxyId at) {
  Mailbox& box = mailbox_at(at);
  MutexLock lock(box.mutex);
  return box.queue.size();
}

}  // namespace eacache
