#include "storage/lru_policy.h"

#include <stdexcept>

namespace eacache {

void LruPolicy::on_admit(DocumentId id, Bytes /*size*/, TimePoint /*now*/) {
  if (index_.count(id) != 0) throw std::logic_error("LruPolicy: duplicate admit");
  order_.push_front(id);
  index_.emplace(id, order_.begin());
}

void LruPolicy::on_hit(DocumentId id, TimePoint /*now*/) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("LruPolicy: hit on absent id");
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_silent_hit(DocumentId id, TimePoint /*now*/) {
  // EA responder rule: the entry stays at its current list position.
  if (index_.count(id) == 0) throw std::logic_error("LruPolicy: silent hit on absent id");
}

DocumentId LruPolicy::victim() const {
  if (order_.empty()) throw std::logic_error("LruPolicy: victim() on empty policy");
  return order_.back();
}

void LruPolicy::on_remove(DocumentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("LruPolicy: remove of absent id");
  order_.erase(it->second);
  index_.erase(it);
}

}  // namespace eacache
