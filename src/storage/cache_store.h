// Byte-accounted document cache with pluggable replacement and eviction
// observation.
//
// This is the per-proxy disk model. It owns entry metadata in exactly the
// form the paper says real proxies already keep (section 3.2): entry time,
// last-hit time-stamp (LRU family) and HIT-COUNTER (LFU family). On every
// capacity eviction it emits an EvictionRecord to registered observers —
// that stream is what the expiration-age machinery consumes.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "obs/metric_registry.h"
#include "storage/document.h"
#include "storage/eviction.h"
#include "storage/replacement_policy.h"

namespace eacache {

struct CacheEntry {
  DocumentId id = 0;
  Bytes size = 0;
  TimePoint entry_time{};
  TimePoint last_hit_time{};    // last PROMOTING hit; == entry_time initially
  std::uint64_t hit_count = 1;  // paper convention: 1 on admission

  // Coherence metadata (unused unless the group runs with coherence on).
  std::uint64_t version = 0;     // origin version this body corresponds to
  TimePoint last_validated{};    // freshness clock: admission or last 304
};

/// Cumulative operation counters (monotonic; never reset).
struct CacheStoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;            // promote + silent
  std::uint64_t silent_hits = 0;     // served without rejuvenation
  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;      // documents larger than capacity
  std::uint64_t capacity_evictions = 0;
  std::uint64_t explicit_removals = 0;
  Bytes bytes_admitted = 0;
  Bytes bytes_evicted = 0;
};

class CacheStore {
 public:
  /// Capacity is a hard byte budget. The policy must be non-null.
  CacheStore(Bytes capacity, std::unique_ptr<ReplacementPolicy> policy);

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Observers receive every eviction (capacity and explicit). Observers
  /// must outlive the store. Must not be null.
  void add_eviction_observer(EvictionObserver* observer);

  /// Optional registry instrumentation (null handles = off): evictions
  /// split by cause, plus silent (non-promoting) hits — the store-level
  /// trace of the EA responder rule suppressing LRU promotions.
  void bind_counters(MetricRegistry::Counter capacity_evictions,
                     MetricRegistry::Counter explicit_removals,
                     MetricRegistry::Counter silent_hits) {
    obs_capacity_evictions_ = capacity_evictions;
    obs_explicit_removals_ = explicit_removals;
    obs_silent_hits_ = silent_hits;
  }

  /// Presence probe with NO metadata side effects. This is what an ICP
  /// query does: asking "do you have it?" is not a hit.
  [[nodiscard]] bool contains(DocumentId id) const { return entries_.count(id) != 0; }

  /// Read-only view of a resident entry; nullopt if absent. No side effects.
  [[nodiscard]] std::optional<CacheEntry> peek(DocumentId id) const;

  /// Serve a hit, giving the entry a fresh lease of life (promotes in the
  /// policy, stamps last_hit_time, increments hit_count). Returns the entry
  /// as it is AFTER the hit, or nullopt on miss.
  std::optional<CacheEntry> touch(DocumentId id, TimePoint now);

  /// Serve a hit WITHOUT rejuvenation — the EA responder rule. The policy
  /// position, last_hit_time and hit_count are all left untouched so the
  /// copy can age out naturally; only serving counters move.
  std::optional<CacheEntry> touch_without_promote(DocumentId id, TimePoint now);

  /// Admit a document, evicting victims as needed. Preconditions: the id is
  /// not resident (throws std::logic_error otherwise — look up first).
  /// Returns the eviction records generated, or nullopt if the document is
  /// larger than total capacity (such documents are never admitted; this is
  /// the standard proxy behaviour for unbounded objects).
  std::optional<std::vector<EvictionRecord>> admit(const Document& doc, TimePoint now);

  /// Explicitly remove a document (e.g. invalidation). Returns true if it
  /// was resident. Emits an EvictionRecord with cause kExplicit.
  bool remove(DocumentId id, TimePoint now);

  /// Refresh the freshness clock after a successful revalidation (a 304
  /// from the origin): stamps last_validated, leaves replacement state
  /// untouched (a validation is not a client hit). Returns false if absent.
  bool mark_validated(DocumentId id, TimePoint now);

  /// Override an entry's freshness metadata (used when a copy received
  /// from a peer inherits the PEER's validation clock rather than "now" —
  /// the HTTP Age-header rule). Returns false if absent.
  bool set_coherence(DocumentId id, std::uint64_t version, TimePoint validated_at);

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::size_t resident_count() const { return entries_.size(); }
  [[nodiscard]] const CacheStoreStats& stats() const { return stats_; }
  [[nodiscard]] const ReplacementPolicy& policy() const { return *policy_; }

  /// Snapshot of resident ids (test/diagnostic hook; unspecified order).
  [[nodiscard]] std::vector<DocumentId> resident_ids() const;

 private:
  EvictionRecord evict_one(TimePoint now, EvictionCause cause, DocumentId id);
  void notify(const EvictionRecord& record);

  Bytes capacity_;
  Bytes resident_bytes_ = 0;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<DocumentId, CacheEntry> entries_;
  std::vector<EvictionObserver*> observers_;
  CacheStoreStats stats_;
  MetricRegistry::Counter obs_capacity_evictions_;
  MetricRegistry::Counter obs_explicit_removals_;
  MetricRegistry::Counter obs_silent_hits_;
};

}  // namespace eacache
