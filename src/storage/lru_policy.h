// Least-Recently-Used eviction order: intrusive list + hash index, O(1) ops.
#pragma once

#include <list>
#include <unordered_map>

#include "storage/replacement_policy.h"

namespace eacache {

class LruPolicy final : public ReplacementPolicy {
 public:
  void on_admit(DocumentId id, Bytes size, TimePoint now) override;
  void on_hit(DocumentId id, TimePoint now) override;
  void on_silent_hit(DocumentId id, TimePoint now) override;
  [[nodiscard]] DocumentId victim() const override;
  void on_remove(DocumentId id) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] std::string_view name() const override { return "lru"; }

 private:
  // Front = most recently used (HEAD in the paper's wording);
  // back = eviction victim.
  std::list<DocumentId> order_;
  std::unordered_map<DocumentId, std::list<DocumentId>::iterator> index_;
};

}  // namespace eacache
