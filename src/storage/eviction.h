// Eviction records: the raw material for the paper's expiration-age metric.
//
// Whenever a CacheStore evicts a document it emits an EvictionRecord with
// exactly the bookkeeping the paper says LRU/LFU proxies already keep
// (paper section 3.2): entry time, last-hit time, hit counter, eviction time.
// The ea::ContentionEstimator consumes these to compute DocExpAge / Eq. 5.
#pragma once

#include "common/types.h"

namespace eacache {

enum class EvictionCause {
  kCapacity,   // removed to make room for an incoming document
  kExplicit,   // removed by an external invalidation/remove call
};

struct EvictionRecord {
  DocumentId id = 0;
  Bytes size = 0;
  TimePoint entry_time{};     // when the document was admitted
  TimePoint last_hit_time{};  // last promoting hit (== entry_time if none)
  std::uint64_t hit_count = 1;  // paper convention: starts at 1 on admission
  TimePoint evict_time{};
  EvictionCause cause = EvictionCause::kCapacity;
};

/// Observer for evictions. Implementations must not MUTATE the emitting
/// CacheStore (reentrant admits/removes are a programming error). Const
/// reads are fine: the store erases the victim before notifying, so
/// resident_ids()/peek()/resident_bytes() see a consistent post-eviction
/// view (the invariant checker audits the LRU stack property this way).
class EvictionObserver {
 public:
  virtual ~EvictionObserver() = default;
  virtual void on_eviction(const EvictionRecord& record) = 0;
};

}  // namespace eacache
