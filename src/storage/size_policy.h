// SIZE replacement: evict the largest resident document first.
//
// A classic web-cache policy (Williams et al. 1996): large documents consume
// disproportionate space and are often cheaper to refetch per byte. Included
// as a non-LRU/LFU baseline for the policy-lab example and for checking that
// the placement layer is genuinely replacement-policy independent.
// Tie-break: least recently admitted/promoted first.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "storage/replacement_policy.h"

namespace eacache {

class SizePolicy final : public ReplacementPolicy {
 public:
  void on_admit(DocumentId id, Bytes size, TimePoint now) override;
  void on_hit(DocumentId id, TimePoint now) override;
  void on_silent_hit(DocumentId id, TimePoint now) override;
  [[nodiscard]] DocumentId victim() const override;
  void on_remove(DocumentId id) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] std::string_view name() const override { return "size"; }

 private:
  struct Key {
    Bytes size;
    std::uint64_t stamp;  // lower = touched longer ago
    DocumentId id;

    // Largest first; among equals, stalest first.
    friend bool operator<(const Key& a, const Key& b) {
      if (a.size != b.size) return a.size > b.size;
      if (a.stamp != b.stamp) return a.stamp < b.stamp;
      return a.id < b.id;
    }
  };

  void reinsert(DocumentId id, Bytes size);

  std::set<Key> order_;
  std::unordered_map<DocumentId, Key> index_;
  std::uint64_t next_stamp_ = 0;
};

}  // namespace eacache
