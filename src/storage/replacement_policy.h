// Replacement-policy interface.
//
// A policy only maintains an eviction ORDER over resident documents; the
// CacheStore owns the entries, the byte accounting and all metadata. This
// split keeps each policy small and lets the EA layer observe evictions in
// one place regardless of policy.
//
// Contract (enforced by the store, asserted by policies):
//  * on_admit is called at most once per resident id;
//  * on_hit / on_silent_hit are only called for resident ids;
//  * victim() is only called when at least one id is resident;
//  * on_remove is called exactly once when an id stops being resident.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/types.h"

namespace eacache {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A new document became resident.
  virtual void on_admit(DocumentId id, Bytes size, TimePoint now) = 0;

  /// The document was hit and should be given a fresh lease of life
  /// (LRU: move to head; LFU: increment frequency; GDS: re-inflate H).
  virtual void on_hit(DocumentId id, TimePoint now) = 0;

  /// The document was served but must NOT be rejuvenated. This is the EA
  /// scheme's responder-side rule (paper section 3.3): when the requester
  /// keeps the better-placed copy, the responder leaves its entry "unaltered
  /// at its current position" so it can age out naturally.
  virtual void on_silent_hit(DocumentId id, TimePoint now) = 0;

  /// The id the policy would evict next. Pure query; does not remove.
  [[nodiscard]] virtual DocumentId victim() const = 0;

  /// The document stopped being resident (evicted or explicitly removed).
  virtual void on_remove(DocumentId id) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Policy selector used by configs and the experiment harness.
enum class PolicyKind { kLru, kLfu, kLfuAging, kSizeBiggestFirst, kGreedyDualSize };

[[nodiscard]] std::string_view to_string(PolicyKind kind);
[[nodiscard]] PolicyKind policy_kind_from_string(std::string_view name);

/// Factory. Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind);

}  // namespace eacache
