#include "storage/gds_policy.h"

#include <algorithm>
#include <stdexcept>

namespace eacache {

GdsPolicy::GdsPolicy() : GdsPolicy([](DocumentId, Bytes) { return 1.0; }) {}

GdsPolicy::GdsPolicy(CostFn cost) : cost_(std::move(cost)) {
  if (!cost_) throw std::invalid_argument("GdsPolicy: null cost function");
}

void GdsPolicy::reinsert(DocumentId id, Bytes size) {
  const double denom = size > 0 ? static_cast<double>(size) : 1.0;
  const Key key{inflation_ + cost_(id, size) / denom, next_stamp_++, id};
  order_.insert(key);
  index_[id] = Entry{key, size};
}

void GdsPolicy::on_admit(DocumentId id, Bytes size, TimePoint /*now*/) {
  if (index_.count(id) != 0) throw std::logic_error("GdsPolicy: duplicate admit");
  reinsert(id, size);
}

void GdsPolicy::on_hit(DocumentId id, TimePoint /*now*/) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("GdsPolicy: hit on absent id");
  const Bytes size = it->second.size;
  order_.erase(it->second.key);
  index_.erase(it);
  reinsert(id, size);
}

void GdsPolicy::on_silent_hit(DocumentId id, TimePoint /*now*/) {
  // EA responder rule: no credit re-inflation.
  if (index_.count(id) == 0) throw std::logic_error("GdsPolicy: silent hit on absent id");
}

DocumentId GdsPolicy::victim() const {
  if (order_.empty()) throw std::logic_error("GdsPolicy: victim() on empty policy");
  return order_.begin()->id;
}

void GdsPolicy::on_remove(DocumentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("GdsPolicy: remove of absent id");
  // Inflation update: when the victim (the minimal-H entry) leaves, the
  // floor L rises to its credit. Explicit removals of non-minimal entries
  // do not inflate.
  if (!order_.empty() && order_.begin()->id == id) {
    inflation_ = std::max(inflation_, it->second.key.h);
  }
  order_.erase(it->second.key);
  index_.erase(it);
}

double GdsPolicy::credit(DocumentId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("GdsPolicy: credit of absent id");
  return it->second.key.h;
}

}  // namespace eacache
