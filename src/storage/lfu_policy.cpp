#include "storage/lfu_policy.h"

#include <stdexcept>
#include <vector>

namespace eacache {

void LfuPolicy::insert_at_freq(DocumentId id, std::uint64_t freq) {
  Bucket& bucket = buckets_[freq];
  bucket.push_back(id);  // back = most recently used at this frequency
  index_[id] = Locator{freq, std::prev(bucket.end())};
}

void LfuPolicy::detach(DocumentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("LfuPolicy: id not resident");
  const auto bucket_it = buckets_.find(it->second.freq);
  bucket_it->second.erase(it->second.pos);
  if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  index_.erase(it);
}

void LfuPolicy::on_admit(DocumentId id, Bytes /*size*/, TimePoint /*now*/) {
  if (index_.count(id) != 0) throw std::logic_error("LfuPolicy: duplicate admit");
  // Paper convention: HIT-COUNTER is initialised to 1 when a document
  // enters the cache.
  insert_at_freq(id, 1);
}

void LfuPolicy::on_hit(DocumentId id, TimePoint /*now*/) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("LfuPolicy: hit on absent id");
  const std::uint64_t next_freq = it->second.freq + 1;
  detach(id);
  insert_at_freq(id, next_freq);
  if (aging_interval_ > 0 && ++promotions_since_aging_ >= aging_interval_) {
    promotions_since_aging_ = 0;
    age_all();
  }
}

void LfuPolicy::on_silent_hit(DocumentId id, TimePoint /*now*/) {
  // EA responder rule under LFU: the hit counter is NOT incremented, so the
  // entry keeps its replacement priority.
  if (index_.count(id) == 0) throw std::logic_error("LfuPolicy: silent hit on absent id");
}

DocumentId LfuPolicy::victim() const {
  if (buckets_.empty()) throw std::logic_error("LfuPolicy: victim() on empty policy");
  // Lowest frequency bucket; least recently used within it.
  return buckets_.begin()->second.front();
}

void LfuPolicy::on_remove(DocumentId id) { detach(id); }

std::uint64_t LfuPolicy::frequency(DocumentId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("LfuPolicy: frequency of absent id");
  return it->second.freq;
}

void LfuPolicy::age_all() {
  // Halve every counter (floor at 1), preserving intra-bucket recency order.
  std::map<std::uint64_t, Bucket> aged;
  for (auto& [freq, bucket] : buckets_) {
    const std::uint64_t new_freq = freq / 2 > 0 ? freq / 2 : 1;
    Bucket& dst = aged[new_freq];
    // Buckets are visited in ascending frequency order, so appending keeps
    // lower-original-frequency ids nearer the victim end.
    dst.splice(dst.end(), bucket);
  }
  buckets_ = std::move(aged);
  for (auto& [freq, bucket] : buckets_) {
    for (auto pos = bucket.begin(); pos != bucket.end(); ++pos) {
      index_[*pos] = Locator{freq, pos};
    }
  }
}

}  // namespace eacache
