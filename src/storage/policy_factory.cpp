#include <stdexcept>
#include <string>

#include "storage/gds_policy.h"
#include "storage/lfu_policy.h"
#include "storage/lru_policy.h"
#include "storage/replacement_policy.h"
#include "storage/size_policy.h"

namespace eacache {

namespace {
// Default aging interval for lfu-aging: halve counters every 10k promotions.
constexpr std::uint64_t kDefaultAgingInterval = 10'000;
}  // namespace

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kLfu: return "lfu";
    case PolicyKind::kLfuAging: return "lfu-aging";
    case PolicyKind::kSizeBiggestFirst: return "size";
    case PolicyKind::kGreedyDualSize: return "gds";
  }
  throw std::invalid_argument("to_string: bad PolicyKind");
}

PolicyKind policy_kind_from_string(std::string_view name) {
  if (name == "lru") return PolicyKind::kLru;
  if (name == "lfu") return PolicyKind::kLfu;
  if (name == "lfu-aging") return PolicyKind::kLfuAging;
  if (name == "size") return PolicyKind::kSizeBiggestFirst;
  if (name == "gds") return PolicyKind::kGreedyDualSize;
  throw std::invalid_argument("unknown replacement policy: " + std::string(name));
}

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case PolicyKind::kLfuAging: return std::make_unique<LfuPolicy>(kDefaultAgingInterval);
    case PolicyKind::kSizeBiggestFirst: return std::make_unique<SizePolicy>();
    case PolicyKind::kGreedyDualSize: return std::make_unique<GdsPolicy>();
  }
  throw std::invalid_argument("make_policy: bad PolicyKind");
}

}  // namespace eacache
