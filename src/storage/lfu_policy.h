// Least-Frequently-Used eviction order with O(1) operations.
//
// Classic frequency-bucket structure: a doubly linked list of frequency
// buckets, each holding an LRU-ordered list of ids with that hit count.
// Victim = least-recently-used id in the lowest-frequency bucket (the
// standard LFU tie-break).
//
// The optional aging variant (paper cites "LFU and its variants") halves
// every counter each `aging_interval` promotions, preventing formerly-hot
// documents from squatting forever.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "storage/replacement_policy.h"

namespace eacache {

class LfuPolicy : public ReplacementPolicy {
 public:
  /// aging_interval == 0 disables aging (pure LFU).
  explicit LfuPolicy(std::uint64_t aging_interval = 0) : aging_interval_(aging_interval) {}

  void on_admit(DocumentId id, Bytes size, TimePoint now) override;
  void on_hit(DocumentId id, TimePoint now) override;
  void on_silent_hit(DocumentId id, TimePoint now) override;
  [[nodiscard]] DocumentId victim() const override;
  void on_remove(DocumentId id) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] std::string_view name() const override {
    return aging_interval_ > 0 ? "lfu-aging" : "lfu";
  }

  /// Current frequency of a resident id (test hook).
  [[nodiscard]] std::uint64_t frequency(DocumentId id) const;

 private:
  using Bucket = std::list<DocumentId>;

  struct Locator {
    std::uint64_t freq;
    Bucket::iterator pos;
  };

  void insert_at_freq(DocumentId id, std::uint64_t freq);
  void detach(DocumentId id);
  void age_all();

  // freq -> LRU-ordered bucket (front = least recently used at that freq).
  std::map<std::uint64_t, Bucket> buckets_;
  std::unordered_map<DocumentId, Locator> index_;
  std::uint64_t aging_interval_;
  std::uint64_t promotions_since_aging_ = 0;
};

}  // namespace eacache
