#include "storage/cache_store.h"

#include <algorithm>
#include <stdexcept>

namespace eacache {

CacheStore::CacheStore(Bytes capacity, std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("CacheStore: null policy");
}

void CacheStore::add_eviction_observer(EvictionObserver* observer) {
  if (observer == nullptr) throw std::invalid_argument("CacheStore: null observer");
  observers_.push_back(observer);
}

std::optional<CacheEntry> CacheStore::peek(DocumentId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<CacheEntry> CacheStore::touch(DocumentId id, TimePoint now) {
  ++stats_.lookups;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  CacheEntry& entry = it->second;
  entry.last_hit_time = now;
  ++entry.hit_count;
  policy_->on_hit(id, now);
  ++stats_.hits;
  return entry;
}

std::optional<CacheEntry> CacheStore::touch_without_promote(DocumentId id, TimePoint now) {
  ++stats_.lookups;
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  policy_->on_silent_hit(id, now);
  ++stats_.hits;
  ++stats_.silent_hits;
  obs_silent_hits_.inc();
  return it->second;
}

std::optional<std::vector<EvictionRecord>> CacheStore::admit(const Document& doc,
                                                             TimePoint now) {
  if (entries_.count(doc.id) != 0) {
    throw std::logic_error("CacheStore: admit of already-resident document");
  }
  if (doc.size > capacity_) {
    ++stats_.rejections;
    return std::nullopt;
  }
  std::vector<EvictionRecord> evicted;
  while (resident_bytes_ + doc.size > capacity_) {
    evicted.push_back(evict_one(now, EvictionCause::kCapacity, policy_->victim()));
  }
  CacheEntry entry;
  entry.id = doc.id;
  entry.size = doc.size;
  entry.entry_time = now;
  entry.last_hit_time = now;
  entry.hit_count = 1;
  entry.version = doc.version;
  entry.last_validated = now;
  entries_.emplace(doc.id, entry);
  policy_->on_admit(doc.id, doc.size, now);
  resident_bytes_ += doc.size;
  ++stats_.admissions;
  stats_.bytes_admitted += doc.size;
  return evicted;
}

bool CacheStore::mark_validated(DocumentId id, TimePoint now) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  it->second.last_validated = now;
  return true;
}

bool CacheStore::set_coherence(DocumentId id, std::uint64_t version, TimePoint validated_at) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  it->second.version = version;
  it->second.last_validated = validated_at;
  return true;
}

bool CacheStore::remove(DocumentId id, TimePoint now) {
  if (entries_.count(id) == 0) return false;
  const EvictionRecord record = evict_one(now, EvictionCause::kExplicit, id);
  (void)record;
  return true;
}

EvictionRecord CacheStore::evict_one(TimePoint now, EvictionCause cause, DocumentId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) throw std::logic_error("CacheStore: evicting absent id");
  const CacheEntry& entry = it->second;
  EvictionRecord record;
  record.id = entry.id;
  record.size = entry.size;
  record.entry_time = entry.entry_time;
  record.last_hit_time = entry.last_hit_time;
  record.hit_count = entry.hit_count;
  record.evict_time = now;
  record.cause = cause;

  policy_->on_remove(id);
  resident_bytes_ -= entry.size;
  if (cause == EvictionCause::kCapacity) {
    ++stats_.capacity_evictions;
    obs_capacity_evictions_.inc();
  } else {
    ++stats_.explicit_removals;
    obs_explicit_removals_.inc();
  }
  stats_.bytes_evicted += entry.size;
  entries_.erase(it);
  notify(record);
  return record;
}

void CacheStore::notify(const EvictionRecord& record) {
  for (EvictionObserver* observer : observers_) observer->on_eviction(record);
}

std::vector<DocumentId> CacheStore::resident_ids() const {
  std::vector<DocumentId> ids;
  ids.reserve(entries_.size());
  // eacheck:allow(determinism): hash order is normalized by the sort below
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  // Sorted so hash order never escapes: callers iterate this vector on the
  // flush path (removal order drives eviction-observer callbacks) and when
  // collecting results, and both must be stable across stdlib hash
  // implementations and shard counts.
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace eacache
