#include "storage/size_policy.h"

#include <stdexcept>

namespace eacache {

void SizePolicy::reinsert(DocumentId id, Bytes size) {
  const Key key{size, next_stamp_++, id};
  order_.insert(key);
  index_[id] = key;
}

void SizePolicy::on_admit(DocumentId id, Bytes size, TimePoint /*now*/) {
  if (index_.count(id) != 0) throw std::logic_error("SizePolicy: duplicate admit");
  reinsert(id, size);
}

void SizePolicy::on_hit(DocumentId id, TimePoint /*now*/) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("SizePolicy: hit on absent id");
  const Bytes size = it->second.size;
  order_.erase(it->second);
  reinsert(id, size);
}

void SizePolicy::on_silent_hit(DocumentId id, TimePoint /*now*/) {
  if (index_.count(id) == 0) throw std::logic_error("SizePolicy: silent hit on absent id");
}

DocumentId SizePolicy::victim() const {
  if (order_.empty()) throw std::logic_error("SizePolicy: victim() on empty policy");
  return order_.begin()->id;
}

void SizePolicy::on_remove(DocumentId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) throw std::logic_error("SizePolicy: remove of absent id");
  order_.erase(it->second);
  index_.erase(it);
}

}  // namespace eacache
