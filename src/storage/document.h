// A web document as the cache sees it: an identifier plus a body size.
#pragma once

#include "common/types.h"

namespace eacache {

struct Document {
  DocumentId id = 0;
  Bytes size = 0;
  /// Origin version of the body (coherence experiments; 0 when unused).
  std::uint64_t version = 0;

  friend bool operator==(const Document&, const Document&) = default;
};

}  // namespace eacache
