// GreedyDual-Size (Cao & Irani, USITS 1997) — the cost-aware replacement
// policy the paper cites as [4]. Each resident document carries a credit
//     H(d) = L + cost(d) / size(d)
// where L is a monotonically inflating floor equal to the H of the last
// victim. Victim = minimal H. A hit re-inflates H(d) to the current formula.
//
// cost(d) == 1 gives the "GDS(1)" variant that maximises object hit rate;
// cost(d) == size(d) degenerates to LRU-like behaviour with H = L + 1.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "storage/replacement_policy.h"

namespace eacache {

class GdsPolicy final : public ReplacementPolicy {
 public:
  using CostFn = std::function<double(DocumentId, Bytes)>;

  /// Default cost function: uniform cost 1 (object-hit-rate flavour).
  GdsPolicy();
  explicit GdsPolicy(CostFn cost);

  void on_admit(DocumentId id, Bytes size, TimePoint now) override;
  void on_hit(DocumentId id, TimePoint now) override;
  void on_silent_hit(DocumentId id, TimePoint now) override;
  [[nodiscard]] DocumentId victim() const override;
  void on_remove(DocumentId id) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  [[nodiscard]] std::string_view name() const override { return "gds"; }

  /// Current credit of a resident id (test hook).
  [[nodiscard]] double credit(DocumentId id) const;

 private:
  struct Key {
    double h;
    std::uint64_t stamp;
    DocumentId id;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.h != b.h) return a.h < b.h;
      if (a.stamp != b.stamp) return a.stamp < b.stamp;
      return a.id < b.id;
    }
  };
  struct Entry {
    Key key;
    Bytes size;
  };

  void reinsert(DocumentId id, Bytes size);

  CostFn cost_;
  double inflation_ = 0.0;  // L
  std::set<Key> order_;
  std::unordered_map<DocumentId, Entry> index_;
  std::uint64_t next_stamp_ = 0;
};

}  // namespace eacache
