#include "trace/workload.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "common/hash.h"

namespace eacache {

namespace {

// Seed salts: one independent stream per concern, so adding a component
// never perturbs another's draws.
constexpr std::uint64_t kSizeSalt = 0x5157a11c0ffee5ULL;  // matches synthetic.cpp
constexpr std::uint64_t kChurnSalt = 0xd81f7c0ffee1234ULL;

constexpr double kPi = 3.14159265358979323846;

// Reserved id layout: bit 63 tags chunk ids (base << 20 | index below it),
// bit 62 tags the flash document. Normal ids stay below 2^40 (validated),
// so the spaces never collide.
constexpr DocumentId kChunkBit = DocumentId{1} << 63;
constexpr DocumentId kFlashBit = DocumentId{1} << 62;
constexpr std::uint32_t kChunkIndexBits = 20;

// Backstop on pending chunk-train state so a pathological spec (huge trains,
// long gaps, high rate) cannot grow the heap without bound: past this, a
// train collapses to its first chunk. Never reached by the shipped
// scenarios.
constexpr std::size_t kMaxPendingChunks = 1 << 16;

double lognormal_mu(const WorkloadSizeSpec& size) {
  // E[X] = exp(mu + sigma^2/2) — choose mu so the body mean is mean_size.
  return std::log(static_cast<double>(size.mean_size)) - size.sigma * size.sigma / 2.0;
}

}  // namespace

DocumentId workload_flash_document() { return kFlashBit; }

DocumentId workload_chunk_document(DocumentId base, std::uint32_t index) {
  return kChunkBit | (base << kChunkIndexBits) | DocumentId{index};
}

bool is_flash_document(DocumentId id) { return (id & kFlashBit) != 0 && (id & kChunkBit) == 0; }

bool is_chunk_document(DocumentId id) { return (id & kChunkBit) != 0; }

DocumentId chunk_base_document(DocumentId id) {
  return (id & ~kChunkBit) >> kChunkIndexBits;
}

bool workload_document_segmented(const WorkloadSpec& spec, DocumentId base) {
  if (!spec.segments.enabled()) return false;
  const std::uint64_t h = hash_combine(spec.seed ^ 0x5e9f3e4a7b1c2d8ULL, base);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < spec.segments.fraction;
}

namespace {

std::uint32_t chunk_count(const WorkloadSpec& spec, DocumentId base) {
  const std::uint32_t lo = spec.segments.min_chunks;
  const std::uint32_t hi = spec.segments.max_chunks;
  const std::uint64_t h = hash_combine(spec.seed ^ 0x3c0de5eb9a7f11dULL, base);
  return lo + static_cast<std::uint32_t>(h % (hi - lo + 1));
}

}  // namespace

Bytes workload_document_size(const WorkloadSpec& spec, DocumentId id) {
  const WorkloadSizeSpec& size = spec.size;
  if (is_chunk_document(id)) return spec.segments.chunk_bytes;
  if (is_flash_document(id)) {
    return std::clamp(size.mean_size, size.min_size, size.max_size);
  }
  // Per-document deterministic stream, independent of request order — the
  // same construction as synthetic_document_size.
  Rng rng(hash_combine(spec.seed ^ kSizeSalt, id));
  double body = 0.0;
  if (rng.next_bool(size.pareto_probability)) {
    body = rng.next_pareto(static_cast<double>(size.pareto_scale), size.pareto_alpha);
  } else {
    body = rng.next_lognormal(lognormal_mu(size), size.sigma);
  }
  const double clamped = std::clamp(body, static_cast<double>(size.min_size),
                                    static_cast<double>(size.max_size));
  return static_cast<Bytes>(clamped);
}

std::uint64_t WorkloadSpec::churn_hot_window() const {
  std::uint64_t window = churn.hot_window;
  if (window == 0) window = std::max<std::uint64_t>(16, num_documents / 64);
  return std::min(window, num_documents);
}

namespace {

/// The rank -> document permutation after `epochs` churn intervals. Driven
/// entirely by the dedicated churn rng stream so request draws never shift
/// the schedule (and tests can replay it).
std::vector<DocumentId> permutation_after(const WorkloadSpec& spec, std::uint64_t epochs) {
  Rng rng(spec.seed ^ kChurnSalt);
  std::vector<DocumentId> doc_of_rank(spec.num_documents);
  for (std::uint64_t i = 0; i < spec.num_documents; ++i) doc_of_rank[i] = i;
  // Initial shuffle decorrelates popularity from id (as in synthetic.cpp).
  for (std::uint64_t i = spec.num_documents - 1; i > 0; --i) {
    std::swap(doc_of_rank[i], doc_of_rank[rng.next_below(i + 1)]);
  }
  if (!spec.churn.enabled()) return doc_of_rank;
  const std::uint64_t hot = spec.churn_hot_window();
  const auto swaps = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(spec.churn.fraction * static_cast<double>(hot))));
  for (std::uint64_t e = 0; e < epochs; ++e) {
    for (std::uint64_t s = 0; s < swaps; ++s) {
      const std::uint64_t i = rng.next_below(hot);
      const std::uint64_t j = rng.next_below(spec.num_documents);
      std::swap(doc_of_rank[i], doc_of_rank[j]);
    }
  }
  return doc_of_rank;
}

}  // namespace

std::vector<DocumentId> workload_hot_documents(const WorkloadSpec& spec, std::uint64_t epochs,
                                               std::uint64_t k) {
  std::vector<DocumentId> perm = permutation_after(spec, epochs);
  perm.resize(std::min<std::uint64_t>(k, perm.size()));
  return perm;
}

double workload_flash_share(const WorkloadSpec& spec, Duration t) {
  if (!spec.flash.enabled()) return 0.0;
  const auto offset = static_cast<double>((t - spec.flash.start).count());
  if (offset < 0.0) return 0.0;
  const auto ramp = static_cast<double>(spec.flash.ramp.count());
  const auto hold = static_cast<double>(spec.flash.hold.count());
  if (offset < ramp) return spec.flash.peak * (offset / ramp);
  if (offset < ramp + hold) return spec.flash.peak;
  if (offset < ramp + hold + ramp) {
    return spec.flash.peak * (1.0 - (offset - ramp - hold) / ramp);
  }
  return 0.0;
}

std::vector<std::string> WorkloadSpec::validate() const {
  std::vector<std::string> errors;
  const auto check = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  check(!name.empty() &&
            name.find_first_of("=;#\n\r\t ") == std::string::npos,
        "name must be non-empty and free of '=', ';', '#' and whitespace");
  check(num_documents >= 1, "need at least one document");
  check(num_documents < (DocumentId{1} << 40),
        "num_documents must stay below 2^40 (reserved chunk-id space)");
  check(num_users >= 1, "need at least one user");
  check(num_users <= 0xffffffffULL, "num_users must fit UserId (2^32 - 1)");
  check(span > Duration::zero(), "span must be positive");
  check(zipf_alpha > 0.0, "zipf.alpha must be positive");
  check(user_alpha > 0.0, "user.alpha must be positive");

  check(size.mean_size > 0, "size.mean must be positive");
  check(size.sigma >= 0.0, "size.sigma must be non-negative");
  check(size.pareto_probability >= 0.0 && size.pareto_probability < 1.0,
        "size.pareto_probability must lie in [0, 1)");
  check(size.pareto_alpha > 0.0, "size.pareto_alpha must be positive");
  check(size.min_size <= size.max_size, "size.min must not exceed size.max");

  check(diurnal.amplitude >= 0.0 && diurnal.amplitude < 1.0,
        "diurnal.amplitude must lie in [0, 1)");
  check(!diurnal.enabled() || diurnal.period > Duration::zero(),
        "diurnal.period must be positive");

  check(churn.fraction >= 0.0 && churn.fraction <= 1.0,
        "churn.fraction must lie in [0, 1]");
  check(churn.interval >= Duration::zero(), "churn.interval must be non-negative");

  check(flash.peak >= 0.0 && flash.peak < 1.0, "flash.peak must lie in [0, 1)");
  check(!flash.enabled() || flash.ramp >= Duration::zero(),
        "flash.ramp must be non-negative");
  check(!flash.enabled() || flash.hold >= Duration::zero(),
        "flash.hold must be non-negative");
  check(!flash.enabled() || flash.ramp + flash.hold > Duration::zero(),
        "flash window must have positive extent");

  check(segments.fraction >= 0.0 && segments.fraction <= 1.0,
        "segments.fraction must lie in [0, 1]");
  check(!segments.enabled() || segments.chunk_bytes > 0,
        "segments.chunk_bytes must be positive");
  check(segments.min_chunks >= 1, "segments.min_chunks must be at least 1");
  check(segments.max_chunks >= segments.min_chunks,
        "segments.max_chunks must be >= segments.min_chunks");
  check(segments.max_chunks < (1u << kChunkIndexBits),
        "segments.max_chunks must stay below 2^20 (chunk-id space)");
  check(segments.gap >= Duration::zero(), "segments.gap must be non-negative");

  check(sessions.affinity >= 0.0 && sessions.affinity < 1.0,
        "sessions.affinity must lie in [0, 1)");
  check(sessions.window >= 1, "sessions.window must be at least 1");
  check(sessions.active >= 1, "sessions.active must be at least 1");
  check(sessions.mean_lifetime > Duration::zero(),
        "sessions.mean_lifetime must be positive");
  return errors;
}

void WorkloadSpec::validate_or_throw() const {
  const std::vector<std::string> errors = validate();
  if (errors.empty()) return;
  std::string joined = "invalid WorkloadSpec: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) joined += "; ";
    joined += errors[i];
  }
  throw std::invalid_argument(joined);
}

// ---- WorkloadSource ------------------------------------------------------

WorkloadSource::WorkloadSource(WorkloadSpec spec)
    : spec_(std::move(spec)),
      rng_(spec_.seed),
      churn_rng_(spec_.seed ^ kChurnSalt),
      doc_sampler_((spec_.validate_or_throw(), spec_.num_documents), spec_.zipf_alpha),
      user_sampler_(spec_.num_users, spec_.user_alpha) {
  init_state();
}

void WorkloadSource::init_state() {
  // Same construction as permutation_after(spec_, 0), but run on the live
  // churn rng so subsequent epochs continue the replayable stream.
  churn_rng_ = Rng(spec_.seed ^ kChurnSalt);
  doc_of_rank_.resize(spec_.num_documents);
  for (std::uint64_t i = 0; i < spec_.num_documents; ++i) doc_of_rank_[i] = i;
  for (std::uint64_t i = spec_.num_documents - 1; i > 0; --i) {
    std::swap(doc_of_rank_[i], doc_of_rank_[churn_rng_.next_below(i + 1)]);
  }
  sessions_.assign(spec_.sessions.active, Session{});
  for (Session& session : sessions_) session.recent.reserve(spec_.sessions.window);
  pending_ = {};
  staged_.reset();
  now_ms_ = 0.0;
  emitted_ = 0;
  chunk_sequence_ = 0;
  churn_epochs_applied_ = 0;
  base_rate_ = static_cast<double>(spec_.num_requests) /
               static_cast<double>(spec_.span.count());
  rng_.reseed(spec_.seed);
}

void WorkloadSource::reset() { init_state(); }

void WorkloadSource::apply_churn_epochs(Duration now) {
  if (!spec_.churn.enabled()) return;
  const auto due = static_cast<std::uint64_t>(now.count() / spec_.churn.interval.count());
  const std::uint64_t hot = spec_.churn_hot_window();
  const auto swaps = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::llround(spec_.churn.fraction * static_cast<double>(hot))));
  while (churn_epochs_applied_ < due) {
    for (std::uint64_t s = 0; s < swaps; ++s) {
      const std::uint64_t i = churn_rng_.next_below(hot);
      const std::uint64_t j = churn_rng_.next_below(spec_.num_documents);
      std::swap(doc_of_rank_[i], doc_of_rank_[j]);
    }
    ++churn_epochs_applied_;
  }
}

Request WorkloadSource::pick_base(TimePoint at) {
  const Duration offset = at - kSimEpoch;

  // Every request — flash traffic included — is issued through a session,
  // so the user stream is one coherent population regardless of what the
  // document components do.
  Session& session = sessions_[rng_.next_below(sessions_.size())];
  if (!session.live || at >= session.expires) {
    session.user = static_cast<UserId>(user_sampler_.sample(rng_));
    const double lifetime_ms = rng_.next_exponential(
        1.0 / static_cast<double>(spec_.sessions.mean_lifetime.count()));
    session.expires = at + Duration{static_cast<SimClock::rep>(lifetime_ms) + 1};
    session.recent.clear();
    session.next_slot = 0;
    session.filled = 0;
    session.live = true;
  }

  Request request;
  request.at = at;
  request.user = session.user;

  const double flash = workload_flash_share(spec_, offset);
  if (flash > 0.0 && rng_.next_bool(flash)) {
    request.document = workload_flash_document();
    return request;  // flash hits bypass the session's document memory
  }

  DocumentId doc = 0;
  if (spec_.sessions.affinity > 0.0 && session.filled > 0 &&
      rng_.next_bool(spec_.sessions.affinity)) {
    doc = session.recent[rng_.next_below(session.filled)];
  } else {
    doc = doc_of_rank_[doc_sampler_.sample(rng_)];
  }
  if (session.recent.size() < spec_.sessions.window) {
    session.recent.push_back(doc);
  } else {
    session.recent[session.next_slot] = doc;
  }
  session.next_slot = (session.next_slot + 1) % spec_.sessions.window;
  session.filled = std::min(session.filled + 1, spec_.sessions.window);
  request.document = doc;
  return request;
}

void WorkloadSource::stage_base() {
  // Non-homogeneous Poisson via thinning: draw at the ceiling rate, accept
  // with probability rate(t)/ceiling. Collapses to plain exponential
  // inter-arrivals when the diurnal component is off.
  const double amplitude = spec_.diurnal.amplitude;
  const double ceiling = base_rate_ * (1.0 + amplitude);
  for (;;) {
    now_ms_ += rng_.next_exponential(ceiling);
    if (!spec_.diurnal.enabled()) break;
    const double phase_ms = static_cast<double>(spec_.diurnal.phase.count());
    const double period_ms = static_cast<double>(spec_.diurnal.period.count());
    const double rate =
        base_rate_ *
        (1.0 + amplitude * std::sin(2.0 * kPi * (now_ms_ - phase_ms) / period_ms));
    if (rng_.next_bool(rate / ceiling)) break;
  }
  const TimePoint at = kSimEpoch + Duration{static_cast<SimClock::rep>(now_ms_)};
  apply_churn_epochs(at - kSimEpoch);
  staged_ = pick_base(at);
}

bool WorkloadSource::next(Request& out) {
  if (emitted_ >= spec_.num_requests) return false;
  if (!staged_.has_value()) stage_base();

  if (!pending_.empty() && pending_.top().at <= staged_->at) {
    const PendingChunk chunk = pending_.top();
    pending_.pop();
    out.at = chunk.at;
    out.user = chunk.user;
    out.document = chunk.document;
    out.size = spec_.segments.chunk_bytes;
    ++emitted_;
    return true;
  }

  const Request base = *staged_;
  staged_.reset();
  if (!is_flash_document(base.document) &&
      workload_document_segmented(spec_, base.document)) {
    const std::uint32_t chunks = chunk_count(spec_, base.document);
    out.at = base.at;
    out.user = base.user;
    out.document = workload_chunk_document(base.document, 0);
    out.size = spec_.segments.chunk_bytes;
    if (pending_.size() + chunks < kMaxPendingChunks) {
      for (std::uint32_t k = 1; k < chunks; ++k) {
        PendingChunk chunk;
        chunk.at = base.at + spec_.segments.gap * static_cast<SimClock::rep>(k);
        chunk.document = workload_chunk_document(base.document, k);
        chunk.user = base.user;
        chunk.sequence = chunk_sequence_++;
        pending_.push(chunk);
      }
    }
  } else {
    out = base;
    out.size = workload_document_size(spec_, base.document);
  }
  ++emitted_;
  return true;
}

Trace generate_workload_trace(const WorkloadSpec& spec) {
  WorkloadSource source(spec);
  return materialize(source);
}

// ---- Spec text format ----------------------------------------------------

namespace {

struct ParseErrors {
  std::vector<std::string> messages;

  void add(const std::string& message) { messages.push_back(message); }
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = parsed;
  return true;
}

bool parse_f64(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  out = parsed;
  return true;
}

/// "1500ms", "90s", "15m", "24h", "3d"; a bare number means milliseconds.
bool parse_duration(const std::string& text, Duration& out) {
  if (text.empty()) return false;
  std::size_t suffix = text.size();
  while (suffix > 0 && !(std::isdigit(static_cast<unsigned char>(text[suffix - 1])) != 0 ||
                         text[suffix - 1] == '.')) {
    --suffix;
  }
  double value = 0.0;
  if (!parse_f64(text.substr(0, suffix), value)) return false;
  const std::string unit = text.substr(suffix);
  double factor = 1.0;
  if (unit.empty() || unit == "ms") {
    factor = 1.0;
  } else if (unit == "s") {
    factor = 1000.0;
  } else if (unit == "m") {
    factor = 60.0 * 1000.0;
  } else if (unit == "h") {
    factor = 3600.0 * 1000.0;
  } else if (unit == "d") {
    factor = 24.0 * 3600.0 * 1000.0;
  } else {
    return false;
  }
  out = Duration{static_cast<SimClock::rep>(std::llround(value * factor))};
  return true;
}

/// "4096", "64KiB", "8MiB", "1GiB".
bool parse_bytes(const std::string& text, Bytes& out) {
  std::size_t suffix = text.size();
  while (suffix > 0 && std::isdigit(static_cast<unsigned char>(text[suffix - 1])) == 0) {
    --suffix;
  }
  std::uint64_t value = 0;
  if (!parse_u64(text.substr(0, suffix), value)) return false;
  const std::string unit = text.substr(suffix);
  if (unit.empty() || unit == "B") {
    out = value;
  } else if (unit == "KiB") {
    out = value * kKiB;
  } else if (unit == "MiB") {
    out = value * kMiB;
  } else if (unit == "GiB") {
    out = value * kGiB;
  } else {
    return false;
  }
  return true;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return std::string(text.substr(begin, end - begin));
}

using Setter = std::function<bool(WorkloadSpec&, const std::string&)>;

struct KeySpec {
  const char* key;
  Setter set;  // false = malformed value
};

#define EACACHE_WL_U64(field) \
  [](WorkloadSpec& s, const std::string& v) { return parse_u64(v, s.field); }
#define EACACHE_WL_U32(field)                              \
  [](WorkloadSpec& s, const std::string& v) {              \
    std::uint64_t parsed = 0;                              \
    if (!parse_u64(v, parsed) || parsed > 0xffffffffULL) { \
      return false;                                        \
    }                                                      \
    s.field = static_cast<std::uint32_t>(parsed);          \
    return true;                                           \
  }
#define EACACHE_WL_F64(field) \
  [](WorkloadSpec& s, const std::string& v) { return parse_f64(v, s.field); }
#define EACACHE_WL_DUR(field) \
  [](WorkloadSpec& s, const std::string& v) { return parse_duration(v, s.field); }
#define EACACHE_WL_BYTES(field) \
  [](WorkloadSpec& s, const std::string& v) { return parse_bytes(v, s.field); }

const KeySpec kKeys[] = {
    {"name", [](WorkloadSpec& s, const std::string& v) {
       s.name = v;
       return !v.empty();
     }},
    {"seed", EACACHE_WL_U64(seed)},
    {"requests", EACACHE_WL_U64(num_requests)},
    {"documents", EACACHE_WL_U64(num_documents)},
    {"users", EACACHE_WL_U64(num_users)},
    {"span", EACACHE_WL_DUR(span)},
    {"zipf.alpha", EACACHE_WL_F64(zipf_alpha)},
    {"user.alpha", EACACHE_WL_F64(user_alpha)},
    {"size.mean", EACACHE_WL_BYTES(size.mean_size)},
    {"size.sigma", EACACHE_WL_F64(size.sigma)},
    {"size.pareto_probability", EACACHE_WL_F64(size.pareto_probability)},
    {"size.pareto_scale", EACACHE_WL_BYTES(size.pareto_scale)},
    {"size.pareto_alpha", EACACHE_WL_F64(size.pareto_alpha)},
    {"size.min", EACACHE_WL_BYTES(size.min_size)},
    {"size.max", EACACHE_WL_BYTES(size.max_size)},
    {"diurnal.amplitude", EACACHE_WL_F64(diurnal.amplitude)},
    {"diurnal.period", EACACHE_WL_DUR(diurnal.period)},
    {"diurnal.phase", EACACHE_WL_DUR(diurnal.phase)},
    {"churn.interval", EACACHE_WL_DUR(churn.interval)},
    {"churn.fraction", EACACHE_WL_F64(churn.fraction)},
    {"churn.hot_window", EACACHE_WL_U64(churn.hot_window)},
    {"flash.peak", EACACHE_WL_F64(flash.peak)},
    {"flash.start", EACACHE_WL_DUR(flash.start)},
    {"flash.ramp", EACACHE_WL_DUR(flash.ramp)},
    {"flash.hold", EACACHE_WL_DUR(flash.hold)},
    {"segments.fraction", EACACHE_WL_F64(segments.fraction)},
    {"segments.chunk_bytes", EACACHE_WL_BYTES(segments.chunk_bytes)},
    {"segments.min_chunks", EACACHE_WL_U32(segments.min_chunks)},
    {"segments.max_chunks", EACACHE_WL_U32(segments.max_chunks)},
    {"segments.gap", EACACHE_WL_DUR(segments.gap)},
    {"sessions.affinity", EACACHE_WL_F64(sessions.affinity)},
    {"sessions.window", EACACHE_WL_U32(sessions.window)},
    {"sessions.active", EACACHE_WL_U32(sessions.active)},
    {"sessions.mean_lifetime", EACACHE_WL_DUR(sessions.mean_lifetime)},
};

#undef EACACHE_WL_U64
#undef EACACHE_WL_U32
#undef EACACHE_WL_F64
#undef EACACHE_WL_DUR
#undef EACACHE_WL_BYTES

}  // namespace

WorkloadSpec parse_workload_spec(std::string_view text) {
  WorkloadSpec spec;
  ParseErrors errors;

  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find_first_of(";\n", begin);
    if (end == std::string_view::npos) end = text.size();
    std::string entry(text.substr(begin, end - begin));
    begin = end + 1;

    if (const std::size_t hash = entry.find('#'); hash != std::string::npos) {
      entry.erase(hash);
    }
    entry = trim(entry);
    if (entry.empty()) {
      if (end == text.size()) break;
      continue;
    }

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      errors.add("missing '=' in \"" + entry + "\"");
      if (end == text.size()) break;
      continue;
    }
    const std::string key = trim(std::string_view(entry).substr(0, eq));
    const std::string value = trim(std::string_view(entry).substr(eq + 1));

    const KeySpec* found = nullptr;
    for (const KeySpec& candidate : kKeys) {
      if (key == candidate.key) {
        found = &candidate;
        break;
      }
    }
    if (found == nullptr) {
      errors.add("unknown key \"" + key + "\"");
    } else if (!found->set(spec, value)) {
      errors.add("bad value for \"" + key + "\": \"" + value + "\"");
    }
    if (end == text.size()) break;
  }

  if (!errors.messages.empty()) {
    std::string joined = "parse_workload_spec: ";
    for (std::size_t i = 0; i < errors.messages.size(); ++i) {
      if (i > 0) joined += "; ";
      joined += errors.messages[i];
    }
    throw std::invalid_argument(joined);
  }
  return spec;
}

namespace {

std::string render_f64(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Trim the representation when a short one round-trips exactly — keeps
  // canonical strings human-readable ("0.75", not "0.75000000000000000").
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    if (std::strtod(probe, nullptr) == value) return probe;
  }
  return buffer;
}

std::string render_duration(Duration d) {
  return std::to_string(d.count()) + "ms";
}

}  // namespace

std::string format_workload_spec(const WorkloadSpec& spec) {
  std::string out;
  const auto field = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  };
  field("name", spec.name);
  field("seed", std::to_string(spec.seed));
  field("requests", std::to_string(spec.num_requests));
  field("documents", std::to_string(spec.num_documents));
  field("users", std::to_string(spec.num_users));
  field("span", render_duration(spec.span));
  field("zipf.alpha", render_f64(spec.zipf_alpha));
  field("user.alpha", render_f64(spec.user_alpha));
  field("size.mean", std::to_string(spec.size.mean_size));
  field("size.sigma", render_f64(spec.size.sigma));
  field("size.pareto_probability", render_f64(spec.size.pareto_probability));
  field("size.pareto_scale", std::to_string(spec.size.pareto_scale));
  field("size.pareto_alpha", render_f64(spec.size.pareto_alpha));
  field("size.min", std::to_string(spec.size.min_size));
  field("size.max", std::to_string(spec.size.max_size));
  field("diurnal.amplitude", render_f64(spec.diurnal.amplitude));
  field("diurnal.period", render_duration(spec.diurnal.period));
  field("diurnal.phase", render_duration(spec.diurnal.phase));
  field("churn.interval", render_duration(spec.churn.interval));
  field("churn.fraction", render_f64(spec.churn.fraction));
  field("churn.hot_window", std::to_string(spec.churn.hot_window));
  field("flash.peak", render_f64(spec.flash.peak));
  field("flash.start", render_duration(spec.flash.start));
  field("flash.ramp", render_duration(spec.flash.ramp));
  field("flash.hold", render_duration(spec.flash.hold));
  field("segments.fraction", render_f64(spec.segments.fraction));
  field("segments.chunk_bytes", std::to_string(spec.segments.chunk_bytes));
  field("segments.min_chunks", std::to_string(spec.segments.min_chunks));
  field("segments.max_chunks", std::to_string(spec.segments.max_chunks));
  field("segments.gap", render_duration(spec.segments.gap));
  field("sessions.affinity", render_f64(spec.sessions.affinity));
  field("sessions.window", std::to_string(spec.sessions.window));
  field("sessions.active", std::to_string(spec.sessions.active));
  field("sessions.mean_lifetime", render_duration(spec.sessions.mean_lifetime));
  return out;
}

}  // namespace eacache
