// Streaming trace delivery: the pull-based counterpart of the Trace vector.
//
// A 100M-request workload must never materialize in memory, so generators
// and parsers expose a TraceSource — a pull iterator over requests with a
// three-clause contract every implementation (and the contract test in
// tests/trace/trace_source_test.cpp) is held to:
//
//   1. exactly-once  — each request of the underlying stream is delivered
//      by exactly one successful next() call; after next() returns false it
//      keeps returning false until reset().
//   2. monotone time — timestamps are non-decreasing across successive
//      next() calls (the simulator's event loop and the daemon load
//      generator both require time-ordered input).
//   3. bounded state — memory held by the source is a function of the
//      workload's *universe* (documents, sessions, pending chunk trains),
//      never of how many requests have been pulled. The contract test pins
//      this with an allocation-counting fixture.
//
// The existing Trace-vector path stays as an adapter for small runs:
// materialize() collects a (bounded) prefix into a Trace, and
// VectorTraceSource replays an existing Trace through the streaming
// interface so parsers and vectors plug into the same consumers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "trace/trace.h"

namespace eacache {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Pull the next request into `out`. Returns false at end of stream (and
  /// keeps returning false; `out` is untouched in that case).
  virtual bool next(Request& out) = 0;

  /// Rewind to the beginning: the source replays the identical sequence
  /// (all sources here are pure functions of their construction inputs).
  virtual void reset() = 0;
};

/// Streaming view of an existing Trace. Non-owning: the trace must outlive
/// the source.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(const Trace& trace) : trace_(&trace) {}

  bool next(Request& out) override {
    if (index_ >= trace_->requests.size()) return false;
    out = trace_->requests[index_++];
    return true;
  }

  void reset() override { index_ = 0; }

 private:
  const Trace* trace_;
  std::size_t index_ = 0;
};

/// Collect up to `limit` requests into a Trace — the small-run adapter.
/// Throws std::invalid_argument if the source violates the monotone-time
/// clause while collecting.
[[nodiscard]] Trace materialize(TraceSource& source,
                                std::uint64_t limit = std::numeric_limits<std::uint64_t>::max());

}  // namespace eacache
