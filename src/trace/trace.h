// Request traces: the workload substrate.
//
// The paper replays the Boston University proxy traces (Nov 1994 - Feb
// 1995): 575,775 requests, 46,830 unique documents, 591 users, zero-size log
// records coerced to the 4 KB average document size. Those traces are not
// distributable with this repository, so the workload layer provides both
//  * a parser for BU-style condensed logs (trace/bu_parser.h), and
//  * a synthetic generator calibrated to the published statistics of those
//    traces (trace/synthetic.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace eacache {

struct Request {
  TimePoint at{};
  UserId user = 0;
  DocumentId document = 0;
  Bytes size = 0;
};

struct Trace {
  std::vector<Request> requests;

  [[nodiscard]] bool empty() const { return requests.empty(); }
  [[nodiscard]] std::size_t size() const { return requests.size(); }
};

/// Aggregate statistics of a trace (mirrors the numbers the paper reports
/// about the BU traces in section 4.1).
struct TraceStats {
  std::uint64_t total_requests = 0;
  std::uint64_t unique_documents = 0;
  std::uint64_t unique_users = 0;
  Bytes total_bytes = 0;          // sum of request sizes
  Bytes unique_bytes = 0;         // sum of distinct document sizes
  TimePoint first_request{};
  TimePoint last_request{};

  [[nodiscard]] Duration span() const { return last_request - first_request; }
};

[[nodiscard]] TraceStats compute_stats(std::span<const Request> requests);

/// True if requests are sorted by (time, then stable original order is not
/// required — ties allowed in any order).
[[nodiscard]] bool is_time_ordered(std::span<const Request> requests);

/// Stable-sort a trace by timestamp (parsers may read unordered logs).
void sort_by_time(Trace& trace);

}  // namespace eacache
