#include "trace/bu_parser.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/hash.h"

namespace eacache {

namespace {

bool parse_line(std::string_view line, const BuParseOptions& options, Request& out,
                bool& coerced) {
  std::istringstream fields{std::string(line)};
  std::string ts_token, user_token, url_token, size_token;
  if (!(fields >> ts_token >> user_token >> url_token >> size_token)) return false;

  char* end = nullptr;
  const double ts_seconds = std::strtod(ts_token.c_str(), &end);
  if (end != ts_token.c_str() + ts_token.size() || !std::isfinite(ts_seconds) ||
      ts_seconds < 0.0) {
    return false;
  }

  const long long size_val = std::strtoll(size_token.c_str(), &end, 10);
  if (end != size_token.c_str() + size_token.size() || size_val < 0) return false;

  // llround, not truncation: "1234.567" must come back as exactly
  // 1234567 ms even when the decimal is not representable in binary.
  out.at = kSimEpoch + Duration{std::llround(ts_seconds * 1000.0)};
  out.user = static_cast<UserId>(fnv1a64(user_token) & 0xffffffffu);
  out.document = fnv1a64(url_token);
  coerced = size_val == 0;
  out.size = coerced ? options.default_size : static_cast<Bytes>(size_val);
  return true;
}

}  // namespace

BuParseResult parse_bu_log(std::istream& in, const BuParseOptions& options) {
  BuParseResult result;
  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_read;
    const std::string_view view{line};
    const auto first_non_space = view.find_first_not_of(" \t\r");
    if (first_non_space == std::string_view::npos || view[first_non_space] == '#') {
      ++result.lines_skipped;
      continue;
    }
    Request request;
    bool coerced = false;
    if (!parse_line(view, options, request, coerced)) {
      ++result.lines_skipped;
      continue;
    }
    if (coerced) ++result.zero_sizes_coerced;
    result.trace.requests.push_back(request);
  }

  sort_by_time(result.trace);
  if (options.normalize_time && !result.trace.empty()) {
    const Duration shift = result.trace.requests.front().at - kSimEpoch;
    for (Request& r : result.trace.requests) r.at -= shift;
  }
  return result;
}

BuParseResult parse_bu_log_file(const std::string& path, const BuParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_bu_log_file: cannot open " + path);
  return parse_bu_log(in, options);
}

BuLogSource::BuLogSource(std::istream& in, const BuParseOptions& options)
    : in_(&in), options_(options) {}

bool BuLogSource::next(Request& out) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lines_read_;
    const std::string_view view{line};
    const auto first_non_space = view.find_first_not_of(" \t\r");
    if (first_non_space == std::string_view::npos || view[first_non_space] == '#') {
      ++lines_skipped_;
      continue;
    }
    Request request;
    bool coerced = false;
    if (!parse_line(view, options_, request, coerced)) {
      ++lines_skipped_;
      continue;
    }
    if (coerced) ++zero_sizes_coerced_;
    if (!started_) {
      if (options_.normalize_time) shift_ = request.at - kSimEpoch;
      started_ = true;
    }
    request.at -= shift_;
    if (request.at < last_) {
      request.at = last_;  // clamp: streaming cannot sort (see header)
      ++clamped_timestamps_;
    }
    last_ = request.at;
    out = request;
    return true;
  }
  return false;
}

void BuLogSource::reset() {
  in_->clear();
  in_->seekg(0);
  shift_ = Duration::zero();
  last_ = kSimEpoch;
  started_ = false;
  lines_read_ = 0;
  lines_skipped_ = 0;
  zero_sizes_coerced_ = 0;
  clamped_timestamps_ = 0;
}

}  // namespace eacache
