// Synthetic workload generator calibrated to the Boston University traces.
//
// The paper's evaluation replays BU proxy logs whose aggregate statistics it
// reports (section 4.1): 575,775 requests over 46,830 unique documents from
// 591 users, average document size 4 KB, collected over ~3.5 months. Those
// logs are not redistributable, so we synthesize workloads with the same
// shape:
//
//  * document popularity: Zipf with configurable exponent. Cunha, Bestavros
//    & Crovella measured alpha ~ 0.7-0.8 for these very traces, so 0.75 is
//    the default.
//  * document sizes: log-normal body with a Pareto tail (the standard web
//    size model from the same BU measurement papers), mean ~4 KB, sampled
//    once per document so every request for a document agrees on its size.
//  * request arrivals: a homogeneous Poisson process over the configured
//    span (exponential inter-arrivals), which yields time-ordered requests
//    by construction.
//  * users: request issuers drawn Zipf-distributed over the user population
//    (client activity is itself heavy-tailed); each user is later pinned to
//    one proxy by the group layer, as in a departmental deployment.
//  * optional temporal locality: with probability `repeat_probability` a
//    request re-references a document from the recent-past window instead
//    of sampling the stationary distribution, adding the burstiness real
//    logs exhibit.
//
// Determinism: the generator is a pure function of its config (seed
// included). Document sizes derive from per-document hashes, not draw
// order.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "trace/trace.h"

namespace eacache {

struct SyntheticTraceConfig {
  std::uint64_t seed = 42;

  // Scaled-down defaults: ~1/4 of the BU trace keeps unit-test and bench
  // runtimes pleasant while preserving every distributional knob. The
  // bu_calibrated() preset below restores the full published sizes.
  std::uint64_t num_requests = 150'000;
  std::uint64_t num_documents = 12'000;
  std::uint32_t num_users = 160;
  Duration span = hours(24 * 30);  // 30 days

  double zipf_alpha = 0.75;        // document popularity exponent
  double user_alpha = 0.8;         // user activity exponent

  // Size model: log-normal (mean ~4 KB) with a Pareto tail.
  Bytes mean_size = 4 * kKiB;
  double size_sigma = 1.0;         // log-normal shape
  double pareto_tail_probability = 0.01;
  Bytes pareto_scale = 32 * kKiB;  // tail starts here
  double pareto_alpha = 1.5;
  Bytes min_size = 64;
  Bytes max_size = 8 * kMiB;

  // Temporal locality (0 disables).
  double repeat_probability = 0.0;
  std::uint32_t repeat_window = 256;  // draw repeats from the last N requests

  /// Full-scale preset matching the published BU trace statistics.
  [[nodiscard]] static SyntheticTraceConfig bu_calibrated();
};

[[nodiscard]] Trace generate_synthetic_trace(const SyntheticTraceConfig& config);

/// The body size of document `doc_index` under `config` — exposed so tests
/// can verify per-document size stability.
[[nodiscard]] Bytes synthetic_document_size(const SyntheticTraceConfig& config,
                                            std::uint64_t doc_index);

/// The generator's rank -> document permutation (element r is the document
/// occupying popularity rank r). Exposed so statistical tests can count
/// observed references by KNOWN rank — an unbiased chi-squared fit, instead
/// of sorting observed counts. Deterministic in config.seed; the generator
/// itself uses exactly this permutation.
[[nodiscard]] std::vector<std::uint64_t> synthetic_rank_order(
    const SyntheticTraceConfig& config);

}  // namespace eacache
