// Workload characterization.
//
// Trace-driven caching papers live and die by their workload's shape; this
// module computes the standard characterization of a request stream:
//
//  * aggregate counts (requests, uniques, one-timers — documents requested
//    exactly once can never produce a hit);
//  * a Zipf exponent estimate (least-squares slope of log(frequency) vs
//    log(rank), the method Cunha/Breslau et al. used on the BU traces);
//  * size statistics;
//  * the EXACT infinite-stack LRU hit curve via Mattson's stack-distance
//    algorithm (Mattson, Gecsei, Slutz & Traiger, IBM Sys. J. 1970): one
//    O(n log n) pass yields, for every cache size C in documents, the hit
//    rate an LRU cache of that size would achieve on this trace —
//    simulation-free ground truth used to cross-validate both the
//    simulator and the Che model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace eacache {

struct TraceProfile {
  std::uint64_t total_requests = 0;
  std::uint64_t unique_documents = 0;
  std::uint64_t one_timers = 0;          // documents with exactly one request
  double one_timer_fraction = 0.0;       // of unique documents
  double compulsory_miss_fraction = 0.0; // uniques / requests
  double zipf_alpha = 0.0;               // least-squares fit; 0 if degenerate
  Bytes mean_size = 0;
  Bytes median_size = 0;
  Bytes max_size = 0;
};

[[nodiscard]] TraceProfile profile_trace(std::span<const Request> requests);

/// Histogram of LRU stack distances: distances[d] = number of requests whose
/// reuse distance is exactly d (1 = re-reference of the most recent distinct
/// document). Cold (first-ever) references are counted in `cold`.
struct StackDistanceHistogram {
  std::vector<std::uint64_t> distances;  // index 0 unused; 1-based distances
  std::uint64_t cold = 0;
  std::uint64_t total = 0;

  /// Exact LRU hit rate for a cache of `capacity_docs` unit-size slots:
  /// the fraction of requests with stack distance <= capacity.
  [[nodiscard]] double hit_rate_at(std::uint64_t capacity_docs) const;
};

/// Mattson's algorithm, O(n log n) via a Fenwick tree.
[[nodiscard]] StackDistanceHistogram compute_stack_distances(
    std::span<const Request> requests);

}  // namespace eacache
