#include "trace/workload_stats.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/zipf.h"
#include "trace/workload.h"

namespace eacache {

double chi_squared_critical(std::uint64_t dof, double p) {
  if (dof == 0) return 0.0;
  // Standard-normal upper quantiles for the supported levels.
  double z = 0.0;
  if (p == 0.95) {
    z = 1.6448536269514722;
  } else if (p == 0.99) {
    z = 2.3263478740408408;
  } else if (p == 0.999) {
    z = 3.0902323061678132;
  } else {
    throw std::invalid_argument("chi_squared_critical: p must be 0.95, 0.99 or 0.999");
  }
  // Wilson-Hilferty: chi2_p ~= dof * (1 - 2/(9 dof) + z sqrt(2/(9 dof)))^3.
  const double k = static_cast<double>(dof);
  const double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

ZipfFit zipf_chi_squared(const std::vector<std::uint64_t>& rank_counts, double alpha,
                         std::uint64_t universe, double p) {
  ZipfFit fit;
  if (rank_counts.empty()) return fit;

  const ZipfSampler law(universe, alpha);
  // Condition on the covered ranks: expected share of rank r within the top
  // R is pmf(r) / sum_{q<R} pmf(q).
  std::vector<double> pmf(rank_counts.size());
  double pmf_total = 0.0;
  for (std::size_t r = 0; r < rank_counts.size(); ++r) {
    pmf[r] = law.pmf(r);  // rank 0 = most popular
    pmf_total += pmf[r];
  }

  std::uint64_t total = 0;
  for (const std::uint64_t count : rank_counts) total += count;
  if (total == 0 || pmf_total <= 0.0) return fit;

  // Drop tail ranks whose expected count falls below 5 (the classical
  // validity floor). Expected counts decrease with rank, so a prefix scan
  // suffices; renormalize within the kept prefix.
  std::size_t keep = rank_counts.size();
  while (keep > 1) {
    const double expected =
        static_cast<double>(total) * pmf[keep - 1] / pmf_total;
    if (expected >= 5.0) break;
    --keep;
  }
  double kept_pmf = 0.0;
  std::uint64_t kept_total = 0;
  for (std::size_t r = 0; r < keep; ++r) {
    kept_pmf += pmf[r];
    kept_total += rank_counts[r];
  }
  if (keep < 2 || kept_total == 0) return fit;

  double chi = 0.0;
  for (std::size_t r = 0; r < keep; ++r) {
    const double expected = static_cast<double>(kept_total) * pmf[r] / kept_pmf;
    const double delta = static_cast<double>(rank_counts[r]) - expected;
    chi += delta * delta / expected;
  }

  fit.chi_squared = chi;
  fit.dof = keep - 1;
  fit.ranks_used = keep;
  fit.total = kept_total;
  fit.critical = chi_squared_critical(fit.dof, p);
  fit.accepted = chi <= fit.critical;
  return fit;
}

std::vector<std::uint64_t> count_by_rank(const Trace& trace,
                                         const std::vector<DocumentId>& doc_of_rank,
                                         std::uint64_t top) {
  const std::uint64_t limit = std::min<std::uint64_t>(top, doc_of_rank.size());
  std::unordered_map<DocumentId, std::uint64_t> rank_of_doc;
  rank_of_doc.reserve(limit);
  for (std::uint64_t r = 0; r < limit; ++r) rank_of_doc.emplace(doc_of_rank[r], r);

  std::vector<std::uint64_t> counts(limit, 0);
  for (const Request& request : trace.requests) {
    DocumentId id = request.document;
    if (is_flash_document(id)) continue;
    if (is_chunk_document(id)) id = chunk_base_document(id);
    const auto it = rank_of_doc.find(id);
    if (it != rank_of_doc.end()) ++counts[it->second];
  }
  return counts;
}

double spike_mass(const Trace& trace, DocumentId document, TimePoint from, TimePoint to) {
  std::uint64_t window = 0;
  std::uint64_t hits = 0;
  for (const Request& request : trace.requests) {
    if (request.at < from || request.at >= to) continue;
    ++window;
    DocumentId id = request.document;
    if (is_chunk_document(id)) id = chunk_base_document(id);
    if (id == document) ++hits;
  }
  if (window == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(window);
}

double session_affinity_ratio(const Trace& trace, std::uint32_t window) {
  struct History {
    std::vector<DocumentId> recent;
    std::uint32_t next_slot = 0;
  };
  std::unordered_map<UserId, History> users;
  std::uint64_t considered = 0;
  std::uint64_t repeats = 0;
  for (const Request& request : trace.requests) {
    History& history = users[request.user];
    if (!history.recent.empty()) {
      ++considered;
      for (const DocumentId seen : history.recent) {
        if (seen == request.document) {
          ++repeats;
          break;
        }
      }
    }
    if (history.recent.size() < window) {
      history.recent.push_back(request.document);
      history.next_slot = static_cast<std::uint32_t>(history.recent.size()) % window;
    } else {
      history.recent[history.next_slot] = request.document;
      history.next_slot = (history.next_slot + 1) % window;
    }
  }
  if (considered == 0) return 0.0;
  return static_cast<double>(repeats) / static_cast<double>(considered);
}

double hot_set_overlap(const std::vector<DocumentId>& a, const std::vector<DocumentId>& b) {
  if (a.empty()) return 0.0;
  const std::unordered_set<DocumentId> in_b(b.begin(), b.end());
  std::uint64_t shared = 0;
  for (const DocumentId id : a) {
    if (in_b.count(id) != 0) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(a.size());
}

StreamProfile profile_stream(TraceSource& source) {
  StreamProfile profile;
  std::unordered_set<DocumentId> distinct;
  Request request;
  TimePoint last{};
  while (source.next(request)) {
    if (profile.requests == 0) {
      profile.first = request.at;
    } else if (request.at < last) {
      profile.monotone = false;
    }
    last = request.at;
    profile.last = request.at;
    ++profile.requests;
    profile.total_bytes += request.size;
    if (is_chunk_document(request.document)) ++profile.chunk_requests;
    if (is_flash_document(request.document)) ++profile.flash_requests;
    distinct.insert(request.document);
  }
  profile.distinct_documents = distinct.size();
  return profile;
}

}  // namespace eacache
