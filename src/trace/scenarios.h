// The shipped workload scenario packs (DESIGN.md §15).
//
// A ScenarioPack binds a named WorkloadSpec to the statistical test that
// validates it — project_lint rule 9 enforces that every registered pack
// names a real TEST(Suite, Test) in tests/**, so a scenario cannot ship
// without its validation. bench_workload_characterization enumerates these
// packs and emits one result-JSON row per scenario.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trace/workload.h"

namespace eacache {

struct ScenarioPack {
  std::string name;             // stable identifier (also the spec's name)
  std::string summary;          // one line for bench/doc output
  std::string validation_test;  // "Suite.Test" in tests/** (lint rule 9)
  WorkloadSpec spec;
};

/// All registered packs, in a stable order. Every spec validates clean.
[[nodiscard]] const std::vector<ScenarioPack>& workload_scenarios();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const ScenarioPack* find_scenario(std::string_view name);

/// The pack's spec rescaled to `requests` total emissions. The span (and so
/// every absolute time offset: flash window, churn schedule) is untouched —
/// only the arrival rate changes — so scaled runs stay statistically
/// comparable.
[[nodiscard]] WorkloadSpec scaled_spec(const ScenarioPack& pack, std::uint64_t requests);

}  // namespace eacache
