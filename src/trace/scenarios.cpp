#include "trace/scenarios.h"

#include <stdexcept>

namespace eacache {

namespace {

// Registration style note: every pack is built as a sequence of
// `pack.name = ...;` ... `pack.validation_test = ...;` statements —
// project_lint rule 9 pairs those assignments textually to check that each
// scenario names an existing test.
std::vector<ScenarioPack> build_scenarios() {
  std::vector<ScenarioPack> packs;

  {
    ScenarioPack pack;
    pack.name = "stationary";
    pack.summary =
        "Paper-style stationary core: Zipf(0.75) documents, log-normal+Pareto "
        "sizes, homogeneous Poisson arrivals";
    pack.validation_test = "WorkloadStatsTest.StationaryZipfFitMatchesAlpha";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 160;
    pack.spec.span = hours(24);
    pack.spec.zipf_alpha = 0.75;
    packs.push_back(std::move(pack));
  }

  {
    ScenarioPack pack;
    pack.name = "flash-crowd";
    pack.summary =
        "One document ramps to 30% of all traffic for a 30-minute window at "
        "hour 8";
    pack.validation_test = "WorkloadStatsTest.FlashCrowdSpikeMassMatchesPeak";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 160;
    pack.spec.span = hours(24);
    pack.spec.flash.peak = 0.30;
    pack.spec.flash.start = hours(8);
    pack.spec.flash.ramp = minutes(5);
    pack.spec.flash.hold = minutes(30);
    packs.push_back(std::move(pack));
  }

  {
    ScenarioPack pack;
    pack.name = "hot-set-drift";
    pack.summary =
        "Popularity churn: every 30 minutes a quarter of the hot window swaps "
        "with the cold universe";
    pack.validation_test = "WorkloadStatsTest.HotSetDriftFollowsChurnSchedule";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 160;
    pack.spec.span = hours(24);
    pack.spec.churn.interval = minutes(30);
    pack.spec.churn.fraction = 0.25;
    packs.push_back(std::move(pack));
  }

  {
    ScenarioPack pack;
    pack.name = "segmented-media";
    pack.summary =
        "5% of documents are large segmented objects emitting 4-16 chunk "
        "trains of 256 KiB chunks";
    pack.validation_test = "WorkloadDslTest.SegmentedMediaChunkTrains";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 160;
    pack.spec.span = hours(24);
    pack.spec.segments.fraction = 0.05;
    pack.spec.segments.chunk_bytes = 256 * kKiB;
    pack.spec.segments.min_chunks = 4;
    pack.spec.segments.max_chunks = 16;
    pack.spec.segments.gap = msec(200);
    packs.push_back(std::move(pack));
  }

  {
    ScenarioPack pack;
    pack.name = "metro-users";
    pack.summary =
        "Metro-scale population: 2M users through 512 live sessions with 35% "
        "affinity, diurnal rate curve";
    pack.validation_test = "WorkloadStatsTest.MetroUsersSessionAffinity";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 2'000'000;
    pack.spec.span = hours(24);
    pack.spec.sessions.affinity = 0.35;
    pack.spec.sessions.window = 8;
    // 512 live sessions x 20-minute lifetimes gives each session a handful
    // of requests at this scale, so the affinity signal is measurable (the
    // re-reference coin only fires once a session has history).
    pack.spec.sessions.active = 512;
    pack.spec.sessions.mean_lifetime = minutes(20);
    pack.spec.diurnal.amplitude = 0.6;
    packs.push_back(std::move(pack));
  }

  {
    ScenarioPack pack;
    pack.name = "flash-crowd-outage";
    pack.summary =
        "flash-crowd plus a peer outage landing mid-plateau (compose with "
        "flash_crowd_outage_plan)";
    pack.validation_test = "WorkloadFaultsTest.OutageLandsMidFlashCrowd";
    pack.spec.name = pack.name;
    pack.spec.num_requests = 150'000;
    pack.spec.num_documents = 12'000;
    pack.spec.num_users = 160;
    pack.spec.span = hours(24);
    pack.spec.flash.peak = 0.30;
    pack.spec.flash.start = hours(8);
    pack.spec.flash.ramp = minutes(5);
    pack.spec.flash.hold = minutes(30);
    packs.push_back(std::move(pack));
  }

  for (const ScenarioPack& pack : packs) {
    if (!pack.spec.validate().empty()) {
      throw std::logic_error("shipped scenario fails validation: " + pack.name);
    }
  }
  return packs;
}

}  // namespace

const std::vector<ScenarioPack>& workload_scenarios() {
  static const std::vector<ScenarioPack> packs = build_scenarios();
  return packs;
}

const ScenarioPack* find_scenario(std::string_view name) {
  for (const ScenarioPack& pack : workload_scenarios()) {
    if (pack.name == name) return &pack;
  }
  return nullptr;
}

WorkloadSpec scaled_spec(const ScenarioPack& pack, std::uint64_t requests) {
  WorkloadSpec spec = pack.spec;
  spec.num_requests = requests;
  return spec;
}

}  // namespace eacache
