#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/zipf.h"

namespace eacache {

SyntheticTraceConfig SyntheticTraceConfig::bu_calibrated() {
  SyntheticTraceConfig config;
  config.num_requests = 575'775;
  config.num_documents = 46'830;
  config.num_users = 591;
  config.span = hours(24 * 105);  // mid-November to end of February
  return config;
}

Bytes synthetic_document_size(const SyntheticTraceConfig& config, std::uint64_t doc_index) {
  // Per-document deterministic stream: independent of request order.
  Rng rng(hash_combine(config.seed ^ 0x5157a11c0ffee5ULL, doc_index));
  double size = 0.0;
  if (rng.next_bool(config.pareto_tail_probability)) {
    size = rng.next_pareto(static_cast<double>(config.pareto_scale), config.pareto_alpha);
  } else {
    // Choose mu so the log-normal body alone has the configured mean:
    // E[X] = exp(mu + sigma^2/2).
    const double mu = std::log(static_cast<double>(config.mean_size)) -
                      config.size_sigma * config.size_sigma / 2.0;
    size = rng.next_lognormal(mu, config.size_sigma);
  }
  const auto clamped =
      std::clamp(size, static_cast<double>(config.min_size), static_cast<double>(config.max_size));
  return static_cast<Bytes>(clamped);
}

std::vector<std::uint64_t> synthetic_rank_order(const SyntheticTraceConfig& config) {
  // Replays the permutation phase of generate_synthetic_trace: same seed,
  // same draws, so the returned mapping is exactly the one the generator
  // sampled through (pinned by SyntheticStatsTest).
  Rng rng(config.seed);
  std::vector<std::uint64_t> doc_of_rank(config.num_documents);
  for (std::uint64_t i = 0; i < config.num_documents; ++i) doc_of_rank[i] = i;
  for (std::uint64_t i = config.num_documents - 1; i > 0; --i) {
    std::swap(doc_of_rank[i], doc_of_rank[rng.next_below(i + 1)]);
  }
  return doc_of_rank;
}

Trace generate_synthetic_trace(const SyntheticTraceConfig& config) {
  if (config.num_requests == 0) return Trace{};
  if (config.num_documents == 0) {
    throw std::invalid_argument("generate_synthetic_trace: need at least one document");
  }
  if (config.num_users == 0) {
    throw std::invalid_argument("generate_synthetic_trace: need at least one user");
  }
  if (config.span <= Duration::zero()) {
    throw std::invalid_argument("generate_synthetic_trace: span must be positive");
  }
  if (config.repeat_probability < 0.0 || config.repeat_probability >= 1.0) {
    throw std::invalid_argument("generate_synthetic_trace: repeat probability in [0, 1)");
  }

  Rng rng(config.seed);
  const ZipfSampler doc_sampler(config.num_documents, config.zipf_alpha);
  const ZipfSampler user_sampler(config.num_users, config.user_alpha);

  // Shuffle the rank->document mapping so that popular documents are spread
  // across the id space (rank 0 being document 0 would make popularity
  // trivially correlated with id, which some tests could then accidentally
  // rely on).
  std::vector<std::uint64_t> doc_of_rank(config.num_documents);
  for (std::uint64_t i = 0; i < config.num_documents; ++i) doc_of_rank[i] = i;
  for (std::uint64_t i = config.num_documents - 1; i > 0; --i) {
    std::swap(doc_of_rank[i], doc_of_rank[rng.next_below(i + 1)]);
  }

  const double arrival_rate = static_cast<double>(config.num_requests) /
                              static_cast<double>(config.span.count());  // per ms

  Trace trace;
  trace.requests.reserve(config.num_requests);

  std::vector<std::uint64_t> recent;  // circular recency window of doc indices
  recent.reserve(config.repeat_window);
  std::size_t recent_next = 0;

  double now_ms = 0.0;
  for (std::uint64_t i = 0; i < config.num_requests; ++i) {
    now_ms += rng.next_exponential(arrival_rate);

    std::uint64_t doc_index;
    if (!recent.empty() && rng.next_bool(config.repeat_probability)) {
      doc_index = recent[rng.next_below(recent.size())];
    } else {
      doc_index = doc_of_rank[doc_sampler.sample(rng)];
    }
    if (config.repeat_window > 0) {
      if (recent.size() < config.repeat_window) {
        recent.push_back(doc_index);
      } else {
        recent[recent_next] = doc_index;
        recent_next = (recent_next + 1) % recent.size();
      }
    }

    Request request;
    request.at = kSimEpoch + Duration{static_cast<SimClock::rep>(now_ms)};
    request.user = static_cast<UserId>(user_sampler.sample(rng));
    request.document = doc_index;  // synthetic ids are dense indices
    request.size = synthetic_document_size(config, doc_index);
    trace.requests.push_back(request);
  }
  return trace;
}

}  // namespace eacache
