// Parser for BU-style condensed proxy logs.
//
// Accepted line format (whitespace separated):
//
//   <timestamp> <user> <url> <size> [<retrieval_ms>]
//
//   timestamp  seconds since some epoch; integer or decimal ("790358517.42")
//   user       arbitrary token identifying the client ("bugs_17", "42")
//   url        arbitrary non-space token; hashed (FNV-1a) to a DocumentId
//   size       body bytes; 0 is coerced to `default_size` — the paper made
//              exactly this substitution ("we made the size of each such
//              record equal to average document size of 4K bytes")
//   retrieval  optional, ignored (we model latency, not replay it)
//
// Lines starting with '#' and blank lines are skipped. Malformed lines are
// counted and skipped (real mid-90s logs are dirty); parse() only throws if
// the stream itself is unreadable.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace eacache {

struct BuParseOptions {
  Bytes default_size = 4 * kKiB;  // the paper's zero-size substitution
  bool normalize_time = true;     // shift so the first request is at t=0
};

struct BuParseResult {
  Trace trace;
  std::uint64_t lines_read = 0;
  std::uint64_t lines_skipped = 0;  // comments, blanks and malformed lines
  std::uint64_t zero_sizes_coerced = 0;
};

/// Parse a log from a stream. Output is time-ordered (stable sort applied).
[[nodiscard]] BuParseResult parse_bu_log(std::istream& in, const BuParseOptions& options = {});

/// Parse a log file; throws std::runtime_error if the file cannot be opened.
[[nodiscard]] BuParseResult parse_bu_log_file(const std::string& path,
                                              const BuParseOptions& options = {});

/// Streaming counterpart of parse_bu_log: pulls one line per next() call, so
/// arbitrarily large logs cost O(1) memory. Divergence from the batch path:
/// the stream cannot sort, so a timestamp that regresses is clamped forward
/// to the previous one (counted in clamped_timestamps) to honour the
/// TraceSource monotone-time clause. Non-owning; reset() requires a
/// seekable stream.
class BuLogSource final : public TraceSource {
 public:
  explicit BuLogSource(std::istream& in, const BuParseOptions& options = {});

  bool next(Request& out) override;
  void reset() override;

  [[nodiscard]] std::uint64_t lines_read() const { return lines_read_; }
  [[nodiscard]] std::uint64_t lines_skipped() const { return lines_skipped_; }
  [[nodiscard]] std::uint64_t zero_sizes_coerced() const { return zero_sizes_coerced_; }
  [[nodiscard]] std::uint64_t clamped_timestamps() const { return clamped_timestamps_; }

 private:
  std::istream* in_;
  BuParseOptions options_;
  Duration shift_ = Duration::zero();
  TimePoint last_ = kSimEpoch;
  bool started_ = false;
  std::uint64_t lines_read_ = 0;
  std::uint64_t lines_skipped_ = 0;
  std::uint64_t zero_sizes_coerced_ = 0;
  std::uint64_t clamped_timestamps_ = 0;
};

}  // namespace eacache
