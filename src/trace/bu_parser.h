// Parser for BU-style condensed proxy logs.
//
// Accepted line format (whitespace separated):
//
//   <timestamp> <user> <url> <size> [<retrieval_ms>]
//
//   timestamp  seconds since some epoch; integer or decimal ("790358517.42")
//   user       arbitrary token identifying the client ("bugs_17", "42")
//   url        arbitrary non-space token; hashed (FNV-1a) to a DocumentId
//   size       body bytes; 0 is coerced to `default_size` — the paper made
//              exactly this substitution ("we made the size of each such
//              record equal to average document size of 4K bytes")
//   retrieval  optional, ignored (we model latency, not replay it)
//
// Lines starting with '#' and blank lines are skipped. Malformed lines are
// counted and skipped (real mid-90s logs are dirty); parse() only throws if
// the stream itself is unreadable.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"
#include "trace/trace.h"

namespace eacache {

struct BuParseOptions {
  Bytes default_size = 4 * kKiB;  // the paper's zero-size substitution
  bool normalize_time = true;     // shift so the first request is at t=0
};

struct BuParseResult {
  Trace trace;
  std::uint64_t lines_read = 0;
  std::uint64_t lines_skipped = 0;  // comments, blanks and malformed lines
  std::uint64_t zero_sizes_coerced = 0;
};

/// Parse a log from a stream. Output is time-ordered (stable sort applied).
[[nodiscard]] BuParseResult parse_bu_log(std::istream& in, const BuParseOptions& options = {});

/// Parse a log file; throws std::runtime_error if the file cannot be opened.
[[nodiscard]] BuParseResult parse_bu_log_file(const std::string& path,
                                              const BuParseOptions& options = {});

}  // namespace eacache
